package loosesim

// Internal tests for the RunAll worker pool: these wrap the runOne hook,
// so they live in the package rather than loosesim_test.

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

// poolCfg returns a minimal-length config so a 1000-entry batch stays
// cheap: construction dominates, which is exactly what the peak-machine
// test wants to observe.
func poolCfg(t *testing.T, bench string, seed int64, measure uint64) Config {
	t.Helper()
	cfg, err := DefaultMachine(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = measure
	return cfg
}

// TestRunAllPeakLiveMachines is the acceptance case for the spawn-then-
// block bugfix: a 1000-config batch must never have more simulations in
// flight — and therefore more machines live — than GOMAXPROCS, and the
// pool must not leak goroutines. The old RunAll constructed all 1000
// machines and 1000 goroutines up front.
func TestRunAllPeakLiveMachines(t *testing.T) {
	const batch = 1000
	var live, peak, calls atomic.Int64
	orig := runOne
	runOne = func(ctx context.Context, cfg Config) (*Result, error) {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer live.Add(-1)
		calls.Add(1)
		return orig(ctx, cfg)
	}
	defer func() { runOne = orig }()

	baseline := runtime.NumGoroutine()
	cfgs := make([]Config, batch)
	for i := range cfgs {
		cfgs[i] = poolCfg(t, "gcc", int64(i+1), 64)
	}
	results, err := RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != batch {
		t.Fatalf("ran %d configs, want %d", calls.Load(), batch)
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
	}
	if max := int64(runtime.GOMAXPROCS(0)); peak.Load() > max {
		t.Fatalf("peak live machines = %d, want <= GOMAXPROCS (%d)", peak.Load(), max)
	}
	// The pool's goroutines must all have exited; allow slack for the
	// runtime's own background goroutines coming and going.
	if after := runtime.NumGoroutine(); after > baseline+3 {
		t.Errorf("goroutines grew from %d to %d: pool leak", baseline, after)
	}
}

// TestRunAllMatchesSerialRuns is the concurrent-vs-serial determinism
// gate: a batch much larger than GOMAXPROCS must yield counters
// byte-identical to running each config sequentially, in input order.
// scripts/check.sh runs it under -race.
func TestRunAllMatchesSerialRuns(t *testing.T) {
	benches := []string{"gcc", "swim", "apsi-swim"}
	var cfgs []Config
	for _, b := range benches {
		for v := 0; v < 8; v++ {
			cfgs = append(cfgs, poolCfg(t, b, int64(v+1), 4000))
		}
	}
	if len(cfgs) <= runtime.GOMAXPROCS(0) {
		t.Logf("batch %d not larger than GOMAXPROCS %d", len(cfgs), runtime.GOMAXPROCS(0))
	}
	concurrent, err := RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		serial, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if concurrent[i].Counters != serial.Counters {
			t.Errorf("config %d: concurrent counters diverge from serial:\n got %+v\nwant %+v",
				i, concurrent[i].Counters, serial.Counters)
		}
		if concurrent[i].Benchmark != serial.Benchmark {
			t.Errorf("config %d: result order broken: %s vs %s", i, concurrent[i].Benchmark, serial.Benchmark)
		}
	}
}

func TestRunAllContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []Config{poolCfg(t, "gcc", 1, 1000), poolCfg(t, "gcc", 2, 1000)}
	if _, err := RunAllContext(ctx, cfgs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunAllValidatesBeforeRunning(t *testing.T) {
	var calls atomic.Int64
	orig := runOne
	runOne = func(ctx context.Context, cfg Config) (*Result, error) {
		calls.Add(1)
		return orig(ctx, cfg)
	}
	defer func() { runOne = orig }()

	good := poolCfg(t, "gcc", 1, 1000)
	bad := good
	bad.FetchWidth = 0
	if _, err := RunAll([]Config{good, bad}); err == nil {
		t.Fatal("bad config must fail the batch")
	}
	if calls.Load() != 0 {
		t.Fatalf("fail-fast broken: %d simulations started before validation failed", calls.Load())
	}
}
