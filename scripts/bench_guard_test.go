// Package scripts holds tests for the repo's shell scripts. The package
// is test-only: the build, the loader, and simlint all skip it.
package scripts

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// sentinel is the committed-snapshot stand-in; a failed or garbled bench
// run must leave it byte-identical.
const sentinel = `{"benchmark": "BenchmarkMachine", "sentinel": true}` + "\n"

// setupBenchDir copies bench.sh into a temp repo layout with a fake `go`
// on PATH and a sentinel snapshot in place.
func setupBenchDir(t *testing.T, fakeGo string) string {
	t.Helper()
	script, err := os.ReadFile("bench.sh")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, sub := range []string{"scripts", "bin"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "scripts", "bench.sh"), script, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bin", "go"), []byte(fakeGo), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_machine.json"), []byte(sentinel), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// runBench executes the copied bench.sh in snapshot mode with the fake go
// first on PATH.
func runBench(t *testing.T, dir string) (int, string) {
	t.Helper()
	cmd := exec.Command("sh", "scripts/bench.sh")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "PATH="+filepath.Join(dir, "bin")+":"+os.Getenv("PATH"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("bench.sh did not run: %v\n%s", err, out)
	}
	return exitErr.ExitCode(), string(out)
}

func snapshotAfter(t *testing.T, dir string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_machine.json"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestBenchSnapshotGuard drives bench.sh snapshot mode against failing and
// garbled benchmark runs: every such run must exit 2 and leave the
// committed snapshot untouched. A well-formed run must still replace it.
func TestBenchSnapshotGuard(t *testing.T) {
	cases := []struct {
		name   string
		fakeGo string
	}{
		{
			name:   "go test fails",
			fakeGo: "#!/bin/sh\necho 'FAIL\tloosesim/internal/pipeline [build failed]' >&2\nexit 1\n",
		},
		{
			name:   "no benchmark line",
			fakeGo: "#!/bin/sh\necho 'goos: linux'\necho 'PASS'\nexit 0\n",
		},
		{
			name: "garbled counts",
			fakeGo: "#!/bin/sh\n" +
				"echo 'cpu: FakeCPU 3000'\n" +
				"echo 'BenchmarkMachine-8   10   oops ns/op   12 B/op   3 allocs/op'\n" +
				"exit 0\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := setupBenchDir(t, tc.fakeGo)
			code, out := runBench(t, dir)
			if code != 2 {
				t.Fatalf("bench.sh exit = %d, want 2\n%s", code, out)
			}
			if got := snapshotAfter(t, dir); got != sentinel {
				t.Fatalf("snapshot was overwritten by a bad run:\n%s", got)
			}
		})
	}

	t.Run("valid run snapshots", func(t *testing.T) {
		fakeGo := "#!/bin/sh\n" +
			"echo 'cpu: FakeCPU 3000'\n" +
			"echo 'BenchmarkMachine-8   10   3500000 ns/op   1024 B/op   50 allocs/op'\n" +
			"exit 0\n"
		dir := setupBenchDir(t, fakeGo)
		code, out := runBench(t, dir)
		if code != 0 {
			t.Fatalf("bench.sh exit = %d, want 0\n%s", code, out)
		}
		got := snapshotAfter(t, dir)
		if got == sentinel {
			t.Fatal("valid run did not refresh the snapshot")
		}
		if !strings.Contains(got, `"allocs_per_op": 50`) || !strings.Contains(got, `"cpu": "FakeCPU 3000"`) {
			t.Fatalf("snapshot content unexpected:\n%s", got)
		}
	})
}
