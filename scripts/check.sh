#!/usr/bin/env sh
# Full local check: build, vet, domain lints, race-enabled tests.
# Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> simlint ./..."
go run ./cmd/simlint ./...

echo "==> simlint hot-path gate (hotalloc,exhaustive,fieldreset,sinkguard)"
# Redundant with the full run above, but an explicit gate: the cross-package
# analyzers must stay enabled and clean even if someone trims the default set.
go run ./cmd/simlint -enable hotalloc,exhaustive,fieldreset,sinkguard ./...

echo "==> simlint concurrency & determinism gate (ctxflow,goleak,lockorder,nondet-taint,chanclose)"
# Same idea for the interprocedural dataflow analyzers: the serving and
# dispatch stack must stay clean under them with no baseline file.
go run ./cmd/simlint -enable ctxflow,goleak,lockorder,nondet-taint,chanclose ./...

echo "==> simlint perf ratchet (hot-path escapes/inlining/bounds/dispatch vs PERF_baseline.json)"
if ! go run ./cmd/simlint -perfbaseline PERF_baseline.json ./...; then
	echo "check.sh: hot-path perf budget exceeded; the grown counts are listed above." >&2
	echo "check.sh: inspect the offending sites with:  go run ./cmd/simlint -perf ./..." >&2
	echo "check.sh: if the growth is intentional, ratchet deliberately with:" >&2
	echo "check.sh:   go run ./cmd/simlint -perfbaseline PERF_baseline.json -perfupdate ./..." >&2
	exit 1
fi

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench regression gate (BenchmarkMachine vs BENCH_machine.json)"
./scripts/bench.sh check

echo "==> snapshot fuzz smoke (FuzzSnapshotRoundTrip, 10s past the seed corpus)"
# The committed corpus replays as part of `go test` above; this additionally
# mutates for a short budget so codec regressions that need a fresh input to
# trip are caught before CI's longer run.
go test ./internal/pipeline -run '^FuzzSnapshotRoundTrip$' -fuzz '^FuzzSnapshotRoundTrip$' -fuzztime 10s >/dev/null

echo "==> observability smoke (loosim -intervals/-events | loopstat)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/loosim -bench apsi -dra -warmup 20000 -inst 60000 \
	-intervals "$tmp/iv.csv" -events "$tmp/ev.jsonl" >/dev/null
go run ./cmd/loopstat -events "$tmp/ev.jsonl" -intervals "$tmp/iv.csv" >/dev/null

echo "==> serving smoke (loosimd -selfcheck: submit over HTTP, cache hit, metrics)"
go run ./cmd/loosimd -selfcheck -cache "$tmp/cache" >/dev/null

echo "==> load smoke (looload -selfcheck: model determinism + loopback admission fleet)"
go run ./cmd/looload -selfcheck >/dev/null

echo "==> load replay byte-identity (two seeded replays must cmp equal)"
# -selfcheck already byte-compares in-process; this repeats it across two
# separate processes so process-level nondeterminism (map iteration, ASLR'd
# pointers leaking into output) would be caught too.
go run ./cmd/looload -seed 42 -curve 0.5,1,2 >"$tmp/load1.txt"
go run ./cmd/looload -seed 42 -curve 0.5,1,2 >"$tmp/load2.txt"
cmp "$tmp/load1.txt" "$tmp/load2.txt"

echo "==> sweep smoke (loosweep -selfcheck: coordinator + 2 loopback backends)"
go run ./cmd/loosweep -selfcheck -trace "$tmp/spans.jsonl" >/dev/null

echo "==> tracing smoke (loostrace over the selfcheck span stream)"
# The traced selfcheck already proved byte-identity; here the renderer must
# reconstruct the same stream into waterfalls and a fleet summary.
go run ./cmd/loostrace "$tmp/spans.jsonl" >/dev/null
go run ./cmd/loostrace -json "$tmp/spans.jsonl" >/dev/null

echo "All checks passed."
