#!/usr/bin/env sh
# Full local check: build, vet, domain lints, race-enabled tests.
# Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> simlint ./..."
go run ./cmd/simlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "All checks passed."
