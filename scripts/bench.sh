#!/usr/bin/env sh
# Benchmark the simulation hot path and snapshot the result.
#
#   scripts/bench.sh            run BenchmarkMachine, write BENCH_machine.json
#   scripts/bench.sh check      run BenchmarkMachine, compare against the
#                               committed BENCH_machine.json, fail on a
#                               regression of more than BENCH_TOLERANCE
#                               percent (default 15) in KIPS or allocs/op
#
# KIPS is simulated kilo-instructions per second. One benchmark op runs
# 5k warmup + 30k measured instructions (see internal/pipeline/bench_test.go),
# so KIPS = 35000 / (ns/op) * 1e6.
#
# Noise control: the benchmark runs BENCHCOUNT times (default 3) and the
# fastest run wins — background load only ever slows a run down, so
# best-of-N is the stable estimator. allocs/op is machine-independent and
# always gated; KIPS is only compared when the host CPU matches the one
# recorded in the snapshot, so a checkout on different hardware (CI
# runners, a new laptop) skips the wall-clock gate instead of flapping.
# Refresh the snapshot deliberately with `scripts/bench.sh` after an
# intentional hot-path change or a baseline-hardware change.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-snapshot}"
snapshot="BENCH_machine.json"
instructions=35000
tolerance="${BENCH_TOLERANCE:-15}"

# The snapshot is the committed source of truth for the regression gate:
# never let a failed or garbled benchmark run replace it. Every exit path
# between here and the snapshot write must leave the file untouched.
if ! out=$(go test -run '^$' -bench '^BenchmarkMachine$' -benchmem \
	-benchtime "${BENCHTIME:-1s}" -count "${BENCHCOUNT:-3}" ./internal/pipeline 2>&1); then
	echo "bench.sh: go test failed; leaving $snapshot untouched" >&2
	printf '%s\n' "$out" >&2
	exit 2
fi
line=$(printf '%s\n' "$out" | awk '
	$1 ~ /^BenchmarkMachine(-[0-9]+)?$/ && (best == "" || $3 + 0 < bestns) {
		best = $0; bestns = $3 + 0
	}
	END { print best }')
if [ -z "$line" ]; then
	echo "bench.sh: no BenchmarkMachine result in go test output" >&2
	printf '%s\n' "$out" >&2
	exit 2
fi
cpu=$(printf '%s\n' "$out" | sed -n 's/^cpu: //p' | head -1)

ns=$(printf '%s\n' "$line" | awk '{ print $3 }')
bytes=$(printf '%s\n' "$line" | awk '{ print $5 }')
allocs=$(printf '%s\n' "$line" | awk '{ print $7 }')

# require_count rejects empty or non-numeric fields before anything is
# derived from them or written to the snapshot.
require_count() {
	case "$2" in
	'' | . | *[!0-9.]*)
		echo "bench.sh: $1 \"$2\" is not a number (benchmark output garbled?); leaving $snapshot untouched" >&2
		printf '%s\n' "$line" >&2
		exit 2
		;;
	esac
}
require_count "ns/op" "$ns"
require_count "B/op" "$bytes"
require_count "allocs/op" "$allocs"
if awk -v ns="$ns" 'BEGIN { exit !(ns + 0 <= 0) }'; then
	echo "bench.sh: ns/op is zero; refusing to snapshot a vacuous run" >&2
	exit 2
fi

kips=$(awk -v ns="$ns" -v inst="$instructions" 'BEGIN { printf "%.1f", inst / ns * 1e6 }')

echo "BenchmarkMachine: $kips KIPS  ($ns ns/op, $bytes B/op, $allocs allocs/op, best of ${BENCHCOUNT:-3})"

case "$mode" in
snapshot)
	# The top-level fields are the current baseline the check gate reads;
	# "history" accumulates one dated line per refresh so the snapshot
	# records a trajectory, not just the latest point. Entries from the
	# existing file are carried over (one per line, normalized commas).
	old_history=$(sed -n 's/^    \({"date":.*}\),\{0,1\}$/\1/p' "$snapshot" 2>/dev/null || true)
	entry="{\"date\": \"$(date -u +%Y-%m-%d)\", \"cpu\": \"$cpu\", \"ns_per_op\": $ns, \"kips\": $kips, \"bytes_per_op\": $bytes, \"allocs_per_op\": $allocs}"
	{
		cat <<EOF
{
  "benchmark": "BenchmarkMachine",
  "cpu": "$cpu",
  "instructions_per_op": $instructions,
  "ns_per_op": $ns,
  "kips": $kips,
  "bytes_per_op": $bytes,
  "allocs_per_op": $allocs,
  "history": [
EOF
		if [ -n "$old_history" ]; then
			printf '%s\n' "$old_history" | sed 's/^/    /; s/$/,/'
		fi
		printf '    %s\n' "$entry"
		cat <<EOF
  ]
}
EOF
	} >"$snapshot"
	echo "wrote $snapshot ($(grep -c '^    {"date":' "$snapshot") history entries)"
	;;
check)
	if [ ! -f "$snapshot" ]; then
		echo "bench.sh: no committed $snapshot to compare against (run scripts/bench.sh first)" >&2
		exit 2
	fi
	# head -1 pins each field to the top-level baseline: the history
	# entries repeat the same key names further down the file.
	base_cpu=$(sed -n 's/.*"cpu": *"\([^"]*\)".*/\1/p' "$snapshot" | head -1)
	base_kips=$(sed -n 's/.*"kips": *\([0-9.]*\).*/\1/p' "$snapshot" | head -1)
	base_allocs=$(sed -n 's/.*"allocs_per_op": *\([0-9]*\).*/\1/p' "$snapshot" | head -1)
	if [ -z "$base_kips" ] || [ -z "$base_allocs" ]; then
		echo "bench.sh: $snapshot is missing kips/allocs_per_op fields" >&2
		exit 2
	fi
	status=0
	if awk -v new="$allocs" -v base="$base_allocs" -v tol="$tolerance" \
		'BEGIN { exit !(new > base * (1 + tol / 100)) }'; then
		echo "bench.sh: allocs/op regressed >${tolerance}%: $allocs vs baseline $base_allocs" >&2
		status=1
	fi
	if [ "$cpu" != "$base_cpu" ]; then
		echo "bench ok: host cpu differs from snapshot (\"$cpu\" vs \"$base_cpu\"); KIPS gate skipped, allocs/op gated ($allocs vs baseline $base_allocs)"
	elif awk -v new="$kips" -v base="$base_kips" -v tol="$tolerance" \
		'BEGIN { exit !(new < base * (1 - tol / 100)) }'; then
		echo "bench.sh: KIPS regressed >${tolerance}%: $kips vs baseline $base_kips" >&2
		status=1
	fi
	if [ "$status" -ne 0 ]; then
		echo "bench.sh: hot-path regression vs $snapshot (refresh deliberately with scripts/bench.sh)" >&2
		exit "$status"
	fi
	if [ "$cpu" = "$base_cpu" ]; then
		echo "bench ok: within ${tolerance}% of $snapshot (baseline $base_kips KIPS, $base_allocs allocs/op)"
	fi
	;;
*)
	echo "usage: scripts/bench.sh [snapshot|check]" >&2
	exit 2
	;;
esac
