package loosesim_test

import "loosesim"

// newThroughputConfig builds the config BenchmarkSimulatorThroughput runs.
func newThroughputConfig() (loosesim.Config, error) {
	cfg, err := loosesim.DefaultMachine("gcc")
	if err != nil {
		return cfg, err
	}
	cfg.WarmupInstructions = 10_000
	cfg.MeasureInstructions = 100_000
	return cfg, nil
}

// runConfig is a tiny indirection so benches share the public Run path.
func runConfig(cfg loosesim.Config) (*loosesim.Result, error) {
	return loosesim.Run(cfg)
}
