package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ChanClose returns the chanclose analyzer: it checks the close discipline
// of the job/Done channel idioms the serving stack is built on. Closing a
// channel is an ownership statement — exactly one party, on the sending
// side, may make it, exactly once. The analyzer keys channels stably
// across functions ("Job.done" for a field, "pkg.var" for a package-level
// channel, per-function for locals) and aggregates every close, send, and
// receive in the package, then flags:
//
//   - a close inside a loop — the second iteration panics;
//   - double close exposure: a channel closed at more than one site where
//     any close runs outside a serializing guard (a held mutex, by lexical
//     replay, or a sync.Once.Do literal). Two state-machine transitions
//     both reaching close(j.done) is exactly how a cancel/finish race
//     panics the daemon;
//   - close/send races: a channel both closed and sent to where either
//     side is unguarded — `close` after an unsynchronized send panics the
//     sender under the scheduler's worst interleaving;
//   - receiver-side close: a function that only receives from a channel
//     other functions send on must not be the one closing it.
//
// The guard analysis is the same lexical replay lockorder uses, so a
// branch-heavy function may under-approximate what is guarded (missing a
// finding, never inventing one).
func ChanClose() *Analyzer {
	a := &Analyzer{
		Name: "chanclose",
		Doc:  "flags double-close exposure, close/send races, receiver-side and in-loop closes",
		AppliesTo: func(pkgPath string) bool {
			return internalOnly(pkgPath) || strings.Contains(pkgPath, "/cmd/")
		},
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		facts := collectChanFacts(pass, prog)
		for _, key := range facts.order {
			f := facts.byKey[key]
			reportChanKey(pass, f)
		}
	}
	return a
}

// chanSite is one close or send with its guard state.
type chanSite struct {
	fn      *FuncInfo
	pos     token.Pos
	guarded bool
	inLoop  bool // closes only
}

// chanFacts aggregates one channel key's package-wide usage.
type chanFacts struct {
	display string
	closes  []chanSite
	sends   []chanSite
	// recvFns / sendFns name the functions touching the channel, for the
	// ownership-side rule.
	recvFns map[*FuncInfo]bool
	sendFns map[*FuncInfo]bool
}

type chanFactTable struct {
	byKey map[string]*chanFacts
	order []string
}

func (t *chanFactTable) get(key, display string) *chanFacts {
	f, ok := t.byKey[key]
	if !ok {
		f = &chanFacts{
			display: display,
			recvFns: make(map[*FuncInfo]bool),
			sendFns: make(map[*FuncInfo]bool),
		}
		t.byKey[key] = f
		t.order = append(t.order, key)
	}
	return f
}

// chanKeyOf names a channel expression: field and package-level channels
// share keys across functions; locals are keyed per declaration.
func chanKeyOf(info *types.Info, fi *FuncInfo, e ast.Expr) (key, display string, ok bool) {
	if tv, okt := info.Types[e]; !okt || !isChanType(tv.Type) {
		return "", "", false
	}
	if k, oks := syncKeyOf(info, e); oks {
		return k, k, true
	}
	if v := localVarOf(info, e); v != nil {
		return funcDisplayName(fi.Obj) + ":" + v.Name(), v.Name(), true
	}
	return "", "", false
}

// collectChanFacts walks every function of the pass's package.
func collectChanFacts(pass *Pass, prog *Program) *chanFactTable {
	table := &chanFactTable{byKey: make(map[string]*chanFacts)}
	for _, fi := range prog.FuncsInOrder() {
		if fi.Pkg.Types != pass.Pkg {
			continue
		}
		body := fi.Decl.Body
		events := collectLockEvents(pass.Info, body)
		guardedAt := func(pos token.Pos) bool {
			return len(heldAt(events, pos)) > 0 || inOnceDo(pass.Info, body, pos)
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if !isBuiltinCall(pass.Info, x, "close") || len(x.Args) != 1 {
					return true
				}
				key, display, ok := chanKeyOf(pass.Info, fi, x.Args[0])
				if !ok {
					return true
				}
				f := table.get(key, display)
				f.closes = append(f.closes, chanSite{
					fn:      fi,
					pos:     x.Pos(),
					guarded: guardedAt(x.Pos()),
					inLoop:  nodeInLoop(body, x.Pos()),
				})
			case *ast.SendStmt:
				key, display, ok := chanKeyOf(pass.Info, fi, x.Chan)
				if !ok {
					return true
				}
				f := table.get(key, display)
				f.sends = append(f.sends, chanSite{fn: fi, pos: x.Pos(), guarded: guardedAt(x.Pos())})
				f.sendFns[fi] = true
			case *ast.UnaryExpr:
				if x.Op != token.ARROW {
					return true
				}
				if key, display, ok := chanKeyOf(pass.Info, fi, x.X); ok {
					table.get(key, display).recvFns[fi] = true
				}
			case *ast.RangeStmt:
				if key, display, ok := chanKeyOf(pass.Info, fi, x.X); ok {
					table.get(key, display).recvFns[fi] = true
				}
			}
			return true
		})
	}
	return table
}

// reportChanKey applies the close-discipline rules to one channel.
func reportChanKey(pass *Pass, f *chanFacts) {
	anySendUnguarded := false
	for _, s := range f.sends {
		if !s.guarded {
			anySendUnguarded = true
		}
	}
	for _, c := range f.closes {
		switch {
		case c.inLoop:
			pass.Reportf(c.pos,
				"close(%s) inside a loop closes the channel more than once; the second iteration panics", f.display)
		case len(f.closes) > 1 && !c.guarded:
			pass.Reportf(c.pos,
				"%s is closed at %d sites and this one is unguarded; serialize every close under the owning mutex (or a sync.Once) to make double close impossible",
				f.display, len(f.closes))
		case len(f.sends) > 0 && (!c.guarded || anySendUnguarded):
			pass.Reportf(c.pos,
				"close(%s) can race with a send on the same channel; guard the close and every send under one mutex — send-on-closed-channel panics",
				f.display)
		case f.recvFns[c.fn] && !f.sendFns[c.fn] && sendsElsewhere(f, c.fn):
			pass.Reportf(c.pos,
				"%s is closed by %s, which only receives from it; close belongs to the sending side",
				f.display, funcDisplayName(c.fn.Obj))
		}
	}
}

// sendsElsewhere reports whether any function other than fn sends on the
// channel.
func sendsElsewhere(f *chanFacts, fn *FuncInfo) bool {
	for _, s := range f.sends {
		if s.fn != fn {
			return true
		}
	}
	return false
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// nodeInLoop reports whether pos sits inside a for/range statement in
// body with no function-literal boundary in between (a close in a literal
// created inside a loop runs once per literal call, not per iteration).
func nodeInLoop(body *ast.BlockStmt, pos token.Pos) bool {
	// The innermost enclosing node is the latest-starting one that still
	// contains pos; if it is a loop (rather than a literal), the close
	// repeats.
	var best ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() && (best == nil || n.Pos() >= best.Pos()) {
				best = n
			}
		}
		return true
	})
	switch best.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}
