package analysis

import (
	"go/ast"
	"go/types"
)

// DetMap returns the detmap analyzer: it flags `range` statements over map
// types in the simulator's internal packages, where Go's randomised
// iteration order can leak into simulator state or report output and cause
// run-to-run IPC jitter — precisely the nondeterminism that would swamp the
// paper's few-percent effects.
//
// A range over a map is accepted when the enclosing function visibly
// restores determinism afterwards by sorting what the loop collected: any
// call to sort.* or slices.Sort* lexically after the loop's start counts
// (the SortedKeys idiom). Anything cleverer needs a
// `// simlint:ignore detmap <reason>` comment.
func DetMap() *Analyzer {
	a := &Analyzer{
		Name:      "detmap",
		Doc:       "flags range over maps whose iteration order can reach state or output",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				fn, ok := funcNode(n)
				if !ok {
					return true
				}
				body := fn.body()
				if body == nil {
					return true
				}
				checkMapRanges(pass, body)
				return true
			})
		}
	}
	return a
}

// funcish unifies *ast.FuncDecl and *ast.FuncLit.
type funcish struct {
	decl *ast.FuncDecl
	lit  *ast.FuncLit
}

func funcNode(n ast.Node) (funcish, bool) {
	switch f := n.(type) {
	case *ast.FuncDecl:
		return funcish{decl: f}, true
	case *ast.FuncLit:
		return funcish{lit: f}, true
	}
	return funcish{}, false
}

func (f funcish) body() *ast.BlockStmt {
	if f.decl != nil {
		return f.decl.Body
	}
	return f.lit.Body
}

// checkMapRanges reports unsorted map ranges directly inside body
// (descending into nested blocks but not nested function literals, which
// get their own visit).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if sortedAfter(pass, body, rng) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"range over map %s: iteration order is nondeterministic; iterate sorted keys (stats.SortedKeys) or sort the collected results",
			types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		return true
	})
}

// sortedAfter reports whether a sort call appears in body at or after the
// range statement's position — the collect-then-sort idiom.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.Pos() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := packageOf(pass, sel); pkg == "sort" || pkg == "slices" {
			found = true
			return false
		}
		return true
	})
	return found
}

// packageOf returns the package name a selector's receiver resolves to, or
// "" when the receiver is not a package.
func packageOf(pass *Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Name()
}
