package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. loosesim/internal/pipeline
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and typechecks the module rooted at a directory containing
// go.mod, resolving module-local imports from the parsed tree and standard
// library imports from GOROOT source. It never invokes the go command or
// the network, so it works in offline builds.
//
// Only non-test files are loaded: the analyzers deliberately exempt tests
// (which are free to iterate maps, use wall clocks, and drop errors), and
// skipping them keeps the typecheck closed over production code.
type Loader struct {
	fset *token.FileSet
	std  types.ImporterFrom

	modulePath string
	root       string
	pkgs       map[string]*Package // by import path
}

// NewLoader prepares a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{fset: fset, std: std, modulePath: mod, root: abs,
		pkgs: make(map[string]*Package)}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// AllPackages returns every package the loader has typechecked, in import
// path order — the whole module, regardless of which patterns Load
// selected for reporting. The call-graph engine builds over this set so
// that hot-path reachability is whole-program even when the user asked to
// lint a single package.
func (l *Loader) AllPackages() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, l.pkgs[path])
	}
	return out
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w (run simlint from inside the module)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// Load parses and typechecks every package of the module matched by the
// given patterns ("./..." or empty for all; "./x/..." for a subtree; "./x"
// or "module/x" for one package), in dependency order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	parsed := make(map[string]*Package, len(dirs))
	imports := make(map[string][]string)
	for _, dir := range dirs {
		pkg, imps, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable files
		}
		parsed[pkg.Path] = pkg
		imports[pkg.Path] = imps
	}

	order, err := topoSort(parsed, imports)
	if err != nil {
		return nil, err
	}
	for _, path := range order {
		if err := l.typecheck(parsed[path]); err != nil {
			return nil, err
		}
	}

	var out []*Package
	for _, path := range order {
		if matchesAny(path, l.modulePath, patterns) {
			out = append(out, parsed[path])
		}
	}
	return out, nil
}

// packageDirs enumerates candidate package directories under the module
// root, skipping testdata, hidden, and vendor trees.
func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses dir's non-test Go files. It returns nil if the directory
// holds no buildable sources.
func (l *Loader) parseDir(dir string) (*Package, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil
	}
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, nil, err
	}
	path := l.modulePath
	if rel != "." {
		path = l.modulePath + "/" + filepath.ToSlash(rel)
	}
	var imps []string
	seen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if l.isLocal(p) && !seen[p] {
				seen[p] = true
				imps = append(imps, p)
			}
		}
	}
	return &Package{Path: path, Dir: dir, Files: files}, imps, nil
}

func (l *Loader) isLocal(importPath string) bool {
	return importPath == l.modulePath || strings.HasPrefix(importPath, l.modulePath+"/")
}

// typecheck runs go/types over pkg. Module-local imports resolve from
// already-typechecked packages; everything else falls through to the GOROOT
// source importer.
func (l *Loader) typecheck(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &moduleImporter{loader: l}}
	tpkg, err := conf.Check(pkg.Path, l.fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("typecheck %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[pkg.Path] = pkg
	return nil
}

// moduleImporter resolves imports during typechecking.
type moduleImporter struct {
	loader *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if m.loader.isLocal(path) {
		pkg, ok := m.loader.pkgs[path]
		if !ok {
			return nil, fmt.Errorf("analysis: local import %q not yet typechecked (import cycle?)", path)
		}
		return pkg.Types, nil
	}
	return m.loader.std.ImportFrom(path, m.loader.root, 0)
}

// topoSort orders packages so every module-local import precedes its
// importer.
func topoSort(pkgs map[string]*Package, imports map[string][]string) ([]string, error) {
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		deps := append([]string(nil), imports[path]...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := pkgs[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	var roots []string
	for path := range pkgs {
		roots = append(roots, path)
	}
	sort.Strings(roots)
	for _, path := range roots {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// matchesAny reports whether the import path is selected by the patterns.
func matchesAny(path, modulePath string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if matches(path, modulePath, pat) {
			return true
		}
	}
	return false
}

func matches(path, modulePath, pat string) bool {
	pat = strings.TrimSuffix(pat, "/")
	switch pat {
	case "", "./...", "...", "all":
		return true
	case ".":
		return path == modulePath
	}
	// Normalise "./x" and "x" to "module/x".
	p := strings.TrimPrefix(pat, "./")
	if !strings.HasPrefix(p, modulePath) {
		p = modulePath + "/" + p
	}
	if rest, ok := strings.CutSuffix(p, "/..."); ok {
		return path == rest || strings.HasPrefix(path, rest+"/")
	}
	return path == p
}
