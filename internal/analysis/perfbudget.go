package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The perf ratchet. PERF_baseline.json commits the current count of
// hot-path escapes, inlining failures, bounds checks, and dynamic dispatch
// sites per package. check.sh recomputes the counts and fails if any cell
// grew — the same one-way contract as the bench gate's 15% rule: the
// budget may be re-snapshotted downward after an optimization PR, but a
// regression cannot ride in silently. Counts (not positions) are budgeted
// deliberately, so unrelated line churn doesn't invalidate the baseline.

// PerfBudget is the committed hot-path cost budget: package → kind → count.
type PerfBudget struct {
	// Comment documents the file for readers browsing the repo.
	Comment string                    `json:"_comment,omitempty"`
	Budgets map[string]map[string]int `json:"budgets"`
}

// ComputePerfBudget tallies joined compiler diagnostics and dispatch sites
// into a budget. Every dispatch site counts — sanctioned seams included —
// because the ratchet guards totals, not style.
func ComputePerfBudget(diags []PerfDiag, sites []DispatchSite) *PerfBudget {
	b := &PerfBudget{Budgets: make(map[string]map[string]int)}
	bump := func(pkg string, kind PerfKind) {
		m := b.Budgets[pkg]
		if m == nil {
			m = make(map[string]int)
			b.Budgets[pkg] = m
		}
		m[string(kind)]++
	}
	for _, d := range diags {
		bump(d.Pkg, d.Kind)
	}
	for _, s := range sites {
		bump(modRelPkg(s.Fn.Pkg.Path), PerfDispatch)
	}
	return b
}

// ReadPerfBudget loads a committed budget file.
func ReadPerfBudget(path string) (*PerfBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b PerfBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
	}
	if b.Budgets == nil {
		b.Budgets = make(map[string]map[string]int)
	}
	return &b, nil
}

// Write persists the budget with stable formatting (json.Marshal sorts map
// keys, so the file diffs cleanly across snapshots).
func (b *PerfBudget) Write(path string) error {
	b.Comment = "hot-path perf budget; regenerate with `simlint -perfupdate` after an optimization PR"
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BudgetDelta is one (package, kind) cell whose count changed against the
// baseline.
type BudgetDelta struct {
	Pkg      string
	Kind     string
	Baseline int
	Current  int
}

func (d BudgetDelta) String() string {
	return fmt.Sprintf("%s %s: %d -> %d", d.Pkg, d.Kind, d.Baseline, d.Current)
}

// Diff compares the current counts against the committed baseline.
// Growths fail the gate; shrinks are reported so the budget can be
// re-snapshotted to lock in the win.
func (b *PerfBudget) Diff(current *PerfBudget) (growths, shrinks []BudgetDelta) {
	cells := make(map[[2]string]bool)
	for pkg, kinds := range b.Budgets {
		for kind := range kinds {
			cells[[2]string{pkg, kind}] = true
		}
	}
	for pkg, kinds := range current.Budgets {
		for kind := range kinds {
			cells[[2]string{pkg, kind}] = true
		}
	}
	var keys [][2]string
	for c := range cells {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, c := range keys {
		base := b.Budgets[c[0]][c[1]]
		cur := current.Budgets[c[0]][c[1]]
		d := BudgetDelta{Pkg: c[0], Kind: c[1], Baseline: base, Current: cur}
		switch {
		case cur > base:
			growths = append(growths, d)
		case cur < base:
			shrinks = append(shrinks, d)
		}
	}
	return growths, shrinks
}
