package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheckLite returns the errcheck-lite analyzer: it flags statements that
// call a function returning an error and drop the result on the floor. A
// simulator that swallows errors reports numbers computed from a state it
// never checked; every error must be handled, propagated, or explicitly
// discarded with `_ =` (which at least leaves an auditable mark).
//
// Infallible writers are exempt: calls whose error provably cannot occur —
// fmt.Fprint* into a *strings.Builder or *bytes.Buffer, and methods on
// *strings.Builder itself (its Write methods are documented to always
// return a nil error) — would only add `_ =` noise.
//
// Command packages (cmd/) get a narrower contract: only finalizer methods
// — Close, Flush, Sync, Shutdown — are checked there. Those are the calls
// whose dropped error silently truncates an output file or loses buffered
// work at exit; flagging every fmt.Println in a CLI would bury them.
func ErrCheckLite() *Analyzer {
	a := &Analyzer{
		Name: "errcheck-lite",
		Doc:  "flags call statements that silently discard an error result",
		AppliesTo: func(pkgPath string) bool {
			return internalOnly(pkgPath) || strings.Contains(pkgPath, "/cmd/")
		},
	}
	a.Run = func(pass *Pass) {
		finalizersOnly := strings.Contains(pass.Pkg.Path(), "/cmd/")
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch s := n.(type) {
				case *ast.ExprStmt:
					call, _ = s.X.(*ast.CallExpr)
				case *ast.GoStmt:
					call = s.Call
				case *ast.DeferStmt:
					call = s.Call
				}
				if call == nil {
					return true
				}
				if !returnsError(pass, call) || isInfallible(pass, call) {
					return true
				}
				if finalizersOnly && !isFinalizerCall(call) {
					return true
				}
				pass.Reportf(call.Pos(),
					"result of %s includes an error that is silently discarded; handle it or assign it to _",
					callName(call))
				return true
			})
		}
	}
	return a
}

// returnsError reports whether the call's result type is or contains error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isInfallible recognises the documented cannot-fail writer patterns.
func isInfallible(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Fprint/Fprintf/Fprintln into an in-memory buffer.
	if packageOf(pass, sel) == "fmt" {
		switch sel.Sel.Name {
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				return isMemWriter(pass, call.Args[0])
			}
		}
		return false
	}
	// Methods on *strings.Builder / *bytes.Buffer.
	if tv, ok := pass.Info.Types[sel.X]; ok {
		return isMemWriterType(tv.Type)
	}
	return false
}

func isMemWriter(pass *Pass, arg ast.Expr) bool {
	tv, ok := pass.Info.Types[arg]
	return ok && isMemWriterType(tv.Type)
}

func isMemWriterType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return path == "strings" && name == "Builder" || path == "bytes" && name == "Buffer"
}

// isFinalizerCall reports whether the call is a method call named like a
// resource finalizer — the cmd-package subset whose dropped error loses
// buffered output.
func isFinalizerCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Close", "Flush", "Sync", "Shutdown":
		return true
	}
	return false
}

// callName renders the called expression for the diagnostic.
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
