package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// boundLexicon are the identifier fragments (matched case-insensitively)
// that mark a loop condition as tied to a simulation budget: cycle
// counters, instruction budgets, queue and window occupancies, credit and
// deadline schemes. A loop whose exit depends on one of these is, by
// construction, bounded by the quantity the simulator is accounting.
var boundLexicon = []string{
	"cycle", "budget", "count", "retire", "measure", "warmup", "instr",
	"len", "cap", "size", "max", "min", "limit", "bound", "depth",
	"entries", "width", "remain", "credit", "fuel", "quota", "deadline",
	"inflight", "horizon", "n",
}

// LoopBound returns the loopbound analyzer: in the cycle-accurate core
// (internal/pipeline, internal/core) every `for` loop must demonstrably
// make progress toward an exit — the simulator that reproduces "loose
// loops" must not be able to hang in one of its own.
//
// A non-range for statement is accepted when any of the following holds:
//
//   - it is a counted loop (both init and post clauses present);
//   - its condition mentions len()/cap() or an identifier drawn from the
//     budget lexicon (cycle, budget, retired, measure, limit, ...);
//   - its condition mentions a variable the loop body assigns or
//     increments/decrements — visible progress on the exit variable;
//   - its body contains a break, return, goto, or panic — an explicit exit;
//   - it carries a `// simlint:bounded <why>` comment.
//
// Range loops are always bounded (the simulator ranges over slices and
// fixed arrays; channels do not appear in the core).
func LoopBound() *Analyzer {
	a := &Analyzer{
		Name: "loopbound",
		Doc:  "requires every for loop in the cycle-accurate core to have a visible bound or exit",
		AppliesTo: func(pkgPath string) bool {
			return strings.HasSuffix(pkgPath, "internal/pipeline") ||
				strings.HasSuffix(pkgPath, "internal/core")
		},
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			f := file
			ast.Inspect(f, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok {
					return true
				}
				if loopIsBounded(pass, loop) {
					return true
				}
				line := pass.Fset.Position(loop.Pos()).Line
				if hasMarker(pass.Fset, f, line, "simlint:bounded") {
					return true
				}
				what := "for loop condition shows no progress toward an exit"
				if loop.Cond == nil {
					what = "unconditional for loop has no exit"
				}
				pass.Reportf(loop.Pos(),
					"%s: tie the condition to a cycle/budget/queue bound, add an explicit break, or mark it `// simlint:bounded <why>`",
					what)
				return true
			})
		}
	}
	return a
}

func loopIsBounded(pass *Pass, loop *ast.ForStmt) bool {
	if loop.Init != nil && loop.Post != nil {
		return true // counted loop
	}
	if condIsBudgeted(loop.Cond) {
		return true
	}
	if condVarAdvancedInBody(loop) {
		return true
	}
	return hasExplicitExit(loop.Body)
}

// condIsBudgeted reports whether the condition references len/cap or an
// identifier matching the budget lexicon.
func condIsBudgeted(cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	budgeted := false
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		name := strings.ToLower(id.Name)
		for _, w := range boundLexicon {
			if w == "n" || w == "len" || w == "cap" {
				if name == w {
					budgeted = true
					return false
				}
				continue
			}
			if strings.Contains(name, w) {
				budgeted = true
				return false
			}
		}
		return true
	})
	return budgeted
}

// condVarAdvancedInBody reports whether any identifier of the condition is
// the target of an assignment or ++/-- inside the loop body (ignoring
// nested function literals).
func condVarAdvancedInBody(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return false
	}
	condVars := make(map[string]bool)
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			condVars[id.Name] = true
		}
		return true
	})
	advanced := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if advanced {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IncDecStmt:
			if id := rootIdent(s.X); id != nil && condVars[id.Name] {
				advanced = true
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id := rootIdent(lhs); id != nil && condVars[id.Name] {
					advanced = true
				}
			}
		}
		return !advanced
	})
	return advanced
}

// rootIdent unwraps selectors and index expressions to the base identifier:
// a.b[i].c advances a.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// hasExplicitExit reports whether body contains a break, return, goto, or
// panic outside nested function literals. Exits inside nested loops or
// switches are accepted too: this is a reachability heuristic, not a
// termination proof, and the escape hatch exists for the genuinely subtle
// cases.
func hasExplicitExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				found = true
			}
		case *ast.ReturnStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}
