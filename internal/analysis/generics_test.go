package analysis

import (
	"go/ast"
	"sort"
	"testing"
)

// TestCallGraphGenerics checks that hot-path reachability survives the
// three shapes the loader historically could not see: calls to generic
// functions, methods called through an instantiated generic type, and
// method expressions bound to a function value. All resolution goes
// through types.Func.Origin, so per-instantiation method objects line up
// with the declared graph nodes.
func TestCallGraphGenerics(t *testing.T) {
	prog := loadFixtureProgram(t, "generics.go")

	var hot []string
	for fn := range prog.Hot {
		hot = append(hot, funcDisplayName(fn))
	}
	sort.Strings(hot)

	want := []string{
		"Machine.drain", // method expression (*Machine).drain
		"Machine.flush", // transitively via drain
		"Machine.step",  // root
		"Stack.grow",    // transitively via Stack[int].push
		"Stack.push",    // method on instantiated generic type
		"clampAll",      // generic function call
		"clampOne",      // transitively inside a generic body
	}
	if len(hot) != len(want) {
		t.Fatalf("hot set = %v, want %v", hot, want)
	}
	for i := range want {
		if hot[i] != want[i] {
			t.Fatalf("hot set = %v, want %v", hot, want)
		}
	}
}

// TestCalleesAtGenerics checks the single-call resolver normalizes
// instantiated callees the same way the edge collector does.
func TestCalleesAtGenerics(t *testing.T) {
	prog := loadFixtureProgram(t, "generics.go")
	step := fixtureFunc(t, prog, "Machine.step")
	push := fixtureFunc(t, prog, "Stack.push")

	var resolved []string
	ast.Inspect(step.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, fn := range prog.CalleesAt(step.Pkg.Info, call) {
			resolved = append(resolved, funcDisplayName(fn))
		}
		return true
	})
	sort.Strings(resolved)

	want := []string{"Stack.push", "clampAll"}
	if len(resolved) != len(want) {
		t.Fatalf("resolved callees = %v, want %v", resolved, want)
	}
	for i := range want {
		if resolved[i] != want[i] {
			t.Fatalf("resolved callees = %v, want %v", resolved, want)
		}
	}

	// The resolved push must be the identical graph node the program
	// indexed from the declaration, not an instantiation clone.
	found := false
	ast.Inspect(step.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, fn := range prog.CalleesAt(step.Pkg.Info, call) {
			if fn == push.Obj {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Fatalf("CalleesAt did not resolve Stack[int].push to the declared origin object")
	}
}

// TestNonDetTaintGenerics checks taint summaries instantiate at generic
// call sites: a clock value laundered through a generic function or
// method still reaches the sink.
func TestNonDetTaintGenerics(t *testing.T) {
	runFixture(t, NonDetTaint(), "genericstaint.go")
}

// TestDefUseGenericMakeChan checks capacity resolution inside a generic
// function body, where the channel's element type is a type parameter.
func TestDefUseGenericMakeChan(t *testing.T) {
	prog := loadFixtureProgram(t, "generics.go")
	sig := fixtureFunc(t, prog, "signals")

	du := BuildDefUse(sig.Pkg.Info, sig.Decl.Body)
	var got int
	var resolvedOK bool
	ast.Inspect(sig.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		got, resolvedOK = du.ResolveMakeChan(ret.Results[0])
		return false
	})
	if !resolvedOK || got != 4 {
		t.Fatalf("ResolveMakeChan over generic body = (%d, %v), want (4, true)", got, resolvedOK)
	}
}

// TestSyncKeyGenericReceiver checks that a mutex field on an
// instantiated generic receiver keys by the declared type name, so lock
// facts line up across instantiations.
func TestSyncKeyGenericReceiver(t *testing.T) {
	prog := loadFixtureProgram(t, "generics.go")
	push := fixtureFunc(t, prog, "Stack.push")

	var keys []string
	ast.Inspect(push.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, _, okm := mutexOpOf(push.Pkg.Info, call)
		if !okm {
			return true
		}
		if key, okk := syncKeyOf(push.Pkg.Info, recv); okk {
			keys = append(keys, key)
		}
		return true
	})
	if len(keys) != 2 || keys[0] != "Stack.mu" || keys[1] != "Stack.mu" {
		t.Fatalf("sync keys in generic method = %v, want [Stack.mu Stack.mu]", keys)
	}
}
