package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file is the suite's cross-package engine: a whole-program static
// call graph over the loaded packages, plus hot-path reachability facts
// derived from it. PR 1's analyzers look at one package at a time; the
// engine exists for properties that only make sense whole-program — "is
// this allocation on the per-cycle simulation path?" is a question about
// the call graph from Machine.step, not about any single file.
//
// The graph is deliberately static and conservative, in the vet lineage:
//
//   - direct calls and qualified calls resolve through go/types;
//   - method values and function-value references add edges (the value may
//     be invoked by whoever receives it, so reachability must follow it);
//   - interface-dispatch calls fan out to every concrete method in the
//     program whose receiver type implements the interface;
//   - code inside a function literal is attributed to the enclosing
//     declaration (the literal's lifetime is bounded by its creator as far
//     as hot-path cost is concerned);
//   - calls through plain function-typed variables are not resolved — the
//     value edge added where the function was referenced already keeps
//     reachability sound for the patterns the simulator uses.
//
// A function carrying a `// simlint:coldpath <why>` marker on (or above)
// its declaration line is treated as off the hot path: it is excluded from
// the hot set and traversal does not continue through it. The marker is
// for amortised or failure-path work (slab refills, debug dumps) that a
// hot function legitimately calls.

// HotPathRoots declares the per-cycle entry points of the simulator: every
// function statically reachable from one of these is "hot". Entries are
// either "Type.method" (receiver type and method name) or a bare function
// name.
var HotPathRoots = []string{
	"Machine.step",
	"Machine.processEvents",
	"Machine.issue",
	"Machine.retire",
	"Machine.operandsDelivered",
	// The serve-layer event sink runs inside the per-cycle event path of
	// every job the daemon hosts, so it is held to the same allocation
	// discipline as the machine itself.
	"jobEventSink.Event",
	// The sweep coordinator's event counter runs once per request, retry,
	// and hedge across the whole fleet — hot enough that it must stay one
	// atomic add plus a guarded interface call.
	"Coordinator.emit",
	// Span delivery runs on every traced stage transition across the
	// fleet, and the call graph cannot see through the SpanSink
	// interface — so both the delivering method and the production sink
	// implementation are explicit roots.
	"ActiveSpan.End",
	"Writer.Span",
	// Functional warming runs once per skipped instruction between sample
	// windows — the sampler's whole value is this loop being ~40x cheaper
	// than a detailed cycle, so it is held to hot-path discipline. The
	// snapshot codec is deliberately NOT rooted: encode/restore run once
	// per window boundary, not per cycle, and their error paths format
	// diagnostics — per-record cost there is bounded by machine size, not
	// instruction count.
	"Machine.WarmForward",
}

// SpawnSite records one goroutine spawn (`go f(...)` or `go func(){...}()`),
// attributed — like call edges — to the declared function whose body
// lexically contains it, however deeply nested in literals. The dataflow
// analyzers (ctxflow, goleak) consume these edges: a goroutine's exit
// discipline is a property of the spawning declaration, not of whichever
// literal happened to wrap the statement.
type SpawnSite struct {
	// Caller is the declared function containing the go statement.
	Caller *FuncInfo
	// Go is the spawn statement itself.
	Go *ast.GoStmt
	// Callee is the spawned named function or method when the call target
	// resolves statically; nil for function literals and unresolved values.
	Callee *types.Func
	// Lit is the spawned function literal, nil for named callees.
	Lit *ast.FuncLit
}

// Body returns the spawned goroutine's body when the program contains it:
// the literal's block, or the resolved callee's declaration body. It is nil
// for spawns of bodyless or extra-program functions.
func (s SpawnSite) Body(p *Program) *ast.BlockStmt {
	if s.Lit != nil {
		return s.Lit.Body
	}
	if s.Callee != nil {
		if fi := p.Funcs[s.Callee]; fi != nil {
			return fi.Decl.Body
		}
	}
	return nil
}

// FuncInfo ties one declared function or method to its syntax and package.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	File *ast.File
	Pkg  *Package
	// Coldpath records a `simlint:coldpath` marker on the declaration.
	Coldpath bool
}

// Program is the whole-program fact base handed to cross-package
// analyzers via Pass.Program.
type Program struct {
	// Fset is the file set the packages were parsed against; the perf
	// layer uses it to join compiler diagnostics by source position.
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs map[*types.Func]*FuncInfo
	// Calls maps a function to its static callees (module-local and
	// stdlib alike; reachability only follows functions with bodies).
	Calls map[*types.Func][]*types.Func
	// Hot marks functions reachable from HotPathRoots.
	Hot map[*types.Func]bool
	// HotRoot names, for each hot function, the root whose traversal
	// first reached it — diagnostics use it for provenance.
	HotRoot map[*types.Func]*types.Func
	// Spawns maps a function to the goroutine spawns its body contains, in
	// source order.
	Spawns map[*types.Func][]SpawnSite

	funcsInOrder []*FuncInfo
	// named caches every package-level named type, in deterministic order,
	// for per-site interface-dispatch resolution after construction.
	named []*types.Named

	// Lazily-built interprocedural summaries, shared read-only by the
	// parallel analyzer jobs once computed.
	mayAcquireOnce sync.Once
	mayAcquire     map[*types.Func]map[string]bool
	taintOnce      sync.Once
	taint          *taintSummaries
}

// FuncsInOrder returns every declared function of the program in
// (package, file, declaration) order — the deterministic iteration the
// analyzers use instead of ranging over the Funcs map.
func (p *Program) FuncsInOrder() []*FuncInfo { return p.funcsInOrder }

// ReachableFrom walks Calls edges breadth-first from roots (in the given
// order) and returns every reachable declared function mapped to the root
// whose traversal first reached it. Roots map to themselves. Unlike the
// hot-path walk it does not prune coldpath functions: cancellation and
// leak discipline apply to cold code too.
func (p *Program) ReachableFrom(roots []*types.Func) map[*types.Func]*types.Func {
	reached := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := reached[r]; ok {
			continue
		}
		reached[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := reached[fn]
		for _, callee := range p.Calls[fn] {
			if _, ok := p.Funcs[callee]; !ok {
				continue
			}
			if _, ok := reached[callee]; ok {
				continue
			}
			reached[callee] = root
			queue = append(queue, callee)
		}
	}
	return reached
}

// HotInfo returns the fact entry for fn, or nil when fn is not a declared
// function of the program or is not hot.
func (p *Program) HotInfo(fn *types.Func) *FuncInfo {
	if p == nil || !p.Hot[fn] {
		return nil
	}
	return p.Funcs[fn]
}

// BuildProgram constructs the call graph and hot-path facts over pkgs.
// The packages must already be typechecked against the shared fset.
func BuildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{
		Fset:    fset,
		Pkgs:    pkgs,
		Funcs:   make(map[*types.Func]*FuncInfo),
		Calls:   make(map[*types.Func][]*types.Func),
		Hot:     make(map[*types.Func]bool),
		HotRoot: make(map[*types.Func]*types.Func),
		Spawns:  make(map[*types.Func][]SpawnSite),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, File: file, Pkg: pkg}
				line := fset.Position(fd.Pos()).Line
				fi.Coldpath = hasMarker(fset, file, line, "simlint:coldpath")
				prog.Funcs[obj] = fi
				prog.funcsInOrder = append(prog.funcsInOrder, fi)
			}
		}
	}
	prog.named = collectNamedTypes(pkgs)
	for _, fi := range prog.funcsInOrder {
		prog.Calls[fi.Obj] = collectCallees(fi, prog.named)
		prog.Spawns[fi.Obj] = collectSpawns(fi)
	}
	prog.markHot()
	return prog
}

// collectSpawns gathers the go statements of one declaration's body in
// source order, resolving named spawn targets through go/types.
func collectSpawns(fi *FuncInfo) []SpawnSite {
	info := fi.Pkg.Info
	var out []SpawnSite
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		site := SpawnSite{Caller: fi, Go: g}
		switch fun := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			site.Lit = fun
		case *ast.Ident:
			site.Callee, _ = info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			if sel, oks := info.Selections[fun]; oks && sel.Kind() == types.MethodVal {
				site.Callee, _ = sel.Obj().(*types.Func)
			} else {
				// Qualified identifier pkg.Func.
				site.Callee, _ = info.Uses[fun.Sel].(*types.Func)
			}
		}
		if site.Callee != nil {
			site.Callee = site.Callee.Origin()
		}
		out = append(out, site)
		return true
	})
	return out
}

// markHot runs the reachability pass: breadth-first from every root, in
// declaration order, skipping coldpath-marked functions.
func (p *Program) markHot() {
	var queue []*types.Func
	for _, fi := range p.funcsInOrder {
		if !isHotRoot(fi.Obj) || fi.Coldpath {
			continue
		}
		p.Hot[fi.Obj] = true
		p.HotRoot[fi.Obj] = fi.Obj
		queue = append(queue, fi.Obj)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := p.HotRoot[fn]
		for _, callee := range p.Calls[fn] {
			fi, ok := p.Funcs[callee]
			if !ok || fi.Coldpath || p.Hot[callee] {
				continue
			}
			p.Hot[callee] = true
			p.HotRoot[callee] = root
			queue = append(queue, callee)
		}
	}
}

// isHotRoot matches fn against the HotPathRoots specs.
func isHotRoot(fn *types.Func) bool {
	recv := receiverTypeNameOf(fn)
	for _, spec := range HotPathRoots {
		if typ, method, ok := strings.Cut(spec, "."); ok {
			if recv == typ && fn.Name() == method {
				return true
			}
		} else if recv == "" && fn.Name() == spec {
			return true
		}
	}
	return false
}

// receiverTypeNameOf returns the name of fn's receiver's named type ("" for
// package-level functions).
func receiverTypeNameOf(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// collectNamedTypes gathers every package-level named type of the program,
// in deterministic (package, name) order, for interface-dispatch
// resolution.
func collectNamedTypes(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				out = append(out, named)
			}
		}
	}
	return out
}

// collectCallees walks one declaration's body (nested literals included)
// and resolves every outgoing edge.
func collectCallees(fi *FuncInfo, named []*types.Named) []*types.Func {
	info := fi.Pkg.Info
	seen := make(map[*types.Func]bool)
	var out []*types.Func
	add := func(fn *types.Func) {
		if fn == nil {
			return
		}
		// Methods of instantiated generic types resolve to per-instantiation
		// objects; the graph is keyed by the declared origin.
		fn = fn.Origin()
		if !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			// Direct calls and function-value references both resolve
			// through Uses; builtins come back as *types.Builtin and drop.
			if fn, ok := info.Uses[x].(*types.Func); ok {
				add(fn)
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[x]
			if !ok {
				// Qualified identifier (pkg.Func): Uses on the Sel ident
				// handles it via the *ast.Ident case above.
				return true
			}
			if sel.Kind() != types.MethodVal && sel.Kind() != types.MethodExpr {
				return true
			}
			callee, ok := sel.Obj().(*types.Func)
			if !ok {
				return true
			}
			recv := sel.Recv()
			if ptr, okp := recv.(*types.Pointer); okp {
				recv = ptr.Elem()
			}
			if iface, oki := recv.Underlying().(*types.Interface); oki {
				for _, impl := range implementations(iface, callee.Name(), named) {
					add(impl)
				}
				return true
			}
			add(callee)
		}
		return true
	})
	return out
}

// CalleesAt resolves a single call expression to its possible declared
// targets with the same rules collectCallees uses for edges: direct and
// qualified calls through go/types, interface dispatch fanned out to every
// in-program implementation. Calls through plain function-typed values
// resolve to nothing.
func (p *Program) CalleesAt(info *types.Info, call *ast.CallExpr) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn.Origin()}
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if !ok {
			if fn, okq := info.Uses[fun.Sel].(*types.Func); okq {
				return []*types.Func{fn.Origin()}
			}
			return nil
		}
		if sel.Kind() != types.MethodVal {
			return nil
		}
		callee, ok := sel.Obj().(*types.Func)
		if !ok {
			return nil
		}
		recv := sel.Recv()
		if ptr, okp := recv.(*types.Pointer); okp {
			recv = ptr.Elem()
		}
		if iface, oki := recv.Underlying().(*types.Interface); oki {
			return implementations(iface, callee.Name(), p.named)
		}
		return []*types.Func{callee.Origin()}
	}
	return nil
}

// implementations resolves an interface method to every concrete method in
// the program whose receiver type satisfies the interface.
func implementations(iface *types.Interface, method string, named []*types.Named) []*types.Func {
	var out []*types.Func
	for _, n := range named {
		if types.IsInterface(n) {
			continue
		}
		ptr := types.NewPointer(n)
		if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, n.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}
