package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FieldReset returns the fieldreset analyzer: a method named Reset (or
// reset) on a pointer-to-struct receiver must account for every field of
// the struct. A Reset that misses a field leaves stale state from the
// previous use alive in the next one — in a simulator that reuses caches,
// histograms, or pooled instruction records across runs, that is a
// run-to-run determinism bug of exactly the kind that silently skews a
// few-percent IPC delta.
//
// A field counts as handled when the method:
//
//   - assigns the whole struct (`*r = T{...}` or `*r = zero`);
//   - assigns the field, directly or through an index/element path
//     (`r.f = 0`, `r.f[i] = line{}`, `r.f.g = ...`);
//   - calls a method on the field (`r.f.Reset()` — delegated reset);
//
// or when the field's declaration carries a `// simlint:noreset <why>`
// marker — the idiom for genuinely immutable state (configuration,
// derived geometry) that Reset must in fact preserve.
func FieldReset() *Analyzer {
	a := &Analyzer{
		Name:      "fieldreset",
		Doc:       "requires Reset methods to assign (or explicitly exempt) every field of their receiver struct",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || fn.Body == nil {
					continue
				}
				if fn.Name.Name != "Reset" && fn.Name.Name != "reset" {
					continue
				}
				checkReset(pass, fn)
			}
		}
	}
	return a
}

// checkReset verifies one Reset method against its receiver struct.
func checkReset(pass *Pass, fn *ast.FuncDecl) {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return
	}
	recvIdent := fn.Recv.List[0].Names[0]
	recvObj := pass.Info.Defs[recvIdent]
	if recvObj == nil {
		return
	}
	tn := receiverTypeName(pass, fn)
	if tn == nil {
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	touched := make(map[string]bool)
	wholeStruct := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markResetTarget(pass, recvObj, lhs, touched, &wholeStruct)
			}
		case *ast.IncDecStmt:
			markResetTarget(pass, recvObj, x.X, touched, &wholeStruct)
		case *ast.CallExpr:
			// r.f.Method(...) delegates the field's reset.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if f := receiverField(pass, recvObj, sel.X); f != "" {
					touched[f] = true
				}
			}
		}
		return true
	})
	if wholeStruct {
		return
	}

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if touched[f.Name()] {
			continue
		}
		if resetFieldExempt(pass, f) {
			continue
		}
		pass.Reportf(fn.Name.Pos(),
			"(%s).%s leaves field %s unassigned; stale state survives reuse — assign it, delegate to a method on it, or mark the field `// simlint:noreset <why>`",
			tn.Name(), fn.Name.Name, f.Name())
	}
}

// markResetTarget records which receiver field (if any) the LHS expression
// writes. `*r = ...` sets wholeStruct.
func markResetTarget(pass *Pass, recvObj types.Object, lhs ast.Expr, touched map[string]bool, wholeStruct *bool) {
	if star, ok := lhs.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok && pass.Info.Uses[id] == recvObj {
			*wholeStruct = true
			return
		}
	}
	if f := receiverField(pass, recvObj, lhs); f != "" {
		touched[f] = true
	}
}

// receiverField unwraps an expression rooted at the receiver down to the
// first selected field name: r.f, r.f[i].g, (&r.f).g all yield "f".
// Returns "" when the expression is not rooted at the receiver.
func receiverField(pass *Pass, recvObj types.Object, e ast.Expr) string {
	var field string
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if pass.Info.Uses[x] == recvObj {
				return field
			}
			return ""
		case *ast.SelectorExpr:
			field = x.Sel.Name
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// resetFieldExempt reports whether the field's declaration (in this
// package's syntax) carries a simlint:noreset marker.
func resetFieldExempt(pass *Pass, f *types.Var) bool {
	const marker = "simlint:noreset"
	for _, fl := range pass.Files {
		found := false
		ast.Inspect(fl, func(n ast.Node) bool {
			fieldDecl, ok := n.(*ast.Field)
			if !ok || found {
				return !found
			}
			for _, name := range fieldDecl.Names {
				if pass.Info.Defs[name] != f {
					continue
				}
				if fieldDecl.Doc != nil && strings.Contains(fieldDecl.Doc.Text(), marker) {
					found = true
				}
				if fieldDecl.Comment != nil && strings.Contains(fieldDecl.Comment.Text(), marker) {
					found = true
				}
				if hasMarker(pass.Fset, fl, pass.Fset.Position(name.Pos()).Line, marker) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
