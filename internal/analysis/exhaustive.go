package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive returns the exhaustive analyzer: a switch over a bounded iota
// enum must either cover every constant of the enum or carry a default
// clause.
//
// A "bounded iota enum" is a named integer type whose defining package
// declares a sentinel constant of the same type named `Num...`/`num...`
// (the NumEventKinds idiom): the sentinel is the author's statement that
// the constant set is closed, so a switch silently missing a member —
// typically one added after the switch was written — is a bug. A loop
// event kind that string-building code never learned about would vanish
// from reports without a diagnostic; that is exactly the failure mode this
// analyzer makes unrepresentable.
//
// The default clause is the deliberate-partiality escape hatch: dispatch
// switches that handle two kinds and ignore the rest state so with a
// default (which should report, error, or document why the remaining
// kinds need nothing). The sentinel itself never needs a case.
func Exhaustive() *Analyzer {
	a := &Analyzer{
		Name:      "exhaustive",
		Doc:       "requires switches over Num-sentinel iota enums to cover every constant or declare a default",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkSwitch(pass, sw)
				return true
			})
		}
	}
	return a
}

// enumConstant is one member of a bounded enum.
type enumConstant struct {
	name  string
	value constant.Value
}

// checkSwitch verifies one tagged switch against its enum, if the tag's
// type is a bounded enum.
func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	members, sentinel := enumMembers(named)
	if sentinel == "" {
		return // not a bounded enum: no Num sentinel declared
	}

	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, expr := range cc.List {
			ctv, ok := pass.Info.Types[expr]
			if !ok || ctv.Value == nil {
				continue
			}
			for _, m := range members {
				if constant.Compare(ctv.Value, token.EQL, m.value) {
					covered[m.name] = true
				}
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for _, m := range members {
		if !covered[m.name] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Pos(),
		"switch on %s misses %s and has no default; cover every constant (sentinel %s bounds the enum) or add a default that reports or documents the no-op kinds",
		types.TypeString(named, types.RelativeTo(pass.Pkg)), strings.Join(missing, ", "), sentinel)
}

// enumMembers collects the package-level constants of the named type from
// its defining package, split into ordinary members and the Num sentinel
// (empty when the type declares none, i.e. it is not a bounded enum).
func enumMembers(named *types.Named) (members []enumConstant, sentinel string) {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, ""
	}
	if _, ok := named.Underlying().(*types.Basic); !ok {
		return nil, ""
	}
	scope := obj.Pkg().Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(strings.ToLower(name), "num") {
			sentinel = name
			continue
		}
		members = append(members, enumConstant{name: name, value: c.Val()})
	}
	if sentinel == "" {
		return nil, ""
	}
	return members, sentinel
}
