// Fixture for the goleak analyzer: goroutine sends on channels the
// spawner can abandon. The safe shapes — buffered past every send, or an
// unconditional receive with no early return — bracket the three leaks.
package fixture

// neverReceived spawns a sender nobody listens to.
func neverReceived(work func() int) {
	done := make(chan int)
	go func() {
		done <- work() // want "never receives from it"
	}()
}

// abandonable receives only inside a select racing another case: the
// losing goroutine blocks forever.
func abandonable(work func() int, timeout chan int) int {
	out := make(chan int)
	go func() {
		out <- work() // want "can be abandoned"
	}()
	select {
	case v := <-out:
		return v
	case <-timeout:
		return 0
	}
}

// earlyReturn can return between the spawn and the receive, stranding the
// sender.
func earlyReturn(work func() int, precheck func() error) (int, error) {
	out := make(chan int)
	go func() {
		out <- work() // want "early return"
	}()
	if err := precheck(); err != nil {
		return 0, err
	}
	return <-out, nil
}

// buffered is the sanctioned fan-in: capacity covers every static send,
// so an abandoned result is just garbage-collected.
func buffered(work func() int) int {
	out := make(chan int, 2)
	go func() {
		out <- work()
		out <- 0
	}()
	return <-out + <-out
}

// received commits to the receive unconditionally: nothing to flag.
func received(work func() int) int {
	out := make(chan int)
	go func() {
		out <- work()
	}()
	return <-out
}
