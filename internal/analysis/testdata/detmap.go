// Fixture for the detmap analyzer. Lines carrying `// want` comments must
// produce a diagnostic containing the quoted substring.
package fixture

import "sort"

var sink []string

func unsortedDump(m map[string]int) {
	for k := range m { // want "range over map"
		sink = append(sink, k)
	}
}

func valuesOnly(m map[int]bool) int {
	n := 0
	for _, v := range m { // want "range over map"
		if v {
			n++
		}
	}
	return n
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // ok: collected keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func suppressed(m map[string]int) int {
	total := 0
	// simlint:ignore detmap order-insensitive sum
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRange(s []int) int {
	total := 0
	for _, v := range s { // ok: slices iterate in order
		total += v
	}
	return total
}

func nestedLit(m map[string]int) func() {
	return func() {
		for k := range m { // want "range over map"
			sink = append(sink, k)
		}
	}
}
