// Fixture for the chanclose analyzer: double-close exposure, close/send
// races, in-loop and receiver-side closes — next to the guarded shapes
// (owning mutex, sync.Once, early-exit unlock) that are clean.
package fixture

import "sync"

type Job struct {
	st   int
	done chan struct{}
}

// finish and abandon both close done with no guard: a cancel/finish race
// double-closes and panics.
func (j *Job) finish() {
	j.st = 1
	close(j.done) // want "serialize every close"
}

func (j *Job) abandon() {
	j.st = 2
	close(j.done) // want "serialize every close"
}

type Worker struct {
	mu   sync.Mutex
	quit chan struct{}
}

// stop and kill serialize their closes under the owning mutex: the state
// machine makes them mutually exclusive.
func (w *Worker) stop() {
	w.mu.Lock()
	close(w.quit)
	w.mu.Unlock()
}

func (w *Worker) kill() {
	w.mu.Lock()
	close(w.quit)
	w.mu.Unlock()
}

type Queue struct {
	jobs chan int
}

// push sends unguarded while drain closes: send-on-closed-channel panics
// under the worst interleaving.
func (q *Queue) push(v int) {
	q.jobs <- v
}

func (q *Queue) drain() {
	close(q.jobs) // want "can race with a send"
}

// closeEach closes inside the loop: the second iteration panics.
func closeEach(chans []chan int, results chan int) {
	for range chans {
		close(results) // want "inside a loop"
	}
}

type Merger struct {
	mu  sync.Mutex
	out chan int
}

// produce owns the sending side.
func (m *Merger) produce(v int) {
	m.mu.Lock()
	m.out <- v
	m.mu.Unlock()
}

// consume only receives from out, yet closes it.
func (m *Merger) consume() int {
	m.mu.Lock()
	v := <-m.out
	close(m.out) // want "close belongs to the sending side"
	m.mu.Unlock()
	return v
}

type Conn struct {
	once sync.Once
	stop chan struct{}
}

// shutdown and halt are both idempotent by construction: the Once
// serializes the close.
func (c *Conn) shutdown() {
	c.once.Do(func() { close(c.stop) })
}

func (c *Conn) halt() {
	c.once.Do(func() { close(c.stop) })
}

type Pool struct {
	mu       sync.Mutex
	draining bool
	queue    chan int
}

// submit sends under the mutex; the drain check releases only on its own
// early-return path, so the send below still holds the lock.
func (p *Pool) submit(v int) bool {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return false
	}
	select {
	case p.queue <- v:
		p.mu.Unlock()
		return true
	default:
		p.mu.Unlock()
		return false
	}
}

// beginDrain closes under the same mutex: guarded on both sides, clean.
func (p *Pool) beginDrain() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.queue)
	}
	p.mu.Unlock()
}
