// Fixture for the closurecap analyzer: a closure that assigns (or takes
// the address of) a captured variable forces that variable onto the heap,
// and every hot invocation chases the extra pointer. Read-only captures
// are left to the compiler, which copies them.
package fixture

// Machine mirrors the simulator's hot-path shape.
type Machine struct {
	queue []int
	sum   int
}

func (m *Machine) step() {
	total := 0
	m.scan(func(v int) { // want "closure captures total by reference (created in hot-path function Machine.step)"
		total += v
	})
	limit := 8
	m.scan(func(v int) { // ok: read-only capture is copied, not moved
		if v > limit {
			m.sum = v
		}
	})
}

// scan is hot via step.
func (m *Machine) scan(f func(int)) {
	for _, v := range m.queue {
		f(v)
	}
}

// install runs once at construction (cold), but the callback it builds is
// handed to a hot function — the capture still pins the counter on the
// heap for the whole run.
func (m *Machine) install() {
	hits := 0
	m.scan(func(v int) { // want "closure captures hits by reference (passed to hot-path function Machine.scan)"
		hits++
	})
	_ = hits
}

// report is cold and keeps its closure cold: no finding.
func (m *Machine) report() int {
	n := 0
	walk := func() { n++ } // ok: never reaches the hot path
	walk()
	return n
}
