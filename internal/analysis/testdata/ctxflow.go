// Fixture for the ctxflow analyzer. The fixture is its own whole program:
// Coordinator.RunAll matches the registry root, and only functions the
// call graph reaches from it are checked — idleLoop at the bottom is
// deliberately broken and deliberately unreported.
package fixture

import (
	"context"
	"sync"
	"time"
)

type Coordinator struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// RunAll is the request-path root (ctxflow registry).
func (c *Coordinator) RunAll(ctx context.Context, jobs []int) int {
	total := 0
	for range jobs {
		total += c.runOne(ctx)
	}
	c.drain(ctx)
	c.fanOut(jobs)
	c.waitElsewhere()
	return total
}

// runOne hosts one violation of each blocking form, plus the sanctioned
// shapes next to them.
func (c *Coordinator) runOne(ctx context.Context) int {
	data := make(chan int)
	go func() {
		select {
		case data <- 1:
		case <-ctx.Done():
		}
	}()
	v := <-data                  // want "blocking receive"
	data <- v                    // want "blocking send"
	select {                     // want "neither a default case"
	case v2 := <-data:
		v += v2
	case data <- v:
	}
	select { // ok: a cancelled request exits through Done
	case v2 := <-data:
		v += v2
	case <-ctx.Done():
	}
	<-c.stop                     // ok: struct{} signal channel
	time.Sleep(time.Millisecond) // want "time.Sleep"
	return v
}

// drain shows the sanctioned shapes: buffered fan-in sends, a named spawn
// handed a context, a Done-guarded select.
func (c *Coordinator) drain(ctx context.Context) {
	acks := make(chan int, 2)
	go c.pump(ctx, acks)
	acks <- 1 // ok: capacity covers every static send
	acks <- 2
	select {
	case <-acks:
	case <-ctx.Done():
	}
}

// pump is reachable through the spawn edge; its loop exits on ctx.
func (c *Coordinator) pump(ctx context.Context, acks chan int) {
	for {
		select {
		case <-acks:
		case <-ctx.Done():
			return
		}
	}
}

// fanOut spawns a goroutine no cancellation can reach, then waits on it.
func (c *Coordinator) fanOut(jobs []int) {
	sink := make(chan int, 1)
	c.wg.Add(1)
	go func() { // want "no context or stop-channel exit"
		defer c.wg.Done()
		sink <- len(jobs)
	}()
	c.wg.Wait() // want "can block forever"
}

// waitElsewhere waits on goroutines it did not spawn.
func (c *Coordinator) waitElsewhere() {
	c.wg.Wait() // want "spawned elsewhere"
}

// idleLoop is unreachable from the root: not ctxflow's concern.
func idleLoop(ticks chan int) {
	time.Sleep(time.Second)
	<-ticks
}
