// Fixture for the JoinHot compiler-diagnostic attribution: step is a hot
// root; grow and fail are hot via step; report is coldpath-marked; the
// make in suppressed carries a perf ignore. Tests derive line numbers from
// the parsed declarations, so this file can be edited freely.
package fixture

// Machine mirrors the simulator's hot-path shape.
type Machine struct{ buf []int }

func (m *Machine) step() {
	m.grow(1)
	m.fail()
	m.suppressed()
	_ = m.buf[0]
}

func (m *Machine) grow(n int) {
	m.buf = make([]int, n)
}

func (m *Machine) fail() {
	panic("boom")
}

// simlint:coldpath once-per-run reporting
func (m *Machine) report() {
	m.buf = make([]int, 9)
}

func (m *Machine) suppressed() {
	// simlint:ignore perf measured harmless, grows once
	m.buf = make([]int, 3)
}
