// Fixture proving nondet-taint summaries propagate through generic
// instantiations: the passthrough helper and the generic method are
// summarized once at their declared origin, and the summary is
// instantiated at each (generic) call site because callee resolution
// normalizes through types.Func.Origin.
package fixture

import "time"

// Result mirrors the simulator's result type by name: its field writes
// are determinism sinks.
type Result struct {
	Cycles uint64
}

func passthrough[T any](v T) T { return v }

type holder[T any] struct{ v T }

// echo returns its argument; the param-to-return summary must survive
// instantiation at holder[uint64].
func (h holder[T]) echo(v T) T { return v }

// stampViaGeneric launders the wall clock through a generic function.
func stampViaGeneric(r *Result) {
	r.Cycles = passthrough(uint64(time.Now().UnixNano())) // want "simulation result field Cycles"
}

// stampViaMethod launders the wall clock through a generic method.
func stampViaMethod(r *Result) {
	var h holder[uint64]
	r.Cycles = h.echo(uint64(time.Now().UnixNano())) // want "simulation result field Cycles"
}

// cleanViaGeneric moves an untainted constant the same way: no finding.
func cleanViaGeneric(r *Result) {
	r.Cycles = passthrough(uint64(42))
}
