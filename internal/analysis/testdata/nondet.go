// Fixture for the nondet-taint analyzer: wall-clock, global-rand, and
// map-order values flowing — directly or through helpers — into result
// fields, cache keys, and observability event streams. The sanctioned
// sanitizers (injected-clock seams, collect-then-sort) sit alongside.
package fixture

import (
	"sort"
	"time"
)

// Result mirrors the simulator's result type by name: its field writes
// are determinism sinks.
type Result struct {
	Cycles uint64
	IPC    float64
}

// TraceSink mirrors an observability sink: Event arguments are sinks.
type TraceSink struct{}

func (TraceSink) Event(kind string, v float64) {}

// ConfigKey mirrors the serving cache's content address.
func ConfigKey(parts ...string) string {
	out := ""
	for _, p := range parts {
		out += p
	}
	return out
}

// stampResult writes the wall clock into a result field.
func stampResult(r *Result, t0 time.Time) {
	r.IPC = time.Since(t0).Seconds() // want "simulation result field IPC"
}

// hostSeconds launders the clock through a helper return value.
func hostSeconds() float64 {
	return float64(time.Now().UnixNano())
}

// recordHost stores a helper-computed wall-clock value: the taint
// survives the call.
func recordHost(r *Result) {
	r.Cycles = uint64(hostSeconds()) // want "simulation result field Cycles"
}

// buildResult seeds a result literal from the ambient clock.
func buildResult() Result {
	return Result{Cycles: uint64(time.Now().UnixNano())} // want "simulation result field Cycles"
}

// joinUnsorted concatenates map entries in iteration order and emits the
// order-dependent string.
func joinUnsorted(m map[string]int, sink TraceSink) {
	label := ""
	for k := range m {
		label += k
	}
	sink.Event(label, 0) // want "observability event stream"
}

// joinSorted collects then sorts: determinism restored, nothing to flag.
func joinSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k
	}
	return out
}

// keyFromClock builds a cache key from the clock: identical configs stop
// hitting the same entry.
func keyFromClock(cfg string) string {
	stamp := time.Now().String()
	return ConfigKey(cfg, stamp) // want "cache key"
}

// Clock is the injected-clock seam: referencing time.Now is not calling
// it, so wiring the seam stays clean.
type Clock struct {
	Now func() time.Time
}

// defaultClock wires the ambient clock into the seam; no value flows.
func defaultClock() Clock {
	return Clock{Now: time.Now}
}

// emit forwards its argument into the event stream: callers inherit the
// sink through emit's summary.
func emit(s TraceSink, v float64) {
	s.Event("kips", v)
}

// reportClock sends a wall-clock reading through emit.
func reportClock(s TraceSink) {
	emit(s, float64(time.Now().UnixNano())) // want "determinism-sensitive sink inside"
}
