// Fixture for the call-graph builder: direct calls, method values,
// interface dispatch, function literals, and coldpath pruning.
package fixture

// EmitSink is dispatched dynamically from the hot path; reachability must
// fan out to every implementation.
type EmitSink interface {
	Emit(n int)
}

// ringSink implements EmitSink.
type ringSink struct{ data []int }

func (r *ringSink) Emit(n int) { r.grow(n) }

func (r *ringSink) grow(n int) { r.data = append(r.data, n) }

// flatSink also implements EmitSink: dispatch reaches both.
type flatSink struct{ n int }

func (f *flatSink) Emit(n int) { f.n = n }

type Machine struct {
	pred func(int) bool
	out  EmitSink
}

func (m *Machine) step() {
	m.advance()         // direct method call
	m.pred = m.eligible // method value: reachability follows the reference
	m.out.Emit(1)       // interface dispatch
	tally(2)            // direct function call
	f := func() { viaLiteral() }
	f()      // literal body is attributed to step
	m.dump() // coldpath callee: the edge exists, traversal stops
}

func (m *Machine) advance() {}

func (m *Machine) eligible(x int) bool { return x > 0 }

func tally(n int) {}

func viaLiteral() {}

// dump is exit-time debug work a hot function legitimately calls.
//
// simlint:coldpath exit-time debug dump
func (m *Machine) dump() { m.deep() }

// deep is only reachable through dump: pruned with it.
func (m *Machine) deep() {}

// orphan is never referenced.
func orphan() {}

// --- spawn edges and hook dispatch (the dataflow layer's diet) ---

// Options mirrors experiments.Options: Runner is a func-typed hook an
// outer layer injects. A call through it resolves to nothing; the value
// edge added where the method value is wired in is what keeps the
// injected implementation reachable.
type Options struct {
	Runner func(n int) int
}

type Pool struct {
	opts Options
	sink EmitSink
}

// inject wires a method value into the hook.
func (p *Pool) inject() {
	p.opts.Runner = p.cachedRun
}

func (p *Pool) cachedRun(n int) int { return n }

// runBatch calls through the func-typed hook (unresolvable at the call
// site) and dispatches through the interface-typed field (fans out).
func (p *Pool) runBatch(n int) int {
	p.sink.Emit(n)
	return p.opts.Runner(n)
}

// spawnAll exercises every spawn shape: a literal, a closure captured
// into a variable, a method value, and a named function.
func (p *Pool) spawnAll(n int) {
	go func() { p.runBatch(n) }()
	work := func() { tally(n) }
	go work()
	go p.cachedRun(n)
	go tally(n)
}
