// Fixture for the call-graph builder: direct calls, method values,
// interface dispatch, function literals, and coldpath pruning.
package fixture

// EmitSink is dispatched dynamically from the hot path; reachability must
// fan out to every implementation.
type EmitSink interface {
	Emit(n int)
}

// ringSink implements EmitSink.
type ringSink struct{ data []int }

func (r *ringSink) Emit(n int) { r.grow(n) }

func (r *ringSink) grow(n int) { r.data = append(r.data, n) }

// flatSink also implements EmitSink: dispatch reaches both.
type flatSink struct{ n int }

func (f *flatSink) Emit(n int) { f.n = n }

type Machine struct {
	pred func(int) bool
	out  EmitSink
}

func (m *Machine) step() {
	m.advance()         // direct method call
	m.pred = m.eligible // method value: reachability follows the reference
	m.out.Emit(1)       // interface dispatch
	tally(2)            // direct function call
	f := func() { viaLiteral() }
	f()      // literal body is attributed to step
	m.dump() // coldpath callee: the edge exists, traversal stops
}

func (m *Machine) advance() {}

func (m *Machine) eligible(x int) bool { return x > 0 }

func tally(n int) {}

func viaLiteral() {}

// dump is exit-time debug work a hot function legitimately calls.
//
// simlint:coldpath exit-time debug dump
func (m *Machine) dump() { m.deep() }

// deep is only reachable through dump: pruned with it.
func (m *Machine) deep() {}

// orphan is never referenced.
func orphan() {}
