// Fixture for the hotalloc analyzer. The fixture declares its own Machine
// with the default hot-path roots; everything reachable from step is hot.
package fixture

import "fmt"

// Machine mirrors the simulator's hot-path shape.
type Machine struct {
	scratch []int
	counts  map[string]int
	ready   func(int) bool
}

// Sink is dispatched through an interface so reachability must resolve
// the implementation.
type Sink interface {
	Put(n int)
}

// SliceSink is the concrete sink behind the interface.
type SliceSink struct {
	data []int
}

// Put lands in the hot set via interface dispatch from step.
func (s *SliceSink) Put(n int) {
	s.data = make([]int, n) // want "heap allocation (make) in hot-path function SliceSink.Put"
}

func (m *Machine) step(s Sink) {
	m.process()
	s.Put(1)
	buf := make([]byte, 64) // want "heap allocation (make) in hot-path function Machine.step"
	_ = buf
	p := new(int) // want "heap allocation (new) in hot-path function Machine.step"
	_ = p
	m.ready = m.isReady // want "method value m.isReady in hot-path function Machine.step"
	f := func(x int) int { // want "function literal in hot-path function Machine.step"
		return x + 1
	}
	_ = f
}

func (m *Machine) isReady(x int) bool { return x > 0 }

// process is hot because step calls it.
func (m *Machine) process() {
	m.log("tick")                     // the call itself is fine; the callee is checked below
	for k, v := range m.counts {      // want "map iteration in hot-path function Machine.process"
		_ = k
		_ = v
	}
	sm := &SliceSink{} // want "heap allocation (&composite literal) in hot-path function Machine.process"
	_ = sm
	box(3) // want "boxes a concrete value into interface any"
	box(m) // ok: pointers fit the interface word without an allocation
	if len(m.scratch) == 0 {
		panic(fmt.Sprintf("empty scratch %v", m)) // ok: panic arguments are terminal
	}
}

// log is hot (called from process): fmt on the per-cycle path.
func (m *Machine) log(msg string) {
	fmt.Println(msg) // want "fmt.Println call in hot-path function Machine.log"
}

// box receives an interface argument.
func box(v any) { _ = v }

// refill is reachable from step but declared amortised-cold, so its
// allocation is accepted and nothing past it is hot.
//
// simlint:coldpath slab refill amortised over thousands of cycles
func (m *Machine) refill() {
	m.scratch = make([]int, 4096) // ok: coldpath marker
	m.deepCold()
}

// deepCold is only reachable through refill: not hot.
func (m *Machine) deepCold() {
	_ = make([]int, 1) // ok: unreachable from the hot roots
}

// report is never called from a hot root.
func (m *Machine) report() string {
	return fmt.Sprintf("%v", m.counts) // ok: cold function
}

// suppressed shows the per-site escape hatch.
func (m *Machine) retire() {
	// simlint:ignore hotalloc one-time growth, measured harmless
	m.scratch = append(m.scratch, make([]int, 8)...)
	m.refill()
}
