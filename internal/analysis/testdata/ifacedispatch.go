// Fixture for the ifacedispatch analyzer. step is a hot root; dynamic
// calls inside the hot set are findings unless the interface method is on
// the sanctioned list (EventSink.Event mirrors the real seam).
package fixture

// Machine mirrors the simulator's hot-path shape.
type Machine struct {
	sink  EventSink
	rng   Rand
	ready func(int) bool
}

// EventSink.Event is on the SanctionedDispatch list.
type EventSink interface {
	Event(kind int)
}

// Rand is not sanctioned: hot code must hold the concrete generator.
type Rand interface {
	Next() uint64
}

// NullSink is a concrete implementation so dispatch resolution has a body.
type NullSink struct{}

func (NullSink) Event(kind int) {}

// XorShift is the concrete generator behind Rand.
type XorShift struct{ s uint64 }

func (x *XorShift) Next() uint64 {
	x.s ^= x.s << 13
	return x.s
}

func (m *Machine) step() {
	m.sink.Event(1) // ok: sanctioned seam
	_ = m.rng.Next() // want "interface dispatch Rand.Next"
	if m.ready(3) {  // want "indirect call through field m.ready"
		m.tick(m.rng)
	}
	f := func(n int) int { return n }
	_ = f(2) // want "indirect call through function value f"
}

// tick is hot via step; a concrete method call is not dispatch.
func (m *Machine) tick(r Rand) {
	var x XorShift
	_ = x.Next()  // ok: concrete receiver, direct call
	_ = r.Next()  // want "interface dispatch Rand.Next"
	// simlint:ignore ifacedispatch measured: one dispatch per probe flush
	_ = r.Next()
}

// report is cold: dispatch off the hot path is fine.
func (m *Machine) report() {
	_ = m.rng.Next() // ok: not hot-path-reachable
}
