// Fixture for the deferhot analyzer: defer is a per-invocation cost and
// an inlining blocker, so it is banned in hot-path-reachable functions.
package fixture

import "sync"

// Machine mirrors the simulator's hot-path shape.
type Machine struct {
	mu    sync.Mutex
	count int
}

func (m *Machine) step() {
	m.mu.Lock()
	defer m.mu.Unlock() // want "defer in hot-path function Machine.step"
	m.bump()
}

// bump is hot via step.
func (m *Machine) bump() {
	defer func() { m.count++ }() // want "defer in hot-path function Machine.bump (reachable from Machine.step)"
}

// snapshot is cold: defer is the right tool off the hot path.
func (m *Machine) snapshot() int {
	m.mu.Lock()
	defer m.mu.Unlock() // ok: cold function
	return m.count
}

// flush shows the per-site escape hatch.
func (m *Machine) retire() {
	// simlint:ignore deferhot unlock pairs with a panic path, measured free
	defer m.mu.Unlock()
	m.mu.Lock()
}
