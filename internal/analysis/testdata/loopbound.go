// Fixture for the loopbound analyzer.
package fixture

func step() {}

func spin() {
	for { // want "unconditional for loop"
		step()
	}
}

func spinUntilDone(done func() bool) {
	for { // ok: explicit break
		if done() {
			break
		}
		step()
	}
}

func constantCond() {
	for true { // want "no progress toward an exit"
		step()
	}
}

func noProgress(ready func(int) bool, x int) {
	for !ready(x) { // want "no progress toward an exit"
		step()
	}
}

func budgeted(budget int) {
	for budget > 0 { // ok: budget lexicon and visible progress
		budget--
	}
}

func cycleBound(cycle, maxCycle int) {
	for cycle < maxCycle { // ok: cycle-counter lexicon
		step()
	}
}

func progress(x int) {
	for x > 0 { // ok: x advances in the body
		x--
	}
}

func counted(total int) int {
	sum := 0
	for i := 0; i < total; i++ { // ok: counted loop
		sum += i
	}
	return sum
}

func marked(ready func() bool) {
	// simlint:bounded exits when the device signals ready
	for !ready() {
		step()
	}
}

func rangeLoop(xs []int) int {
	sum := 0
	for _, x := range xs { // ok: range loops are bounded
		sum += x
	}
	return sum
}

func exitsByPanic(bad func() bool) {
	for { // ok: panics on the failure path
		if bad() {
			panic("stuck")
		}
		step()
	}
}
