// Fixture for the errcheck-lite analyzer.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func multi() (int, error) { return 0, nil }

func dropped() {
	fallible() // want "silently discarded"
}

func droppedMulti() {
	multi() // want "silently discarded"
}

func deferred(f *os.File) {
	defer f.Close() // want "silently discarded"
}

func backgrounded() {
	go fallible() // want "silently discarded"
}

func explicit() {
	_ = fallible() // ok: auditable discard
}

func handled() error {
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

func builder() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1) // ok: Builder writes cannot fail
	b.WriteString("!")         // ok: Builder method
	return b.String()
}

func toStdout() {
	fmt.Fprintln(os.Stderr, "hi") // want "silently discarded"
}

func suppressedDrop() {
	// simlint:ignore errcheck-lite best-effort cleanup
	fallible()
}

func noError() {
	step2()
}

func step2() {}
