// Fixture for the sinkguard analyzer.
package fixture

// Trace is the event record a sink consumes.
type Trace struct {
	Cycle int64
	Kind  int
}

// TraceSink receives trace records; the Sink-suffixed interface name is
// what marks it (and Trace, its parameter type) for the analyzer.
type TraceSink interface {
	Trace(t Trace)
}

// core mirrors the machine: a nil sink means observability is off.
type core struct {
	sink  TraceSink
	cycle int64
}

// emitGuarded is the contract-conforming emitter.
func (c *core) emitGuarded(kind int) {
	if c.sink == nil {
		return
	}
	c.sink.Trace(Trace{Cycle: c.cycle, Kind: kind}) // ok: nil check dominates
}

// emitUnguarded builds and delivers with no nil check at all.
func (c *core) emitUnguarded(kind int) {
	t := Trace{Cycle: c.cycle, Kind: kind} // want "without first nil-checking its sink"
	c.sink.Trace(t)                        // want "without first nil-checking its sink"
}

// emitLate checks, but only after the record is built: the build cost is
// paid even when observability is off.
func (c *core) emitLate(kind int) {
	t := Trace{Cycle: c.cycle, Kind: kind} // want "without first nil-checking its sink"
	if c.sink != nil {
		c.sink.Trace(t)
	}
}

// noteSomething computes and delegates to a guarded emitter: it touches
// neither the sink nor the record type, so no guard is required here.
func (c *core) noteSomething(delay int64) {
	c.emitGuarded(int(delay))
}

// suppressed shows the escape hatch for a deliberately unguarded path.
func (c *core) suppressed(kind int) {
	// simlint:ignore sinkguard caller guarantees a non-nil sink
	c.sink.Trace(Trace{Cycle: c.cycle, Kind: kind})
}
