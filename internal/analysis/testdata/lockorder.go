// Fixture for the lockorder analyzer: re-acquisition self-deadlocks,
// lock-order cycles, and the early-exit unlock idiom the lexical replay
// must model without inventing findings.
package fixture

import "sync"

type Server struct {
	mu   sync.Mutex
	jobs int
}

type Store struct {
	mu sync.Mutex
	n  int
}

// reacquire locks what it already holds.
func (s *Server) reacquire() {
	s.mu.Lock()
	s.mu.Lock() // want "acquired while already held"
	s.mu.Unlock()
	s.mu.Unlock()
}

// addJob calls a locking helper while holding the same lock.
func (s *Server) addJob() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump() // want "may acquire"
}

// bump is safe on its own; the hazard is calling it under s.mu.
func (s *Server) bump() {
	s.mu.Lock()
	s.jobs++
	s.mu.Unlock()
}

// lockAB and lockBA acquire the two locks in opposite orders: the classic
// two-goroutine deadlock under contention.
func (s *Server) lockAB(st *Store) {
	s.mu.Lock()
	st.mu.Lock() // want "lock-order cycle"
	st.n++
	st.mu.Unlock()
	s.mu.Unlock()
}

func (s *Server) lockBA(st *Store) {
	st.mu.Lock()
	s.mu.Lock() // want "lock-order cycle"
	s.jobs++
	s.mu.Unlock()
	st.mu.Unlock()
}

// earlyExit releases only on the abandoned branch; the fall-through text
// still holds the lock, and the helper call after the final unlock is
// genuinely lock-free. Nothing to report.
func (s *Server) earlyExit(stop bool) int {
	s.mu.Lock()
	if stop {
		s.mu.Unlock()
		return 0
	}
	n := s.jobs
	s.mu.Unlock()
	s.bump()
	return n
}
