// Fixture for the exhaustive analyzer.
package fixture

// Kind is a bounded iota enum: the Num sentinel closes the constant set.
type Kind uint8

const (
	KindAlpha Kind = iota
	KindBeta
	KindGamma

	// NumKinds bounds the enumeration.
	NumKinds
)

// Mode has no Num sentinel, so switches over it are unconstrained.
type Mode int

const (
	ModeFast Mode = iota
	ModeSlow
)

func nameOfMissing(k Kind) string {
	switch k { // want "switch on Kind misses KindGamma and has no default"
	case KindAlpha:
		return "alpha"
	case KindBeta:
		return "beta"
	}
	return ""
}

func nameOfFull(k Kind) string {
	switch k { // ok: every constant covered
	case KindAlpha:
		return "alpha"
	case KindBeta:
		return "beta"
	case KindGamma:
		return "gamma"
	}
	return ""
}

func nameOfDefault(k Kind) string {
	switch k { // ok: deliberate partiality via default
	case KindAlpha:
		return "alpha"
	default:
		return "other"
	}
}

func nameOfMulti(k Kind) string {
	switch k { // ok: multi-value case covers the set
	case KindAlpha, KindBeta, KindGamma:
		return "some"
	}
	return ""
}

func nameOfMode(m Mode) string {
	switch m { // ok: Mode declares no sentinel, not a bounded enum
	case ModeFast:
		return "fast"
	}
	return ""
}

func suppressed(k Kind) string {
	// simlint:ignore exhaustive kinds beyond alpha handled upstream
	switch k {
	case KindAlpha:
		return "alpha"
	}
	return ""
}

func untagged(k Kind) string {
	switch { // ok: untagged switch is ordinary control flow
	case k == KindAlpha:
		return "alpha"
	}
	return ""
}
