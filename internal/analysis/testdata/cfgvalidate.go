// Fixture for the cfgvalidate analyzer.
package fixture

import "errors"

// Config has a Validate method, so every exported field must be referenced
// in it or carry a novalidate marker.
type Config struct {
	Width     int
	Depth     int     // want "Depth"
	Ratio     float64 // simlint:novalidate any ratio is legal
	hidden    int
	Threshold int
}

// Validate checks Width and Threshold but forgets Depth.
func (c Config) Validate() error {
	if c.Width < 1 {
		return errors.New("width")
	}
	if c.Threshold < 0 {
		return errors.New("threshold")
	}
	return nil
}

// PtrConfig exercises the pointer-receiver path.
type PtrConfig struct {
	Checked   int
	Unchecked int // want "Unchecked"
}

// Validate checks only Checked.
func (p *PtrConfig) Validate() error {
	if p.Checked == 0 {
		return errors.New("checked")
	}
	return nil
}

// Loose has no Validate method, so no field requirements apply.
type Loose struct {
	Anything int
	AtAll    string
}

var _ = Config{}.hidden
var _ = Loose{}
