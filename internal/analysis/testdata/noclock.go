// Fixture for the noclock analyzer.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since"
}

func untilDeadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until"
}

func globalRand() int {
	return rand.Intn(8) // want "rand.Intn"
}

func globalFloat() float64 {
	return rand.Float64() // want "rand.Float64"
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // ok: seeded generator construction
	return rng.Float64()                  // ok: method on *rand.Rand, not the global
}

func suppressedClock() time.Time {
	// simlint:ignore noclock host timestamp for a log line, not simulated time
	return time.Now()
}

func durationsAllowed() time.Duration {
	return 3 * time.Second // ok: constants are not clock reads
}
