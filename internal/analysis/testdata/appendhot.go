// Fixture for the appendhot analyzer: append on the hot path must carry
// preallocation evidence — an explicit reslice of existing backing, or a
// simlint:prealloc marker naming where capacity was provisioned.
package fixture

// Machine mirrors the simulator's hot-path shape.
type Machine struct {
	events []int
	loads  []int
	dead   []int
}

func (m *Machine) step(e int) {
	m.events = append(m.events, e) // want "append without preallocation evidence in hot-path function Machine.step"
	m.compact()
	m.recycle(e)
}

// compact is hot via step: the filter idiom reuses the backing array.
func (m *Machine) compact() {
	kept := m.loads[:0]
	for _, ld := range m.loads {
		if ld > 0 {
			kept = append(kept, ld) // ok: appends into the existing backing
		}
	}
	m.loads = append(m.loads[:0], kept...) // ok: reslice target
}

// recycle is hot via step: the marker states where capacity comes from.
func (m *Machine) recycle(e int) {
	// simlint:prealloc dead list sized to the ring at construction
	m.dead = append(m.dead, e)
}

// rebuild is cold: growth off the hot path is unbudgeted.
func (m *Machine) rebuild(src []int) {
	var out []int
	for _, v := range src {
		out = append(out, v) // ok: cold function
	}
	m.events = out
}
