// Fixture for the fieldreset analyzer.
package fixture

// counterSet exercises the delegated-reset path.
type counterSet struct {
	n int
}

// Reset clears the set.
func (c *counterSet) Reset() {
	c.n = 0
}

// probe misses a field: stale carries over between uses.
type probe struct {
	hits   int
	misses int
	peak   int
	stale  bool
}

func (p *probe) Reset() { // want "leaves field stale unassigned"
	p.hits = 0
	p.misses = 0
	p.peak = 0
}

// tracker covers every field through the accepted idioms.
type tracker struct {
	cfg      int // simlint:noreset immutable configuration
	events   []int
	counters counterSet
	total    uint64
	grid     [4][4]int
}

func (t *tracker) Reset() { // ok: assigned, delegated, or exempted
	t.events = t.events[:0]
	t.counters.Reset()
	t.total = 0
	for i := range t.grid {
		for j := range t.grid[i] {
			t.grid[i][j] = 0
		}
	}
}

// snapshot resets by whole-struct assignment.
type snapshot struct {
	a, b, c int
	label   string
}

func (s *snapshot) Reset() { // ok: whole-struct assignment covers all fields
	*s = snapshot{}
}

// lowercase reset methods are held to the same contract.
type window struct {
	head int
	tail int
}

func (w *window) reset() { // want "leaves field tail unassigned"
	w.head = 0
}

// ignored shows the generic escape hatch.
type ignored struct {
	x int
	y int
}

// simlint:ignore fieldreset y is rebuilt lazily on first use
func (g *ignored) Reset() {
	g.x = 0
}

// Restore is not a Reset: no contract applies.
func (p *probe) Restore() {
	p.hits = 0
}
