// Fixture for generics and method-expression call-graph coverage: step
// reaches clampAll/clampOne through a generic function call, push/grow
// through a method on an instantiated generic type, and drain/flush
// through a method expression. The dataflow tests reuse signals and
// Stack.mu to check capacity resolution and sync keys inside generic
// code.
package fixture

import "sync"

// Machine mirrors the simulator's hot-path shape.
type Machine struct{ vals []int }

func (m *Machine) step() {
	m.vals = clampAll(m.vals, 8)
	var s Stack[int]
	s.push(1)
	f := (*Machine).drain
	f(m)
}

// clampAll is a generic function; its call edge must resolve to the
// declared (origin) object, not a per-instantiation clone.
func clampAll[T ~int](xs []T, hi T) []T {
	for i, x := range xs {
		xs[i] = clampOne(x, hi)
	}
	return xs
}

func clampOne[T ~int](x, hi T) T {
	if x > hi {
		return hi
	}
	return x
}

// Stack is a generic container whose methods are reached through an
// instantiation (Stack[int]) on the hot path.
type Stack[T any] struct {
	mu    sync.Mutex
	items []T
}

func (s *Stack[T]) push(v T) {
	s.mu.Lock()
	s.grow(1)
	s.items = append(s.items, v)
	s.mu.Unlock()
}

func (s *Stack[T]) grow(n int) {
	if cap(s.items)-len(s.items) < n {
		next := make([]T, len(s.items), cap(s.items)*2+n)
		copy(next, s.items)
		s.items = next
	}
}

func (m *Machine) drain() { m.flush() }

func (m *Machine) flush() { m.vals = m.vals[:0] }

// signals builds a channel of a type-parameter element; the dataflow
// layer should still resolve the make's constant capacity.
func signals[T any]() chan T {
	ch := make(chan T, 4)
	return ch
}
