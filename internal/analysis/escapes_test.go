package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// TestParseCompilerDiags feeds a canned -m -m / check_bce diagnostic
// stream through the parser and checks classification, skipping, and
// deduplication.
func TestParseCompilerDiags(t *testing.T) {
	const out = `# loosesim/internal/pipeline
internal/pipeline/machine.go:10:6: cannot inline (*Machine).step: function too complex: cost 200 exceeds budget 80
internal/pipeline/machine.go:12:14: make([]int, n) escapes to heap
internal/pipeline/machine.go:12:14: make([]int, n) escapes to heap
internal/pipeline/machine.go:13:9: moved to heap: cfg
internal/pipeline/machine.go:14:3: "pipeline: bad event" escapes to heap
internal/pipeline/machine.go:15:2: Found IsInBounds
internal/pipeline/machine.go:16:2: Found IsSliceInBounds
internal/pipeline/machine.go:20:6: can inline (*Machine).helper with cost 3
internal/pipeline/machine.go:21:7: inlining call to (*Machine).helper
internal/pipeline/machine.go:22:30: leaking param: u
internal/pipeline/machine.go:23:18: m does not escape
internal/pipeline/machine.go:24:4: flow: {heap} = &{storage for e}
garbage line with no position
`
	raws := ParseCompilerDiags(out)
	var got []string
	for _, r := range raws {
		got = append(got, string(r.Kind))
	}
	want := []string{"noinline", "escape", "escape", "boundscheck", "boundscheck"}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
	if raws[0].Line != 10 || raws[0].Col != 6 || raws[0].File != "internal/pipeline/machine.go" {
		t.Fatalf("first diag position = %+v", raws[0])
	}
	if !strings.HasPrefix(raws[0].Message, "cannot inline") {
		t.Fatalf("noinline message = %q", raws[0].Message)
	}
}

// fixtureFunc resolves a function by display name in the fixture program.
func fixtureFunc(t *testing.T, prog *Program, name string) *FuncInfo {
	t.Helper()
	for _, fi := range prog.FuncsInOrder() {
		if funcDisplayName(fi.Obj) == name {
			return fi
		}
	}
	t.Fatalf("fixture has no function %s", name)
	return nil
}

// bodyLine returns the line of the function's body statement at index i.
func bodyLine(prog *Program, fi *FuncInfo, i int) int {
	return prog.Fset.Position(fi.Decl.Body.List[i].Pos()).Line
}

// TestJoinHotAttribution drives the position join over the escapejoin
// fixture: hot-function diags survive with provenance, cold and
// panic-line and suppressed diags drop, and inline failures only join on
// the declaration line.
func TestJoinHotAttribution(t *testing.T) {
	prog := loadFixtureProgram(t, "escapejoin.go")
	const file = "testdata/escapejoin.go"

	grow := fixtureFunc(t, prog, "Machine.grow")
	fail := fixtureFunc(t, prog, "Machine.fail")
	report := fixtureFunc(t, prog, "Machine.report")
	supp := fixtureFunc(t, prog, "Machine.suppressed")
	growDecl := prog.Fset.Position(grow.Decl.Pos()).Line

	raws := []RawDiag{
		{File: file, Line: bodyLine(prog, grow, 0), Col: 10, Kind: PerfEscape, Message: "make([]int, n) escapes to heap"},
		{File: file, Line: bodyLine(prog, fail, 0), Col: 2, Kind: PerfEscape, Message: "boom escapes to heap"},
		{File: file, Line: bodyLine(prog, report, 0), Col: 10, Kind: PerfEscape, Message: "make([]int, 9) escapes to heap"},
		{File: file, Line: bodyLine(prog, supp, 0), Col: 10, Kind: PerfEscape, Message: "make([]int, 3) escapes to heap"},
		{File: file, Line: growDecl, Col: 6, Kind: PerfNoInline, Message: "cannot inline grow"},
		{File: file, Line: bodyLine(prog, grow, 0), Col: 6, Kind: PerfNoInline, Message: "cannot inline stray"},
		{File: "testdata/other.go", Line: 3, Col: 1, Kind: PerfEscape, Message: "x escapes to heap"},
	}
	joined := JoinHot(prog, ".", raws)

	if len(joined) != 2 {
		t.Fatalf("joined = %d diags %v, want 2", len(joined), joined)
	}
	byKind := make(map[PerfKind]PerfDiag)
	for _, d := range joined {
		byKind[d.Kind] = d
	}
	esc, ok := byKind[PerfEscape]
	if !ok || esc.Func != "Machine.grow" || esc.Root != "Machine.step" {
		t.Fatalf("escape diag = %+v, want Machine.grow via Machine.step", esc)
	}
	ni, ok := byKind[PerfNoInline]
	if !ok || ni.Func != "Machine.grow" {
		t.Fatalf("noinline diag = %+v, want Machine.grow", ni)
	}
}

// TestHotDispatchSites counts dynamic call sites over the ifacedispatch
// fixture — sanctioned seams included, since the budget ratchets totals.
func TestHotDispatchSites(t *testing.T) {
	prog := loadFixtureProgram(t, "ifacedispatch.go")
	sites := HotDispatchSites(prog)
	// step: sanctioned Event, Rand.Next, field m.ready, local f;
	// tick: two r.Next calls (the ignore comment silences the analyzer,
	// not the counter). Six total.
	if len(sites) != 6 {
		var descs []string
		for _, s := range sites {
			descs = append(descs, s.Desc)
		}
		t.Fatalf("dispatch sites = %d %v, want 6", len(sites), descs)
	}
}

// TestPerfBudgetDiff exercises the ratchet arithmetic: growth in any cell
// fails, shrink is reported separately, new packages count as growth from
// zero.
func TestPerfBudgetDiff(t *testing.T) {
	base := &PerfBudget{Budgets: map[string]map[string]int{
		"internal/pipeline": {"escape": 2, "dispatch": 4},
		"internal/iq":       {"escape": 1},
	}}
	cur := &PerfBudget{Budgets: map[string]map[string]int{
		"internal/pipeline": {"escape": 3, "dispatch": 4},
		"internal/iq":       {},
		"internal/uop":      {"noinline": 1},
	}}
	growths, shrinks := base.Diff(cur)
	if len(growths) != 2 {
		t.Fatalf("growths = %v, want pipeline escape and uop noinline", growths)
	}
	if growths[0].Pkg != "internal/pipeline" || growths[0].Kind != "escape" || growths[0].Current != 3 {
		t.Fatalf("growths[0] = %+v", growths[0])
	}
	if growths[1].Pkg != "internal/uop" || growths[1].Kind != "noinline" {
		t.Fatalf("growths[1] = %+v", growths[1])
	}
	if len(shrinks) != 1 || shrinks[0].Pkg != "internal/iq" || shrinks[0].Current != 0 {
		t.Fatalf("shrinks = %v, want iq escape 1 -> 0", shrinks)
	}
}

// TestComputePerfBudget checks the tally: compiler diags bucket under
// their own kind, dispatch sites under "dispatch", keyed by
// module-relative package path.
func TestComputePerfBudget(t *testing.T) {
	prog := loadFixtureProgram(t, "ifacedispatch.go")
	var fi *FuncInfo
	for _, f := range prog.FuncsInOrder() {
		fi = f
		break
	}
	diags := []PerfDiag{
		{Kind: PerfEscape, Pkg: "internal/pipeline"},
		{Kind: PerfEscape, Pkg: "internal/pipeline"},
		{Kind: PerfNoInline, Pkg: "internal/iq"},
	}
	sites := []DispatchSite{{Fn: fi}, {Fn: fi}}
	b := ComputePerfBudget(diags, sites)
	if b.Budgets["internal/pipeline"]["escape"] != 2 {
		t.Fatalf("pipeline escape = %d, want 2", b.Budgets["internal/pipeline"]["escape"])
	}
	if b.Budgets["internal/iq"]["noinline"] != 1 {
		t.Fatalf("iq noinline = %d, want 1", b.Budgets["internal/iq"]["noinline"])
	}
	// The fixture package path is "fixture" (no module prefix to strip).
	if b.Budgets["fixture"]["dispatch"] != 2 {
		t.Fatalf("fixture dispatch = %d, want 2", b.Budgets["fixture"]["dispatch"])
	}
}

// TestRunStatsTimings checks that the timed runner names every analyzer
// exactly once even with a nil clock.
func TestRunStatsTimings(t *testing.T) {
	_ = types.Universe // keep go/types imported alongside the fixture helpers
	stats := &RunStats{}
	for _, a := range All() {
		stats.Timings = append(stats.Timings, AnalyzerTiming{Name: a.Name})
	}
	if len(stats.Timings) != 18 {
		t.Fatalf("timings = %d, want 18", len(stats.Timings))
	}
}
