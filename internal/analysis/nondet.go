package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NonDetTaint returns the nondet-taint analyzer: the interprocedural
// extension of detmap/noclock. Those analyzers forbid nondeterminism at
// the syntax level inside internal packages; this one tracks where
// nondeterministic *values* flow, across function boundaries, and reports
// only flows that reach one of the surfaces the repo's byte-identity
// guarantees depend on:
//
//   - simulation results: writes into fields of a struct named Result;
//   - cache keys: arguments of any function named ConfigKey (the serving
//     cache is content-addressed — a nondeterministic key silently splits
//     the cache and un-memoizes identical configs);
//   - observability event streams: arguments of Event methods on
//     Sink-suffixed types (downstream tooling diffs event streams
//     byte-for-byte).
//
// The taint lattice is a small bitset: one bit for intrinsic
// nondeterminism (taint sources), one per parameter. Sources are calls to
// time.Now/Since/Until, the package-level math/rand and math/rand/v2
// functions (the noclock list), and map-iteration order — an append or
// string concatenation inside a range over a map taints the accumulator,
// unless the function visibly sorts afterwards (detmap's collect-then-sort
// sanction). Per-function summaries — which parameters flow to the return
// value, and which parameters reach a sink inside the callee — are
// propagated along call edges (interface calls fan out) to a fixpoint, so
// a flow through three helpers in two packages is still one finding at the
// point where the tainted value enters the flow.
//
// Sanctioned sanitizers, by construction rather than by annotation: the
// injected-clock seams (`Now: time.Now`, After/Jitter function fields)
// never taint, because a *reference* to time.Now is not a call — only
// calling it produces a tainted value; and sorting after a map range
// restores determinism of the collected slice. Anything cleverer takes a
// `// simlint:ignore nondet-taint <reason>` with its justification.
//
// nondet-taint needs whole-program facts (Pass.Program); with no program
// attached it reports nothing.
func NonDetTaint() *Analyzer {
	a := &Analyzer{
		Name: "nondet-taint",
		Doc:  "tracks wall-clock/rand/map-order taint across calls into results, cache keys, and event streams",
		AppliesTo: func(pkgPath string) bool {
			return internalOnly(pkgPath) || strings.Contains(pkgPath, "/cmd/")
		},
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		sums := prog.taintSummariesOf()
		for _, fi := range prog.FuncsInOrder() {
			if fi.Pkg.Types != pass.Pkg {
				continue
			}
			scan := newTaintScan(prog, fi, sums)
			scan.report = func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			}
			scan.run()
		}
	}
	return a
}

// taintMask is the lattice element: bit 0 is intrinsic nondeterminism,
// bit i+1 is "depends on parameter i".
type taintMask uint64

const taintSrc taintMask = 1

func paramBit(i int) taintMask {
	if i >= 62 {
		return taintSrc // overflow: treat as intrinsically tainted (conservative)
	}
	return 1 << (uint(i) + 1)
}

// taintSummaries carries the interprocedural facts, keyed by function.
type taintSummaries struct {
	// ret is the mask flowing into the function's return values.
	ret map[*types.Func]taintMask
	// sink is the mask of parameters that reach a sink inside the function
	// (directly or through its callees).
	sink map[*types.Func]taintMask
}

// taintSummariesOf computes the summaries once per program, iterating the
// per-function scan to a fixpoint over the call graph.
func (p *Program) taintSummariesOf() *taintSummaries {
	p.taintOnce.Do(func() {
		sums := &taintSummaries{
			ret:  make(map[*types.Func]taintMask),
			sink: make(map[*types.Func]taintMask),
		}
		// Masks derived from a monotone recomputation stabilize quickly;
		// the iteration cap bounds pathological call chains.
		for iter := 0; iter < 10; iter++ {
			changed := false
			for _, fi := range p.funcsInOrder {
				scan := newTaintScan(p, fi, sums)
				scan.run()
				if scan.retMask != sums.ret[fi.Obj] || scan.sinkMask != sums.sink[fi.Obj] {
					sums.ret[fi.Obj] = scan.retMask
					sums.sink[fi.Obj] = scan.sinkMask
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		p.taint = sums
	})
	return p.taint
}

// taintScan is one pass over one function body: a forward, source-order
// abstract interpretation of assignments against the taint lattice.
type taintScan struct {
	prog *Program
	fi   *FuncInfo
	info *types.Info
	sums *taintSummaries

	vars     map[*types.Var]taintMask
	retMask  taintMask
	sinkMask taintMask
	// report, when set, emits diagnostics for source-tainted sink hits
	// (nil during summary fixpoint rounds).
	report func(pos token.Pos, format string, args ...any)
}

func newTaintScan(prog *Program, fi *FuncInfo, sums *taintSummaries) *taintScan {
	s := &taintScan{
		prog: prog,
		fi:   fi,
		info: fi.Pkg.Info,
		sums: sums,
		vars: make(map[*types.Var]taintMask),
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if ok {
		for i := 0; i < sig.Params().Len(); i++ {
			s.vars[sig.Params().At(i)] = paramBit(i)
		}
	}
	return s
}

// run walks the body twice (the second round propagates loop-carried
// taint) and evaluates sinks on the final state.
func (s *taintScan) run() {
	for round := 0; round < 2; round++ {
		ast.Inspect(s.fi.Decl.Body, func(n ast.Node) bool {
			s.visit(n, round == 1)
			return true
		})
	}
}

// visit transfers one statement; sinks fire only on the final round so
// loop-carried taint is visible to them.
func (s *taintScan) visit(n ast.Node, final bool) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		s.visitAssign(x, final)
	case *ast.RangeStmt:
		s.visitRange(x)
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			s.retMask |= s.exprMask(res, 0)
		}
	case *ast.CallExpr:
		if final {
			s.checkCallSinks(x)
		} else {
			// Still compute callee-sink propagation into sinkMask.
			s.propagateCallSinks(x, nil)
		}
	case *ast.CompositeLit:
		if final {
			s.checkResultLiteral(x)
		}
	}
}

// visitAssign transfers lhs |= mask(rhs) and fires the Result-field sink.
func (s *taintScan) visitAssign(x *ast.AssignStmt, final bool) {
	for i, lhs := range x.Lhs {
		var mask taintMask
		if len(x.Rhs) == len(x.Lhs) {
			mask = s.exprMask(x.Rhs[i], 0)
		} else if len(x.Rhs) == 1 {
			mask = s.exprMask(x.Rhs[0], 0)
		}
		// Compound assignment (s += expr) folds the old value in.
		if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
			mask |= s.exprMask(lhs, 0)
		}
		if mask == 0 {
			continue
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v := asVar(s.info.Defs[id]); v != nil {
				s.vars[v] |= mask
			} else if v := asVar(s.info.Uses[id]); v != nil {
				s.vars[v] |= mask
			}
			continue
		}
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			if tv, okt := s.info.Types[sel.X]; okt && namedTypeNameOf(tv.Type) == "Result" {
				reporter := s.report
				if !final {
					reporter = nil // summaries only; the final round reports
				}
				s.hitSinkAt(x.Pos(), mask, "simulation result field "+sel.Sel.Name, reporter)
			}
		}
	}
}

// visitRange applies the map-order rule: inside a range over a map with no
// sort afterwards, appends and string concatenations taint their
// accumulator with the ordering bit.
func (s *taintScan) visitRange(rng *ast.RangeStmt) {
	tv, ok := s.info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if s.sortCallAfter(rng) {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		ordered := asg.Tok == token.ADD_ASSIGN // s += part: order-sensitive
		if !ordered {
			for _, rhs := range asg.Rhs {
				if call, okc := ast.Unparen(rhs).(*ast.CallExpr); okc {
					if id, oki := ast.Unparen(call.Fun).(*ast.Ident); oki {
						if b, okb := s.info.Uses[id].(*types.Builtin); okb && b.Name() == "append" {
							ordered = true
						}
					}
				}
			}
		}
		if !ordered {
			return true
		}
		for _, lhs := range asg.Lhs {
			if v := localVarOf(s.info, lhs); v != nil {
				s.vars[v] |= taintSrc
			}
		}
		return true
	})
}

// sortCallAfter mirrors detmap's sanction: any sort.*/slices.* call
// lexically at or after the range statement in the same declaration.
func (s *taintScan) sortCallAfter(rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(s.fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.Pos() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, oki := sel.X.(*ast.Ident); oki {
			if pkgName, okp := s.info.Uses[id].(*types.PkgName); okp {
				p := pkgName.Imported().Name()
				if p == "sort" || p == "slices" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// exprMask evaluates an expression against the lattice.
func (s *taintScan) exprMask(e ast.Expr, depth int) taintMask {
	if e == nil || depth > 20 {
		return 0
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v := asVar(s.info.Uses[x]); v != nil {
			return s.vars[v]
		}
		if v := asVar(s.info.Defs[x]); v != nil {
			return s.vars[v]
		}
	case *ast.ParenExpr:
		return s.exprMask(x.X, depth+1)
	case *ast.UnaryExpr:
		return s.exprMask(x.X, depth+1)
	case *ast.StarExpr:
		return s.exprMask(x.X, depth+1)
	case *ast.BinaryExpr:
		return s.exprMask(x.X, depth+1) | s.exprMask(x.Y, depth+1)
	case *ast.SelectorExpr:
		// A field of a tainted struct is tainted.
		return s.exprMask(x.X, depth+1)
	case *ast.IndexExpr:
		return s.exprMask(x.X, depth+1)
	case *ast.SliceExpr:
		return s.exprMask(x.X, depth+1)
	case *ast.CompositeLit:
		var m taintMask
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				m |= s.exprMask(kv.Value, depth+1)
			} else {
				m |= s.exprMask(elt, depth+1)
			}
		}
		return m
	case *ast.TypeAssertExpr:
		return s.exprMask(x.X, depth+1)
	case *ast.CallExpr:
		return s.callMask(x, depth)
	}
	return 0
}

// callMask evaluates a call: taint sources, conversions, builtins, and
// summary-driven flow through resolved callees.
func (s *taintScan) callMask(call *ast.CallExpr, depth int) taintMask {
	if s.isTaintSource(call) {
		return taintSrc
	}
	// Conversions pass taint through.
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return s.exprMask(call.Args[0], depth+1)
		}
		return 0
	}
	// Builtins: append/min/max/len propagate their operands' taint.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, okb := s.info.Uses[id].(*types.Builtin); okb {
			var m taintMask
			for _, arg := range call.Args {
				m |= s.exprMask(arg, depth+1)
			}
			return m
		}
	}
	var out taintMask
	inProgram := false
	for _, callee := range s.prog.CalleesAt(s.info, call) {
		if s.prog.Funcs[callee] == nil {
			continue
		}
		inProgram = true
		ret := s.sums.ret[callee]
		if ret&taintSrc != 0 {
			out |= taintSrc
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if ret&paramBit(i) != 0 {
				out |= s.exprMask(call.Args[i], depth+1)
			}
		}
	}
	if !inProgram {
		// Extra-program call (stdlib, or a func-typed field): assume it
		// passes its operands' taint through — otherwise a method call
		// launders its receiver (t.Seconds() is as tainted as t).
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out |= s.exprMask(sel.X, depth+1)
		}
		for _, arg := range call.Args {
			out |= s.exprMask(arg, depth+1)
		}
	}
	return out
}

// isTaintSource matches calls to the wall-clock and ambient-randomness
// entry points (the noclock list).
func (s *taintScan) isTaintSource(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := s.info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	banned, ok := noclockBanned[pkgName.Imported().Path()]
	if !ok {
		return false
	}
	if _, bad := banned[sel.Sel.Name]; bad {
		return true
	}
	// time.Now is in the list; time.Sleep etc. are not sources.
	return false
}

// checkCallSinks fires the call-shaped sinks with reporting enabled.
func (s *taintScan) checkCallSinks(call *ast.CallExpr) {
	s.propagateCallSinks(call, s.report)
}

// propagateCallSinks handles the three call-shaped sink forms: Event
// methods on Sink types, ConfigKey functions, and callees whose summary
// says a parameter reaches a sink inside them.
func (s *taintScan) propagateCallSinks(call *ast.CallExpr, report func(pos token.Pos, format string, args ...any)) {
	// Event method on a *Sink-named type.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Event" {
		if selection, oks := s.info.Selections[sel]; oks && selection.Kind() == types.MethodVal {
			if strings.HasSuffix(namedTypeNameOf(selection.Recv()), "Sink") {
				for _, arg := range call.Args {
					s.hitSinkAt(arg.Pos(), s.exprMask(arg, 0), "the observability event stream", report)
				}
				return
			}
		}
	}
	// ConfigKey call: the cache's content address.
	for _, callee := range s.prog.CalleesAt(s.info, call) {
		if callee.Name() == "ConfigKey" {
			for _, arg := range call.Args {
				s.hitSinkAt(arg.Pos(), s.exprMask(arg, 0), "the cache key (ConfigKey)", report)
			}
			continue
		}
		sinkParams := s.sums.sink[callee]
		if sinkParams == 0 {
			continue
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if sinkParams&paramBit(i) == 0 {
				continue
			}
			s.hitSinkAt(call.Args[i].Pos(), s.exprMask(call.Args[i], 0),
				"a determinism-sensitive sink inside "+funcDisplayName(callee), report)
		}
	}
}

// checkResultLiteral fires the Result composite-literal sink.
func (s *taintScan) checkResultLiteral(lit *ast.CompositeLit) {
	tv, ok := s.info.Types[lit]
	if !ok || namedTypeNameOf(tv.Type) != "Result" {
		return
	}
	for _, elt := range lit.Elts {
		val := elt
		name := ""
		if kv, okk := elt.(*ast.KeyValueExpr); okk {
			val = kv.Value
			if id, oki := kv.Key.(*ast.Ident); oki {
				name = " " + id.Name
			}
		}
		s.hitSinkAt(val.Pos(), s.exprMask(val, 0), "simulation result field"+name, s.report)
	}
}

// hitSinkAt folds a sink hit into the summaries and, on reporting rounds,
// emits the diagnostic for intrinsically tainted flows.
func (s *taintScan) hitSinkAt(pos token.Pos, mask taintMask, what string, report func(pos token.Pos, format string, args ...any)) {
	if mask == 0 {
		return
	}
	s.sinkMask |= mask &^ taintSrc
	if mask&taintSrc != 0 && report != nil {
		report(pos,
			"nondeterministic value (wall clock, global rand, or map order) flows into %s; results must be a pure function of (Config, Seed)",
			what)
	}
}
