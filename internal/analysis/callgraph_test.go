package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"testing"
)

// loadFixtureProgram typechecks one testdata file standalone and builds
// the whole-program facts over it.
func loadFixtureProgram(t *testing.T, fixture string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("testdata", fixture)
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fixture", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return BuildProgram(fset, []*Package{{
		Path: "fixture", Files: []*ast.File{file}, Types: pkg, Info: info,
	}})
}

// TestCallGraphHotSet drives the builder over a fixture exercising direct
// calls, method values, interface dispatch, function literals, and the
// coldpath marker, and checks the resulting hot set exactly.
func TestCallGraphHotSet(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph.go")

	var hot []string
	for fn := range prog.Hot {
		hot = append(hot, funcDisplayName(fn))
	}
	sort.Strings(hot)

	want := []string{
		"Machine.advance",  // direct method call
		"Machine.eligible", // method value reference
		"Machine.step",     // root
		"flatSink.Emit",    // interface dispatch fan-out
		"ringSink.Emit",    // interface dispatch fan-out
		"ringSink.grow",    // transitively via ringSink.Emit
		"tally",            // direct function call
		"viaLiteral",       // called from a literal inside step
	}
	if len(hot) != len(want) {
		t.Fatalf("hot set = %v, want %v", hot, want)
	}
	for i := range want {
		if hot[i] != want[i] {
			t.Fatalf("hot set = %v, want %v", hot, want)
		}
	}
}

// TestCallGraphColdpath checks that a coldpath-marked callee keeps its
// call edge (the graph is honest) but is excluded from the hot set along
// with everything only reachable through it.
func TestCallGraphColdpath(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph.go")

	byName := make(map[string]*types.Func)
	for fn := range prog.Funcs {
		byName[funcDisplayName(fn)] = fn
	}
	step, dump, deep := byName["Machine.step"], byName["Machine.dump"], byName["Machine.deep"]
	if step == nil || dump == nil || deep == nil {
		t.Fatalf("fixture functions missing: step=%v dump=%v deep=%v", step, dump, deep)
	}

	if !prog.Funcs[dump].Coldpath {
		t.Error("Machine.dump should carry the coldpath marker")
	}
	edge := false
	for _, callee := range prog.Calls[step] {
		if callee == dump {
			edge = true
		}
	}
	if !edge {
		t.Error("call edge step -> dump should exist even though dump is coldpath")
	}
	if prog.Hot[dump] || prog.Hot[deep] {
		t.Errorf("coldpath pruning failed: Hot[dump]=%v Hot[deep]=%v", prog.Hot[dump], prog.Hot[deep])
	}
	if prog.Hot[byName["orphan"]] {
		t.Error("orphan should not be hot")
	}
}

// TestCallGraphHotRoot checks diagnostic provenance: every hot function
// records the root whose traversal reached it.
func TestCallGraphHotRoot(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph.go")

	byName := make(map[string]*types.Func)
	for fn := range prog.Funcs {
		byName[funcDisplayName(fn)] = fn
	}
	step := byName["Machine.step"]
	for _, name := range []string{"Machine.step", "ringSink.grow", "viaLiteral"} {
		fn := byName[name]
		if fn == nil {
			t.Fatalf("fixture function %s missing", name)
		}
		if prog.HotRoot[fn] != step {
			t.Errorf("HotRoot[%s] = %v, want Machine.step", name, prog.HotRoot[fn])
		}
	}
}

// TestCallGraphSpawnEdges checks the spawn-site records the dataflow
// analyzers consume: one site per go statement in source order, with the
// literal, the resolved named target, or neither (a closure through a
// variable) — and bodies resolvable for in-program targets.
func TestCallGraphSpawnEdges(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph.go")

	byName := make(map[string]*types.Func)
	for fn := range prog.Funcs {
		byName[funcDisplayName(fn)] = fn
	}
	spawnAll := byName["Pool.spawnAll"]
	if spawnAll == nil {
		t.Fatal("fixture function Pool.spawnAll missing")
	}
	sites := prog.Spawns[spawnAll]
	if len(sites) != 4 {
		t.Fatalf("Spawns[Pool.spawnAll] has %d sites, want 4", len(sites))
	}

	if sites[0].Lit == nil || sites[0].Callee != nil || sites[0].Body(prog) == nil {
		t.Errorf("site 0 (literal): Lit=%v Callee=%v", sites[0].Lit, sites[0].Callee)
	}
	if sites[1].Lit != nil || sites[1].Callee != nil || sites[1].Body(prog) != nil {
		t.Errorf("site 1 (closure via variable) should resolve to nothing, got Callee=%v", sites[1].Callee)
	}
	if sites[2].Callee != byName["Pool.cachedRun"] || sites[2].Body(prog) == nil {
		t.Errorf("site 2 (method value): Callee=%v, want Pool.cachedRun with a body", sites[2].Callee)
	}
	if sites[3].Callee != byName["tally"] {
		t.Errorf("site 3 (named function): Callee=%v, want tally", sites[3].Callee)
	}

	// The spawned calls are call edges too: reachability follows goroutines.
	callees := make(map[*types.Func]bool)
	for _, c := range prog.Calls[spawnAll] {
		callees[c] = true
	}
	for _, name := range []string{"Pool.runBatch", "Pool.cachedRun", "tally"} {
		if !callees[byName[name]] {
			t.Errorf("Calls[Pool.spawnAll] missing %s", name)
		}
	}
}

// TestCallGraphRunnerHook checks the func-typed hook contract the
// experiments.Options.Runner injection relies on: the call through the
// hook resolves to nothing, the method-value wiring adds the edge that
// keeps the injected implementation reachable, and the interface-typed
// field fans out to every implementation at the call site.
func TestCallGraphRunnerHook(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph.go")

	byName := make(map[string]*types.Func)
	var fis = make(map[string]*FuncInfo)
	for fn, fi := range prog.Funcs {
		byName[funcDisplayName(fn)] = fn
		fis[funcDisplayName(fn)] = fi
	}
	runBatch := fis["Pool.runBatch"]
	if runBatch == nil {
		t.Fatal("fixture function Pool.runBatch missing")
	}

	var hookCall, emitCall *ast.CallExpr
	ast.Inspect(runBatch.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, oks := call.Fun.(*ast.SelectorExpr); oks {
			switch sel.Sel.Name {
			case "Runner":
				hookCall = call
			case "Emit":
				emitCall = call
			}
		}
		return true
	})
	if hookCall == nil || emitCall == nil {
		t.Fatalf("fixture call sites missing: hook=%v emit=%v", hookCall, emitCall)
	}

	if got := prog.CalleesAt(runBatch.Pkg.Info, hookCall); len(got) != 0 {
		t.Errorf("CalleesAt(p.opts.Runner(n)) = %v, want none (plain function value)", got)
	}
	emitees := make(map[*types.Func]bool)
	for _, fn := range prog.CalleesAt(runBatch.Pkg.Info, emitCall) {
		emitees[fn] = true
	}
	if !emitees[byName["ringSink.Emit"]] || !emitees[byName["flatSink.Emit"]] || len(emitees) != 2 {
		t.Errorf("CalleesAt(p.sink.Emit(n)) = %v, want both implementations", emitees)
	}

	// The wiring edge: inject -> cachedRun via the method-value reference.
	edge := false
	for _, c := range prog.Calls[byName["Pool.inject"]] {
		if c == byName["Pool.cachedRun"] {
			edge = true
		}
	}
	if !edge {
		t.Error("Calls[Pool.inject] should include Pool.cachedRun (method-value reference)")
	}

	// And reachability provenance through those edges.
	reach := prog.ReachableFrom([]*types.Func{byName["Pool.spawnAll"]})
	for _, name := range []string{"Pool.runBatch", "Pool.cachedRun", "tally", "ringSink.Emit", "flatSink.Emit"} {
		if reach[byName[name]] != byName["Pool.spawnAll"] {
			t.Errorf("ReachableFrom(spawnAll)[%s] = %v, want root Pool.spawnAll", name, reach[byName[name]])
		}
	}
}
