package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"testing"
)

// loadFixtureProgram typechecks one testdata file standalone and builds
// the whole-program facts over it.
func loadFixtureProgram(t *testing.T, fixture string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("testdata", fixture)
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fixture", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return BuildProgram(fset, []*Package{{
		Path: "fixture", Files: []*ast.File{file}, Types: pkg, Info: info,
	}})
}

// TestCallGraphHotSet drives the builder over a fixture exercising direct
// calls, method values, interface dispatch, function literals, and the
// coldpath marker, and checks the resulting hot set exactly.
func TestCallGraphHotSet(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph.go")

	var hot []string
	for fn := range prog.Hot {
		hot = append(hot, funcDisplayName(fn))
	}
	sort.Strings(hot)

	want := []string{
		"Machine.advance",  // direct method call
		"Machine.eligible", // method value reference
		"Machine.step",     // root
		"flatSink.Emit",    // interface dispatch fan-out
		"ringSink.Emit",    // interface dispatch fan-out
		"ringSink.grow",    // transitively via ringSink.Emit
		"tally",            // direct function call
		"viaLiteral",       // called from a literal inside step
	}
	if len(hot) != len(want) {
		t.Fatalf("hot set = %v, want %v", hot, want)
	}
	for i := range want {
		if hot[i] != want[i] {
			t.Fatalf("hot set = %v, want %v", hot, want)
		}
	}
}

// TestCallGraphColdpath checks that a coldpath-marked callee keeps its
// call edge (the graph is honest) but is excluded from the hot set along
// with everything only reachable through it.
func TestCallGraphColdpath(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph.go")

	byName := make(map[string]*types.Func)
	for fn := range prog.Funcs {
		byName[funcDisplayName(fn)] = fn
	}
	step, dump, deep := byName["Machine.step"], byName["Machine.dump"], byName["Machine.deep"]
	if step == nil || dump == nil || deep == nil {
		t.Fatalf("fixture functions missing: step=%v dump=%v deep=%v", step, dump, deep)
	}

	if !prog.Funcs[dump].Coldpath {
		t.Error("Machine.dump should carry the coldpath marker")
	}
	edge := false
	for _, callee := range prog.Calls[step] {
		if callee == dump {
			edge = true
		}
	}
	if !edge {
		t.Error("call edge step -> dump should exist even though dump is coldpath")
	}
	if prog.Hot[dump] || prog.Hot[deep] {
		t.Errorf("coldpath pruning failed: Hot[dump]=%v Hot[deep]=%v", prog.Hot[dump], prog.Hot[deep])
	}
	if prog.Hot[byName["orphan"]] {
		t.Error("orphan should not be hot")
	}
}

// TestCallGraphHotRoot checks diagnostic provenance: every hot function
// records the root whose traversal reached it.
func TestCallGraphHotRoot(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph.go")

	byName := make(map[string]*types.Func)
	for fn := range prog.Funcs {
		byName[funcDisplayName(fn)] = fn
	}
	step := byName["Machine.step"]
	for _, name := range []string{"Machine.step", "ringSink.grow", "viaLiteral"} {
		fn := byName[name]
		if fn == nil {
			t.Fatalf("fixture function %s missing", name)
		}
		if prog.HotRoot[fn] != step {
			t.Errorf("HotRoot[%s] = %v, want Machine.step", name, prog.HotRoot[fn])
		}
	}
}
