package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// This file is the intraprocedural half of the dataflow engine the
// concurrency analyzers (ctxflow, goleak, lockorder, nondet-taint,
// chanclose) build on. It deliberately trades precision for
// predictability, in the same spirit as the call graph:
//
//   - DefUse resolves a local variable to its unique defining expression
//     when it has exactly one assignment and its address is never taken;
//     anything reassigned or aliased resolves to nothing. The analyzers
//     only need the common ch := make(chan T, n) shape, where uniqueness
//     is the normal case.
//   - lock/channel keys name synchronization objects stably across
//     functions: a field selector s.mu on a *Server receiver is
//     "Server.mu" no matter what the receiver variable is called, so
//     per-package facts about the same mutex or channel line up.
//   - heldAt replays a function's mutex operations in lexical order to
//     approximate the locks held at a position. The one branch idiom the
//     replay models exactly is the early exit: an Unlock inside a block
//     that goes on to return (or break/continue/panic) releases the lock
//     only on that abandoned path, so the replay restores the lock at the
//     terminator and the fall-through text is still considered holding
//     it. Anything branchier under-approximates (a finding may be
//     missed, never invented).

// DefUse is a per-function map from local variables to their unique
// defining expression.
type DefUse struct {
	info *types.Info
	defs map[*types.Var]ast.Expr
	// poisoned marks variables with multiple assignments, multi-value
	// definitions, or a taken address.
	poisoned map[*types.Var]bool
}

// BuildDefUse scans one function body (nested literals included — a
// literal reads and writes its enclosing declaration's locals).
func BuildDefUse(info *types.Info, body *ast.BlockStmt) *DefUse {
	d := &DefUse{
		info:     info,
		defs:     make(map[*types.Var]ast.Expr),
		poisoned: make(map[*types.Var]bool),
	}
	record := func(id *ast.Ident, rhs ast.Expr) {
		v := asVar(info.Defs[id])
		if v == nil {
			v = asVar(info.Uses[id])
		}
		if v == nil {
			return
		}
		if _, seen := d.defs[v]; seen || rhs == nil {
			d.poisoned[v] = true
			return
		}
		d.defs[v] = rhs
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, x.Rhs[i])
					}
				}
			} else {
				// Multi-value assignment: each LHS is unresolvable.
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, nil)
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				var rhs ast.Expr
				if len(x.Values) == len(x.Names) {
					rhs = x.Values[i]
				}
				record(name, rhs)
			}
		case *ast.UnaryExpr:
			// &x may alias the variable into an unknown writer.
			if x.Op == token.AND {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if v := asVar(info.Uses[id]); v != nil {
						d.poisoned[v] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				record(id, nil)
			}
		}
		return true
	})
	return d
}

// Def returns v's unique defining expression, or nil when the variable is
// reassigned, aliased, or unknown.
func (d *DefUse) Def(v *types.Var) ast.Expr {
	if d == nil || d.poisoned[v] {
		return nil
	}
	return d.defs[v]
}

// Resolve follows e through identifier chains (x := y; y := expr) to the
// first non-identifier defining expression, or nil when any link is
// unresolvable.
func (d *DefUse) Resolve(e ast.Expr) ast.Expr {
	for depth := 0; depth < 16; depth++ {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return e
		}
		v := asVar(d.info.Uses[id])
		if v == nil {
			v = asVar(d.info.Defs[id])
		}
		if v == nil {
			return nil
		}
		def := d.Def(v)
		if def == nil {
			return nil
		}
		e = def
	}
	return nil
}

// ResolveMakeChan resolves e to a make(chan T, n) call defined in the same
// function, returning the constant capacity (0 when the make has no
// capacity argument). ok is false when e does not resolve to a channel
// make with a statically known capacity.
func (d *DefUse) ResolveMakeChan(e ast.Expr) (capacity int, ok bool) {
	def := d.Resolve(e)
	call, okc := ast.Unparen(def).(*ast.CallExpr)
	if !okc {
		return 0, false
	}
	id, oki := ast.Unparen(call.Fun).(*ast.Ident)
	if !oki {
		return 0, false
	}
	if b, okb := d.info.Uses[id].(*types.Builtin); !okb || b.Name() != "make" {
		return 0, false
	}
	if len(call.Args) == 0 {
		return 0, false
	}
	if tv, okt := d.info.Types[call.Args[0]]; !okt || !isChanType(tv.Type) {
		return 0, false
	}
	if len(call.Args) == 1 {
		return 0, true
	}
	tv, okt := d.info.Types[call.Args[1]]
	if !okt || tv.Value == nil {
		return 0, false
	}
	n, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return int(n), true
}

func asVar(obj types.Object) *types.Var {
	v, _ := obj.(*types.Var)
	return v
}

// --- type shape helpers ---

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isSignalChanType reports whether t is a channel of empty struct — the
// done/stop-channel idiom whose receives are cancellation waits, not data
// transfers.
func isSignalChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// referencesContext reports whether any identifier or selector inside n has
// a context.Context type — the cheapest useful proxy for "this code can
// observe cancellation".
func referencesContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		e, ok := x.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if tv, okt := info.Types[e]; okt && isContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// namedTypeNameOf returns the name of t's named type, following one level
// of pointer indirection; "" when t has no name.
func namedTypeNameOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// --- synchronization-object keys ---

// syncKeyOf names a mutex or channel expression stably across functions:
// a field selector keys on (named type of the base, field) — "Server.mu" —
// and a package-level variable keys on "pkg.name". Local variables and
// anything else return ok=false; callers that care about locals key them
// per-function themselves.
func syncKeyOf(info *types.Info, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if tv, ok := info.Types[x.X]; ok {
			if name := namedTypeNameOf(tv.Type); name != "" {
				return name + "." + x.Sel.Name, true
			}
		}
	case *ast.Ident:
		v := asVar(info.Uses[x])
		if v == nil {
			v = asVar(info.Defs[x])
		}
		if v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
	}
	return "", false
}

// localVarOf returns the (non-package-level) variable an identifier
// expression denotes, nil otherwise.
func localVarOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v := asVar(info.Uses[id])
	if v == nil {
		v = asVar(info.Defs[id])
	}
	if v == nil || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
		return nil
	}
	return v
}

// --- mutex operation tracking ---

// lockEvent is one Lock/Unlock-family call on a keyable mutex, in source
// order. A restore event is synthetic: it re-acquires a lock at the point
// an early-exit branch abandons the function, so the fall-through replay
// stays exact. Restores participate in heldAt but are not acquisitions —
// analyzers deriving "this code locks X" facts must skip them.
type lockEvent struct {
	pos      token.Pos
	key      string
	acquire  bool
	deferred bool
	restore  bool
}

// mutexMethods classifies the sync.Mutex / sync.RWMutex method set.
var mutexMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": false, "TryRLock": false, // acquisition not guaranteed: ignored
}

// mutexOpOf decodes call as a mutex method call, returning the receiver
// expression and whether the method acquires.
func mutexOpOf(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, oks := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !oks {
		return nil, "", false
	}
	if _, known := mutexMethods[sel.Sel.Name]; !known {
		return nil, "", false
	}
	s, oksel := info.Selections[sel]
	if !oksel || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	fn, okf := s.Obj().(*types.Func)
	if !okf || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	recvType := namedTypeNameOf(s.Recv())
	if recvType != "Mutex" && recvType != "RWMutex" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// collectLockEvents gathers body's mutex operations on keyable mutexes in
// lexical order. Operations inside function literals are attributed to the
// same body: goroutine-held locks are beyond this approximation, and the
// repo's literals run synchronously or hold no locks.
func collectLockEvents(info *types.Info, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	add := func(call *ast.CallExpr, deferred bool) {
		recv, method, ok := mutexOpOf(info, call)
		if !ok {
			return
		}
		if !mutexMethods[method] {
			return
		}
		key, ok := syncKeyOf(info, recv)
		if !ok {
			return
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			key:      key,
			acquire:  method == "Lock" || method == "RLock",
			deferred: deferred,
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			add(x.Call, true)
			return false
		case *ast.CallExpr:
			add(x, false)
		}
		return true
	})
	// Early-exit releases: lock; if cond { unlock; return }; ... — the
	// fall-through path still holds the lock, so restore it at the
	// terminator. Only locks acquired before the abandoned region qualify;
	// a pair both acquired and released inside it is local to the dead
	// path. Releases inside function literals never restore: a literal's
	// return does not abandon the enclosing function.
	var restores []lockEvent
	for _, ev := range events {
		if ev.acquire || ev.deferred || insideFuncLit(body, ev.pos) {
			continue
		}
		region, term, ok := abandonedRegionOf(info, body, ev.pos)
		if !ok || acquiredWithin(events, ev.key, region, ev.pos) {
			continue
		}
		restores = append(restores, lockEvent{pos: term, key: ev.key, acquire: true, restore: true})
	}
	events = append(events, restores...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// abandonedRegionOf locates the innermost statement list enclosing a
// release and the first terminating statement after it in that list. When
// one exists, everything from the region's start to the terminator runs
// only on a path that never reaches the code after the region.
func abandonedRegionOf(info *types.Info, body *ast.BlockStmt, pos token.Pos) (regionStart, terminator token.Pos, ok bool) {
	list := innermostStmtList(body, pos)
	if len(list) == 0 {
		return token.NoPos, token.NoPos, false
	}
	for _, s := range list {
		if s.Pos() > pos && terminatesPath(info, s) {
			return list[0].Pos(), s.Pos(), true
		}
	}
	return token.NoPos, token.NoPos, false
}

// innermostStmtList returns the statement list of the innermost block,
// case clause, or comm clause in body containing pos.
func innermostStmtList(body *ast.BlockStmt, pos token.Pos) []ast.Stmt {
	list := body.List
	best := body.Pos()
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() > pos || pos >= n.End() {
			return n == body // never descend into subtrees not containing pos
		}
		switch x := n.(type) {
		case *ast.BlockStmt:
			if x.Pos() >= best {
				best, list = x.Pos(), x.List
			}
		case *ast.CaseClause:
			if x.Pos() >= best {
				best, list = x.Pos(), x.Body
			}
		case *ast.CommClause:
			if x.Pos() >= best {
				best, list = x.Pos(), x.Body
			}
		}
		return true
	})
	return list
}

// terminatesPath reports whether s unconditionally leaves the enclosing
// statement list: return, break, continue, goto, or a panic call.
// Fallthrough transfers into the next case with state intact, so it does
// not count.
func terminatesPath(info *types.Info, s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return x.Tok != token.FALLTHROUGH
	case *ast.ExprStmt:
		call, ok := x.X.(*ast.CallExpr)
		return ok && isBuiltinCall(info, call, "panic")
	}
	return false
}

// acquiredWithin reports whether key is acquired in [start, before) — used
// to tell a region-local lock/unlock pair from an early release of an
// outer lock.
func acquiredWithin(events []lockEvent, key string, start, before token.Pos) bool {
	for _, ev := range events {
		if ev.acquire && !ev.restore && ev.key == key && ev.pos >= start && ev.pos < before {
			return true
		}
	}
	return false
}

// insideFuncLit reports whether pos falls within a function literal nested
// in body.
func insideFuncLit(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Pos() <= pos && pos < lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// heldAt replays events lexically before pos and returns the multiset of
// mutex keys still held there, in acquisition order. A deferred Unlock
// never releases (it runs at function exit); release of a lock that is not
// held is a no-op.
func heldAt(events []lockEvent, pos token.Pos) []string {
	var held []string
	for _, ev := range events {
		if ev.pos >= pos {
			break
		}
		switch {
		case ev.acquire:
			held = append(held, ev.key)
		case ev.deferred:
			// Runs at exit, not here.
		default:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == ev.key {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		}
	}
	return held
}

// containsKey reports membership in a small key slice.
func containsKey(keys []string, k string) bool {
	for _, x := range keys {
		if x == k {
			return true
		}
	}
	return false
}

// inOnceDo reports whether pos falls inside a function literal passed to a
// sync.Once Do call anywhere in body — the other sanctioned way to make a
// close or similar one-shot transition race-free.
func inOnceDo(info *types.Info, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, oks := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !oks || sel.Sel.Name != "Do" {
			return true
		}
		s, oksel := info.Selections[sel]
		if !oksel || s.Kind() != types.MethodVal || namedTypeNameOf(s.Recv()) != "Once" {
			return true
		}
		fn, okf := s.Obj().(*types.Func)
		if !okf || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		for _, arg := range call.Args {
			if lit, okl := arg.(*ast.FuncLit); okl {
				if lit.Pos() <= pos && pos <= lit.End() {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
