package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CfgValidate returns the cfgvalidate analyzer: for every struct type that
// declares a `Validate() error` method, each exported field must either be
// referenced inside that method or carry a `// simlint:novalidate` comment.
//
// The rationale is config hygiene: the simulator's behaviour is a function
// of its Config structs, and a knob that Validate never looks at is a knob
// that can ship with a nonsense value (a zero latency, an impossible
// geometry) and silently skew every reported IPC. Forcing each new field
// through Validate — or through an explicit opt-out comment stating why no
// constraint exists — makes unvalidated knobs unrepresentable.
func CfgValidate() *Analyzer {
	a := &Analyzer{
		Name:      "cfgvalidate",
		Doc:       "requires every exported field of a Validate()-bearing struct to be validated or marked simlint:novalidate",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		// Collect Validate() error methods by receiver named type.
		validateBodies := make(map[*types.TypeName]*ast.FuncDecl)
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name.Name != "Validate" || fn.Recv == nil || fn.Body == nil {
					continue
				}
				if !returnsErrorOnly(pass, fn) {
					continue
				}
				if tn := receiverTypeName(pass, fn); tn != nil {
					validateBodies[tn] = fn
				}
			}
		}
		if len(validateBodies) == 0 {
			return
		}

		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					fn, ok := validateBodies[obj]
					if !ok {
						continue
					}
					checkStructValidated(pass, file, ts.Name.Name, st, fn)
				}
			}
		}
	}
	return a
}

// returnsErrorOnly reports whether fn's signature is func(...) error.
func returnsErrorOnly(pass *Pass, fn *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// receiverTypeName resolves the named type of fn's receiver, unwrapping a
// pointer receiver.
func receiverTypeName(pass *Pass, fn *ast.FuncDecl) *types.TypeName {
	if len(fn.Recv.List) != 1 {
		return nil
	}
	tv, ok := pass.Info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// checkStructValidated reports exported fields of st that the Validate body
// never references and that carry no novalidate marker.
func checkStructValidated(pass *Pass, file *ast.File, typeName string, st *ast.StructType, validate *ast.FuncDecl) {
	referenced := fieldsReferenced(pass, validate)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			obj, ok := pass.Info.Defs[name].(*types.Var)
			if !ok || referenced[obj] {
				continue
			}
			if fieldHasNoValidate(pass, file, field, name) {
				continue
			}
			pass.Reportf(name.Pos(),
				"exported field %s.%s is never referenced in (%s).Validate; validate it or mark it `// simlint:novalidate <why>`",
				typeName, name.Name, typeName)
		}
	}
}

// fieldsReferenced collects every struct-field object the function body
// uses, via selector resolution.
func fieldsReferenced(pass *Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// fieldHasNoValidate reports whether the field declaration carries a
// simlint:novalidate marker: in its doc comment, its line comment, or a
// comment on its own or the preceding line.
func fieldHasNoValidate(pass *Pass, file *ast.File, field *ast.Field, name *ast.Ident) bool {
	const marker = "simlint:novalidate"
	if field.Doc != nil && strings.Contains(field.Doc.Text(), marker) {
		return true
	}
	if field.Comment != nil && strings.Contains(field.Comment.Text(), marker) {
		return true
	}
	return hasMarker(pass.Fset, file, pass.Fset.Position(name.Pos()).Line, marker)
}
