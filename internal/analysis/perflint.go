package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the perf-lint analyzers: four checks that turn known
// per-cycle cost patterns — dynamic dispatch, defer, append growth, and
// by-reference closure capture — into findings on hot-path-reachable
// functions. They complement escapes.go: the compiler join reports what
// *did* escape or fail to inline; these analyzers point at the source
// constructs that cause it, so the fix is named at the site.

// SanctionedDispatch lists the interface method calls that are accepted on
// the hot path, as "InterfaceType.Method" specs. These mirror the
// deliberate seams of the simulator: the predictor, sink, and span
// interfaces exist precisely so implementations can be swapped per run,
// and their dispatch cost is part of the measured baseline. The dispatch
// budget in PERF_baseline.json still counts them — sanctioning silences
// the finding, not the ratchet.
var SanctionedDispatch = []string{
	// Branch predictor seam: swapped per configuration (bimodal, gshare,
	// TAGE); one dispatch per fetched branch is the accepted price.
	"Predictor.Predict",
	"Predictor.Update",
	// Observability seams: nil-checked or no-op in unprobed runs. The bare
	// interface name matches both obs.EventSink and dispatch.EventSink —
	// the seams are deliberate in both layers.
	"EventSink.Event",
	"IntervalSink.Interval",
	"SpanSink.Span",
}

// DispatchSite is one dynamic call on the hot path: an interface method
// call or an indirect call through a function value. The ifacedispatch
// analyzer reports the unsanctioned ones; the perf budget counts them all.
type DispatchSite struct {
	Pos  token.Pos
	Fn   *FuncInfo
	Spec string // "Iface.Method" for interface dispatch, "" for indirect
	Desc string // human-readable site description
}

// HotDispatchSites walks every hot-path function of the program and
// collects its dynamic call sites in declaration order.
func HotDispatchSites(prog *Program) []DispatchSite {
	var out []DispatchSite
	for _, fi := range prog.FuncsInOrder() {
		if !prog.Hot[fi.Obj] {
			continue
		}
		info := fi.Pkg.Info
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if site, ok := classifyDispatch(info, fi, call); ok {
				out = append(out, site)
			}
			return true
		})
	}
	return out
}

// classifyDispatch decides whether one call expression dispatches
// dynamically, and if so describes it.
func classifyDispatch(info *types.Info, fi *FuncInfo, call *ast.CallExpr) (DispatchSite, bool) {
	fun := ast.Unparen(call.Fun)
	switch x := fun.(type) {
	case *ast.Ident:
		switch info.Uses[x].(type) {
		case *types.Func, *types.Builtin, *types.TypeName, *types.Nil, nil:
			return DispatchSite{}, false // direct call, builtin, or conversion
		}
		if isFuncValue(info, x) {
			return DispatchSite{Pos: call.Pos(), Fn: fi,
				Desc: fmt.Sprintf("indirect call through function value %s", x.Name)}, true
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[x]
		if !ok {
			return DispatchSite{}, false // qualified pkg.Func: direct
		}
		switch sel.Kind() {
		case types.MethodVal:
			recv := sel.Recv()
			if ptr, okp := recv.(*types.Pointer); okp {
				recv = ptr.Elem()
			}
			if _, oki := recv.Underlying().(*types.Interface); !oki {
				return DispatchSite{}, false // concrete method: direct
			}
			spec := ifaceTypeName(recv) + "." + x.Sel.Name
			return DispatchSite{Pos: call.Pos(), Fn: fi, Spec: spec,
				Desc: fmt.Sprintf("interface dispatch %s on %s", spec, exprString(x.X))}, true
		case types.FieldVal:
			if isFuncValue(info, x) {
				return DispatchSite{Pos: call.Pos(), Fn: fi,
					Desc: fmt.Sprintf("indirect call through field %s.%s", exprString(x.X), x.Sel.Name)}, true
			}
		}
	default:
		// Call of a call result, index expression, etc.: indirect when the
		// operand is function-typed.
		if isFuncValue(info, fun) {
			return DispatchSite{Pos: call.Pos(), Fn: fi,
				Desc: "indirect call through computed function value"}, true
		}
	}
	return DispatchSite{}, false
}

// isFuncValue reports whether e has (non-builtin) function type.
func isFuncValue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsType() {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

// ifaceTypeName names an interface type for sanction matching: the named
// type's bare name, or the full rendering for anonymous interfaces.
func ifaceTypeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return types.TypeString(t, nil)
}

// IfaceDispatch returns the ifacedispatch analyzer: every interface method
// call or indirect call in a hot-path function is a finding unless the
// interface method is on the SanctionedDispatch list. Dynamic calls block
// inlining and devirtualization, and boxing at the call boundary is how
// most hot-path escapes start; anything not explicitly sanctioned should
// be a concrete call or a type switch.
func IfaceDispatch() *Analyzer {
	a := &Analyzer{
		Name:      "ifacedispatch",
		Doc:       "flags unsanctioned interface or indirect calls in hot-path-reachable functions",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		sanctioned := make(map[string]bool, len(SanctionedDispatch))
		for _, s := range SanctionedDispatch {
			sanctioned[s] = true
		}
		forEachHotDecl(pass, prog, func(obj *types.Func, fd *ast.FuncDecl) {
			where := hotWhere(prog, obj)
			fi := prog.Funcs[obj]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				site, ok := classifyDispatch(pass.Info, fi, call)
				if !ok || sanctioned[site.Spec] {
					return true
				}
				pass.Reportf(site.Pos, "%s %s; devirtualize via the concrete type or sanction the seam", site.Desc, where)
				return true
			})
		})
	}
	return a
}

// DeferHot returns the deferhot analyzer: defer in a hot-path function.
// A deferred call costs a frame record on every invocation and blocks
// inlining of the deferring function; per-cycle code unwinds with plain
// calls at the end of the function instead.
func DeferHot() *Analyzer {
	a := &Analyzer{
		Name:      "deferhot",
		Doc:       "flags defer statements in hot-path-reachable functions",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		forEachHotDecl(pass, prog, func(obj *types.Func, fd *ast.FuncDecl) {
			where := hotWhere(prog, obj)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if d, ok := n.(*ast.DeferStmt); ok {
					pass.Reportf(d.Pos(), "defer %s; call the cleanup directly on each exit path", where)
				}
				return true
			})
		})
	}
	return a
}

// AppendHot returns the appendhot analyzer: append in a hot-path function
// with no preallocation evidence. Growth via append doubles the backing
// array and copies — once per slot that was ~90%% of the machine's
// allocations. Accepted shapes:
//
//   - appending to an explicit reslice (`append(s[:0], …)`,
//     `append(kept[:i], …)`): the filter/compact idiom reuses the existing
//     backing array;
//   - a `// simlint:prealloc <why>` marker on the line or the line above,
//     stating where the capacity was provisioned (constructor slab, pool).
//
// `make` on the hot path is hotalloc's finding, not this analyzer's.
func AppendHot() *Analyzer {
	a := &Analyzer{
		Name:      "appendhot",
		Doc:       "flags append growth in hot-path-reachable functions without preallocation evidence",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		for _, file := range pass.Files {
			f := file
			forEachHotDeclInFile(pass, prog, f, func(obj *types.Func, fd *ast.FuncDecl) {
				where := hotWhere(prog, obj)
				resliced := reslicedLocals(pass, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isBuiltinCall(pass.Info, call, "append") {
						return true
					}
					if len(call.Args) > 0 {
						dst := ast.Unparen(call.Args[0])
						if _, ok := dst.(*ast.SliceExpr); ok {
							return true // compact/filter idiom: reuses backing storage
						}
						if id, ok := dst.(*ast.Ident); ok && resliced[pass.Info.Uses[id]] {
							return true // local initialized from a reslice: same idiom
						}
					}
					line := pass.Fset.Position(call.Pos()).Line
					if hasMarker(pass.Fset, f, line, "simlint:prealloc") {
						return true
					}
					pass.Reportf(call.Pos(), "append without preallocation evidence %s; provision capacity at construction and mark the site simlint:prealloc", where)
					return true
				})
			})
		}
	}
	return a
}

// ClosureCap returns the closurecap analyzer: function literals that
// capture an enclosing variable by reference — the variable is assigned or
// address-taken inside the literal — when the literal runs on the hot
// path. A by-reference capture forces the variable itself onto the heap
// (the compiler's "moved to heap" diagnostic), and every hot invocation
// then chases the extra pointer. Two placements are checked: literals
// inside hot functions, and literals handed as arguments to a call whose
// resolved callee is hot (a callback built cold but invoked per cycle).
// Read-only captures are not flagged — the compiler copies those.
func ClosureCap() *Analyzer {
	a := &Analyzer{
		Name:      "closurecap",
		Doc:       "flags closures capturing variables by reference on the hot path",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				enclosingHot := prog.HotInfo(obj) != nil
				litArgOfHotCall := literalsPassedToHotCalls(pass, prog, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					lit, ok := n.(*ast.FuncLit)
					if !ok {
						return true
					}
					hot := enclosingHot
					context := "created " + hotWhere(prog, obj)
					if callee := litArgOfHotCall[lit]; callee != nil && !enclosingHot {
						hot = true
						context = "passed to hot-path function " + funcDisplayName(callee)
					}
					if !hot {
						return true
					}
					for _, v := range byRefCaptures(pass, lit) {
						pass.Reportf(lit.Pos(), "closure captures %s by reference (%s); the variable moves to the heap — carry the state in a struct field instead", v.Name(), context)
					}
					return true
				})
			}
		}
	}
	return a
}

// literalsPassedToHotCalls maps each function literal appearing as a
// direct call argument in fd to the hot callee receiving it (nil entry /
// missing key when the callee is not hot or unresolved).
func literalsPassedToHotCalls(pass *Pass, prog *Program, fd *ast.FuncDecl) map[*ast.FuncLit]*types.Func {
	out := make(map[*ast.FuncLit]*types.Func)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var hotCallee *types.Func
		for _, callee := range prog.CalleesAt(pass.Info, call) {
			if prog.Hot[callee] {
				hotCallee = callee
				break
			}
		}
		if hotCallee == nil {
			return true
		}
		for _, arg := range call.Args {
			if lit, okl := ast.Unparen(arg).(*ast.FuncLit); okl {
				out[lit] = hotCallee
			}
		}
		return true
	})
	return out
}

// byRefCaptures returns the enclosing-function variables that lit captures
// by reference: referenced inside the literal and assigned or
// address-taken there. Package-level variables and struct fields are not
// captures; parameters and locals of the literal itself are excluded by
// position.
func byRefCaptures(pass *Pass, lit *ast.FuncLit) []*types.Var {
	captured := make(map[*types.Var]bool)
	var order []*types.Var
	note := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return
		}
		// Declared before the literal and outside package scope: a capture.
		if v.Parent() == pass.Pkg.Scope() || v.Pkg() == nil {
			return
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return // the literal's own parameter or local
		}
		if !captured[v] {
			captured[v] = true
			order = append(order, v)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				note(x.X)
			}
		}
		return true
	})
	return order
}

// reslicedLocals collects the local variables of fd that are assigned
// from an explicit reslice (`kept := s[:0]`, `buf = buf[:n]`): appending
// into such a variable reuses existing backing storage, so the filter /
// compact idiom passes without a marker.
func reslicedLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if _, ok := ast.Unparen(as.Rhs[i]).(*ast.SliceExpr); !ok {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
			if obj := pass.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// forEachHotDecl visits every hot-path function declared in the pass's
// files, in file order.
func forEachHotDecl(pass *Pass, prog *Program, visit func(*types.Func, *ast.FuncDecl)) {
	for _, file := range pass.Files {
		forEachHotDeclInFile(pass, prog, file, visit)
	}
}

func forEachHotDeclInFile(pass *Pass, prog *Program, file *ast.File, visit func(*types.Func, *ast.FuncDecl)) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok || prog.HotInfo(obj) == nil {
			continue
		}
		visit(obj, fd)
	}
}
