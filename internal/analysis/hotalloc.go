package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc returns the hotalloc analyzer: inside any function the call
// graph proves reachable from the per-cycle roots (HotPathRoots), it flags
// the allocation patterns that turn a cycle-accurate simulator's inner
// loop into a garbage-collector benchmark:
//
//   - heap allocations: make, new, and &T{...} composite-literal escapes;
//   - fmt calls and strings.Builder use — formatting belongs in reporting
//     code, never on the per-cycle path;
//   - closure creation: function literals and method values (m.f used as a
//     value allocates a fresh closure at every evaluation);
//   - boxing: passing or converting a non-pointer concrete value to an
//     interface parameter, which heap-allocates the copy;
//   - map iteration, which is both cache-hostile and (per detmap)
//     nondeterministically ordered.
//
// Arguments to panic are exempt: a panicking simulator's allocation rate
// is irrelevant. A function whose hot-path work is genuinely amortised or
// cold (a slab refill, a once-per-run flush) opts out with a
// `// simlint:coldpath <why>` marker on its declaration, which also stops
// reachability propagating through it; a single site can instead use the
// generic `// simlint:ignore hotalloc <why>`.
//
// hotalloc needs whole-program facts (Pass.Program); with no program
// attached it reports nothing.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name:      "hotalloc",
		Doc:       "flags allocations, formatting, closures, boxing, and map iteration in hot-path-reachable functions",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok || prog.HotInfo(obj) == nil {
					continue
				}
				checkHotFunc(pass, prog, obj, fd)
			}
		}
	}
	return a
}

// checkHotFunc walks one hot function's body and reports allocation
// patterns, skipping panic arguments.
func checkHotFunc(pass *Pass, prog *Program, obj *types.Func, fd *ast.FuncDecl) {
	where := hotWhere(prog, obj)
	// Selectors appearing as a call's Fun are ordinary method calls, not
	// method values; collect them first so the selector case can tell the
	// difference.
	calledFuns := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calledFuns[call.Fun] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(pass, x) {
				return false // terminal path: allocation cost is irrelevant
			}
			checkCall(pass, x, where)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "heap allocation (&composite literal) %s; reuse a pooled or preallocated object", where)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "function literal %s allocates a closure per evaluation; hoist it or use a method on existing state", where)
			return false // the literal's body is attributed to this function anyway
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.MethodVal && !calledFuns[x] {
				pass.Reportf(x.Pos(), "method value %s.%s %s allocates a closure per evaluation; bind it once at construction",
					exprString(x.X), x.Sel.Name, where)
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "map iteration %s; use an index-keyed slice on the hot path", where)
				}
			}
		}
		return true
	})
}

// checkCall classifies one (non-panic) call expression in a hot function.
func checkCall(pass *Pass, call *ast.CallExpr, where string) {
	// Builtin allocators.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, okb := pass.Info.Uses[id].(*types.Builtin); okb {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "heap allocation (make) %s; preallocate at construction and reuse", where)
			case "new":
				pass.Reportf(call.Pos(), "heap allocation (new) %s; preallocate at construction and reuse", where)
			}
			return
		}
	}
	// fmt and strings.Builder.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if packageOf(pass, sel) == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s call %s; formatting allocates — move it off the per-cycle path", sel.Sel.Name, where)
			return
		}
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if isStringsBuilder(s.Recv()) {
				pass.Reportf(call.Pos(), "strings.Builder use %s; string assembly allocates — move it off the per-cycle path", where)
				return
			}
		}
	}
	// Conversion to an interface type boxes the operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(pass, tv.Type, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface %s boxes its operand %s; keep the concrete type or pass a pointer",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), where)
		}
		return
	}
	// Boxing at interface-typed parameters.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass, pt, arg) {
			pass.Reportf(arg.Pos(), "argument boxes a concrete value into interface %s %s; keep the concrete type or pass a pointer",
				types.TypeString(pt, types.RelativeTo(pass.Pkg)), where)
		}
	}
}

// boxes reports whether passing arg as a value of type param heap-boxes
// it: the parameter is an interface, the argument is a concrete non-pointer
// value (pointers fit in the interface word without copying).
func boxes(pass *Pass, param types.Type, arg ast.Expr) bool {
	if _, ok := param.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	at := tv.Type
	if at == types.Typ[types.UntypedNil] {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return false
	}
	return true
}

// callSignature resolves the signature of a call's callee, nil for
// builtins and type conversions.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isStringsBuilder reports whether t (or *t) is strings.Builder.
func isStringsBuilder(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Builder" && obj.Pkg() != nil && obj.Pkg().Path() == "strings"
}

// hotWhere renders the "in hot-path function f (reachable from root)"
// suffix for diagnostics.
func hotWhere(prog *Program, obj *types.Func) string {
	name := funcDisplayName(obj)
	root := prog.HotRoot[obj]
	if root == nil || root == obj {
		return "in hot-path function " + name
	}
	return "in hot-path function " + name + " (reachable from " + funcDisplayName(root) + ")"
}

// funcDisplayName renders Type.method or plain function names.
func funcDisplayName(fn *types.Func) string {
	if recv := receiverTypeNameOf(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

// exprString renders a short source-ish form of simple receiver
// expressions for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expr"
}
