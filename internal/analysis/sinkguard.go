package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SinkGuard returns the sinkguard analyzer: in the pipeline package, any
// function that builds an observability record (a composite literal of a
// sink's event type) or delivers one (a call through a *Sink interface)
// must first nil-check a sink. The observability layer's contract is
// zero overhead when off — one pointer compare per instrumentation site —
// and that contract only holds if the nil check dominates the record
// construction. An emitter that assembles the record before (or without)
// checking its sink silently re-introduces per-event cost into every
// unobserved run.
//
// A "sink" is a named interface type whose name ends in Sink (the
// obs.EventSink / obs.IntervalSink idiom); its event types are the named
// struct parameters of its methods. The guard is any `== nil` / `!= nil`
// comparison of a sink-typed expression appearing earlier in the same
// function body. Functions that only *compute* what to emit and delegate
// to a guarded emitter are fine: they touch neither the sink nor the
// record type.
func SinkGuard() *Analyzer {
	a := &Analyzer{
		Name: "sinkguard",
		Doc:  "requires sink emitters to nil-check their sink before building or delivering an event",
		AppliesTo: func(pkgPath string) bool {
			return strings.HasSuffix(pkgPath, "internal/pipeline") ||
				strings.HasSuffix(pkgPath, "internal/serve") ||
				strings.HasSuffix(pkgPath, "internal/dispatch") ||
				strings.HasSuffix(pkgPath, "internal/trace") ||
				strings.HasSuffix(pkgPath, "internal/sample") ||
				strings.HasSuffix(pkgPath, "internal/snap")
		},
	}
	a.Run = func(pass *Pass) {
		eventTypes := sinkEventTypes(pass)
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkEmitter(pass, fn, eventTypes)
			}
		}
	}
	return a
}

// sinkEventTypes collects the event types of every *Sink interface visible
// to the package: named struct types appearing as parameters of sink
// interface methods, in this package's scope and its imports'.
func sinkEventTypes(pass *Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	scopes := []*types.Scope{pass.Pkg.Scope()}
	for _, imp := range pass.Pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !strings.HasSuffix(tn.Name(), "Sink") {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				sig := iface.Method(i).Type().(*types.Signature)
				for j := 0; j < sig.Params().Len(); j++ {
					pt := sig.Params().At(j).Type()
					if ptr, okp := pt.(*types.Pointer); okp {
						pt = ptr.Elem()
					}
					if named, okn := pt.(*types.Named); okn {
						if _, oks := named.Underlying().(*types.Struct); oks {
							out[named.Obj()] = true
						}
					}
				}
			}
		}
	}
	return out
}

// checkEmitter flags unguarded sink uses in one function.
func checkEmitter(pass *Pass, fn *ast.FuncDecl, eventTypes map[*types.TypeName]bool) {
	var uses []ast.Node // sink calls and event literals, in source order
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if s, oks := pass.Info.Selections[sel]; oks && s.Kind() == types.MethodVal && isSinkType(s.Recv()) {
					uses = append(uses, x)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[x]; ok {
				t := tv.Type
				if ptr, okp := t.(*types.Pointer); okp {
					t = ptr.Elem()
				}
				if named, okn := t.(*types.Named); okn && eventTypes[named.Obj()] {
					uses = append(uses, x)
				}
			}
		}
		return true
	})
	if len(uses) == 0 {
		return
	}

	guardPos := sinkGuardPos(pass, fn.Body)
	for _, use := range uses {
		if guardPos.IsValid() && guardPos < use.Pos() {
			continue
		}
		pass.Reportf(use.Pos(),
			"sink emitter %s builds or delivers an event without first nil-checking its sink; guard with `if sink == nil { return }` to keep observability free when off",
			fn.Name.Name)
	}
}

// sinkGuardPos returns the position of the first nil comparison of a
// sink-typed expression in body, or token.NoPos.
func sinkGuardPos(pass *Pass, body *ast.BlockStmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			if id, ok := pair[1].(*ast.Ident); !ok || id.Name != "nil" {
				continue
			}
			if tv, ok := pass.Info.Types[pair[0]]; ok && isSinkType(tv.Type) {
				pos = be.Pos()
				return false
			}
		}
		return true
	})
	return pos
}

// isSinkType reports whether t is a named interface whose name ends in
// Sink.
func isSinkType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if !strings.HasSuffix(named.Obj().Name(), "Sink") {
		return false
	}
	_, ok = named.Underlying().(*types.Interface)
	return ok
}
