package analysis

import (
	"go/ast"
	"go/types"
)

// noclockBanned lists the wall-clock and ambient-randomness entry points
// that must not appear in simulator code: every cycle-level outcome has to
// be a pure function of (Config, Seed), or results stop being reproducible.
// Constructing a seeded generator (rand.New, rand.NewSource, rand.NewZipf)
// is the sanctioned path and stays allowed.
var noclockBanned = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time",
		"Since": "wall-clock time",
		"Until": "wall-clock time",
	},
	"math/rand": {
		"Int": "global rand", "Intn": "global rand", "Int31": "global rand",
		"Int31n": "global rand", "Int63": "global rand", "Int63n": "global rand",
		"Uint32": "global rand", "Uint64": "global rand", "Float32": "global rand",
		"Float64": "global rand", "NormFloat64": "global rand", "ExpFloat64": "global rand",
		"Perm": "global rand", "Shuffle": "global rand", "Read": "global rand",
		"Seed": "global rand",
	},
	"math/rand/v2": {
		"Int": "global rand", "IntN": "global rand", "Int32": "global rand",
		"Int32N": "global rand", "Int64": "global rand", "Int64N": "global rand",
		"Uint32": "global rand", "Uint64": "global rand", "UintN": "global rand",
		"Float32": "global rand", "Float64": "global rand", "NormFloat64": "global rand",
		"ExpFloat64": "global rand", "Perm": "global rand", "Shuffle": "global rand",
		"N": "global rand",
	},
}

// NoClock returns the noclock analyzer: it forbids time.Now/Since/Until and
// the package-level math/rand functions in the simulator's internal
// packages. All randomness must flow through a seeded *rand.Rand carried in
// the configuration, and simulated time is the cycle counter, never the
// host clock.
func NoClock() *Analyzer {
	a := &Analyzer{
		Name:      "noclock",
		Doc:       "forbids wall-clock time and unseeded global randomness in simulator code",
		AppliesTo: internalOnly,
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				banned, ok := noclockBanned[pkgName.Imported().Path()]
				if !ok {
					return true
				}
				kind, ok := banned[sel.Sel.Name]
				if !ok {
					return true
				}
				pass.Reportf(sel.Pos(),
					"%s.%s (%s) in simulator code: results must be a pure function of (Config, Seed); use the cycle counter or a seeded *rand.Rand",
					pkgName.Imported().Name(), sel.Sel.Name, kind)
				return true
			})
		}
	}
	return a
}
