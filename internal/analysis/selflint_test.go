package analysis

import (
	"strings"
	"testing"
)

// loadRepo loads the whole module once per test that needs it.
func loadRepo(t *testing.T, patterns ...string) (*Loader, []*Package) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		t.Fatal(err)
	}
	return loader, pkgs
}

// TestRepoCleanUnderSimlint is the suite's own acceptance test: running
// every analyzer over the repository must produce zero findings, exactly as
// `go run ./cmd/simlint ./...` in the tier-1 flow does.
func TestRepoCleanUnderSimlint(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	loader, pkgs := loadRepo(t, "./...")
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing parts of the module", len(pkgs))
	}
	for _, d := range RunAnalyzers(loader, pkgs, All()) {
		t.Errorf("%s", d)
	}
}

func TestLoaderModulePath(t *testing.T) {
	loader, pkgs := loadRepo(t, "./internal/stats")
	if loader.ModulePath() != "loosesim" {
		t.Fatalf("module path = %q, want loosesim", loader.ModulePath())
	}
	if len(pkgs) != 1 || pkgs[0].Path != "loosesim/internal/stats" {
		t.Fatalf("patterns selected %v, want exactly loosesim/internal/stats", pkgPaths(pkgs))
	}
	if pkgs[0].Types == nil || pkgs[0].Info == nil {
		t.Fatal("selected package was not typechecked")
	}
}

func TestLoaderSubtreePattern(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	_, pkgs := loadRepo(t, "./internal/...")
	if len(pkgs) == 0 {
		t.Fatal("no packages matched ./internal/...")
	}
	for _, p := range pkgs {
		if !strings.HasPrefix(p.Path, "loosesim/internal/") {
			t.Errorf("pattern ./internal/... selected %s", p.Path)
		}
	}
	// The analysis package itself must be among them: the linter lints
	// its own sources.
	if !contains(pkgPaths(pkgs), "loosesim/internal/analysis") {
		t.Error("./internal/... did not select loosesim/internal/analysis")
	}
}

func pkgPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestMatches(t *testing.T) {
	cases := []struct {
		path, pat string
		want      bool
	}{
		{"loosesim", ".", true},
		{"loosesim/internal/stats", ".", false},
		{"loosesim/internal/stats", "./...", true},
		{"loosesim/internal/stats", "./internal/...", true},
		{"loosesim/internal/stats", "./internal/stats", true},
		{"loosesim/internal/stats", "internal/stats", true},
		{"loosesim/internal/stats", "loosesim/internal/stats", true},
		{"loosesim/cmd/simlint", "./internal/...", false},
		{"loosesim/internal/statsdir", "./internal/stats/...", false},
	}
	for _, c := range cases {
		if got := matches(c.path, "loosesim", c.pat); got != c.want {
			t.Errorf("matches(%q, %q) = %v, want %v", c.path, c.pat, got, c.want)
		}
	}
}
