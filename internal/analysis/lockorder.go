package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder returns the lockorder analyzer: it builds a per-package mutex
// acquisition graph and flags (a) calls made while holding a lock into
// functions that may acquire the same lock — Go mutexes are not reentrant,
// so that is a self-deadlock, not a slow path — and (b) lock-order cycles:
// some code path acquires A then B while another acquires B then A, the
// classic two-goroutine deadlock that only fires under load.
//
// Locks are identified by stable keys ("Server.mu" for a field on a named
// receiver type, "pkg.var" for a package-level mutex); locks held in local
// variables are invisible to the graph, which matches how the serving
// stack actually structures its state. The held-set at a call site is a
// lexical replay of the function's Lock/Unlock operations, so a
// conditional early unlock under-approximates (a finding may be missed,
// never invented); `defer mu.Unlock()` holds to the end of the function.
//
// What a callee "may acquire" is an interprocedural fixpoint over the call
// graph: the keys it locks directly, plus everything its callees (with
// interface calls fanned out to every implementation) may acquire.
// TryLock is ignored on both sides — a failed TryLock is not an
// acquisition.
//
// lockorder needs whole-program facts (Pass.Program); with no program
// attached it reports nothing.
func LockOrder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "flags lock-held calls that may re-acquire the held lock, and lock-order cycles",
		AppliesTo: func(pkgPath string) bool {
			return internalOnly(pkgPath) || strings.Contains(pkgPath, "/cmd/")
		},
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		may := prog.mayAcquireSummaries()

		// acquisition edges A -> B discovered in this package, with the
		// position that witnesses each edge.
		type edge struct {
			from, to string
			pos      token.Pos
			via      string // callee display name for indirect edges, "" for direct Lock
		}
		var edges []edge

		for _, fi := range prog.FuncsInOrder() {
			if fi.Pkg.Types != pass.Pkg {
				continue
			}
			events := collectLockEvents(pass.Info, fi.Decl.Body)
			// Direct edges: a Lock while another key is held. Synthetic
			// restore events are replay bookkeeping, not acquisitions.
			for _, ev := range events {
				if !ev.acquire || ev.restore {
					continue
				}
				for _, held := range heldAt(events, ev.pos) {
					if held == ev.key {
						pass.Reportf(ev.pos,
							"%s acquired while already held in %s; Go mutexes are not reentrant — this deadlocks",
							ev.key, funcDisplayName(fi.Obj))
						continue
					}
					edges = append(edges, edge{from: held, to: ev.key, pos: ev.pos})
				}
			}
			// Indirect edges and self-deadlocks: calls under a held lock.
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, _, isMutexOp := mutexOpOf(pass.Info, call); isMutexOp {
					return true
				}
				held := heldAt(events, call.Pos())
				if len(held) == 0 {
					return true
				}
				for _, callee := range prog.CalleesAt(pass.Info, call) {
					acq := sortedBoolKeys(may[callee])
					if len(acq) == 0 {
						continue
					}
					for _, h := range held {
						if containsKey(acq, h) {
							pass.Reportf(call.Pos(),
								"call to %s while holding %s, and %s may acquire %s (transitively); Go mutexes are not reentrant — this deadlocks",
								funcDisplayName(callee), h, funcDisplayName(callee), h)
							continue
						}
						for _, b := range acq {
							edges = append(edges, edge{from: h, to: b, pos: call.Pos(), via: funcDisplayName(callee)})
						}
					}
				}
				return true
			})
		}

		// Cycle detection over this package's acquisition graph: an edge is
		// on a cycle when its target reaches its source.
		succ := make(map[string][]string)
		for _, e := range edges {
			if !containsKey(succ[e.from], e.to) {
				succ[e.from] = append(succ[e.from], e.to)
			}
		}
		for _, e := range edges {
			if !keyReaches(succ, e.to, e.from) {
				continue
			}
			how := "acquired directly"
			if e.via != "" {
				how = "acquired via " + e.via
			}
			pass.Reportf(e.pos,
				"lock-order cycle: %s is %s while %s is held, but another path acquires %s while holding %s — deadlock under contention; pick one acquisition order",
				e.to, how, e.from, e.from, e.to)
		}
	}
	return a
}

// mayAcquireSummaries computes (once per Program) which lock keys each
// function may acquire, directly or through calls, as a fixpoint over the
// call graph.
func (p *Program) mayAcquireSummaries() map[*types.Func]map[string]bool {
	p.mayAcquireOnce.Do(func() {
		may := make(map[*types.Func]map[string]bool)
		// Seed with direct acquisitions.
		for _, fi := range p.funcsInOrder {
			direct := make(map[string]bool)
			for _, ev := range collectLockEvents(fi.Pkg.Info, fi.Decl.Body) {
				if ev.acquire && !ev.restore {
					direct[ev.key] = true
				}
			}
			may[fi.Obj] = direct
		}
		// Propagate along call edges to a fixpoint; the lattice is finite
		// (key sets only grow), so this terminates.
		for changed := true; changed; {
			changed = false
			for _, fi := range p.funcsInOrder {
				mine := may[fi.Obj]
				for _, callee := range p.Calls[fi.Obj] {
					theirs, ok := may[callee]
					if !ok {
						continue
					}
					for _, k := range sortedBoolKeys(theirs) {
						if !mine[k] {
							mine[k] = true
							changed = true
						}
					}
				}
			}
		}
		p.mayAcquire = may
	})
	return p.mayAcquire
}

// sortedBoolKeys returns a bool-set's keys in sorted order (deterministic
// iteration, per detmap's own rule).
func sortedBoolKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keyReaches reports whether from reaches to in the acquisition graph.
func keyReaches(succ map[string][]string, from, to string) bool {
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		if k == to {
			return true
		}
		for _, next := range succ[k] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}
