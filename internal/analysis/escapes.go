package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the perf-analysis layer's compiler half: it runs the Go
// compiler in diagnostic mode over the module, parses the escape-analysis,
// inlining, and bounds-check elimination output into typed records, and
// joins them against the call graph so that only diagnostics landing inside
// hot-path-reachable functions survive. Cold-path escapes are dropped for
// the same reason hotalloc honours `simlint:coldpath` markers: a
// once-per-run allocation in a constructor or a failure path is not a
// performance fact worth budgeting, and keeping it in the ratchet would
// train people to ignore the report.
//
// Unlike the analyzers, this layer deliberately shells out to the go
// command: escape and inlining decisions belong to the compiler, and
// re-deriving them statically would drift from what actually ships. The
// loader's offline guarantee is unaffected — `go build` here compiles the
// local module only, no network involved — and the build cache replays the
// diagnostic output of unchanged packages, so repeat runs are cheap.

// PerfKind classifies one performance diagnostic.
type PerfKind string

// The budgeted kinds. The first three come from the compiler; dispatch
// comes from the ifacedispatch site walker so that sanctioned interface
// calls on the hot path are counted (and ratcheted) even though the
// analyzer does not report them as findings.
const (
	PerfEscape      PerfKind = "escape"
	PerfNoInline    PerfKind = "noinline"
	PerfBoundsCheck PerfKind = "boundscheck"
	PerfDispatch    PerfKind = "dispatch"
)

// GCDiagFlags is the compiler flag set the perf layer builds with:
// escape/inline decisions (-m -m) plus bounds-check elimination debugging.
const GCDiagFlags = "-m -m -d=ssa/check_bce/debug=1"

// RawDiag is one compiler diagnostic before hot-path attribution.
type RawDiag struct {
	File    string // as printed by the compiler: module-root-relative, slash form
	Line    int
	Col     int
	Kind    PerfKind
	Message string
}

// PerfDiag is one hot-path-attributed performance finding.
type PerfDiag struct {
	Kind     PerfKind `json:"kind"`
	Position string   `json:"position"` // file:line:col, module-root-relative
	Pkg      string   `json:"package"`  // module-relative import path, e.g. internal/pipeline
	Func     string   `json:"function"` // display name of the hot function
	Root     string   `json:"root"`     // hot root whose traversal reached Func
	Message  string   `json:"message"`
}

func (d PerfDiag) String() string {
	return fmt.Sprintf("%s: perf[%s]: %s in hot-path function %s (reachable from %s)",
		d.Position, d.Kind, d.Message, d.Func, d.Root)
}

// CompilerDiags builds the module at root with GCDiagFlags and parses the
// diagnostic stream. Patterns default to ./... so the join sees every
// package the call graph does.
func CompilerDiags(root string, patterns []string) ([]RawDiag, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"build", "-gcflags=" + GCDiagFlags}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	return ParseCompilerDiags(string(out)), nil
}

// ParseCompilerDiags extracts the escape, inlining-failure, and
// bounds-check records from compiler diagnostic output. Everything else —
// positive inlining decisions, parameter-leak detail, "does not escape"
// confirmations, flow traces, package headers — is deliberately dropped:
// the perf layer budgets costs, not explanations.
func ParseCompilerDiags(output string) []RawDiag {
	var out []RawDiag
	seen := make(map[string]bool)
	for _, line := range strings.Split(output, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, lineNo, col, msg, ok := splitDiagLine(line)
		if !ok {
			continue
		}
		kind, message, ok := classifyDiag(msg)
		if !ok {
			continue
		}
		d := RawDiag{File: filepath.ToSlash(file), Line: lineNo, Col: col,
			Kind: kind, Message: message}
		key := fmt.Sprintf("%s:%d:%d:%s:%s", d.File, d.Line, d.Col, d.Kind, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// splitDiagLine parses the compiler's `file.go:line:col: message` shape.
func splitDiagLine(line string) (file string, lineNo, col int, msg string, ok bool) {
	rest := line
	i := strings.Index(rest, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = rest[:i+3]
	rest = rest[i+4:]
	j := strings.Index(rest, ":")
	if j < 0 {
		return "", 0, 0, "", false
	}
	lineNo, err := strconv.Atoi(rest[:j])
	if err != nil {
		return "", 0, 0, "", false
	}
	rest = rest[j+1:]
	k := strings.Index(rest, ":")
	if k < 0 {
		return "", 0, 0, "", false
	}
	col, err = strconv.Atoi(rest[:k])
	if err != nil {
		return "", 0, 0, "", false
	}
	msg = strings.TrimSpace(rest[k+1:])
	return file, lineNo, col, msg, msg != ""
}

// classifyDiag maps one compiler message to a budgeted kind, or drops it.
func classifyDiag(msg string) (PerfKind, string, bool) {
	switch {
	case strings.HasPrefix(msg, "flow:") || strings.HasPrefix(msg, "from "):
		return "", "", false // -m -m escape flow traces
	case strings.HasPrefix(msg, "leaking param"):
		return "", "", false // a leak is not itself an allocation
	case strings.Contains(msg, "does not escape"):
		return "", "", false
	case strings.HasPrefix(msg, `"`):
		// A constant string "escaping" into an interface (panic messages,
		// inlined or not) is materialized as static data by the compiler,
		// not a runtime allocation — nothing to budget.
		return "", "", false
	case strings.HasPrefix(msg, "moved to heap:"),
		strings.HasSuffix(msg, "escapes to heap"),
		strings.HasSuffix(msg, "escapes to heap:"):
		return PerfEscape, strings.TrimSuffix(msg, ":"), true
	case strings.HasPrefix(msg, "cannot inline "):
		return PerfNoInline, msg, true
	case msg == "Found IsInBounds":
		return PerfBoundsCheck, "bounds check (IsInBounds)", true
	case msg == "Found IsSliceInBounds":
		return PerfBoundsCheck, "bounds check (IsSliceInBounds)", true
	}
	return "", "", false
}

// funcExtent is one declared function's file range, for position joins.
type funcExtent struct {
	file      string // module-root-relative slash path
	startLine int
	endLine   int
	fi        *FuncInfo
}

// hotExtents indexes the hot set by file so raw diagnostics can be
// attributed by containment. Root is the loader's module root; compiler
// paths are relative to it.
func hotExtents(prog *Program, root string) map[string][]funcExtent {
	fset := prog.Fset
	idx := make(map[string][]funcExtent)
	for _, fi := range prog.FuncsInOrder() {
		if !prog.Hot[fi.Obj] {
			continue
		}
		start := fset.Position(fi.Decl.Pos())
		end := fset.Position(fi.Decl.End())
		file := start.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		idx[file] = append(idx[file], funcExtent{
			file: file, startLine: start.Line, endLine: end.Line, fi: fi,
		})
	}
	return idx
}

// JoinHot attributes raw compiler diagnostics to hot-path functions,
// dropping everything that lands outside the hot set. Inlining failures
// join at the function declaration itself (the compiler reports them
// there); escapes and bounds checks join by body containment. Escapes on
// panic-argument lines are exempt for hotalloc's reason — a panicking
// simulator's allocation rate is irrelevant, and boxing a message for
// panic never happens on a run that completes. A `simlint:ignore perf
// <why>` comment on or above the diagnostic line suppresses it like any
// analyzer finding would be.
func JoinHot(prog *Program, root string, raws []RawDiag) []PerfDiag {
	idx := hotExtents(prog, root)
	var out []PerfDiag
	for _, raw := range raws {
		var fi *FuncInfo
		for _, ext := range idx[raw.File] {
			if raw.Line < ext.startLine || raw.Line > ext.endLine {
				continue
			}
			if raw.Kind == PerfNoInline && raw.Line != ext.startLine {
				continue // inline failures belong to the declaring line
			}
			// Nested declarations cannot overlap in Go; first hit wins.
			fi = ext.fi
			break
		}
		if fi == nil {
			continue // cold path: not budgeted
		}
		if raw.Kind == PerfEscape && onPanicLine(prog.Fset, fi, raw.Line) {
			continue
		}
		if perfSuppressed(prog.Fset, fi, raw) {
			continue
		}
		rootFn := fi.Obj
		if r := prog.HotRoot[fi.Obj]; r != nil {
			rootFn = r
		}
		out = append(out, PerfDiag{
			Kind:     raw.Kind,
			Position: fmt.Sprintf("%s:%d:%d", raw.File, raw.Line, raw.Col),
			Pkg:      modRelPkg(fi.Pkg.Path),
			Func:     funcDisplayName(fi.Obj),
			Root:     funcDisplayName(rootFn),
			Message:  raw.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Position != out[j].Position {
			return out[i].Position < out[j].Position
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// onPanicLine reports whether line falls inside a panic call's extent in
// fi's body.
func onPanicLine(fset *token.FileSet, fi *FuncInfo, line int) bool {
	info := fi.Pkg.Info
	hit := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if hit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, okb := info.Uses[id].(*types.Builtin); !okb || b.Name() != "panic" {
			return true
		}
		if fset.Position(call.Pos()).Line <= line && line <= fset.Position(call.End()).Line {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// perfSuppressed honours `simlint:ignore perf` comments for joined
// compiler diagnostics, reusing the analyzer suppression syntax.
func perfSuppressed(fset *token.FileSet, fi *FuncInfo, raw RawDiag) bool {
	for _, cg := range fi.File.Comments {
		for _, c := range cg.List {
			names, ok := parseIgnore(c.Text)
			if !ok || !names["perf"] && !names["all"] {
				continue
			}
			l := fset.Position(c.Pos()).Line
			if l == raw.Line || l == raw.Line-1 {
				return true
			}
		}
	}
	return false
}

// modRelPkg strips the module path from an import path, so budgets read
// as internal/pipeline rather than loosesim/internal/pipeline.
func modRelPkg(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
