package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlowRoots names the request-path entry points of the serving stack in
// addition to every HTTP-handler-shaped function (func(http.ResponseWriter,
// *http.Request)): specs use the HotPathRoots grammar — "Type.method" or a
// bare function name.
var CtxFlowRoots = []string{
	// The sweep coordinator's batch entry: everything it reaches runs on
	// behalf of a caller-supplied context.
	"Coordinator.RunAll",
}

// CtxFlow returns the ctxflow analyzer: every blocking operation in a
// function the call graph proves reachable from a request-path root must
// have a cancellation-derived exit, and every goroutine spawned on the
// request path must be able to observe one. A serving daemon built on a
// cycle-accurate simulator holds requests open for seconds; a blocking
// wait that cannot observe ctx.Done keeps burning a worker after the
// client is gone — the serving-layer analogue of the paper's loose loops,
// where work already in flight is work the machine cannot take back.
//
// Blocking operations and their sanctioned forms:
//
//   - bare channel receive: allowed only from a context's Done() channel
//     or a time.After/time.Tick timer;
//   - bare channel send: allowed when the channel resolves (def-use) to a
//     local make whose constant capacity covers every static send site in
//     the function — the buffered fan-in idiom can never block;
//   - select: needs a default clause, a receive from a Done() call, or a
//     receive from a struct{} signal channel (the stop-channel idiom);
//   - range over a channel: allowed — exit is close-driven, and chanclose/
//     goleak police the closing discipline;
//   - sync.WaitGroup.Wait: allowed when every goroutine the function
//     spawns can observe a context or signal channel (bounded workers that
//     all exit on cancel), flagged otherwise;
//   - time.Sleep: always flagged — sleeping cannot be cancelled; use a
//     timer in a select.
//
// Spawn rule: a goroutine spawned in a reachable function must reference a
// context.Context, receive from (or select on) a struct{} signal channel,
// or range over a channel. One with none of these has no exit path a
// cancellation can reach.
//
// ctxflow needs whole-program facts (Pass.Program); with no program
// attached it reports nothing.
func CtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "requires blocking ops reachable from request handlers to be cancellable",
		AppliesTo: func(pkgPath string) bool {
			return internalOnly(pkgPath) || strings.Contains(pkgPath, "/cmd/")
		},
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		var roots []*types.Func
		for _, fi := range prog.FuncsInOrder() {
			if isHTTPHandlerShaped(fi.Obj) || matchesFuncSpec(fi.Obj, CtxFlowRoots) {
				roots = append(roots, fi.Obj)
			}
		}
		reachable := prog.ReachableFrom(roots)
		for _, fi := range prog.FuncsInOrder() {
			root, ok := reachable[fi.Obj]
			if !ok || fi.Pkg.Types != pass.Pkg {
				continue
			}
			checkCtxFlowFunc(pass, prog, fi, root)
		}
	}
	return a
}

// isHTTPHandlerShaped reports whether fn's parameters are exactly
// (net/http.ResponseWriter, *net/http.Request).
func isHTTPHandlerShaped(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	return isNetHTTPType(sig.Params().At(0).Type(), "ResponseWriter") &&
		isNetHTTPType(sig.Params().At(1).Type(), "Request")
}

func isNetHTTPType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// matchesFuncSpec matches fn against "Type.method" / bare-name specs (the
// HotPathRoots grammar).
func matchesFuncSpec(fn *types.Func, specs []string) bool {
	recv := receiverTypeNameOf(fn)
	for _, spec := range specs {
		if typ, method, ok := strings.Cut(spec, "."); ok {
			if recv == typ && fn.Name() == method {
				return true
			}
		} else if recv == "" && fn.Name() == spec {
			return true
		}
	}
	return false
}

// checkCtxFlowFunc scans one reachable function for uncancellable blocking
// operations and unexitable spawns.
func checkCtxFlowFunc(pass *Pass, prog *Program, fi *FuncInfo, root *types.Func) {
	body := fi.Decl.Body
	du := BuildDefUse(pass.Info, body)
	where := "on the request path from " + funcDisplayName(root)

	// Literals spawned as goroutines are judged by the spawn rule, not the
	// blocking scan; receives/sends that are a select's comm clause are
	// judged by the select rule.
	spawnedLits := make(map[*ast.FuncLit]bool)
	for _, site := range prog.Spawns[fi.Obj] {
		if site.Lit != nil {
			spawnedLits[site.Lit] = true
		}
		checkSpawnExit(pass, prog, site)
	}
	inSelectComm := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if comm, okc := clause.(*ast.CommClause); okc && comm.Comm != nil {
				markCommOps(comm.Comm, inSelectComm)
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if spawnedLits[x] {
				return false
			}
		case *ast.UnaryExpr:
			if x.Op != token.ARROW || inSelectComm[x] {
				return true
			}
			if isDoneCallExpr(pass.Info, x.X) || isTimerChanExpr(pass, x.X) {
				return true
			}
			// A struct{} channel receive is a signal wait (stop channel) or
			// a semaphore-token release — both resolve by design, not by
			// data arrival.
			if tv, okt := pass.Info.Types[x.X]; okt && isSignalChanType(tv.Type) {
				return true
			}
			pass.Reportf(x.Pos(),
				"blocking receive %s has no cancellation path; select on it together with ctx.Done()", where)
		case *ast.SendStmt:
			if inSelectComm[x] {
				return true
			}
			if sendCoveredByBuffer(pass.Info, du, body, x) {
				return true
			}
			pass.Reportf(x.Pos(),
				"blocking send %s can wedge if the receiver is gone; select on it together with ctx.Done() or buffer the channel for every send", where)
		case *ast.SelectStmt:
			if selectHasEscape(pass.Info, x) {
				return true
			}
			pass.Reportf(x.Pos(),
				"select %s has neither a default case nor a Done()/stop-channel case; a cancelled request cannot unblock it", where)
		case *ast.CallExpr:
			checkCtxFlowCall(pass, prog, fi, x, where)
		}
		return true
	})
}

// markCommOps marks the channel operation nodes of one select comm clause.
func markCommOps(comm ast.Stmt, set map[ast.Node]bool) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		set[s] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok {
			set[u] = true
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok {
				set[u] = true
			}
		}
	}
}

// isDoneCallExpr reports whether e is a call of a method named Done on a
// context.Context value — `ctx.Done()`.
func isDoneCallExpr(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// isTimerChanExpr reports whether e is time.After(...) or time.Tick(...),
// whose receives are deadline-bounded rather than unbounded.
func isTimerChanExpr(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return packageOf(pass, sel) == "time" && (sel.Sel.Name == "After" || sel.Sel.Name == "Tick")
}

// selectHasEscape reports whether a select can always exit on
// cancellation: a default clause, a receive from a Done() call, or a
// receive from a struct{} signal channel.
func selectHasEscape(info *types.Info, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default
		}
		for _, recv := range commReceiveOperands(comm.Comm) {
			if isDoneCallExpr(info, recv) {
				return true
			}
			if tv, okt := info.Types[recv]; okt && isSignalChanType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// commReceiveOperands extracts the channel operands of a comm clause's
// receive operations.
func commReceiveOperands(comm ast.Stmt) []ast.Expr {
	var out []ast.Expr
	collect := func(e ast.Expr) {
		if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			out = append(out, u.X)
		}
	}
	switch s := comm.(type) {
	case *ast.ExprStmt:
		collect(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			collect(rhs)
		}
	}
	return out
}

// sendCoveredByBuffer applies the buffered fan-in sanction: the channel
// resolves to a local make whose constant capacity is at least the number
// of static send sites on that variable anywhere in the declaration
// (spawned literals included — that is where fan-in sends live).
func sendCoveredByBuffer(info *types.Info, du *DefUse, body *ast.BlockStmt, send *ast.SendStmt) bool {
	v := localVarOf(info, send.Chan)
	if v == nil {
		return false
	}
	capacity, ok := du.ResolveMakeChan(send.Chan)
	if !ok {
		return false
	}
	return capacity >= countSendsOn(info, body, v)
}

// countSendsOn counts static send statements on the variable v in body.
func countSendsOn(info *types.Info, body *ast.BlockStmt, v *types.Var) int {
	n := 0
	ast.Inspect(body, func(x ast.Node) bool {
		if s, ok := x.(*ast.SendStmt); ok && localVarOf(info, s.Chan) == v {
			n++
		}
		return true
	})
	return n
}

// checkCtxFlowCall flags uncancellable blocking calls: time.Sleep always,
// WaitGroup.Wait unless every goroutine this function spawns can observe a
// cancellation.
func checkCtxFlowCall(pass *Pass, prog *Program, fi *FuncInfo, call *ast.CallExpr, where string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if packageOf(pass, sel) == "time" && sel.Sel.Name == "Sleep" {
		pass.Reportf(call.Pos(),
			"time.Sleep %s cannot be cancelled; use a timer in a select with ctx.Done()", where)
		return
	}
	if sel.Sel.Name != "Wait" {
		return
	}
	s, oksel := pass.Info.Selections[sel]
	if !oksel || s.Kind() != types.MethodVal || namedTypeNameOf(s.Recv()) != "WaitGroup" {
		return
	}
	if fn, okf := s.Obj().(*types.Func); !okf || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	spawns := prog.Spawns[fi.Obj]
	if len(spawns) == 0 {
		pass.Reportf(call.Pos(),
			"WaitGroup.Wait %s waits on goroutines spawned elsewhere; the request cannot prove they exit on cancellation", where)
		return
	}
	for _, site := range spawns {
		if !spawnHasExit(pass, prog, site) {
			pass.Reportf(call.Pos(),
				"WaitGroup.Wait %s can block forever: the goroutine spawned at line %d has no context or stop-channel exit", where,
				pass.Fset.Position(site.Go.Pos()).Line)
			return
		}
	}
}

// checkSpawnExit flags goroutines spawned on the request path with no
// cancellation-derived exit.
func checkSpawnExit(pass *Pass, prog *Program, site SpawnSite) {
	if site.Body(prog) == nil {
		return // value call or extra-program target: nothing to inspect
	}
	if spawnHasExit(pass, prog, site) {
		return
	}
	pass.Reportf(site.Go.Pos(),
		"goroutine spawned on the request path has no context or stop-channel exit; it outlives a cancelled request")
}

// spawnHasExit reports whether the spawned body can observe a
// cancellation: it references a context.Context, performs a channel
// operation on a struct{} signal channel, or ranges over a channel.
func spawnHasExit(pass *Pass, prog *Program, site SpawnSite) bool {
	body := site.Body(prog)
	if body == nil {
		return true
	}
	info := pass.Info
	if site.Lit == nil && site.Callee != nil {
		if fi := prog.Funcs[site.Callee]; fi != nil {
			info = fi.Pkg.Info
		}
	}
	// Arguments evaluated at the spawn (e.g. go run(ctx)) count too.
	if referencesContext(pass.Info, site.Go.Call) || referencesContext(info, body) {
		return true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if tv, ok := info.Types[x.X]; ok && isSignalChanType(tv.Type) {
					found = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && isChanType(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}
