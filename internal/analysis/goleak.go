package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLeak returns the goleak analyzer: it flags goroutines whose only exit
// is a send on a channel the spawner can abandon. The shape it hunts is
//
//	ch := make(chan T)          // unbuffered (or under-buffered)
//	go func() { ch <- work() }()
//	if err := precheck(); err != nil {
//		return                  // nobody will ever receive: goroutine leaks
//	}
//	v := <-ch
//
// and its select variant, where the receive competes with other cases and
// the losing goroutine blocks forever. The fix the analyzer pushes toward
// is the one the dispatch layer already uses: buffer the channel with
// capacity >= the number of static sends, so a send can never block and an
// abandoned result is just garbage-collected.
//
// For each goroutine spawned as a function literal, every send on a
// channel made in the spawning function is checked:
//
//   - constant capacity >= the declaration's static send count: safe, the
//     send cannot block (the fan-in idiom);
//   - otherwise, the spawner must visibly commit to receiving: no receive
//     at all is flagged; a receive only inside a select with other cases
//     (or a default) is flagged as abandonable; a return statement between
//     the spawn and the first receive is flagged as an early exit that
//     strands the sender.
//
// Named-function spawns are not analyzed — passing a channel into a named
// worker is an ownership transfer this lexical analysis cannot see
// through; ctxflow's spawn rule still covers their exit discipline.
func GoLeak() *Analyzer {
	a := &Analyzer{
		Name: "goleak",
		Doc:  "flags goroutine sends on channels the spawner can abandon",
		AppliesTo: func(pkgPath string) bool {
			return internalOnly(pkgPath) || strings.Contains(pkgPath, "/cmd/")
		},
	}
	a.Run = func(pass *Pass) {
		prog := pass.Program
		if prog == nil {
			return
		}
		for _, fi := range prog.FuncsInOrder() {
			if fi.Pkg.Types != pass.Pkg {
				continue
			}
			for _, site := range prog.Spawns[fi.Obj] {
				if site.Lit != nil {
					checkSpawnSends(pass, fi, site)
				}
			}
		}
	}
	return a
}

// checkSpawnSends checks every send inside one spawned literal against the
// spawner's receive discipline.
func checkSpawnSends(pass *Pass, fi *FuncInfo, site SpawnSite) {
	info := pass.Info
	body := fi.Decl.Body
	du := BuildDefUse(info, body)

	// Channels this goroutine sends on, keyed by spawner-local variable.
	sendsByChan := make(map[*types.Var][]*ast.SendStmt)
	var chansInOrder []*types.Var
	ast.Inspect(site.Lit.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		// A struct{} send is a semaphore acquire or a completion signal,
		// not a result handoff: there is no value to strand, and the
		// matching receive is legitimately in a sibling goroutine.
		if tv, okt := info.Types[s.Chan]; okt && isSignalChanType(tv.Type) {
			return true
		}
		v := localVarOf(info, s.Chan)
		if v == nil || !declaredOutside(info, site.Lit, s.Chan) {
			return true
		}
		if len(sendsByChan[v]) == 0 {
			chansInOrder = append(chansInOrder, v)
		}
		sendsByChan[v] = append(sendsByChan[v], s)
		return true
	})

	for _, v := range chansInOrder {
		sends := sendsByChan[v]
		if capacity, ok := du.ResolveMakeChan(sends[0].Chan); ok &&
			capacity >= countSendsOn(info, body, v) {
			continue // buffered past every static send: cannot block
		}
		verdict := receiveVerdict(info, body, site, v)
		for _, s := range sends {
			switch verdict {
			case recvNone:
				pass.Reportf(s.Pos(),
					"goroutine sends on %s but the spawner never receives from it; the goroutine blocks forever — buffer the channel or receive unconditionally", v.Name())
			case recvAbandonable:
				pass.Reportf(s.Pos(),
					"goroutine send on %s can be abandoned: the spawner only receives inside a select with other exits — buffer the channel with capacity for every send", v.Name())
			case recvAfterReturn:
				pass.Reportf(s.Pos(),
					"goroutine send on %s leaks on the spawner's early return before the receive; buffer the channel or receive on every path", v.Name())
			}
		}
	}
}

// declaredOutside reports whether the channel expression's variable is
// declared outside the literal (a spawner-local captured by the
// goroutine), not a parameter or local of the literal itself.
func declaredOutside(info *types.Info, lit *ast.FuncLit, ch ast.Expr) bool {
	v := localVarOf(info, ch)
	if v == nil {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

type recvKind int

const (
	recvOK recvKind = iota
	recvNone
	recvAbandonable
	recvAfterReturn
)

// receiveVerdict classifies how the spawner consumes channel v after
// spawning the goroutine at site.
func receiveVerdict(info *types.Info, body *ast.BlockStmt, site SpawnSite, v *types.Var) recvKind {
	type recv struct {
		pos      token.Pos
		inSelect bool // select with >1 case or a default
	}
	var recvs []recv
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit == site.Lit {
			return false // the goroutine's own receives do not unblock it
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && localVarOf(info, x.X) == v {
				recvs = append(recvs, recv{pos: x.Pos(), inSelect: false})
			}
		case *ast.RangeStmt:
			if localVarOf(info, x.X) == v {
				recvs = append(recvs, recv{pos: x.Pos(), inSelect: false})
			}
		case *ast.SelectStmt:
			abandonable := len(x.Body.List) > 1 || selectHasDefault(x)
			for _, clause := range x.Body.List {
				comm, okc := clause.(*ast.CommClause)
				if !okc || comm.Comm == nil {
					continue
				}
				for _, op := range commReceiveOperands(comm.Comm) {
					if localVarOf(info, op) == v {
						recvs = append(recvs, recv{pos: comm.Pos(), inSelect: abandonable})
					}
				}
			}
			return false // comm receives already collected; skip the UnaryExpr visit
		}
		return true
	})
	if len(recvs) == 0 {
		return recvNone
	}
	first := recvs[0]
	for _, r := range recvs[1:] {
		if r.pos < first.pos {
			first = r
		}
	}
	if first.inSelect {
		return recvAbandonable
	}
	if returnBetween(body, site.Go.End(), first.pos) {
		return recvAfterReturn
	}
	return recvOK
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// returnBetween reports whether a return statement (outside nested
// literals) sits lexically between lo and hi.
func returnBetween(body *ast.BlockStmt, lo, hi token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > lo && ret.End() < hi {
			found = true
		}
		return !found
	})
	return found
}
