package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture typechecks one testdata fixture file and runs the analyzer
// over it, checking the findings against the fixture's `// want "substr"`
// comments: every want line must produce a diagnostic containing the
// substring, and no diagnostic may appear on a line without a want.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("testdata", fixture)
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fixture", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}

	pass := NewPass(a, fset, []*ast.File{file}, pkg, info)
	// Cross-package analyzers read whole-program facts; for a fixture the
	// program is the fixture itself.
	pass.Program = BuildProgram(fset, []*Package{{
		Path: "fixture", Files: []*ast.File{file}, Types: pkg, Info: info,
	}})
	a.Run(pass)

	wants := parseWants(t, fset, file)
	got := make(map[int][]string)
	for _, d := range pass.Diagnostics() {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
	}

	for line, substrs := range wants {
		msgs := got[line]
		for _, substr := range substrs {
			if !anyContains(msgs, substr) {
				t.Errorf("%s:%d: want diagnostic containing %q, got %v", fixture, line, substr, msgs)
			}
		}
	}
	for line, msgs := range got {
		if len(wants[line]) == 0 {
			t.Errorf("%s:%d: unexpected diagnostic(s): %v", fixture, line, msgs)
		}
	}
}

var wantRE = regexp.MustCompile(`// want (".*")\s*$`)
var wantStrRE = regexp.MustCompile(`"([^"]*)"`)

// parseWants maps fixture line numbers to expected message substrings.
func parseWants(t *testing.T, fset *token.FileSet, file *ast.File) map[int][]string {
	t.Helper()
	wants := make(map[int][]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				if strings.Contains(c.Text, "want \"") {
					t.Fatalf("malformed want comment: %s", c.Text)
				}
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, s := range wantStrRE.FindAllStringSubmatch(m[1], -1) {
				wants[line] = append(wants[line], s[1])
			}
		}
	}
	return wants
}

func anyContains(msgs []string, substr string) bool {
	for _, m := range msgs {
		if strings.Contains(m, substr) {
			return true
		}
	}
	return false
}

func TestDetMapFixture(t *testing.T)       { runFixture(t, DetMap(), "detmap.go") }
func TestNoClockFixture(t *testing.T)      { runFixture(t, NoClock(), "noclock.go") }
func TestCfgValidateFixture(t *testing.T)  { runFixture(t, CfgValidate(), "cfgvalidate.go") }
func TestLoopBoundFixture(t *testing.T)    { runFixture(t, LoopBound(), "loopbound.go") }
func TestErrCheckLiteFixture(t *testing.T) { runFixture(t, ErrCheckLite(), "errcheck.go") }
func TestHotAllocFixture(t *testing.T)     { runFixture(t, HotAlloc(), "hotalloc.go") }
func TestExhaustiveFixture(t *testing.T)   { runFixture(t, Exhaustive(), "exhaustive.go") }
func TestFieldResetFixture(t *testing.T)   { runFixture(t, FieldReset(), "fieldreset.go") }
func TestSinkGuardFixture(t *testing.T)    { runFixture(t, SinkGuard(), "sinkguard.go") }
func TestCtxFlowFixture(t *testing.T)      { runFixture(t, CtxFlow(), "ctxflow.go") }
func TestGoLeakFixture(t *testing.T)       { runFixture(t, GoLeak(), "goleak.go") }
func TestLockOrderFixture(t *testing.T)    { runFixture(t, LockOrder(), "lockorder.go") }
func TestNonDetTaintFixture(t *testing.T)  { runFixture(t, NonDetTaint(), "nondet.go") }
func TestChanCloseFixture(t *testing.T)    { runFixture(t, ChanClose(), "chanclose.go") }
func TestIfaceDispatchFixture(t *testing.T) { runFixture(t, IfaceDispatch(), "ifacedispatch.go") }
func TestDeferHotFixture(t *testing.T)      { runFixture(t, DeferHot(), "deferhot.go") }
func TestAppendHotFixture(t *testing.T)     { runFixture(t, AppendHot(), "appendhot.go") }
func TestClosureCapFixture(t *testing.T)    { runFixture(t, ClosureCap(), "closurecap.go") }

func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != 18 {
		t.Fatalf("ByName(all) = %d analyzers, err %v; want 18, nil", len(all), err)
	}
	two, err := ByName("detmap,noclock")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(detmap,noclock) = %d, err %v; want 2, nil", len(two), err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}

// TestErrCheckLiteCmdMode checks the command-package contract: cmd/
// packages flag only dropped finalizer errors (Close/Flush/Sync/Shutdown),
// not every fmt.Println.
func TestErrCheckLiteCmdMode(t *testing.T) {
	const src = `package main

import (
	"fmt"
	"os"
)

func run(f *os.File) {
	fmt.Println("status")
	f.Sync()
	f.Close()
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "main.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("x/cmd/tool", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	a := ErrCheckLite()
	if !a.AppliesTo("x/cmd/tool") {
		t.Fatal("errcheck-lite should apply to cmd packages")
	}
	pass := NewPass(a, fset, []*ast.File{file}, pkg, info)
	a.Run(pass)
	ds := pass.Diagnostics()
	if len(ds) != 2 {
		t.Fatalf("cmd-mode diagnostics = %v, want exactly the two finalizer drops", ds)
	}
	for _, d := range ds {
		if !strings.Contains(d.Message, "f.Sync") && !strings.Contains(d.Message, "f.Close") {
			t.Errorf("unexpected cmd-mode diagnostic: %s", d)
		}
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
		ok      bool
	}{
		{"// simlint:ignore detmap map feeds a sorted table", []string{"detmap"}, true},
		{"// simlint:ignore detmap,noclock reasons", []string{"detmap", "noclock"}, true},
		{"// simlint:ignore", []string{"all"}, true},
		{"// a normal comment", nil, false},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.comment)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", c.comment, ok, c.ok)
			continue
		}
		for _, n := range c.names {
			if !names[n] {
				t.Errorf("parseIgnore(%q) missing %q", c.comment, n)
			}
		}
	}
}
