package analysis

import (
	"runtime"
	"sort"
	"sync"
)

// RunAnalyzers fans the given analyzers out over the loaded packages — one
// worker per CPU over the (package × analyzer) job grid — and returns every
// finding sorted by position. Typechecking has already happened by load
// time, so the analysis jobs are read-only and embarrassingly parallel.
// The whole-program fact base (call graph + hot-path reachability) is
// built once, over every package the loader typechecked, and shared
// read-only by all jobs.
func RunAnalyzers(loader *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := BuildProgram(loader.Fset(), loader.AllPackages())
	type job struct {
		pkg *Package
		a   *Analyzer
	}
	var jobs []job
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			jobs = append(jobs, job{pkg, a})
		}
	}

	var (
		mu    sync.Mutex
		diags []Diagnostic
		wg    sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pass := NewPass(j.a, loader.Fset(), j.pkg.Files, j.pkg.Types, j.pkg.Info)
			pass.Program = prog
			j.a.Run(pass)
			if ds := pass.Diagnostics(); len(ds) > 0 {
				mu.Lock()
				diags = append(diags, ds...)
				mu.Unlock()
			}
		}(j)
	}
	wg.Wait()

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
