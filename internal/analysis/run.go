package analysis

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// AnalyzerTiming is one analyzer's accumulated wall time across every
// package it ran over.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunStats reports where a lint run's time went. Graph is the
// whole-program fact-base construction (call graph + hot reachability),
// which is shared by all analyzers; Total is end to end. Because the
// (package × analyzer) jobs run in parallel, per-analyzer times sum CPU
// work and legitimately exceed Total.
type RunStats struct {
	Timings []AnalyzerTiming // one entry per registered analyzer, run order
	Graph   time.Duration
	Total   time.Duration
}

// RunAnalyzers fans the given analyzers out over the loaded packages — one
// worker per CPU over the (package × analyzer) job grid — and returns every
// finding sorted by position. Typechecking has already happened by load
// time, so the analysis jobs are read-only and embarrassingly parallel.
// The whole-program fact base (call graph + hot-path reachability) is
// built once, over every package the loader typechecked, and shared
// read-only by all jobs.
func RunAnalyzers(loader *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAnalyzersTimed(loader, pkgs, analyzers, nil)
	return diags
}

// RunAnalyzersTimed is RunAnalyzers with per-analyzer wall-time
// accounting. The clock is injected (noclock keeps time.Now out of
// internal packages; cmd/simlint passes the real clock); with a nil clock
// no times are taken and the stats carry zero durations — the Timings
// list still names every analyzer.
func RunAnalyzersTimed(loader *Loader, pkgs []*Package, analyzers []*Analyzer, now func() time.Time) ([]Diagnostic, *RunStats) {
	clock := now
	if clock == nil {
		clock = func() time.Time { return time.Time{} }
	}
	start := clock()
	prog := BuildProgram(loader.Fset(), loader.AllPackages())
	graphDone := clock()

	type job struct {
		pkg *Package
		a   *Analyzer
	}
	var jobs []job
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			jobs = append(jobs, job{pkg, a})
		}
	}

	var (
		mu      sync.Mutex
		diags   []Diagnostic
		elapsed = make(map[string]time.Duration, len(analyzers))
		wg      sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			jobStart := clock()
			pass := NewPass(j.a, loader.Fset(), j.pkg.Files, j.pkg.Types, j.pkg.Info)
			pass.Program = prog
			j.a.Run(pass)
			jobTime := clock().Sub(jobStart)
			ds := pass.Diagnostics()
			mu.Lock()
			elapsed[j.a.Name] += jobTime
			diags = append(diags, ds...)
			mu.Unlock()
		}(j)
	}
	wg.Wait()

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	stats := &RunStats{Graph: graphDone.Sub(start), Total: clock().Sub(start)}
	for _, a := range analyzers {
		stats.Timings = append(stats.Timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[a.Name]})
	}
	return diags, stats
}
