// Package analysis is the simulator's domain-specific static-analysis
// suite: a vet-style framework plus the analyzers behind cmd/simlint.
//
// A cycle-level simulator earns its keep by reproducing effects of a few
// percent ("Loose Loops Sink Chips" Figure 8 turns on a 4% IPC delta), so
// the invariants that protect those deltas — deterministic iteration,
// seeded randomness, validated configuration, bounded simulation loops,
// checked errors — are enforced by machine rather than by reviewer
// vigilance. The framework is stdlib-only (go/ast, go/parser, go/token,
// go/types); it must stay buildable offline.
//
// Suppression: a finding can be silenced with a line comment
//
//	// simlint:ignore <analyzer>[,<analyzer>...] [reason]
//
// placed on the offending line or on the line directly above it. Two
// analyzers additionally honour dedicated markers documented in their own
// files: `simlint:novalidate` (cfgvalidate) and `simlint:bounded`
// (loopbound), which read better at the use site than a generic ignore.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer in reports, flags, and suppression
	// comments.
	Name string
	// Doc is a one-line description shown by `simlint -list`.
	Doc string
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. The driver consults it; tests that build a
	// Pass directly may bypass it deliberately.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one package's parsed and typechecked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Program holds the whole-program facts (call graph, hot-path
	// reachability) cross-package analyzers consume. The driver populates
	// it; analyzers that need it must tolerate nil (single-package runs).
	Program *Program

	diagnostics []Diagnostic
	suppressed  map[string]map[int]bool // file -> line -> ignored for this analyzer
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Position string         `json:"position"` // file:line:col
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressedAt(position) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Position: fmt.Sprintf("%s:%d:%d", position.Filename, position.Line, position.Column),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

func (p *Pass) suppressedAt(pos token.Position) bool {
	return p.suppressed[pos.Filename][pos.Line]
}

// NewPass builds a Pass over files, computing the suppression table for
// analyzer from `simlint:ignore` comments.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info,
		suppressed: make(map[string]map[int]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok || !names[a.Name] && !names["all"] {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := p.suppressed[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					p.suppressed[pos.Filename] = lines
				}
				// The comment covers its own line and, so that whole-line
				// comments work, the line below it.
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return p
}

// parseIgnore extracts the analyzer list from a `simlint:ignore` comment.
func parseIgnore(text string) (map[string]bool, bool) {
	text = strings.TrimPrefix(strings.TrimPrefix(text, "//"), "/*")
	text = strings.TrimSpace(text)
	const marker = "simlint:ignore"
	if !strings.HasPrefix(text, marker) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, marker))
	field := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		field = rest[:i]
	}
	if field == "" {
		return map[string]bool{"all": true}, true
	}
	names := make(map[string]bool)
	for _, n := range strings.Split(field, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names[n] = true
		}
	}
	return names, true
}

// hasMarker reports whether any comment in file on line (or the line above)
// carries the given simlint marker, e.g. "simlint:bounded".
func hasMarker(fset *token.FileSet, file *ast.File, line int, marker string) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, marker) {
				continue
			}
			l := fset.Position(c.Pos()).Line
			if l == line || l == line-1 {
				return true
			}
		}
	}
	return false
}

// All returns every analyzer in the suite, in report order.
func All() []*Analyzer {
	return []*Analyzer{
		DetMap(),
		NoClock(),
		CfgValidate(),
		LoopBound(),
		ErrCheckLite(),
		HotAlloc(),
		Exhaustive(),
		FieldReset(),
		SinkGuard(),
		CtxFlow(),
		GoLeak(),
		LockOrder(),
		NonDetTaint(),
		ChanClose(),
		IfaceDispatch(),
		DeferHot(),
		AppendHot(),
		ClosureCap(),
	}
}

// ByName resolves a comma-separated analyzer list; "all" (or empty) selects
// the full suite.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" || list == "all" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, analyzerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// internalOnly is the default AppliesTo: the simulator's internal packages,
// where determinism and hygiene invariants are enforced.
func internalOnly(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") || strings.HasPrefix(pkgPath, "internal/")
}
