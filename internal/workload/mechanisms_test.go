package workload

import (
	"testing"

	"loosesim/internal/isa"
)

func TestPCsCycleThroughFootprint(t *testing.T) {
	p := profiles["swim"] // footprint 400
	g := NewGenerator(p, 3, 0)
	seen := map[uint64]bool{}
	for i := 0; i < 5*p.CodeFootprint; i++ {
		in := g.Next()
		if in.Op == isa.Branch {
			continue // branches carry site PCs
		}
		seen[in.PC] = true
	}
	if len(seen) > p.CodeFootprint {
		t.Errorf("non-branch PCs span %d addresses, footprint is %d", len(seen), p.CodeFootprint)
	}
	if len(seen) < p.CodeFootprint/2 {
		t.Errorf("PC coverage %d suspiciously small for footprint %d", len(seen), p.CodeFootprint)
	}
}

func TestReloadSlotIsStaticProperty(t *testing.T) {
	// The same PC slot must make the same reload decision on every
	// traversal of the footprint, or PC-indexed memory dependence
	// prediction could not work.
	p := profiles["gcc"]
	g := NewGenerator(p, 5, 0)
	reloadByPC := map[uint64]bool{}
	fp := uint64(p.CodeFootprint)
	for i := uint64(1); i <= 6*fp; i++ {
		slot := i % fp
		h := (slot*2654435761 + 97) & 0xFFFFFFFF
		want := float64(h)/float64(1<<32) < p.StoreReloadFrac
		in := g.Next()
		if in.Op != isa.Load {
			continue
		}
		if prev, ok := reloadByPC[in.PC]; ok && prev != want {
			t.Fatal("reload classification changed across iterations")
		}
		reloadByPC[in.PC] = want
	}
}

func TestReloadLoadsHitRecentStoreAddresses(t *testing.T) {
	p := profiles["gcc"]
	g := NewGenerator(p, 7, 0)
	recent := map[uint64]int{} // store addr -> index
	matches, loads := 0, 0
	for i := 0; i < 100_000; i++ {
		in := g.Next()
		switch in.Op {
		case isa.Store:
			recent[in.Addr] = i
		case isa.Load:
			loads++
			if at, ok := recent[in.Addr]; ok && i-at < 2000 {
				matches++
			}
		}
	}
	frac := float64(matches) / float64(loads)
	if frac < p.StoreReloadFrac/2 {
		t.Errorf("only %.3f of loads alias recent stores; profile asks for ~%.2f", frac, p.StoreReloadFrac)
	}
}

func TestHotValueReuse(t *testing.T) {
	p := profiles["apsi"] // heavy hot-value user
	g := NewGenerator(p, 11, 0)
	// Count how often a source repeats the same register many times in a
	// short window — the hot-value signature.
	window := make([]isa.Reg, 0, 256)
	maxRun := 0
	counts := map[isa.Reg]int{}
	for i := 0; i < 20_000; i++ {
		in := g.Next()
		for _, s := range in.Src {
			if !s.Valid() || s < isa.NumGlobalRegs {
				continue
			}
			window = append(window, s)
			counts[s]++
			if counts[s] > maxRun {
				maxRun = counts[s]
			}
			if len(window) == 256 {
				old := window[0]
				window = window[1:]
				counts[old]--
			}
		}
	}
	// With HotValFrac ~0.4 a hot value collects dozens of consumers within
	// a 256-operand window.
	if maxRun < 10 {
		t.Errorf("max same-register consumers in window = %d; hot values missing", maxRun)
	}
}

func TestSerialChainExists(t *testing.T) {
	p := profiles["apsi"]
	g := NewGenerator(p, 13, 0)
	// Detect chains: an arithmetic instruction whose src0 is the head of
	// an existing chain extends it. apsi must grow very long chains.
	// chainLen[r] is the length of the longest known dependency chain
	// ending in architectural register r's current value; a writer reading
	// r extends it. Keys are architectural registers, so the map is
	// naturally bounded and overwritten on register reuse.
	chainLen := map[isa.Reg]int{}
	maxLen := 0
	for i := 0; i < 50_000; i++ {
		in := g.Next()
		if !in.Dest.Valid() || in.Op == isa.Load {
			continue
		}
		n := 1
		if l, ok := chainLen[in.Src[0]]; ok {
			n = l + 1
		}
		chainLen[in.Dest] = n
		if n > maxLen {
			maxLen = n
		}
	}
	// ChainFrac 0.40: the serial chain threads through thousands of
	// instructions.
	if maxLen < 500 {
		t.Errorf("longest dependency chain = %d links; apsi needs long chains", maxLen)
	}
}

func TestChainBranchesReadChain(t *testing.T) {
	// su2cor-style: some branch conditions come from the chain register.
	p := profiles["su2cor"]
	g := NewGenerator(p, 17, 0)
	dests := map[isa.Reg]bool{}
	chainHits, branches := 0, 0
	var lastChain isa.Reg = isa.RegInvalid
	for i := 0; i < 100_000; i++ {
		in := g.Next()
		if in.Dest.Valid() {
			dests[in.Dest] = true
			lastChain = in.Dest // approximation: any recent dest
		}
		if in.Op == isa.Branch {
			branches++
			if in.Src[0] == lastChain {
				chainHits++
			}
		}
	}
	if branches == 0 || chainHits == 0 {
		t.Errorf("branches=%d chain-fed=%d; expected chain-fed branch conditions", branches, chainHits)
	}
}
