package workload

import (
	"math"
	"testing"
	"testing/quick"

	"loosesim/internal/isa"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, name := range Names() {
		wl, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		for _, p := range wl.Threads {
			if err := p.Validate(); err != nil {
				t.Errorf("profile %s: %v", p.Name, err)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestSMTPairs(t *testing.T) {
	wl, err := ByName("apsi-swim")
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Threads) != 2 || wl.Threads[0].Name != "apsi" || wl.Threads[1].Name != "swim" {
		t.Errorf("apsi-swim threads = %v", wl.Threads)
	}
}

func TestPaperOrderComplete(t *testing.T) {
	order := PaperOrder()
	if len(order) != 13 {
		t.Fatalf("paper order has %d entries, want 13", len(order))
	}
	for _, n := range order {
		if _, err := ByName(n); err != nil {
			t.Errorf("paper-order benchmark %q unknown: %v", n, err)
		}
	}
	if len(SingleThreaded()) != 10 {
		t.Error("want 10 single-threaded benchmarks")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good := profiles["gcc"]
	cases := []func(*Profile){
		func(p *Profile) { p.LoadFrac = 0.9; p.StoreFrac = 0.9 }, // mix > 1
		func(p *Profile) { p.DepGeoP = 0 },
		func(p *Profile) { p.DepGeoP = 1 },
		func(p *Profile) { p.HotBytes = 0 },
		func(p *Profile) { p.StreamBytes = 0 },
		func(p *Profile) { p.MidBytes = 0 },
		func(p *Profile) { p.NumStreams = 0 },
		func(p *Profile) { p.Stride = 0 },
		func(p *Profile) { p.ChainFrac = -0.1 },
		func(p *Profile) { p.BiasedSiteFrac = 0.8; p.PatternSiteFrac = 0.5 },
		func(p *Profile) { p.StreamFrac = 0.8; p.MidFrac = 0.3 },
		func(p *Profile) { p.PageWalkFrac = 0.1; p.PageWalkSpan = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := profiles["gcc"]
	a := NewGenerator(p, 42, 0)
	b := NewGenerator(p, 42, 0)
	for i := 0; i < 5000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("instruction %d diverged: %v vs %v", i, ia, ib)
		}
	}
	if a.Generated() != 5000 {
		t.Errorf("Generated = %d, want 5000", a.Generated())
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p := profiles["gcc"]
	a := NewGenerator(p, 1, 0)
	b := NewGenerator(p, 2, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds must produce different streams")
	}
}

func TestGeneratorMixMatchesProfile(t *testing.T) {
	p := profiles["swim"]
	g := NewGenerator(p, 7, 0)
	n := 200000
	counts := map[isa.OpClass]int{}
	for i := 0; i < n; i++ {
		counts[g.Next().Op]++
	}
	check := func(op isa.OpClass, want float64) {
		got := float64(counts[op]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s fraction = %.4f, want %.4f±0.01", op, got, want)
		}
	}
	check(isa.Load, p.LoadFrac)
	check(isa.Store, p.StoreFrac)
	check(isa.Branch, p.BranchFrac)
	check(isa.FPAdd, p.FPAddFrac)
	check(isa.FPMul, p.FPMulFrac)
}

func TestGeneratorWellFormedInstructions(t *testing.T) {
	p := profiles["comp"]
	g := NewGenerator(p, 3, 1<<32)
	for i := 0; i < 50000; i++ {
		in := g.Next()
		switch in.Op {
		case isa.Load:
			if !in.Dest.Valid() || !in.Src[0].Valid() || in.Src[1].Valid() {
				t.Fatalf("malformed load: %v", in)
			}
			if in.Addr < 1<<32 {
				t.Fatalf("load address %#x outside thread base", in.Addr)
			}
		case isa.Store:
			if in.Dest.Valid() || !in.Src[0].Valid() || !in.Src[1].Valid() {
				t.Fatalf("malformed store: %v", in)
			}
		case isa.Branch:
			if in.Dest.Valid() || !in.Src[0].Valid() {
				t.Fatalf("malformed branch: %v", in)
			}
		case isa.Nop:
		default:
			if !in.Dest.Valid() || !in.Src[0].Valid() {
				t.Fatalf("malformed arith: %v", in)
			}
		}
		for _, s := range in.Src {
			if s != isa.RegInvalid && !s.Valid() {
				t.Fatalf("invalid source register %d", s)
			}
		}
	}
}

func TestGeneratorAddressesWithinRegions(t *testing.T) {
	p := profiles["turb3d"] // exercises all four regions
	g := NewGenerator(p, 11, 0)
	inRegion := func(a, base, size uint64) bool { return a >= base && a < base+size }
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if !in.Op.IsMem() {
			continue
		}
		ok := inRegion(in.Addr, hotBase, p.HotBytes) ||
			inRegion(in.Addr, midBase, p.MidBytes) ||
			inRegion(in.Addr, streamBase, p.StreamBytes) ||
			inRegion(in.Addr, pageWalkBase, p.PageWalkSpan)
		if !ok {
			t.Fatalf("address %#x outside every region", in.Addr)
		}
	}
}

func TestGlobalRegsNeverWritten(t *testing.T) {
	g := NewGenerator(profiles["gcc"], 5, 0)
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Dest.Valid() && in.Dest < isa.NumGlobalRegs {
			t.Fatalf("generator wrote global register %d", in.Dest)
		}
	}
}

func TestDependencyDistancesRespectRing(t *testing.T) {
	// Every source must reference either a global register or a register
	// written within the last ringSize register-writing instructions.
	g := NewGenerator(profiles["apsi"], 9, 0)
	lastWriter := map[isa.Reg]int{}
	writes := 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		for _, s := range in.Src {
			if !s.Valid() || s < isa.NumGlobalRegs {
				continue
			}
			w, ok := lastWriter[s]
			if !ok {
				continue // start-up: register not yet written
			}
			if writes-w > ringSize {
				t.Fatalf("source %d references a stale producer (%d writes ago)", s, writes-w)
			}
		}
		if in.Dest.Valid() {
			writes++
			lastWriter[in.Dest] = writes
		}
	}
}

func TestBranchSitePredictability(t *testing.T) {
	// m88 (heavily biased sites) must generate a more predictable branch
	// stream than go (many noisy sites). Use a simple agreement metric:
	// per-PC majority direction.
	rate := func(name string) float64 {
		g := NewGenerator(profiles[name], 13, 0)
		taken := map[uint64][2]int{}
		var branches []isa.Inst
		for len(branches) < 20000 {
			in := g.Next()
			if in.Op == isa.Branch {
				branches = append(branches, in)
				c := taken[in.PC]
				if in.Taken {
					c[0]++
				} else {
					c[1]++
				}
				taken[in.PC] = c
			}
		}
		agree := 0
		for _, in := range branches {
			c := taken[in.PC]
			if (in.Taken && c[0] >= c[1]) || (!in.Taken && c[1] >= c[0]) {
				agree++
			}
		}
		return float64(agree) / float64(len(branches))
	}
	m88, goRate := rate("m88"), rate("go")
	if m88 <= goRate {
		t.Errorf("m88 bias-agreement %.3f should exceed go %.3f", m88, goRate)
	}
}

func TestStreamAddressesAdvance(t *testing.T) {
	p := profiles["swim"] // 80% streaming
	g := NewGenerator(p, 17, 0)
	seen := map[uint64]int{}
	mem := 0
	for i := 0; i < 20000; i++ {
		in := g.Next()
		if in.Op.IsMem() {
			mem++
			seen[in.Addr]++
		}
	}
	// Streaming accesses rarely revisit addresses within a short window.
	repeats := 0
	for _, c := range seen {
		if c > 1 {
			repeats += c - 1
		}
	}
	if float64(repeats)/float64(mem) > 0.35 {
		t.Errorf("too many repeated addresses for a streaming profile: %d/%d", repeats, mem)
	}
}

// Property: the generator never emits more than two sources, never writes a
// global register, and keeps memory addresses inside the working set.
func TestGeneratorSafetyProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewGenerator(profiles["turb3d"], seed, 0)
		for i := 0; i < 2000; i++ {
			in := g.Next()
			if in.Dest.Valid() && in.Dest < isa.NumGlobalRegs {
				return false
			}
			if in.Op.IsMem() && in.Addr >= pageWalkBase+profiles["turb3d"].PageWalkSpan {
				return false
			}
			if in.NumSources() > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
