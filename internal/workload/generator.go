package workload

import (
	"math"
	"math/rand"

	"loosesim/internal/isa"
)

// Branch-site population sizes. Sites are static branch PCs; the generator
// draws each dynamic branch from one of three behavioural pools with a
// geometrically skewed site choice, mirroring real programs where a handful
// of hot loop branches dominate the dynamic stream.
const (
	numBiasedSites  = 64
	numPatternSites = 32
	numNoisySites   = 32

	// siteSkewP is the geometric parameter of the hot-site skew.
	siteSkewP = 0.15

	// biasedFlip is the probability a strongly biased site goes against
	// its direction (its irreducible mispredict floor).
	biasedFlip = 0.02

	branchPCBase = uint64(0x10_0000)
	codePCBase   = uint64(0x40_0000)
)

// ringSize bounds dependency distances; destinations rotate round-robin
// through the non-global architectural registers, so this is the number of
// distinct outstanding values.
const ringSize = isa.NumArchRegs - isa.NumGlobalRegs

// Generator produces one thread's deterministic instruction stream from a
// profile. Two generators with the same profile and seed produce identical
// streams.
type Generator struct {
	prof Profile
	rng  *rand.Rand

	// Destination bookkeeping: ring of the most recent register-writing
	// instructions' destinations, newest at index head-1.
	ring     [ringSize]isa.Reg
	ringLen  int
	head     int
	nextDest isa.Reg
	lastDest isa.Reg

	// Hot-value state: a heavily reused recent result, rotated every
	// HotValPeriod writes and retired before its register is recycled.
	writes    uint64
	hotVal    isa.Reg
	hotValAge int

	// Serial-chain state: ChainFrac of register-writing instructions link
	// into one long dependency chain (read the previous chain element,
	// become the next). This is what makes apsi's ILP low: the chain
	// threads serially through the whole stream.
	chainReg isa.Reg
	chainAge int

	// Memory address state.
	memBase  uint64
	streams  []uint64
	pageWalk uint64

	// Recent store addresses, for loads that reload stored data.
	recentStores   [16]uint64
	recentStoreLen int
	recentStoreCur int

	// Branch site state.
	patternCount [numPatternSites]uint32
	patternPer   [numPatternSites]uint32

	pc        uint64
	generated uint64
}

// NewGenerator builds a generator for prof seeded deterministically; memBase
// offsets the thread's address space so SMT threads do not share data.
func NewGenerator(prof Profile, seed int64, memBase uint64) *Generator {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		prof:     prof,
		rng:      rand.New(rand.NewSource(seed)),
		nextDest: isa.NumGlobalRegs,
		lastDest: isa.RegInvalid,
		hotVal:   isa.RegInvalid,
		chainReg: isa.RegInvalid,
		memBase:  memBase,
		pc:       codePCBase,
	}
	for i := 0; i < prof.NumStreams; i++ {
		g.streams = append(g.streams, uint64(i)*(prof.StreamBytes/uint64(prof.NumStreams)))
	}
	for i := range g.patternPer {
		g.patternPer[i] = 4 + uint32(i%5) // loop trip counts 4..8
	}
	return g
}

// Generated returns the number of instructions produced so far.
func (g *Generator) Generated() uint64 { return g.generated }

// Next produces the next instruction of the stream.
func (g *Generator) Next() isa.Inst {
	g.generated++
	// PCs cycle through the static code footprint so that a PC-indexed
	// structure sees recurring instruction addresses (loop structure).
	g.pc = codePCBase + (g.generated%uint64(g.prof.CodeFootprint))*4
	op := g.pickOp()
	in := isa.Inst{PC: g.pc, Op: op, Dest: isa.RegInvalid}
	in.Src[0], in.Src[1] = isa.RegInvalid, isa.RegInvalid

	switch op {
	case isa.Load:
		in.Src[0] = g.pickAddrSource()
		// Whether a load reloads recently stored data is a property of
		// the *static* instruction (a spill reload always reloads), so it
		// is decided by the PC slot, not per dynamic instance — this is
		// what makes memory dependences learnable by PC-indexed
		// predictors such as the store-wait table.
		if g.recentStoreLen > 0 && g.reloadSlot() {
			in.Addr = g.recentStores[g.rng.Intn(g.recentStoreLen)]
		} else {
			in.Addr = g.pickAddr()
		}
		in.Dest = g.allocDest()
	case isa.Store:
		in.Src[0] = g.pickAddrSource()
		in.Src[1] = g.pickSource()
		in.Addr = g.pickAddr()
		g.recentStores[g.recentStoreCur] = in.Addr
		g.recentStoreCur = (g.recentStoreCur + 1) % len(g.recentStores)
		if g.recentStoreLen < len(g.recentStores) {
			g.recentStoreLen++
		}
	case isa.Branch:
		// Branch conditions often depend on the serial chain (loop
		// counters, reductions); this is what gives su2cor-like programs
		// long branch resolution latencies via queuing delays even with
		// few mispredicts.
		if g.rng.Float64() < g.prof.ChainFrac && g.chainReg.Valid() {
			in.Src[0] = g.chainReg
		} else {
			in.Src[0] = g.pickSource()
		}
		in.PC, in.Taken = g.pickBranch()
	case isa.Nop:
	default: // register-writing arithmetic
		chainLink := g.rng.Float64() < g.prof.ChainFrac && g.chainReg.Valid()
		if chainLink {
			in.Src[0] = g.chainReg
		} else {
			in.Src[0] = g.pickSource()
		}
		if g.rng.Float64() < g.prof.TwoSrcFrac {
			in.Src[1] = g.pickSource()
		}
		in.Dest = g.allocDest()
		if chainLink || !g.chainReg.Valid() {
			g.chainReg = in.Dest
			g.chainAge = 0
		}
	}
	return in
}

// reloadSlot reports whether the current PC slot is a static reload site,
// using a hash of the slot index so the choice is a stable property of the
// instruction address covering StoreReloadFrac of slots.
func (g *Generator) reloadSlot() bool {
	slot := g.generated % uint64(g.prof.CodeFootprint)
	h := (slot*2654435761 + 97) & 0xFFFFFFFF
	return float64(h)/float64(1<<32) < g.prof.StoreReloadFrac
}

// pickOp draws the operation class from the profile's mix.
func (g *Generator) pickOp() isa.OpClass {
	r := g.rng.Float64()
	p := &g.prof
	for _, c := range []struct {
		f  float64
		op isa.OpClass
	}{
		{p.LoadFrac, isa.Load},
		{p.StoreFrac, isa.Store},
		{p.BranchFrac, isa.Branch},
		{p.FPAddFrac, isa.FPAdd},
		{p.FPMulFrac, isa.FPMul},
		{p.FPDivFrac, isa.FPDiv},
		{p.IntMulFrac, isa.IntMul},
	} {
		if r < c.f {
			return c.op
		}
		r -= c.f
	}
	return isa.IntALU
}

// allocDest assigns the next round-robin destination register, keeping each
// architectural register live for ringSize writes so dependency distances
// up to ringSize are faithful.
func (g *Generator) allocDest() isa.Reg {
	d := g.nextDest
	g.nextDest++
	if g.nextDest >= isa.NumArchRegs {
		g.nextDest = isa.NumGlobalRegs
	}
	g.ring[g.head] = d
	g.head = (g.head + 1) % ringSize
	if g.ringLen < ringSize {
		g.ringLen++
	}
	g.lastDest = d
	g.writes++
	if g.hotVal.Valid() {
		g.hotValAge++
		if g.hotValAge > ringSize-8 {
			g.hotVal = isa.RegInvalid // register about to be recycled
		}
	}
	if g.prof.HotValFrac > 0 && g.writes%uint64(g.prof.HotValPeriod) == 0 {
		g.hotVal = d
		g.hotValAge = 0
	}
	if g.chainReg.Valid() {
		g.chainAge++
		if g.chainAge > ringSize-8 {
			g.chainReg = isa.RegInvalid // register about to be recycled
		}
	}
	return d
}

// pickSource selects a non-chain source register: a hot value, a global
// register, a far-back producer, or a geometric-distance recent producer.
func (g *Generator) pickSource() isa.Reg {
	p := &g.prof
	if p.HotValFrac > 0 && g.hotVal.Valid() && g.rng.Float64() < p.HotValFrac {
		return g.hotVal
	}
	r := g.rng.Float64()
	switch {
	case r < p.GlobalRegFrac || g.ringLen == 0:
		return isa.Reg(g.rng.Intn(isa.NumGlobalRegs))
	case r < p.GlobalRegFrac+p.FarSrcFrac:
		// Uniform far distance over the back half of the ring.
		lo := g.ringLen / 2
		if lo == 0 {
			lo = 1
		}
		d := lo + g.rng.Intn(g.ringLen-lo+1)
		return g.at(d)
	default:
		d := 1 + g.geometric(p.DepGeoP)
		if d > g.ringLen {
			d = g.ringLen
		}
		return g.at(d)
	}
}

// pickAddrSource selects the address register for a memory operation.
// Array bases are usually global registers; pointer chasing uses recent
// results.
func (g *Generator) pickAddrSource() isa.Reg {
	if g.rng.Float64() < 0.5 || g.ringLen == 0 {
		return isa.Reg(g.rng.Intn(isa.NumGlobalRegs))
	}
	d := 1 + g.geometric(g.prof.DepGeoP)
	if d > g.ringLen {
		d = g.ringLen
	}
	return g.at(d)
}

// at returns the destination written d register-writing instructions ago
// (d >= 1).
func (g *Generator) at(d int) isa.Reg {
	idx := g.head - d
	for idx < 0 {
		idx += ringSize
	}
	return g.ring[idx]
}

// geometric draws from Geom(p) (number of failures before first success).
func (g *Generator) geometric(p float64) int {
	u := g.rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return int(math.Log(1-u) / math.Log(1-p))
}

// Region base offsets within a thread's address space; regions never
// overlap for any legal profile size.
const (
	hotBase      = uint64(0)
	midBase      = uint64(1) << 26
	streamBase   = uint64(1) << 27
	pageWalkBase = uint64(1) << 29
)

// pickAddr produces the next data address from one of the profile's four
// regions: sequential stream, random mid-sized structure, page-crossing
// walk, or hot (cache-resident) data.
func (g *Generator) pickAddr() uint64 {
	p := &g.prof
	r := g.rng.Float64()
	switch {
	case r < p.StreamFrac:
		i := g.rng.Intn(len(g.streams))
		g.streams[i] = (g.streams[i] + p.Stride) % p.StreamBytes
		return g.memBase + streamBase + g.streams[i]
	case r < p.StreamFrac+p.MidFrac:
		off := (g.rng.Uint64() % (p.MidBytes / 8)) * 8
		return g.memBase + midBase + off
	case r < p.StreamFrac+p.MidFrac+p.PageWalkFrac:
		g.pageWalk = (g.pageWalk + p.PageStride) % p.PageWalkSpan
		return g.memBase + pageWalkBase + g.pageWalk
	default:
		off := (g.rng.Uint64() % (p.HotBytes / 8)) * 8
		return g.memBase + hotBase + off
	}
}

// pickSite chooses a site index within a pool, geometrically skewed toward
// the pool's hot low-numbered sites.
func (g *Generator) pickSite(pool int) int {
	s := g.geometric(siteSkewP)
	if s >= pool {
		s = g.rng.Intn(pool)
	}
	return s
}

// pickBranch selects a branch site and produces its PC and actual outcome.
func (g *Generator) pickBranch() (pc uint64, taken bool) {
	p := &g.prof
	r := g.rng.Float64()
	switch {
	case r < p.BiasedSiteFrac:
		site := g.pickSite(numBiasedSites)
		pc = branchPCBase + uint64(site)*4
		dir := site%2 == 0
		if g.rng.Float64() < biasedFlip {
			return pc, !dir
		}
		return pc, dir
	case r < p.BiasedSiteFrac+p.PatternSiteFrac:
		site := g.pickSite(numPatternSites)
		pc = branchPCBase + uint64(numBiasedSites+site)*4
		g.patternCount[site]++
		return pc, g.patternCount[site]%g.patternPer[site] != 0
	default:
		site := g.pickSite(numNoisySites)
		pc = branchPCBase + uint64(numBiasedSites+numPatternSites+site)*4
		return pc, g.rng.Intn(2) == 0
	}
}
