// Package workload generates the synthetic instruction streams that stand in
// for the paper's Spec95 traces. The paper's results depend on per-program
// *rates* — branch density and predictability, load density and cache miss
// rates, dependency-chain structure (ILP), and operand-reuse distance — not
// on Alpha semantics, so each benchmark is modelled as a parameter profile
// and a deterministic seeded generator that reproduces those rates through
// the simulator's real predictors and caches.
package workload

import (
	"fmt"

	"loosesim/internal/stats"
)

// Profile parameterises one benchmark's synthetic instruction stream.
type Profile struct {
	// Name is the benchmark label used in reports.
	Name string

	// Instruction mix: fractions of the dynamic stream. The remainder
	// after all listed classes is single-cycle integer ALU work.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPAddFrac  float64
	FPMulFrac  float64
	FPDivFrac  float64
	IntMulFrac float64

	// Dependency structure.
	//
	// DepGeoP is the geometric-distribution parameter for dependency
	// distance: a source reads the value produced d = 1+Geom(DepGeoP)
	// register-writing instructions earlier. Larger p means shorter
	// distances (tighter chains, less ILP).
	DepGeoP float64
	// ChainFrac is the fraction of register-writing instructions whose
	// first source is forced to the immediately preceding result,
	// creating serial chains (high for apsi — the paper's low-ILP case).
	ChainFrac float64
	// GlobalRegFrac is the fraction of sources reading long-lived global
	// registers (stack/global pointer) — the paper's completed operands.
	GlobalRegFrac float64
	// FarSrcFrac is the fraction of sources that read a far-back producer
	// (uniform distance over the back half of the rename window),
	// stressing operand lifetimes beyond the forwarding buffer.
	FarSrcFrac float64
	// TwoSrcFrac is the fraction of arithmetic instructions with two
	// register sources.
	TwoSrcFrac float64
	// HotValFrac is the fraction of sources that read the current "hot
	// value" — a recently computed, heavily reused result (a loop
	// invariant inside an unrolled loop). Hot values have many consumers
	// spread across clusters and time; they are what saturate the DRA's
	// 2-bit insertion counters (paper Section 5.4).
	HotValFrac float64
	// HotValPeriod is the number of register writes between hot-value
	// rotations; longer periods mean more consumers per hot value. Must
	// be positive when HotValFrac is.
	HotValPeriod int

	// Branch behaviour: branches come from a population of static sites.
	// BiasedSiteFrac of dynamic branches use strongly biased sites,
	// PatternSiteFrac use short periodic (loop-exit style) sites, and the
	// remainder use data-dependent noisy sites that defeat prediction.
	BiasedSiteFrac  float64
	PatternSiteFrac float64

	// Memory behaviour. Data accesses are drawn from four regions:
	//
	//   - streams: NumStreams sequential walks with the given stride over
	//     a StreamBytes region — array sweeps. Line misses occur every
	//     line-size/stride accesses; sweeps larger than a cache level
	//     miss it sustainably (this is the hydro/mgrid memory-bound
	//     mechanism).
	//   - mid: uniform random over MidBytes — scattered structure
	//     accesses; miss rate set by MidBytes versus cache capacity.
	//   - page walks: strided walks that cross pages frequently, the
	//     turb3d mechanism for data-TLB pressure.
	//   - hot: uniform random over HotBytes (cache-resident) — the
	//     remainder, modelling stack and hot globals.
	// CodeFootprint is the static code size in instructions; the
	// instruction stream's PCs cycle through it, giving loads recurring
	// addresses (loop structure) that PC-indexed predictors such as the
	// store-wait table can learn.
	CodeFootprint int

	// StoreReloadFrac is the fraction of loads that re-read an address
	// written by a recent store (register spills, struct fields) — the
	// read-after-write-through-memory traffic that feeds store-to-load
	// forwarding and, when a load issues too early, memory-order traps.
	StoreReloadFrac float64

	StreamFrac   float64
	StreamBytes  uint64
	NumStreams   int
	Stride       uint64
	MidFrac      float64
	MidBytes     uint64
	PageWalkFrac float64
	PageWalkSpan uint64
	PageStride   uint64
	HotBytes     uint64
}

// Validate reports configuration errors (fractions out of range or an
// over-committed mix).
func (p Profile) Validate() error {
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPAddFrac + p.FPMulFrac + p.FPDivFrac + p.IntMulFrac
	if sum > 1.0+1e-9 {
		return fmt.Errorf("workload %s: instruction mix sums to %.3f > 1", p.Name, sum)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac}, {"BranchFrac", p.BranchFrac},
		{"FPAddFrac", p.FPAddFrac}, {"FPMulFrac", p.FPMulFrac}, {"FPDivFrac", p.FPDivFrac},
		{"IntMulFrac", p.IntMulFrac}, {"ChainFrac", p.ChainFrac}, {"GlobalRegFrac", p.GlobalRegFrac},
		{"FarSrcFrac", p.FarSrcFrac}, {"TwoSrcFrac", p.TwoSrcFrac},
		{"BiasedSiteFrac", p.BiasedSiteFrac}, {"PatternSiteFrac", p.PatternSiteFrac},
		{"StreamFrac", p.StreamFrac}, {"MidFrac", p.MidFrac}, {"PageWalkFrac", p.PageWalkFrac},
		{"StoreReloadFrac", p.StoreReloadFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload %s: %s = %v out of [0,1]", p.Name, f.name, f.v)
		}
	}
	if p.DepGeoP <= 0 || p.DepGeoP >= 1 {
		return fmt.Errorf("workload %s: DepGeoP = %v out of (0,1)", p.Name, p.DepGeoP)
	}
	if p.BiasedSiteFrac+p.PatternSiteFrac > 1+1e-9 {
		return fmt.Errorf("workload %s: branch site fractions sum to > 1", p.Name)
	}
	if p.StreamFrac+p.MidFrac+p.PageWalkFrac > 1+1e-9 {
		return fmt.Errorf("workload %s: memory region fractions sum to > 1", p.Name)
	}
	if p.HotBytes == 0 || p.StreamBytes == 0 || p.MidBytes == 0 {
		return fmt.Errorf("workload %s: zero-sized memory region", p.Name)
	}
	if p.NumStreams < 1 {
		return fmt.Errorf("workload %s: NumStreams must be >= 1", p.Name)
	}
	if p.Stride == 0 {
		return fmt.Errorf("workload %s: zero stride", p.Name)
	}
	if p.PageWalkFrac > 0 && (p.PageWalkSpan == 0 || p.PageStride == 0) {
		return fmt.Errorf("workload %s: page-walk fraction without span/stride", p.Name)
	}
	if p.HotValFrac < 0 || p.HotValFrac > 1 {
		return fmt.Errorf("workload %s: HotValFrac = %v out of [0,1]", p.Name, p.HotValFrac)
	}
	if p.HotValFrac > 0 && p.HotValPeriod < 1 {
		return fmt.Errorf("workload %s: HotValFrac without a positive HotValPeriod", p.Name)
	}
	if p.CodeFootprint < 1 {
		return fmt.Errorf("workload %s: CodeFootprint must be >= 1", p.Name)
	}
	return nil
}

// Workload is what the simulator runs: one profile per hardware thread.
type Workload struct {
	Name    string
	Threads []Profile
}

// profiles holds the calibrated Spec95 benchmark models. Calibration
// targets come from the paper's own characterisation (Section 3.1):
// compress/gcc/go are branchy with poor prediction and non-trivial load
// misses; m88ksim is branchy but predictable; swim/turb3d are load-heavy
// with L1 misses that hit in L2 (turb3d adds data-TLB misses); hydro2d and
// mgrid miss in L2 and are bound by memory latency; apsi has long narrow
// dependency chains (low ILP); su2cor mis-speculates rarely but queues
// deeply.
var profiles = map[string]Profile{
	"comp": {
		Name: "comp", LoadFrac: 0.22, StoreFrac: 0.09, BranchFrac: 0.16, IntMulFrac: 0.01,
		DepGeoP: 0.30, ChainFrac: 0.10, GlobalRegFrac: 0.10, FarSrcFrac: 0.02, TwoSrcFrac: 0.55,
		BiasedSiteFrac: 0.66, PatternSiteFrac: 0.21,
		CodeFootprint:   800,
		StoreReloadFrac: 0.10,
		StreamFrac:      0.35, StreamBytes: 128 << 10, NumStreams: 4, Stride: 8,
		MidFrac: 0.06, MidBytes: 448 << 10, HotBytes: 32 << 10,
	},
	"gcc": {
		Name: "gcc", LoadFrac: 0.24, StoreFrac: 0.11, BranchFrac: 0.17, IntMulFrac: 0.01,
		DepGeoP: 0.32, ChainFrac: 0.08, GlobalRegFrac: 0.14, FarSrcFrac: 0.03, TwoSrcFrac: 0.50,
		BiasedSiteFrac: 0.70, PatternSiteFrac: 0.19,
		CodeFootprint:   4000,
		StoreReloadFrac: 0.12,
		StreamFrac:      0.40, StreamBytes: 128 << 10, NumStreams: 6, Stride: 8,
		MidFrac: 0.05, MidBytes: 448 << 10, HotBytes: 32 << 10,
	},
	"go": {
		Name: "go", LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.15, IntMulFrac: 0.01,
		DepGeoP: 0.30, ChainFrac: 0.08, GlobalRegFrac: 0.12, FarSrcFrac: 0.03, TwoSrcFrac: 0.52,
		BiasedSiteFrac: 0.60, PatternSiteFrac: 0.18,
		CodeFootprint:   3000,
		StoreReloadFrac: 0.11,
		StreamFrac:      0.30, StreamBytes: 96 << 10, NumStreams: 4, Stride: 8,
		MidFrac: 0.04, MidBytes: 384 << 10, HotBytes: 32 << 10,
	},
	"m88": {
		Name: "m88", LoadFrac: 0.20, StoreFrac: 0.08, BranchFrac: 0.12, IntMulFrac: 0.01,
		DepGeoP: 0.28, ChainFrac: 0.06, GlobalRegFrac: 0.14, FarSrcFrac: 0.02, TwoSrcFrac: 0.50,
		BiasedSiteFrac: 0.88, PatternSiteFrac: 0.11,
		CodeFootprint:   1500,
		StoreReloadFrac: 0.14,
		StreamFrac:      0.40, StreamBytes: 32 << 10, NumStreams: 4, Stride: 8,
		MidFrac: 0.01, MidBytes: 256 << 10, HotBytes: 24 << 10,
	},
	"apsi": {
		Name: "apsi", LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.05,
		FPAddFrac: 0.18, FPMulFrac: 0.14, FPDivFrac: 0.004, IntMulFrac: 0.01,
		DepGeoP: 0.55, ChainFrac: 0.40, GlobalRegFrac: 0.06, FarSrcFrac: 0.14, TwoSrcFrac: 0.75,
		HotValFrac: 0.42, HotValPeriod: 52,
		BiasedSiteFrac: 0.84, PatternSiteFrac: 0.13,
		CodeFootprint:   1200,
		StoreReloadFrac: 0.08,
		StreamFrac:      0.50, StreamBytes: 320 << 10, NumStreams: 6, Stride: 8,
		MidFrac: 0.06, MidBytes: 5 << 20, HotBytes: 32 << 10,
	},
	"hydro": {
		Name: "hydro", LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.04,
		FPAddFrac: 0.20, FPMulFrac: 0.14, FPDivFrac: 0.002,
		DepGeoP: 0.07, ChainFrac: 0.03, GlobalRegFrac: 0.08, FarSrcFrac: 0.03, TwoSrcFrac: 0.65,
		BiasedSiteFrac: 0.86, PatternSiteFrac: 0.12,
		CodeFootprint:   600,
		StoreReloadFrac: 0.05,
		StreamFrac:      0.75, StreamBytes: 8 << 20, NumStreams: 8, Stride: 8,
		MidFrac: 0.03, MidBytes: 512 << 10, HotBytes: 32 << 10,
	},
	"mgrid": {
		Name: "mgrid", LoadFrac: 0.33, StoreFrac: 0.10, BranchFrac: 0.03,
		FPAddFrac: 0.22, FPMulFrac: 0.15,
		DepGeoP: 0.06, ChainFrac: 0.02, GlobalRegFrac: 0.07, FarSrcFrac: 0.02, TwoSrcFrac: 0.68,
		BiasedSiteFrac: 0.90, PatternSiteFrac: 0.08,
		CodeFootprint:   400,
		StoreReloadFrac: 0.04,
		StreamFrac:      0.85, StreamBytes: 16 << 20, NumStreams: 10, Stride: 8,
		MidFrac: 0.02, MidBytes: 448 << 10, HotBytes: 32 << 10,
	},
	"su2cor": {
		Name: "su2cor", LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.06,
		FPAddFrac: 0.18, FPMulFrac: 0.14, FPDivFrac: 0.006,
		DepGeoP: 0.25, ChainFrac: 0.18, GlobalRegFrac: 0.08, FarSrcFrac: 0.05, TwoSrcFrac: 0.66,
		BiasedSiteFrac: 0.86, PatternSiteFrac: 0.12,
		CodeFootprint:   1000,
		StoreReloadFrac: 0.07,
		StreamFrac:      0.55, StreamBytes: 320 << 10, NumStreams: 6, Stride: 8,
		MidFrac: 0.03, MidBytes: 384 << 10, HotBytes: 32 << 10,
	},
	"swim": {
		Name: "swim", LoadFrac: 0.30, StoreFrac: 0.14, BranchFrac: 0.02,
		FPAddFrac: 0.22, FPMulFrac: 0.16,
		DepGeoP: 0.07, ChainFrac: 0.03, GlobalRegFrac: 0.08, FarSrcFrac: 0.04, TwoSrcFrac: 0.62,
		BiasedSiteFrac: 0.95, PatternSiteFrac: 0.04,
		CodeFootprint:   400,
		StoreReloadFrac: 0.05,
		StreamFrac:      0.80, StreamBytes: 320 << 10, NumStreams: 8, Stride: 8,
		MidFrac: 0.05, MidBytes: 192 << 10, HotBytes: 32 << 10,
	},
	"turb3d": {
		Name: "turb3d", LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.05,
		FPAddFrac: 0.17, FPMulFrac: 0.13, FPDivFrac: 0.002, IntMulFrac: 0.01,
		DepGeoP: 0.07, ChainFrac: 0.03, GlobalRegFrac: 0.07, FarSrcFrac: 0.06, TwoSrcFrac: 0.62,
		BiasedSiteFrac: 0.88, PatternSiteFrac: 0.10,
		CodeFootprint:   1000,
		StoreReloadFrac: 0.06,
		StreamFrac:      0.55, StreamBytes: 384 << 10, NumStreams: 6, Stride: 8,
		MidFrac: 0.04, MidBytes: 256 << 10, HotBytes: 32 << 10,
		// FFT column walks: large strides that cross a page every few
		// accesses, giving turb3d its data-TLB misses.
		PageWalkFrac: 0.05, PageWalkSpan: 2 << 20, PageStride: 2048,
	},
}

// smtPairs lists the paper's multi-threaded benchmark pairs.
var smtPairs = map[string][2]string{
	"m88-comp":  {"m88", "comp"},
	"go-su2cor": {"go", "su2cor"},
	"apsi-swim": {"apsi", "swim"},
}

// ByName returns the workload (single- or multi-threaded) with the given
// benchmark name.
func ByName(name string) (Workload, error) {
	if p, ok := profiles[name]; ok {
		return Workload{Name: name, Threads: []Profile{p}}, nil
	}
	if pair, ok := smtPairs[name]; ok {
		return Workload{
			Name:    name,
			Threads: []Profile{profiles[pair[0]], profiles[pair[1]]},
		}, nil
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, Names())
}

// Names returns every benchmark name, single-threaded first, sorted within
// each group.
func Names() []string {
	return append(stats.SortedKeys(profiles), stats.SortedKeys(smtPairs)...)
}

// PaperOrder returns the benchmarks in the order the paper's figures plot
// them: integer, floating point, then multi-threaded.
func PaperOrder() []string {
	return []string{
		"comp", "gcc", "go", "m88",
		"apsi", "hydro", "mgrid", "su2cor", "swim", "turb3d",
		"m88-comp", "go-su2cor", "apsi-swim",
	}
}

// SingleThreaded returns the ten single-threaded benchmark names in paper
// order.
func SingleThreaded() []string { return PaperOrder()[:10] }
