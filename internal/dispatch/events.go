package dispatch

import (
	"fmt"
	"strconv"
)

// EventKind names one coordinator lifecycle event. The kinds double as the
// coordinator's counter set: every emitted event increments its kind's
// counter, and Metrics reads the counters back out.
type EventKind uint8

// The coordinator's lifecycle events.
const (
	// EvRequest is one submission attempt against a backend.
	EvRequest EventKind = iota
	// EvCacheHit is a backend response served from its content-addressed
	// result cache.
	EvCacheHit
	// EvRetry is a transient backend failure that scheduled a backoff
	// retry.
	EvRetry
	// EvHedge is a hedged duplicate launched against a second backend
	// after the hedge delay expired with the primary still in flight.
	EvHedge
	// EvHedgeWon is a hedged duplicate that returned first.
	EvHedgeWon
	// EvEject is a backend removed from the ring after consecutive
	// failures.
	EvEject
	// EvReadmit is an ejected backend restored to the ring by a
	// successful response or health probe.
	EvReadmit
	// EvLocalFallback is a job degraded to local simulation because no
	// backend could serve it.
	EvLocalFallback
	// EvBackpressure is a 429 from a healthy backend whose Retry-After
	// hint replaced the jittered backoff for the next attempt. It does not
	// count toward ejection: an overloaded queue is load, not failure.
	EvBackpressure

	// NumEventKinds bounds the enumeration.
	NumEventKinds
)

var eventKindNames = [NumEventKinds]string{
	"request",
	"cache-hit",
	"retry",
	"hedge",
	"hedge-won",
	"eject",
	"readmit",
	"local-fallback",
	"backpressure",
}

// String names the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("dispatch-event(%d)", int(k))
}

// ParseEventKind inverts EventKind.String.
func ParseEventKind(s string) (EventKind, error) {
	for i, n := range eventKindNames {
		if n == s {
			return EventKind(i), nil
		}
	}
	return 0, fmt.Errorf("dispatch: unknown event kind %q", s)
}

// MarshalJSON encodes the kind by name, keeping event output
// self-describing and stable against reorderings of the constants.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, k.String()), nil
}

// UnmarshalJSON decodes a kind name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("dispatch: bad event kind %s: %w", b, err)
	}
	parsed, err := ParseEventKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Event is one coordinator lifecycle record.
type Event struct {
	Kind EventKind `json:"kind"`
	// Backend is the index into Options.Backends the event concerns, or
	// -1 when the event is not tied to one backend.
	Backend int `json:"backend"`
}

// EventSink receives coordinator lifecycle events. Implementations must be
// safe for concurrent use; the coordinator calls them from request
// goroutines.
type EventSink interface {
	Event(Event)
}

// Metrics is a snapshot of the coordinator's counters.
type Metrics struct {
	Requests       uint64 `json:"requests"`
	CacheHits      uint64 `json:"cache_hits"`
	Retries        uint64 `json:"retries"`
	Hedges         uint64 `json:"hedges"`
	HedgesWon      uint64 `json:"hedges_won"`
	Ejections      uint64 `json:"ejections"`
	Readmissions   uint64 `json:"readmissions"`
	LocalFallbacks uint64 `json:"local_fallbacks"`
	Backpressure   uint64 `json:"backpressure"`
	// CacheHitRate is CacheHits over completed backend requests.
	CacheHitRate float64 `json:"cache_hit_rate"`

	Backends []BackendMetrics `json:"backends"`
}

// BackendMetrics is one backend's live view.
type BackendMetrics struct {
	URL      string `json:"url"`
	InFlight int64  `json:"in_flight"`
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	Down     bool   `json:"down"`
}
