package dispatch

import (
	"bytes"
	"context"
	"testing"
	"time"

	"loosesim/internal/sample"
	"loosesim/internal/serve"
	"loosesim/internal/serve/servetest"
)

// TestRunSampledMatchesLocal is the fleet-sampling acceptance case: a
// sampled run sharded window-by-window over in-process backends must
// merge to an estimate byte-identical to sample.Run executing serially in
// this process — and resubmitting the same run must hit the backend cache
// through the checkpoint-digest keys.
func TestRunSampledMatchesLocal(t *testing.T) {
	backends, closeAll := servetest.StartBackends(2, serve.Options{Workers: 2})
	defer closeAll()

	c, err := New(Options{
		Backends:    servetest.URLs(backends),
		Attempts:    3,
		BackoffBase: time.Millisecond,
		BackoffCap:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := testCfg(t, "gcc", 3)
	cfg.WarmupInstructions = 2_000
	cfg.MeasureInstructions = 6_000
	opt := sample.Options{Windows: 4, WindowInstructions: 1_000, DetailedWarmup: 500}

	want, err := sample.Run(context.Background(), cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunSampled(context.Background(), cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(g, w) {
		t.Fatalf("fleet estimate differs from local sampler:\nfleet: %s\nlocal: %s", g, w)
	}

	again, err := c.RunSampled(context.Background(), cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := mustJSON(t, again), mustJSON(t, want); !bytes.Equal(g, w) {
		t.Fatal("second sampled run diverged")
	}
	if m := c.Metrics(); m.CacheHits == 0 {
		t.Fatalf("repeat sampled run produced no cache hits: %+v", m)
	}
}

// TestRunSampledLocalFallback points the coordinator at dead ports: every
// window must degrade to a local restore-and-run and the merged estimate
// must still match the serial sampler byte for byte.
func TestRunSampledLocalFallback(t *testing.T) {
	c, err := New(Options{
		Backends:    []string{"http://127.0.0.1:9"},
		Attempts:    1,
		BackoffBase: time.Microsecond,
		BackoffCap:  time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := testCfg(t, "m88", 1)
	cfg.WarmupInstructions = 1_000
	cfg.MeasureInstructions = 3_000
	opt := sample.Options{Windows: 3, WindowInstructions: 800, DetailedWarmup: 400}

	want, err := sample.Run(context.Background(), cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunSampled(context.Background(), cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(g, w) {
		t.Fatalf("fallback estimate differs from local sampler:\nfleet: %s\nlocal: %s", g, w)
	}
	if m := c.Metrics(); m.LocalFallbacks == 0 {
		t.Fatalf("expected local fallbacks against a dead fleet: %+v", m)
	}
}
