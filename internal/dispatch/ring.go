package dispatch

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is the number of virtual nodes per backend on the hash ring.
// 64 points per backend keeps the expected key share within a few percent
// of uniform for small fleets while keeping the ring tiny.
const ringVnodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring and the
// backend that owns it.
type ringPoint struct {
	hash    uint64
	backend int
}

// ring is a consistent-hash ring over the configured backends. Membership
// changes (ejection, readmission) are expressed at lookup time through the
// admitted predicate rather than by rebuilding the ring, which is what
// gives the stability property the sweep cache depends on: ejecting a
// backend moves only the keys that backend owned (each slides forward to
// its next admitted point), and readmitting it restores exactly the
// original assignment.
type ring struct {
	points []ringPoint
}

// newRing builds the ring for a fixed backend list. The point positions
// depend only on the backend URLs, so the same fleet always shards the
// same way across processes and runs.
func newRing(backends []string) *ring {
	pts := make([]ringPoint, 0, len(backends)*ringVnodes)
	for i, url := range backends {
		for v := 0; v < ringVnodes; v++ {
			pts = append(pts, ringPoint{hash: hash64(url + "#" + strconv.Itoa(v)), backend: i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].hash != pts[b].hash {
			return pts[a].hash < pts[b].hash
		}
		return pts[a].backend < pts[b].backend
	})
	return &ring{points: pts}
}

// owner returns the backend owning key: the first point clockwise from
// hash(key) whose backend is admitted and not the excluded index (pass
// exclude < 0 to exclude nothing — hedged requests use it to find a
// distinct secondary). Returns -1 when no backend qualifies.
func (r *ring) owner(key string, admitted func(int) bool, exclude int) int {
	n := len(r.points)
	if n == 0 {
		return -1
	}
	h := hash64(key)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < n; k++ {
		b := r.points[(start+k)%n].backend
		if b != exclude && admitted(b) {
			return b
		}
	}
	return -1
}

// hash64 is the ring's position function (FNV-1a, stable across runs and
// platforms).
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
