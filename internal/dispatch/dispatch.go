// Package dispatch is the sweep coordinator: it fans a batch of
// simulation configurations out over a fleet of loosimd backends through
// the serve HTTP JSON API and merges the results back in input order with
// the same first-error-by-position semantics as loosesim.RunAllContext.
//
// Shard assignment is by the canonical content address of each
// configuration (serve.ConfigKey), consistent-hashed across the backends,
// so repeated sweeps send the same point to the same node and concentrate
// that node's content-addressed cache hits. The coordinator survives an
// unreliable fleet: bounded per-backend in-flight windows, capped
// exponential backoff with injected-source jitter, hedged requests for
// stragglers, health probing that ejects and readmits backends, and —
// when a job exhausts the fleet or no backend is admitted at all —
// graceful degradation to local simulation, so a sweep never fails merely
// because its fleet did. Every result is the output of the same
// deterministic pipeline regardless of where (or how many times) it ran,
// which is what makes retries, hedges, and fallback safe.
//
// The package keeps the simulator's determinism contract: it never reads
// the wall clock (timers are injected via Options.After) and never touches
// the global math/rand state (jitter is injected via Options.Jitter, with
// a seeded locked source as the default).
package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loosesim"
	"loosesim/internal/pipeline"
	"loosesim/internal/sample"
	"loosesim/internal/serve"
	"loosesim/internal/snap"
	"loosesim/internal/trace"
)

// Defaults for the zero Options values.
const (
	DefaultInFlight      = 4
	DefaultAttempts      = 4
	DefaultBackoffBase   = 50 * time.Millisecond
	DefaultBackoffCap    = 2 * time.Second
	DefaultProbeInterval = time.Second
	DefaultEjectAfter    = 3

	// probeTimeout bounds one /healthz exchange.
	probeTimeout = 2 * time.Second
)

// Options configure a Coordinator.
type Options struct {
	// Backends are the loosimd base URLs the sweep is sharded over. An
	// empty list is legal: every batch degrades to local simulation.
	Backends []string
	// Client issues the HTTP requests; nil selects a fresh http.Client.
	// Tests inject fault-wrapped transports here.
	Client *http.Client
	// InFlight bounds concurrent requests per backend; <= 0 selects
	// DefaultInFlight.
	InFlight int
	// Attempts is the maximum submission attempts per job across the
	// fleet before it degrades to local simulation; <= 0 selects
	// DefaultAttempts.
	Attempts int
	// BackoffBase and BackoffCap shape the retry schedule: the delay
	// before retry n is min(BackoffBase << n, BackoffCap), scaled by the
	// jitter source. <= 0 selects the defaults.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeDelay, when positive, launches a duplicate request on a
	// second backend if the primary has not answered within the delay;
	// the first response wins and the loser is cancelled.
	HedgeDelay time.Duration
	// ProbeInterval is the period of the background /healthz sweep that
	// ejects failing backends and readmits recovered ones; <= 0 selects
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// EjectAfter is the consecutive-failure count that ejects a backend
	// from the ring; <= 0 selects DefaultEjectAfter.
	EjectAfter int
	// Jitter returns a value in [0, 1) used to decorrelate concurrent
	// retry schedules; nil selects a seeded locked source. It must be
	// safe for concurrent use.
	Jitter func() float64
	// After is the timer source for backoff, hedging, and probing; nil
	// selects time.After. Tests inject a fake clock here.
	After func(time.Duration) <-chan time.Time
	// Events, when non-nil, receives one record per coordinator
	// lifecycle event, on top of the always-on counters behind Metrics.
	Events EventSink
	// Tracer, when non-nil, records one trace per job: a root span plus
	// children for every attempt, backoff wait, hedge, probe, and local
	// fallback, with the trace propagated to backends via the
	// Traceparent header. Nil (the default) disables tracing at the
	// cost of one pointer compare per stage.
	Tracer *trace.Tracer
	// NoCache asks the backends to bypass their result caches.
	NoCache bool
	// Local, when non-nil, replaces loosesim.RunAllContext as the batch
	// engine used when the whole fleet is unreachable at batch start. It
	// must honour the same contract: results in input order, first error
	// aborts.
	Local func(context.Context, []pipeline.Config) ([]*pipeline.Result, error)
}

// backend is one fleet member's live state.
type backend struct {
	url string
	sem chan struct{} // in-flight window

	inFlight atomic.Int64
	requests atomic.Uint64
	failures atomic.Uint64
	fails    atomic.Int32 // consecutive failures, reset on success
	down     atomic.Bool
}

// Coordinator fans sweep batches out over the fleet. Create with New;
// stop the background health probing with Close. All methods are safe for
// concurrent use.
type Coordinator struct {
	opts   Options
	client *http.Client
	ring   *ring

	backends []*backend
	localSem chan struct{} // bounds machines live during local fallback

	events EventSink
	tracer *trace.Tracer
	counts [NumEventKinds]atomic.Uint64

	jitter func() float64
	after  func(time.Duration) <-chan time.Time
	local  func(context.Context, []pipeline.Config) ([]*pipeline.Result, error)

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New starts a coordinator; its health-probe loop is live on return when
// the fleet is non-empty.
func New(opts Options) (*Coordinator, error) {
	if opts.InFlight <= 0 {
		opts.InFlight = DefaultInFlight
	}
	if opts.Attempts <= 0 {
		opts.Attempts = DefaultAttempts
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = DefaultBackoffBase
	}
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = DefaultBackoffCap
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	if opts.EjectAfter <= 0 {
		opts.EjectAfter = DefaultEjectAfter
	}
	c := &Coordinator{
		opts:     opts,
		client:   opts.Client,
		events:   opts.Events,
		tracer:   opts.Tracer,
		jitter:   opts.Jitter,
		after:    opts.After,
		local:    opts.Local,
		localSem: make(chan struct{}, runtime.GOMAXPROCS(0)),
		stop:     make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.jitter == nil {
		c.jitter = defaultJitter()
	}
	if c.after == nil {
		c.after = time.After
	}
	if c.local == nil {
		c.local = loosesim.RunAllContext
	}
	urls := make([]string, len(opts.Backends))
	for i, u := range opts.Backends {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("dispatch: backend %d: empty URL", i)
		}
		urls[i] = u
	}
	c.ring = newRing(urls)
	c.backends = make([]*backend, len(urls))
	for i, u := range urls {
		c.backends[i] = &backend{url: u, sem: make(chan struct{}, opts.InFlight)}
	}
	if len(c.backends) > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the background health probing. In-flight RunAll calls are
// unaffected (cancel their contexts to abort them).
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// defaultJitter returns the default jitter source: a seeded rand.Rand
// behind a mutex. The seed is fixed — jitter decorrelates concurrent
// retries within a run; it does not need to vary across runs, and a fixed
// seed keeps the schedule reproducible under an injected clock.
func defaultJitter() func() float64 {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(1))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return r.Float64()
	}
}

// backoff returns the delay before the retry that follows failed attempt
// `attempt` (0-based): base << attempt capped at ceil, scaled into
// [0.5, 1.0) of itself by the jitter value so concurrent retries spread
// out without ever collapsing to zero.
func backoff(attempt int, base, ceil time.Duration, jitter float64) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := ceil
	if attempt < 40 { // beyond 40 doublings any sane base has saturated
		if shifted := base << uint(attempt); shifted > 0 && shifted < ceil {
			d = shifted
		}
	}
	return time.Duration(float64(d) * (0.5 + 0.5*jitter))
}

// emit counts one lifecycle event and forwards it to the optional sink.
// This is the coordinator's only per-event code (a simlint hot-path
// root), so it stays allocation-free: one atomic add, one nil check.
func (c *Coordinator) emit(kind EventKind, backendIdx int) {
	c.counts[kind].Add(1)
	if c.events == nil {
		return
	}
	c.events.Event(Event{Kind: kind, Backend: backendIdx})
}

// Metrics snapshots the coordinator's counters.
func (c *Coordinator) Metrics() Metrics {
	var m Metrics
	m.Requests = c.counts[EvRequest].Load()
	m.CacheHits = c.counts[EvCacheHit].Load()
	m.Retries = c.counts[EvRetry].Load()
	m.Hedges = c.counts[EvHedge].Load()
	m.HedgesWon = c.counts[EvHedgeWon].Load()
	m.Ejections = c.counts[EvEject].Load()
	m.Readmissions = c.counts[EvReadmit].Load()
	m.LocalFallbacks = c.counts[EvLocalFallback].Load()
	m.Backpressure = c.counts[EvBackpressure].Load()
	if m.Requests > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(m.Requests)
	}
	m.Backends = make([]BackendMetrics, len(c.backends))
	for i, bk := range c.backends {
		m.Backends[i] = BackendMetrics{
			URL:      bk.url,
			InFlight: bk.inFlight.Load(),
			Requests: bk.requests.Load(),
			Failures: bk.failures.Load(),
			Down:     bk.down.Load(),
		}
	}
	return m
}

// admitted reports whether backend b is currently on the ring.
func (c *Coordinator) admitted(b int) bool { return !c.backends[b].down.Load() }

// pick returns the admitted backend owning key, excluding the given index
// (pass -1 to exclude nothing); -1 when no backend is admitted.
func (c *Coordinator) pick(key string, exclude int) int {
	return c.ring.owner(key, c.admitted, exclude)
}

// allDown reports whether no backend is admitted (trivially true for an
// empty fleet).
func (c *Coordinator) allDown() bool {
	for _, bk := range c.backends {
		if !bk.down.Load() {
			return false
		}
	}
	return true
}

// fail records a failed exchange with backend b — counting toward
// ejection — and returns err.
func (c *Coordinator) fail(b int, err error) error {
	bk := c.backends[b]
	bk.failures.Add(1)
	if n := bk.fails.Add(1); int(n) >= c.opts.EjectAfter {
		if bk.down.CompareAndSwap(false, true) {
			c.emit(EvEject, b)
		}
	}
	return err
}

// failOrCtx is fail unless our own context ended the exchange: a
// cancelled request (hedge loser, caller gone) says nothing about the
// backend's health and must not count toward ejection.
func (c *Coordinator) failOrCtx(ctx context.Context, b int, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return c.fail(b, err)
}

// ok records a successful exchange with backend b, readmitting it if it
// was ejected.
func (c *Coordinator) ok(b int) {
	bk := c.backends[b]
	bk.fails.Store(0)
	if bk.down.CompareAndSwap(true, false) {
		c.emit(EvReadmit, b)
	}
}

// RunAll executes the batch over the fleet and returns results in input
// order; a successful batch has every result non-nil. The contract
// matches loosesim.RunAllContext: every configuration is validated before
// anything runs, and the batch reports the first error in input order.
// Fleet trouble is not an error — jobs that exhaust the fleet degrade to
// local simulation — so errors surface only from the simulations
// themselves or from ctx.
func (c *Coordinator) RunAll(ctx context.Context, cfgs []pipeline.Config) ([]*pipeline.Result, error) {
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
	}
	if c.allDown() {
		// The whole fleet is unreachable before anything started: one
		// local batch run on the bounded pool, not per-job fallbacks.
		c.emit(EvLocalFallback, -1)
		return c.local(ctx, cfgs)
	}
	keys := make([]string, len(cfgs))
	for i := range cfgs {
		key, err := serve.ConfigKey(cfgs[i])
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		keys[i] = key
	}
	results := make([]*pipeline.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.runJob(ctx, keys[i], point{cfg: cfgs[i]})
			if err != nil {
				errs[i] = fmt.Errorf("config %d: %w", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunSampled runs one configuration as a SMARTS-style sampled simulation
// over the fleet: the functional-warming chain and checkpoints are
// produced coordinator-side (one cheap pass), each measurement window is
// dispatched as a checkpoint job sharded by the checkpoint's content
// address, and the per-window results merge back into a whole-run
// estimate. Window jobs ride the same retry/hedge/fallback machinery as
// sweep points, so a sampled run survives the same fleet failures a
// batch does, with bit-identical results by the determinism contract.
func (c *Coordinator) RunSampled(ctx context.Context, cfg pipeline.Config, o sample.Options) (*sample.Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ckpts, err := sample.Checkpoints(cfg, o)
	if err != nil {
		return nil, err
	}
	wcfg := sample.WindowConfig(cfg, o)
	wkey, err := serve.ConfigKey(wcfg)
	if err != nil {
		return nil, err
	}
	results := make([]*pipeline.Result, len(ckpts))
	errs := make([]error, len(ckpts))
	var wg sync.WaitGroup
	for i := range ckpts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The shard key mirrors the backend's cache key for a
			// checkpoint job: checkpoint digest prefix + window config
			// key, so repeat runs of the same window hit the same node's
			// cache.
			key := snap.Digest(ckpts[i])[:16] + wkey
			res, err := c.runJob(ctx, key, point{cfg: wcfg, ckpt: ckpts[i]})
			if err != nil {
				errs[i] = fmt.Errorf("window %d: %w", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sample.Merge(results, o, cfg.MeasureInstructions)
}

// Runner adapts the coordinator to experiments.Options.Runner, so a
// figure regenerates through the fleet.
func (c *Coordinator) Runner(ctx context.Context) func([]pipeline.Config) ([]*pipeline.Result, error) {
	return func(cfgs []pipeline.Config) ([]*pipeline.Result, error) {
		return c.RunAll(ctx, cfgs)
	}
}

// point is one unit of dispatched work: a configuration, optionally
// started from a sealed machine checkpoint (a sampled-simulation window).
type point struct {
	cfg  pipeline.Config
	ckpt []byte
}

// simError is a job failure reported by a healthy backend: the simulation
// itself failed (e.g. a cycle budget expired), so retrying elsewhere —
// the pipeline being deterministic — would fail identically. It is
// permanent.
type simError struct{ msg string }

func (e *simError) Error() string { return e.msg }

// backpressureError is a 429 from a backend shedding load: the backend is
// healthy but refusing work, and its Retry-After header tells the
// coordinator when to come back. It replaces the jittered backoff for the
// next attempt and never counts toward ejection.
type backpressureError struct {
	after time.Duration
	msg   string
}

func (e *backpressureError) Error() string {
	return fmt.Sprintf("dispatch: backend backpressure (retry after %s): %s", e.after, e.msg)
}

// runJob drives one configuration to a result: shard lookup, bounded
// submission with hedging, jittered backoff across attempts, and local
// fallback once the fleet is out of options. When tracing is on, the
// whole journey hangs off one root span whose trace ID is a pure
// function of the job key, and every stage — attempt, backoff wait,
// hedge, local fallback — is a child, so a slow sweep decomposes into
// stage delays exactly like an IPC loss decomposes into loop delays.
func (c *Coordinator) runJob(ctx context.Context, key string, pt point) (*pipeline.Result, error) {
	root := c.tracer.Root(key, "job")
	defer root.End() // idempotent safety net: no path may leak the root
	for attempt := 0; attempt < c.opts.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			root.SetStatus("cancelled")
			return nil, err
		}
		b := c.pick(key, -1)
		if b < 0 {
			break // nobody admitted; degrade now rather than spin
		}
		res, err := c.tryOnce(ctx, b, key, pt, root)
		if err == nil {
			root.SetStatus("ok")
			return res, nil
		}
		var sim *simError
		if errors.As(err, &sim) {
			root.SetError(sim)
			return nil, sim
		}
		if cerr := ctx.Err(); cerr != nil {
			root.SetStatus("cancelled")
			return nil, cerr
		}
		// A backend under backpressure told us exactly when to come back;
		// honor its Retry-After (capped at BackoffCap) instead of the
		// jittered schedule. Everything else backs off as before.
		var delay time.Duration
		var bp *backpressureError
		if errors.As(err, &bp) {
			c.emit(EvBackpressure, b)
			delay = bp.after
			if delay > c.opts.BackoffCap {
				delay = c.opts.BackoffCap
			}
		} else {
			c.emit(EvRetry, b)
			delay = backoff(attempt, c.opts.BackoffBase, c.opts.BackoffCap, c.jitter())
		}
		bsp := root.Child("backoff")
		select {
		case <-ctx.Done():
			bsp.SetStatus("cancelled")
			bsp.End()
			root.SetStatus("cancelled")
			return nil, ctx.Err()
		case <-c.after(delay):
			bsp.End()
		}
	}
	// Every attempt failed (or no backend is admitted): run the point
	// locally. The result is bit-identical to a fleet run by the
	// determinism contract, so the sweep's output does not depend on
	// which path served it.
	c.emit(EvLocalFallback, -1)
	lsp := root.Child("local")
	res, err := c.runLocal(ctx, pt)
	lsp.SetError(err)
	if err == nil {
		lsp.SetWinner()
	}
	lsp.End()
	root.SetError(err)
	return res, err
}

// runLocal simulates one configuration on this host, bounded so a fleet
// outage cannot construct more live machines than GOMAXPROCS.
func (c *Coordinator) runLocal(ctx context.Context, pt point) (*pipeline.Result, error) {
	select {
	case c.localSem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.localSem }()
	if pt.ckpt != nil {
		m, err := pipeline.Restore(pt.cfg, pt.ckpt)
		if err != nil {
			return nil, err
		}
		return m.RunContext(ctx)
	}
	return loosesim.RunContext(ctx, pt.cfg)
}

// tryOnce submits one attempt against the primary backend, hedging a
// duplicate onto a second backend if the primary is still silent after
// the hedge delay. The first response wins; the loser's request is
// cancelled. Attempt spans ("post") and hedge spans ("hedge") are
// siblings under the job root; the span whose response the job used is
// marked the winner.
func (c *Coordinator) tryOnce(ctx context.Context, primary int, key string, pt point, root *trace.ActiveSpan) (*pipeline.Result, error) {
	if c.opts.HedgeDelay <= 0 {
		sp := root.Child("post")
		res, err := c.post(ctx, primary, pt, sp)
		if err == nil {
			sp.SetWinner()
		}
		sp.End()
		return res, err
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res    *pipeline.Result
		err    error
		hedged bool
		sp     *trace.ActiveSpan
	}
	// Spans for in-flight exchanges are created, appended, and ended only
	// on this goroutine; End is idempotent, so the deferred sweep closes
	// whatever an early return (cancellation) leaves open.
	var open []*trace.ActiveSpan
	defer func() {
		for _, sp := range open {
			sp.End()
		}
	}()
	ch := make(chan outcome, 2) // both goroutines can always deliver
	psp := root.Child("post")
	open = append(open, psp)
	go func() {
		res, err := c.post(hctx, primary, pt, psp)
		ch <- outcome{res: res, err: err, sp: psp}
	}()
	inFlight := 1
	timer := c.after(c.opts.HedgeDelay)
	var firstErr error
	for {
		select {
		case <-timer:
			timer = nil
			s := c.pick(key, primary)
			if s < 0 {
				continue // nobody to hedge onto
			}
			c.emit(EvHedge, s)
			inFlight++
			hsp := root.Child("hedge")
			open = append(open, hsp)
			go func() {
				res, err := c.post(hctx, s, pt, hsp)
				ch <- outcome{res: res, err: err, hedged: true, sp: hsp}
			}()
		case o := <-ch:
			inFlight--
			if o.err == nil {
				if o.hedged {
					c.emit(EvHedgeWon, -1)
				}
				o.sp.SetWinner()
				o.sp.End()
				return o.res, nil
			}
			o.sp.End()
			var sim *simError
			if errors.As(o.err, &sim) {
				return nil, o.err // permanent: the duplicate would fail identically
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inFlight == 0 {
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// post runs one request against backend b under its in-flight window and
// maps the response to a result, a permanent simError, or a transient
// (counted) backend failure. The attempt span records the shard
// assignment (Target) and the outcome; the backend continues the trace
// from the propagated Traceparent header. post never ends sp — the
// caller does, because only it knows whether this attempt won.
func (c *Coordinator) post(ctx context.Context, b int, pt point, sp *trace.ActiveSpan) (res *pipeline.Result, err error) {
	bk := c.backends[b]
	// The target is the ring ordinal, not the URL: shard assignment is a
	// pure function of the key, so the ordinal keeps span streams
	// byte-identical across runs even when test fleets sit on ephemeral
	// loopback ports. Metrics maps ordinals back to URLs.
	sp.SetTarget(backendName(b))
	defer func() { sp.SetError(err) }()
	select {
	case bk.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-bk.sem }()
	bk.inFlight.Add(1)
	defer bk.inFlight.Add(-1)
	bk.requests.Add(1)
	c.emit(EvRequest, b)

	body, err := json.Marshal(serve.JobSpec{Config: &pt.cfg, Checkpoint: pt.ckpt, NoCache: c.opts.NoCache})
	if err != nil {
		return nil, err // not a backend fault; do not count it
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, bk.url+"/api/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := trace.Format(sp.Context()); tp != "" {
		req.Header.Set(trace.TraceparentHeader, tp)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, c.failOrCtx(ctx, b, err)
	}
	st, err := decodeStatus(resp)
	if err != nil {
		var bp *backpressureError
		if errors.As(err, &bp) {
			// A shedding backend answered coherently: that is a healthy
			// contact, so reset its failure streak instead of charging it
			// toward ejection — overload is load, not failure.
			c.ok(b)
			return nil, err
		}
		return nil, c.failOrCtx(ctx, b, err)
	}
	switch st.State {
	case serve.StateDone:
		if st.Result == nil {
			return nil, c.failOrCtx(ctx, b, fmt.Errorf("dispatch: backend %s: done with no result", bk.url))
		}
		c.ok(b)
		if st.Cached {
			c.emit(EvCacheHit, b)
			sp.SetDetail("cache-hit")
		}
		return st.Result, nil
	case serve.StateFailed:
		c.ok(b) // the backend is healthy; the simulation failed
		return nil, &simError{msg: st.Error}
	default:
		// Cancelled (a draining backend) or an unexpected state: try
		// elsewhere.
		return nil, c.failOrCtx(ctx, b, fmt.Errorf("dispatch: backend %s: job state %q: %s", bk.url, st.State, st.Error))
	}
}

// decodeStatus reads and closes one submission response. A truncated or
// malformed body is an error — the caller treats it as a transient
// backend failure.
func decodeStatus(resp *http.Response) (serve.Status, error) {
	var st serve.Status
	defer func() {
		_ = resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return st, &backpressureError{
			after: parseRetryAfter(resp.Header.Get("Retry-After")),
			msg:   string(bytes.TrimSpace(msg)),
		}
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return st, fmt.Errorf("dispatch: backend status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("dispatch: decoding backend response: %w", err)
	}
	return st, nil
}

// parseRetryAfter decodes a Retry-After header's delay-seconds form. The
// HTTP-date form and garbage both fall back to one second — a missing or
// unparseable hint should still slow the client down, just minimally.
func parseRetryAfter(h string) time.Duration {
	if n, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && n >= 0 {
		return time.Duration(n) * time.Second
	}
	return time.Second
}

// backendName is the stable span-target name for ring ordinal b.
func backendName(b int) string {
	return "backend-" + strconv.Itoa(b)
}

// probeLoop sweeps /healthz on the period configured by ProbeInterval
// until Close.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.after(c.opts.ProbeInterval):
			c.probeAll()
		}
	}
}

// probeAll checks every backend once: a 200 readmits (and resets the
// failure streak); anything else counts toward ejection. Each sweep is
// its own trace (key "probe"), one child span per backend probed.
func (c *Coordinator) probeAll() {
	root := c.tracer.Root("probe", "probe-sweep")
	defer root.End()
	for i := range c.backends {
		select {
		case <-c.stop:
			return
		default:
		}
		c.probe(i, root)
	}
}

// probe runs one bounded /healthz exchange against backend b. The span
// records the health transition the probe caused: "eject" when the
// failure streak removed b from the ring, "readmit" when a recovery
// restored it.
func (c *Coordinator) probe(b int, parent *trace.ActiveSpan) {
	bk := c.backends[b]
	sp := parent.Child("probe")
	sp.SetTarget(backendName(b))
	defer sp.End()
	wasDown := bk.down.Load()
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, bk.url+"/healthz", nil)
	if err != nil {
		sp.SetError(err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		_ = c.fail(b, err) // a probe timeout is a real failure, unlike a cancelled job request
		sp.SetError(err)
		if !wasDown && bk.down.Load() {
			sp.SetStatus("eject")
		}
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if cerr := resp.Body.Close(); cerr != nil {
		_ = c.fail(b, cerr)
		sp.SetError(cerr)
		if !wasDown && bk.down.Load() {
			sp.SetStatus("eject")
		}
		return
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("dispatch: healthz status %d", resp.StatusCode)
		_ = c.fail(b, err)
		sp.SetError(err)
		if !wasDown && bk.down.Load() {
			sp.SetStatus("eject")
		}
		return
	}
	c.ok(b)
	if wasDown {
		sp.SetStatus("readmit")
	} else {
		sp.SetStatus("ok")
	}
}
