package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"loosesim/internal/pipeline"
	"loosesim/internal/serve"
	"loosesim/internal/serve/servetest"
	"loosesim/internal/trace"
)

// TestTraceRetrySiblingSpans drives one job through two scripted transport
// failures and checks the span tree: one trace, one root, three sibling
// post attempts of which only the last is the winner, and a backoff span
// per retry wait.
func TestTraceRetrySiblingSpans(t *testing.T) {
	b := servetest.StartBackend(serve.Options{Workers: 1})
	defer b.Close()

	tr := &servetest.Tripper{}
	tr.Script(
		servetest.FaultSpec{Fault: servetest.DropConn},
		servetest.FaultSpec{Fault: servetest.DropConn},
	)
	var sink trace.Collector
	tracer := trace.New(trace.Options{Seed: 1, Sink: &sink})
	clock := &instantClock{park: parkProbes}
	c, err := New(Options{
		Backends:      []string{b.URL},
		Client:        &http.Client{Transport: tr},
		Attempts:      4,
		BackoffBase:   50 * time.Millisecond,
		BackoffCap:    2 * time.Second,
		ProbeInterval: parkProbes,
		Jitter:        func() float64 { return 0 },
		After:         clock.After,
		Tracer:        tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfgs := []pipeline.Config{testCfg(t, "gcc", 7)}
	if _, err := c.RunAll(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	if n := tracer.Open(); n != 0 {
		t.Fatalf("open spans after RunAll = %d, want 0", n)
	}

	spans := sink.Spans()
	traceID := spans[0].Trace
	var posts, backoffs, winners int
	var root trace.Span
	for _, s := range spans {
		if s.Trace != traceID {
			t.Fatalf("second trace ID %s in a one-job run (first %s)", s.Trace, traceID)
		}
		switch s.Name {
		case "job":
			root = s
		case "post":
			posts++
			if s.Parent != root.Span {
				t.Fatalf("post span parent = %d, want root %d", s.Parent, root.Span)
			}
			if s.Winner {
				winners++
				if s.Status != "ok" {
					t.Fatalf("winning post status = %q, want ok", s.Status)
				}
			} else if s.Status != "error" {
				t.Fatalf("failed post status = %q, want error", s.Status)
			}
		case "backoff":
			backoffs++
		}
	}
	if root.Span != 1 || root.Status != "ok" {
		t.Fatalf("root span = %+v, want span 1 status ok", root)
	}
	if posts != 3 || backoffs != 2 || winners != 1 {
		t.Fatalf("posts = %d backoffs = %d winners = %d, want 3, 2, 1", posts, backoffs, winners)
	}
}

// TestTraceHedgeWinnerMarked hangs the key's owner so the hedge wins, and
// checks the hedge span alone carries the winner flag while the cancelled
// primary's span still closes.
func TestTraceHedgeWinnerMarked(t *testing.T) {
	backends, closeAll := servetest.StartBackends(2, serve.Options{Workers: 1})
	defer closeAll()
	urls := servetest.URLs(backends)

	cfgs := []pipeline.Config{testCfg(t, "swim", 3)}
	key, err := serve.ConfigKey(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}

	var sink trace.Collector
	tracer := trace.New(trace.Options{Seed: 1, Sink: &sink})
	clock := &instantClock{park: parkProbes}
	tr := &servetest.Tripper{}
	c, err := New(Options{
		Backends:      urls,
		Client:        &http.Client{Transport: tr},
		HedgeDelay:    77 * time.Millisecond,
		ProbeInterval: parkProbes,
		Jitter:        func() float64 { return 0 },
		After:         clock.After,
		Tracer:        tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	primary := c.pick(key, -1)
	if primary < 0 {
		t.Fatal("no primary")
	}
	primaryHost := strings.TrimPrefix(urls[primary], "http://")
	tr.Match = func(r *http.Request) bool { return r.URL.Host == primaryHost }
	tr.Script(servetest.FaultSpec{Fault: servetest.Hang})

	if _, err := c.RunAll(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	if n := tracer.Open(); n != 0 {
		t.Fatalf("open spans after hedged RunAll = %d, want 0", n)
	}

	var postSeen, hedgeSeen bool
	for _, s := range sink.Spans() {
		switch s.Name {
		case "post":
			postSeen = true
			if s.Winner {
				t.Fatal("hung primary marked winner")
			}
		case "hedge":
			hedgeSeen = true
			if !s.Winner || s.Status != "ok" {
				t.Fatalf("hedge span = %+v, want winner with status ok", s)
			}
		}
	}
	if !postSeen || !hedgeSeen {
		t.Fatalf("post/hedge spans missing (post=%v hedge=%v)", postSeen, hedgeSeen)
	}
}

// TestTraceStreamByteIdentical runs the same faulted single-job scenario
// twice — fresh backend, coordinator, and writer each time, with a
// constant injected clock — and demands byte-identical span streams.
func TestTraceStreamByteIdentical(t *testing.T) {
	run := func() []byte {
		b := servetest.StartBackend(serve.Options{Workers: 1})
		defer b.Close()
		tr := &servetest.Tripper{}
		tr.Script(servetest.FaultSpec{Fault: servetest.Status500})
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		tracer := trace.New(trace.Options{
			Seed: 9,
			Now:  func() time.Time { return time.Unix(0, 424242) },
			Sink: w,
		})
		clock := &instantClock{park: parkProbes}
		c, err := New(Options{
			Backends:      []string{b.URL},
			Client:        &http.Client{Transport: tr},
			Attempts:      3,
			BackoffBase:   time.Millisecond,
			ProbeInterval: parkProbes,
			Jitter:        func() float64 { return 0 },
			After:         clock.After,
			Tracer:        tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cfgs := []pipeline.Config{testCfg(t, "comp", 5)}
		if _, err := c.RunAll(context.Background(), cfgs); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		t.Fatalf("span streams differ across identical runs:\n%s\nvs\n%s", first, second)
	}
	if len(first) == 0 {
		t.Fatal("empty span stream")
	}
}

// TestTraceOffCountersIdentical runs the same scenario with tracing on and
// off and demands identical coordinator metrics — tracing must observe,
// never steer.
func TestTraceOffCountersIdentical(t *testing.T) {
	run := func(tracer *trace.Tracer) Metrics {
		b := servetest.StartBackend(serve.Options{Workers: 1})
		defer b.Close()
		tr := &servetest.Tripper{}
		tr.Script(
			servetest.FaultSpec{Fault: servetest.DropConn},
			servetest.FaultSpec{Fault: servetest.Status500},
		)
		clock := &instantClock{park: parkProbes}
		c, err := New(Options{
			Backends:      []string{b.URL},
			Client:        &http.Client{Transport: tr},
			Attempts:      4,
			BackoffBase:   time.Millisecond,
			ProbeInterval: parkProbes,
			Jitter:        func() float64 { return 0 },
			After:         clock.After,
			Tracer:        tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cfgs := []pipeline.Config{testCfg(t, "gcc", 2), testCfg(t, "swim", 2)}
		if _, err := c.RunAll(context.Background(), cfgs); err != nil {
			t.Fatal(err)
		}
		m := c.Metrics()
		// Loopback ports differ between the two fleets; the counters are
		// what must match.
		for i := range m.Backends {
			m.Backends[i].URL = ""
		}
		return m
	}

	var sink trace.Collector
	on := run(trace.New(trace.Options{Seed: 1, Sink: &sink}))
	off := run(nil)
	onJSON, err := json.Marshal(on)
	if err != nil {
		t.Fatal(err)
	}
	offJSON, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onJSON, offJSON) {
		t.Fatalf("metrics diverge with tracing on:\non:  %s\noff: %s", onJSON, offJSON)
	}
	if len(sink.Spans()) == 0 {
		t.Fatal("tracing-on run recorded no spans")
	}
}
