package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"loosesim"
	"loosesim/internal/pipeline"
	"loosesim/internal/serve"
	"loosesim/internal/serve/servetest"
)

func testCfg(t *testing.T, bench string, seed int64) pipeline.Config {
	t.Helper()
	cfg, err := loosesim.DefaultMachine(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 2000
	return cfg
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func localBaseline(t *testing.T, cfgs []pipeline.Config) []*pipeline.Result {
	t.Helper()
	results := make([]*pipeline.Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := loosesim.RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("local baseline config %d: %v", i, err)
		}
		results[i] = res
	}
	return results
}

func assertByteIdentical(t *testing.T, got, want []*pipeline.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if g, w := mustJSON(t, got[i]), mustJSON(t, want[i]); !bytes.Equal(g, w) {
			t.Fatalf("result %d differs from local baseline:\nfleet: %s\nlocal: %s", i, g, w)
		}
	}
}

func TestBackoffSchedule(t *testing.T) {
	base, ceil := 50*time.Millisecond, 2*time.Second
	tests := []struct {
		name    string
		attempt int
		jitter  float64
		want    time.Duration
	}{
		{"attempt0-low", 0, 0, 25 * time.Millisecond},
		{"attempt1-low", 1, 0, 50 * time.Millisecond},
		{"attempt2-low", 2, 0, 100 * time.Millisecond},
		{"attempt3-low", 3, 0, 200 * time.Millisecond},
		{"attempt0-high", 0, 1, 50 * time.Millisecond},
		{"attempt2-mid", 2, 0.5, 150 * time.Millisecond},
		{"capped", 10, 0, time.Second},
		{"capped-high", 10, 1, 2 * time.Second},
		{"overflow-proof", 80, 0, time.Second},
		{"negative-attempt", -3, 0, 25 * time.Millisecond},
	}
	for _, tc := range tests {
		if got := backoff(tc.attempt, base, ceil, tc.jitter); got != tc.want {
			t.Errorf("%s: backoff(%d, jitter=%v) = %v, want %v", tc.name, tc.attempt, tc.jitter, got, tc.want)
		}
	}
}

// TestRingStableUnderEjection is the shard-stability property: ejecting a
// backend moves only the keys it owned, and readmitting it restores the
// original assignment exactly.
func TestRingStableUnderEjection(t *testing.T) {
	urls := make([]string, 5)
	for i := range urls {
		urls[i] = "http://backend-" + strconv.Itoa(i) + ":8080"
	}
	r := newRing(urls)
	all := func(int) bool { return true }

	const nkeys = 1000
	keys := make([]string, nkeys)
	before := make([]int, nkeys)
	for i := range keys {
		keys[i] = "key-" + strconv.Itoa(i)
		before[i] = r.owner(keys[i], all, -1)
		if before[i] < 0 || before[i] >= len(urls) {
			t.Fatalf("key %d: owner %d out of range", i, before[i])
		}
	}

	const ejected = 2
	without := func(b int) bool { return b != ejected }
	moved := 0
	for i := range keys {
		after := r.owner(keys[i], without, -1)
		if after == ejected {
			t.Fatalf("key %d assigned to ejected backend", i)
		}
		switch {
		case before[i] == ejected:
			moved++
		case after != before[i]:
			t.Fatalf("key %d moved from %d to %d though its owner %d stayed admitted",
				i, before[i], after, before[i])
		}
	}
	if moved == 0 {
		t.Fatal("ejected backend owned no keys; property vacuous (raise nkeys)")
	}

	for i := range keys {
		if got := r.owner(keys[i], all, -1); got != before[i] {
			t.Fatalf("key %d: assignment after readmission = %d, want %d", i, got, before[i])
		}
	}
}

func TestRingExclude(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(urls)
	all := func(int) bool { return true }
	for i := 0; i < 100; i++ {
		key := "k" + strconv.Itoa(i)
		primary := r.owner(key, all, -1)
		secondary := r.owner(key, all, primary)
		if secondary == primary {
			t.Fatalf("key %q: secondary = primary = %d", key, primary)
		}
		if secondary < 0 {
			t.Fatalf("key %q: no secondary in a 3-backend fleet", key)
		}
	}
	one := newRing(urls[:1])
	if got := one.owner("k", all, 0); got != -1 {
		t.Fatalf("single-backend ring with owner excluded: got %d, want -1", got)
	}
}

// instantClock fires every timer immediately and records the requested
// durations — except durations equal to park, whose channels never fire
// (used to idle the probe loop out of the way).
type instantClock struct {
	park time.Duration

	mu    sync.Mutex
	fired []time.Duration
}

func (c *instantClock) After(d time.Duration) <-chan time.Time {
	if d == c.park {
		return make(chan time.Time)
	}
	c.mu.Lock()
	c.fired = append(c.fired, d)
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

func (c *instantClock) delays() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.fired...)
}

const parkProbes = 12345 * time.Hour

// TestRetrySchedule drives one job through two scripted transport
// failures and checks the exact jittered backoff sequence the coordinator
// slept, plus the resulting counters.
func TestRetrySchedule(t *testing.T) {
	b := servetest.StartBackend(serve.Options{Workers: 1})
	defer b.Close()

	tr := &servetest.Tripper{}
	tr.Script(
		servetest.FaultSpec{Fault: servetest.DropConn},
		servetest.FaultSpec{Fault: servetest.DropConn},
	)
	clock := &instantClock{park: parkProbes}
	c, err := New(Options{
		Backends:      []string{b.URL},
		Client:        &http.Client{Transport: tr},
		Attempts:      4,
		BackoffBase:   50 * time.Millisecond,
		BackoffCap:    2 * time.Second,
		ProbeInterval: parkProbes,
		Jitter:        func() float64 { return 0 },
		After:         clock.After,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfgs := []pipeline.Config{testCfg(t, "gcc", 7)}
	got, err := c.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, got, localBaseline(t, cfgs))

	wantDelays := []time.Duration{25 * time.Millisecond, 50 * time.Millisecond}
	if gotDelays := clock.delays(); fmt.Sprint(gotDelays) != fmt.Sprint(wantDelays) {
		t.Fatalf("backoff delays = %v, want %v", gotDelays, wantDelays)
	}

	m := c.Metrics()
	if m.Requests != 3 || m.Retries != 2 {
		t.Fatalf("requests = %d retries = %d, want 3 and 2", m.Requests, m.Retries)
	}
	if m.Backends[0].Failures != 2 || m.Backends[0].Down {
		t.Fatalf("backend metrics = %+v, want 2 failures and not down", m.Backends[0])
	}
	if tr.Remaining() != 0 {
		t.Fatalf("unconsumed faults: %d", tr.Remaining())
	}
}

// TestHedgeRescuesHungPrimary aims a black-hole fault at the key's owner
// and checks the hedge fires, wins, and the hung request is not charged
// against the primary's health.
func TestHedgeRescuesHungPrimary(t *testing.T) {
	backends, closeAll := servetest.StartBackends(2, serve.Options{Workers: 1})
	defer closeAll()
	urls := servetest.URLs(backends)

	cfgs := []pipeline.Config{testCfg(t, "swim", 3)}
	key, err := serve.ConfigKey(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}

	clock := &instantClock{park: parkProbes}
	tr := &servetest.Tripper{}
	c, err := New(Options{
		Backends:      urls,
		Client:        &http.Client{Transport: tr},
		HedgeDelay:    77 * time.Millisecond,
		ProbeInterval: parkProbes,
		Jitter:        func() float64 { return 0 },
		After:         clock.After,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	primary := c.pick(key, -1)
	if primary < 0 {
		t.Fatal("no primary")
	}
	primaryHost := strings.TrimPrefix(urls[primary], "http://")
	tr.Match = func(r *http.Request) bool { return r.URL.Host == primaryHost }
	tr.Script(servetest.FaultSpec{Fault: servetest.Hang})

	got, err := c.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, got, localBaseline(t, cfgs))

	m := c.Metrics()
	if m.Hedges != 1 || m.HedgesWon != 1 {
		t.Fatalf("hedges = %d won = %d, want 1 and 1", m.Hedges, m.HedgesWon)
	}
	if m.Requests != 2 || m.Retries != 0 {
		t.Fatalf("requests = %d retries = %d, want 2 and 0", m.Requests, m.Retries)
	}
	// The hung request ended by our own cancellation; the primary's
	// health must be untouched.
	if m.Backends[primary].Failures != 0 || m.Backends[primary].Down {
		t.Fatalf("primary charged for a hedge-cancelled request: %+v", m.Backends[primary])
	}
}

// TestBatchLocalDegradeWhenAllDown covers the batch-level degrade: with
// every backend ejected before the batch starts, RunAll runs the whole
// batch through the local engine in one shot.
func TestBatchLocalDegradeWhenAllDown(t *testing.T) {
	c, err := New(Options{
		Backends:      []string{"http://127.0.0.1:9", "http://127.0.0.1:10"},
		ProbeInterval: parkProbes,
		After:         (&instantClock{park: parkProbes}).After,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, bk := range c.backends {
		bk.down.Store(true)
	}

	cfgs := []pipeline.Config{testCfg(t, "gcc", 1), testCfg(t, "comp", 2)}
	got, err := c.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, got, localBaseline(t, cfgs))

	m := c.Metrics()
	if m.LocalFallbacks != 1 {
		t.Fatalf("local fallbacks = %d, want exactly 1 (one batch degrade)", m.LocalFallbacks)
	}
	if m.Requests != 0 {
		t.Fatalf("requests = %d, want 0 (nothing should touch the fleet)", m.Requests)
	}
}

// TestEmptyFleetRunsLocally: a coordinator with no backends is legal and
// is simply the local engine.
func TestEmptyFleetRunsLocally(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfgs := []pipeline.Config{testCfg(t, "go", 5)}
	got, err := c.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, got, localBaseline(t, cfgs))
	if m := c.Metrics(); m.LocalFallbacks != 1 {
		t.Fatalf("local fallbacks = %d, want 1", m.LocalFallbacks)
	}
}

// TestRunAllFirstErrorPosition checks the RunAllContext-compatible error
// contract: validation errors fail fast with the config's position, and
// the first error in input order wins.
func TestRunAllFirstErrorPosition(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := testCfg(t, "gcc", 1)
	bad.FwdDepth = -1
	cfgs := []pipeline.Config{testCfg(t, "gcc", 1), bad, testCfg(t, "gcc", 2)}
	if _, err := c.RunAll(context.Background(), cfgs); err == nil || !strings.Contains(err.Error(), "config 1") {
		t.Fatalf("validation error = %v, want position config 1", err)
	}

	// Matching loosesim.RunAllContext: the same batch must produce an
	// error naming the same position.
	if _, lerr := loosesim.RunAllContext(context.Background(), cfgs); lerr == nil || !strings.Contains(lerr.Error(), "config 1") {
		t.Fatalf("RunAllContext baseline error = %v, want position config 1", lerr)
	}
}

// TestSimErrorIsPermanent: a failure reported by a healthy backend (here
// an exhausted cycle budget) must surface immediately — no retries, no
// local fallback, and no health penalty for the backend.
func TestSimErrorIsPermanent(t *testing.T) {
	b := servetest.StartBackend(serve.Options{Workers: 1})
	defer b.Close()

	clock := &instantClock{park: parkProbes}
	c, err := New(Options{
		Backends:      []string{b.URL},
		ProbeInterval: parkProbes,
		After:         clock.After,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := testCfg(t, "gcc", 1)
	cfg.CycleBudget = 1
	_, err = c.RunAll(context.Background(), []pipeline.Config{cfg})
	if err == nil || !strings.Contains(err.Error(), "config 0") {
		t.Fatalf("cycle-budget error = %v, want config 0 position", err)
	}
	m := c.Metrics()
	if m.Requests != 1 || m.Retries != 0 || m.LocalFallbacks != 0 {
		t.Fatalf("requests=%d retries=%d fallbacks=%d, want 1/0/0", m.Requests, m.Retries, m.LocalFallbacks)
	}
	if m.Backends[0].Failures != 0 {
		t.Fatalf("backend charged for a simulation failure: %+v", m.Backends[0])
	}
}

// TestBackpressureHonorsRetryAfter drives one job through two injected
// 429s and checks the coordinator sleeps exactly the Retry-After hints
// (capped at BackoffCap) instead of the jittered schedule, counts them as
// backpressure rather than retries, and never charges the shedding
// backend's health.
func TestBackpressureHonorsRetryAfter(t *testing.T) {
	b := servetest.StartBackend(serve.Options{Workers: 1})
	defer b.Close()

	tr := &servetest.Tripper{}
	tr.Script(
		servetest.FaultSpec{Fault: servetest.Status429, RetryAfter: 5}, // over the cap
		servetest.FaultSpec{Fault: servetest.Status429, RetryAfter: 1},
	)
	clock := &instantClock{park: parkProbes}
	c, err := New(Options{
		Backends:      []string{b.URL},
		Client:        &http.Client{Transport: tr},
		Attempts:      4,
		BackoffBase:   50 * time.Millisecond,
		BackoffCap:    2 * time.Second,
		ProbeInterval: parkProbes,
		Jitter:        func() float64 { return 0 },
		After:         clock.After,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfgs := []pipeline.Config{testCfg(t, "gcc", 11)}
	got, err := c.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, got, localBaseline(t, cfgs))

	// 5s hint capped at the 2s BackoffCap, then the 1s hint verbatim —
	// and neither is the jittered 25ms/50ms schedule TestRetrySchedule
	// pins for transport failures.
	wantDelays := []time.Duration{2 * time.Second, time.Second}
	if gotDelays := clock.delays(); fmt.Sprint(gotDelays) != fmt.Sprint(wantDelays) {
		t.Fatalf("backpressure delays = %v, want %v", gotDelays, wantDelays)
	}

	m := c.Metrics()
	if m.Requests != 3 || m.Backpressure != 2 || m.Retries != 0 {
		t.Fatalf("requests=%d backpressure=%d retries=%d, want 3/2/0", m.Requests, m.Backpressure, m.Retries)
	}
	if m.Backends[0].Failures != 0 || m.Backends[0].Down {
		t.Fatalf("backend charged for shedding load: %+v", m.Backends[0])
	}
	if tr.Remaining() != 0 {
		t.Fatalf("unconsumed faults: %d", tr.Remaining())
	}
}
