package dispatch

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestEventKindRoundTrip pins the stable string names: every kind must
// render a non-numeric name and survive String → Parse and JSON
// marshal → unmarshal unchanged.
func TestEventKindRoundTrip(t *testing.T) {
	wantNames := map[EventKind]string{
		EvRequest:       "request",
		EvCacheHit:      "cache-hit",
		EvRetry:         "retry",
		EvHedge:         "hedge",
		EvHedgeWon:      "hedge-won",
		EvEject:         "eject",
		EvReadmit:       "readmit",
		EvLocalFallback: "local-fallback",
		EvBackpressure:  "backpressure",
	}
	if len(wantNames) != int(NumEventKinds) {
		t.Fatalf("test covers %d kinds, enum has %d — extend the table", len(wantNames), NumEventKinds)
	}
	for k := EventKind(0); k < NumEventKinds; k++ {
		name := k.String()
		if want := wantNames[k]; name != want {
			t.Errorf("kind %d String() = %q, want %q", k, name, want)
		}
		if strings.ContainsAny(name, "0123456789(") {
			t.Errorf("kind %d renders numerically as %q; names must be self-describing", k, name)
		}

		parsed, err := ParseEventKind(name)
		if err != nil || parsed != k {
			t.Errorf("ParseEventKind(%q) = (%v, %v), want (%v, nil)", name, parsed, err, k)
		}

		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal kind %v: %v", k, err)
		}
		if string(b) != `"`+name+`"` {
			t.Errorf("kind %v marshals to %s, want %q", k, b, name)
		}
		var back EventKind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Errorf("unmarshal %s = (%v, %v), want (%v, nil)", b, back, err, k)
		}
	}

	// Events embed the name, so a JSONL event stream is self-describing.
	b, err := json.Marshal(Event{Kind: EvHedgeWon, Backend: 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"kind":"hedge-won","backend":2}` {
		t.Errorf("event JSON = %s", b)
	}
	var ev Event
	if err := json.Unmarshal(b, &ev); err != nil || ev.Kind != EvHedgeWon || ev.Backend != 2 {
		t.Errorf("event round trip = (%+v, %v)", ev, err)
	}

	// Unknown names and out-of-range kinds fail loudly, not silently.
	if _, err := ParseEventKind("nope"); err == nil {
		t.Error("ParseEventKind accepted an unknown name")
	}
	var bad EventKind
	if err := json.Unmarshal([]byte(`"nope"`), &bad); err == nil {
		t.Error("UnmarshalJSON accepted an unknown name")
	}
	if err := json.Unmarshal([]byte(`7`), &bad); err == nil {
		t.Error("UnmarshalJSON accepted a bare number")
	}
	if got := NumEventKinds.String(); !strings.Contains(got, "dispatch-event") {
		t.Errorf("out-of-range String() = %q", got)
	}
}
