package dispatch

import (
	"context"
	"net/http"
	"testing"
	"time"

	"loosesim/internal/pipeline"
	"loosesim/internal/serve"
	"loosesim/internal/serve/servetest"
)

// sweep24 is the e2e batch: 8 workloads × 3 seeds, the shape of a small
// figure grid.
func sweep24(t *testing.T) []pipeline.Config {
	t.Helper()
	benches := []string{"comp", "gcc", "go", "m88", "apsi", "hydro", "mgrid", "swim"}
	cfgs := make([]pipeline.Config, 0, 24)
	for seed := int64(1); seed <= 3; seed++ {
		for _, bench := range benches {
			cfgs = append(cfgs, testCfg(t, bench, seed))
		}
	}
	return cfgs
}

// TestFleetSweepDeterminism is the headline end-to-end property: a
// 24-config sweep sharded over 3 in-process backends — with a fault
// script (drops, 500s, torn bodies, latency, a black hole) chewing on the
// traffic — produces results byte-identical to a serial local run.
func TestFleetSweepDeterminism(t *testing.T) {
	backends, closeAll := servetest.StartBackends(3, serve.Options{Workers: 2})
	defer closeAll()

	tr := &servetest.Tripper{}
	tr.Script(
		servetest.FaultSpec{Fault: servetest.DropConn},
		servetest.FaultSpec{Fault: servetest.Status500},
		servetest.FaultSpec{Fault: servetest.TruncateBody},
		servetest.FaultSpec{Fault: servetest.Latency, Delay: time.Millisecond},
		servetest.FaultSpec{Fault: servetest.DropConn},
		// Last so a hedge launched to rescue it cannot itself draw a
		// fault.
		servetest.FaultSpec{Fault: servetest.Hang},
	)

	// Attempts exceeds the total fault count so no job can exhaust the
	// fleet: every config must come back from a backend, not fallback.
	c, err := New(Options{
		Backends:    servetest.URLs(backends),
		Client:      &http.Client{Transport: tr},
		Attempts:    8,
		BackoffBase: time.Millisecond,
		BackoffCap:  10 * time.Millisecond,
		HedgeDelay:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfgs := sweep24(t)
	want := localBaseline(t, cfgs)

	got, err := c.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, got, want)

	m := c.Metrics()
	if tr.Remaining() != 0 {
		t.Fatalf("unconsumed faults: %d (metrics %+v)", tr.Remaining(), m)
	}
	var failures uint64
	for _, bm := range m.Backends {
		failures += bm.Failures
	}
	// Hang and hedge-cancelled requests are deliberately not charged, so
	// the observed count can be below the script length — but the drops,
	// 500s, and torn bodies must have been seen by somebody.
	if failures == 0 {
		t.Fatalf("faults were scripted but no backend failure observed: %+v", m)
	}
	if m.LocalFallbacks != 0 {
		t.Fatalf("local fallbacks = %d, want 0 (attempts outnumber faults)", m.LocalFallbacks)
	}

	// Second pass, fleet now healthy: same bytes again, and the
	// shard-by-content-key design must convert repeats into backend
	// cache hits.
	again, err := c.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, again, want)
	if m2 := c.Metrics(); m2.CacheHits == 0 {
		t.Fatalf("second identical sweep produced no cache hits: %+v", m2)
	}
}

// TestForcedLocalFallbackDeterminism points the coordinator at a fleet of
// closed ports: every job must degrade to local simulation and the sweep
// must still match the serial baseline byte for byte.
func TestForcedLocalFallbackDeterminism(t *testing.T) {
	c, err := New(Options{
		// TCP port 9 (discard) is closed in any sane test environment;
		// dialing it fails fast.
		Backends:    []string{"http://127.0.0.1:9", "http://127.0.0.1:10"},
		Attempts:    1,
		BackoffBase: time.Microsecond,
		BackoffCap:  time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfgs := sweep24(t)[:8]
	got, err := c.RunAll(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	assertByteIdentical(t, got, localBaseline(t, cfgs))

	m := c.Metrics()
	if m.LocalFallbacks == 0 {
		t.Fatalf("expected local fallbacks against a dead fleet: %+v", m)
	}
}
