package fwd

import "loosesim/internal/snap"

// Snapshot encodes the forwarding buffer's mutable state: per-register
// completion cycles and the hit/miss statistics. depth and wbDelay are
// configuration, rebuilt by New.
func (b *Buffer) Snapshot(w *snap.Writer) {
	w.I64s(b.completed)
	w.U64(b.hits)
	w.U64(b.misses)
}

// Restore overwrites b's mutable state with state encoded by Snapshot.
// b must have been constructed by New with the same register count.
func (b *Buffer) Restore(r *snap.Reader) {
	completed := r.I64s(len(b.completed))
	if len(completed) != len(b.completed) {
		r.Failf("fwd: %d completion entries, want %d", len(completed), len(b.completed))
		return
	}
	copy(b.completed, completed)
	b.hits = r.U64()
	b.misses = r.U64()
}
