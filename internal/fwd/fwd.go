// Package fwd models the forwarding buffer of the base machine (paper
// Section 2.2.1): result values remain readable by consuming instructions
// for a fixed number of cycles after they are computed, turning the
// execute→register-read loose loop into a tight loop. The paper's base
// machine keeps 9 cycles of results — 5 to cover long-latency operations
// and limit register file write ports, 4 to cover the write-back flight
// time to the register file.
package fwd

import "loosesim/internal/regfile"

// never is a completion time no real producer can have.
const never int64 = -(1 << 60)

// Buffer records, per physical register, when its most recent value was
// computed, and answers whether a consumer executing at a given cycle can
// obtain the value from forwarding.
type Buffer struct {
	depth     int64
	wbDelay   int64
	completed []int64 // [PReg] -> completion cycle, or never

	hits, misses uint64
}

// New returns a forwarding buffer covering `depth` cycles of results for a
// machine with numPhys physical registers. wbDelay is the number of cycles
// after completion at which the value is written into the register file.
func New(numPhys, depth, wbDelay int) *Buffer {
	b := &Buffer{depth: int64(depth), wbDelay: int64(wbDelay), completed: make([]int64, numPhys)}
	for i := range b.completed {
		b.completed[i] = never
	}
	return b
}

// Depth returns the number of cycles results stay forwardable.
func (b *Buffer) Depth() int { return int(b.depth) }

// WritebackDelay returns the completion-to-register-file delay in cycles.
func (b *Buffer) WritebackDelay() int { return int(b.wbDelay) }

// Record notes that preg's value was computed at the given cycle.
func (b *Buffer) Record(p regfile.PReg, cycle int64) {
	if p != regfile.PRegInvalid {
		b.completed[p] = cycle
	}
}

// Available reports whether a consumer executing at cycle `now` can read
// preg from the forwarding network: the value must have been computed, and
// no more than Depth-1 cycles ago. It records hit/miss statistics.
func (b *Buffer) Available(p regfile.PReg, now int64) bool {
	if p == regfile.PRegInvalid {
		return false
	}
	c := b.completed[p]
	if c != never && now >= c && now-c < b.depth {
		b.hits++
		return true
	}
	b.misses++
	return false
}

// WritebackCycle returns the cycle at which a value completed at `complete`
// lands in the register file.
func (b *Buffer) WritebackCycle(complete int64) int64 { return complete + b.wbDelay }

// Invalidate clears the entry for a physical register. Called when the
// register is reallocated by the renamer so a stale value from the previous
// allocation can never be forwarded.
func (b *Buffer) Invalidate(p regfile.PReg) {
	if p != regfile.PRegInvalid {
		b.completed[p] = never
	}
}

// Hits returns the number of successful forwarding lookups.
func (b *Buffer) Hits() uint64 { return b.hits }

// Misses returns the number of failed forwarding lookups.
func (b *Buffer) Misses() uint64 { return b.misses }
