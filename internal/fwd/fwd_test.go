package fwd

import (
	"testing"
	"testing/quick"

	"loosesim/internal/regfile"
)

func TestAvailabilityWindow(t *testing.T) {
	b := New(64, 9, 4)
	p := regfile.PReg(10)
	b.Record(p, 100)
	if b.Available(p, 99) {
		t.Error("value must not be available before completion")
	}
	if !b.Available(p, 100) {
		t.Error("value must be available at completion cycle")
	}
	if !b.Available(p, 108) {
		t.Error("value must be available 8 cycles later (depth 9)")
	}
	if b.Available(p, 109) {
		t.Error("value must age out after depth cycles")
	}
}

func TestUnrecordedAndInvalidRegisters(t *testing.T) {
	b := New(64, 9, 4)
	if b.Available(regfile.PReg(3), 50) {
		t.Error("unrecorded register must miss")
	}
	if b.Available(regfile.PRegInvalid, 50) {
		t.Error("PRegInvalid must miss")
	}
	b.Record(regfile.PRegInvalid, 10) // must not panic
}

func TestInvalidate(t *testing.T) {
	b := New(64, 9, 4)
	p := regfile.PReg(5)
	b.Record(p, 20)
	b.Invalidate(p)
	if b.Available(p, 21) {
		t.Error("invalidated entry must miss")
	}
	b.Invalidate(regfile.PRegInvalid) // no-op
}

func TestRerecordRefreshesWindow(t *testing.T) {
	b := New(64, 9, 4)
	p := regfile.PReg(7)
	b.Record(p, 10)
	b.Record(p, 30)
	if b.Available(p, 19) {
		t.Error("old completion must be superseded")
	}
	if !b.Available(p, 31) {
		t.Error("new completion must be visible")
	}
}

func TestStats(t *testing.T) {
	b := New(16, 9, 4)
	p := regfile.PReg(1)
	b.Record(p, 0)
	b.Available(p, 1)  // hit
	b.Available(p, 50) // miss
	if b.Hits() != 1 || b.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", b.Hits(), b.Misses())
	}
}

func TestWritebackCycle(t *testing.T) {
	b := New(16, 9, 4)
	if b.WritebackCycle(100) != 104 {
		t.Errorf("WritebackCycle(100) = %d, want 104", b.WritebackCycle(100))
	}
	if b.Depth() != 9 || b.WritebackDelay() != 4 {
		t.Error("accessor mismatch")
	}
}

// Property: Available(p, now) is true exactly when now is within
// [complete, complete+depth) of the last Record, for any depth >= 1.
func TestWindowProperty(t *testing.T) {
	f := func(complete int64, offset int16, depthRaw uint8) bool {
		depth := int(depthRaw%20) + 1
		b := New(8, depth, 4)
		p := regfile.PReg(2)
		c := complete % (1 << 40)
		if c < 0 {
			c = -c
		}
		b.Record(p, c)
		now := c + int64(offset)
		want := now >= c && now-c < int64(depth)
		return b.Available(p, now) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
