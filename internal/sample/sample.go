// Package sample implements SMARTS-style sampled simulation on top of
// the machine checkpoints in internal/pipeline. Instead of simulating a
// workload's full measured region cycle-accurately, a sampler carries
// long-lived microarchitectural state (cache contents, predictor
// training) forward with cheap functional warming, drops a checkpoint at
// the start of each of N evenly spaced measurement windows, and runs only
// those windows — a short detailed warmup to refill the pipeline, then W
// measured instructions — through the cycle-accurate model. Per-window
// counters merge into a whole-run estimate with a confidence interval
// from the dispersion across windows.
//
// Checkpoints are plain pipeline snapshots, so windows shard across
// processes (internal/dispatch) or serve jobs: the checkpoint digest
// content-addresses each window's work.
package sample

import (
	"context"
	"fmt"
	"math"

	"loosesim/internal/pipeline"
	"loosesim/internal/stats"
)

// Options sizes a sampled run.
type Options struct {
	// Windows is N, the number of measurement windows spread evenly over
	// the full config's measured region.
	Windows int
	// WindowInstructions is W, the instructions measured per window.
	WindowInstructions uint64
	// DetailedWarmup is the cycle-accurate warmup run before each window
	// to refill the pipeline, IQ, and in-flight state that functional
	// warming does not model.
	DetailedWarmup uint64
}

// DefaultOptions matches the SMARTS guidance of many small windows: the
// estimate's standard error shrinks as 1/sqrt(N), so N buys accuracy far
// faster than W.
func DefaultOptions() Options {
	return Options{Windows: 20, WindowInstructions: 2_000, DetailedWarmup: 16_000}
}

func (o Options) validate() error {
	if o.Windows <= 0 {
		return fmt.Errorf("sample: Windows %d, need > 0", o.Windows)
	}
	if o.WindowInstructions == 0 {
		return fmt.Errorf("sample: WindowInstructions 0, need > 0")
	}
	return nil
}

// WindowConfig derives the per-window detailed configuration from the
// full-run configuration: same machine, short run, no observability
// sinks. Its ConfigDigest equals the full config's, so checkpoints taken
// on the warming chain restore under it.
func WindowConfig(cfg pipeline.Config, o Options) pipeline.Config {
	w := cfg
	w.WarmupInstructions = o.DetailedWarmup
	w.MeasureInstructions = o.WindowInstructions
	w.Tracer = nil
	w.Events = nil
	w.Intervals = nil
	return w
}

// Checkpoints runs the functional-warming chain: one machine fast-forwards
// through the workload, pausing to snapshot at each window's warmup start.
// The chain costs one pass of cache/predictor updates over the stream —
// O(total instructions), but a small constant per instruction compared to
// cycle-accurate simulation.
func Checkpoints(cfg pipeline.Config, o Options) ([][]byte, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	chain, err := pipeline.New(cfg)
	if err != nil {
		return nil, err
	}
	period := cfg.MeasureInstructions / uint64(o.Windows)
	ckpts := make([][]byte, o.Windows)
	pos := uint64(0)
	for i := 0; i < o.Windows; i++ {
		measureStart := cfg.WarmupInstructions + uint64(i)*period
		warmStart := uint64(0)
		if measureStart > o.DetailedWarmup {
			warmStart = measureStart - o.DetailedWarmup
		}
		if warmStart > pos {
			chain.WarmForward(warmStart - pos)
			pos = warmStart
		}
		ckpts[i], err = chain.Snapshot()
		if err != nil {
			return nil, err
		}
	}
	return ckpts, nil
}

// RunWindow restores one checkpoint under the window configuration and
// runs it: detailed warmup, then the measured window.
func RunWindow(ctx context.Context, wcfg pipeline.Config, ckpt []byte) (*pipeline.Result, error) {
	m, err := pipeline.Restore(wcfg, ckpt)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}

// Interval is a mean with a 95% confidence half-width (normal
// approximation: 1.96 · s/sqrt(n) over per-window values).
type Interval struct {
	Mean float64
	CI95 float64
}

// RelCI returns the half-width relative to the mean — the figure SMARTS
// quotes as sampling error.
func (iv Interval) RelCI() float64 {
	if iv.Mean == 0 {
		return 0
	}
	return iv.CI95 / math.Abs(iv.Mean)
}

// MeanCI computes the mean and 95% confidence half-width of vals.
func MeanCI(vals []float64) Interval {
	n := float64(len(vals))
	if n == 0 {
		return Interval{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / n
	if n < 2 {
		return Interval{Mean: mean}
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	s := math.Sqrt(ss / (n - 1))
	return Interval{Mean: mean, CI95: 1.96 * s / math.Sqrt(n)}
}

// Estimate is the whole-run estimate merged from per-window results.
type Estimate struct {
	// Windows and WindowInstructions echo the options that produced it.
	Windows            int
	WindowInstructions uint64
	// TotalInstructions is the full run's measured-instruction count the
	// estimate extrapolates to.
	TotalInstructions uint64
	// Counters is the field-wise sum over windows. Rates derived from it
	// are ratio-of-sums estimators; absolute event counts scale by
	// Scale() to whole-run magnitudes.
	Counters pipeline.Counters
	// Stack is the summed cycle-accounting stack.
	Stack pipeline.CycleStack
	// OperandGap is the merged operand-gap histogram.
	OperandGap *stats.Histogram
	// Metrics holds, per derived metric, the mean over windows with its
	// 95% confidence half-width.
	Metrics map[string]Interval
}

// Scale is the extrapolation factor from measured to whole-run event
// counts: TotalInstructions / (Windows · WindowInstructions).
func (e *Estimate) Scale() float64 {
	return float64(e.TotalInstructions) / float64(uint64(e.Windows)*e.WindowInstructions)
}

// Merge combines per-window results into a whole-run estimate. It is the
// coordinator-side merge for sharded sampled runs: each result may come
// from a different process, as long as all ran the same window length.
func Merge(results []*pipeline.Result, o Options, totalInstructions uint64) (*Estimate, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("sample: no window results to merge")
	}
	e := &Estimate{
		Windows:            len(results),
		WindowInstructions: o.WindowInstructions,
		TotalInstructions:  totalInstructions,
		OperandGap:         stats.NewHistogram(1),
		Metrics:            make(map[string]Interval),
	}
	for _, res := range results {
		if res == nil {
			return nil, fmt.Errorf("sample: nil window result")
		}
		e.Counters = e.Counters.Add(res.Counters)
		e.Stack = e.Stack.Add(res.Cycles)
		e.OperandGap.Merge(res.OperandGap)
	}
	vals := make([]float64, len(results))
	for _, met := range Metrics() {
		for i, res := range results {
			vals[i] = met.Eval(res.Counters)
		}
		e.Metrics[met.Name] = MeanCI(vals)
	}
	return e, nil
}

// Run is the single-process sampler: warm, checkpoint, run every window,
// merge. Each finished window machine donates its generators to the next
// window's restore (pipeline.RestoreReusing), so generator replay is one
// incremental pass over the stream rather than O(windows · position) —
// without it, restore cost alone would cancel the sampler's speedup on
// long runs.
func Run(ctx context.Context, cfg pipeline.Config, o Options) (*Estimate, error) {
	ckpts, err := Checkpoints(cfg, o)
	if err != nil {
		return nil, err
	}
	wcfg := WindowConfig(cfg, o)
	results := make([]*pipeline.Result, len(ckpts))
	var donor *pipeline.Machine
	for i, ckpt := range ckpts {
		m, err := pipeline.RestoreReusing(wcfg, ckpt, donor)
		if err != nil {
			return nil, fmt.Errorf("sample: window %d: %w", i, err)
		}
		if results[i], err = m.RunContext(ctx); err != nil {
			return nil, fmt.Errorf("sample: window %d: %w", i, err)
		}
		donor = m
	}
	return Merge(results, o, cfg.MeasureInstructions)
}
