package sample

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"loosesim/internal/pipeline"
	"loosesim/internal/workload"
)

func testCfg(t *testing.T, bench string, dra bool) pipeline.Config {
	t.Helper()
	wl, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig(wl)
	if dra {
		cfg = pipeline.DRAConfigRF(wl, 5)
	}
	cfg.WarmupInstructions = 40_000
	cfg.MeasureInstructions = 120_000
	return cfg
}

// TestMeanCIShrinksAsRootN checks the confidence interval narrows as
// 1/sqrt(n) on a seeded synthetic stream with fixed variance: quadrupling
// the sample count must roughly halve the half-width.
func TestMeanCIShrinksAsRootN(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	draw := func(n int) []float64 {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 3.0 + rng.NormFloat64()
		}
		return vals
	}
	sizes := []int{100, 400, 1600, 6400}
	widths := make([]float64, len(sizes))
	for i, n := range sizes {
		iv := MeanCI(draw(n))
		if iv.CI95 <= 0 {
			t.Fatalf("n=%d: CI95 = %v, want > 0", n, iv.CI95)
		}
		if math.Abs(iv.Mean-3.0) > 3*iv.CI95 {
			t.Fatalf("n=%d: mean %.3f implausibly far from 3.0 (CI %.3f)", n, iv.Mean, iv.CI95)
		}
		widths[i] = iv.CI95
	}
	for i := 1; i < len(sizes); i++ {
		ratio := widths[i-1] / widths[i] // expect ~2 per 4x step
		if ratio < 1.5 || ratio > 2.7 {
			t.Fatalf("CI width ratio n=%d→%d is %.2f, want ≈2 (widths %v)",
				sizes[i-1], sizes[i], ratio, widths)
		}
	}
	// Degenerate inputs.
	if iv := MeanCI(nil); iv.Mean != 0 || iv.CI95 != 0 {
		t.Fatalf("MeanCI(nil) = %+v", iv)
	}
	if iv := MeanCI([]float64{5}); iv.Mean != 5 || iv.CI95 != 0 {
		t.Fatalf("MeanCI(single) = %+v", iv)
	}
}

// TestSampledConvergence is the convergence gate: on a reduced tier-1
// grid, every declared metric from a sampled run must land within its
// error bound of the full cycle-accurate run.
func TestSampledConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence validation is a long test")
	}
	labels := []string{"gcc/base", "swim/base", "gcc/dra", "m88-comp/base"}
	cfgs := []pipeline.Config{
		testCfg(t, "gcc", false),
		testCfg(t, "swim", false),
		testCfg(t, "gcc", true),
		testCfg(t, "m88-comp", false),
	}
	viols, err := Validate(context.Background(), labels, cfgs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("%s", v)
	}
}

// TestSamplerEstimateShape checks the plumbing: window counts, scale
// factor, merged counters of plausible magnitude, and a finite CI on IPC.
func TestSamplerEstimateShape(t *testing.T) {
	cfg := testCfg(t, "comp", false)
	opt := Options{Windows: 8, WindowInstructions: 1_500, DetailedWarmup: 1_000}
	est, err := Run(context.Background(), cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if est.Windows != opt.Windows {
		t.Fatalf("Windows = %d, want %d", est.Windows, opt.Windows)
	}
	// Retirement is RetireWidth-wide, so each window may retire a few
	// instructions past its threshold on the final cycle.
	wantMeasured := uint64(opt.Windows) * opt.WindowInstructions
	slack := uint64(opt.Windows) * uint64(cfg.RetireWidth-1)
	if est.Counters.Retired < wantMeasured || est.Counters.Retired > wantMeasured+slack {
		t.Fatalf("merged Retired = %d, want in [%d, %d]", est.Counters.Retired, wantMeasured, wantMeasured+slack)
	}
	wantScale := float64(cfg.MeasureInstructions) / float64(wantMeasured)
	if math.Abs(est.Scale()-wantScale) > 1e-12 {
		t.Fatalf("Scale() = %v, want %v", est.Scale(), wantScale)
	}
	ipc := est.Metrics["ipc"]
	if !(ipc.Mean > 0) || math.IsNaN(ipc.CI95) {
		t.Fatalf("ipc interval %+v", ipc)
	}
	if est.Counters.Cycles <= 0 {
		t.Fatalf("merged Cycles = %d", est.Counters.Cycles)
	}
	if est.OperandGap == nil || est.OperandGap.Count() == 0 {
		t.Fatal("operand-gap histogram did not merge")
	}
}

// TestCheckpointsAreResumable checks each chain checkpoint restores under
// the window config and that checkpoints are content-distinct (the cache
// key depends on the digest, so identical windows would silently alias).
func TestCheckpointsAreResumable(t *testing.T) {
	cfg := testCfg(t, "m88", false)
	opt := Options{Windows: 4, WindowInstructions: 1_000, DetailedWarmup: 500}
	ckpts, err := Checkpoints(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := WindowConfig(cfg, opt)
	seen := map[string]bool{}
	for i, ckpt := range ckpts {
		if seen[string(ckpt)] {
			t.Fatalf("checkpoint %d duplicates an earlier one", i)
		}
		seen[string(ckpt)] = true
		res, err := RunWindow(context.Background(), wcfg, ckpt)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		want := opt.WindowInstructions
		if res.Counters.Retired < want || res.Counters.Retired >= want+uint64(cfg.RetireWidth) {
			t.Fatalf("window %d retired %d, want in [%d, %d)", i, res.Counters.Retired, want, want+uint64(cfg.RetireWidth))
		}
	}
}

// TestMergeRejectsBadInput covers the error paths the coordinator relies
// on.
func TestMergeRejectsBadInput(t *testing.T) {
	opt := DefaultOptions()
	if _, err := Merge(nil, opt, 1000); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := Merge([]*pipeline.Result{nil}, opt, 1000); err == nil {
		t.Fatal("nil result accepted")
	}
	if _, err := Merge([]*pipeline.Result{{}}, Options{Windows: 0, WindowInstructions: 1}, 1000); err == nil {
		t.Fatal("zero windows accepted")
	}
}
