package sample

import (
	"context"
	"fmt"
	"math"

	"loosesim/internal/pipeline"
)

// Metric is one derived rate the convergence validation checks between a
// sampled estimate and a full cycle-accurate run. Eval works on summed
// counters (ratio-of-sums) so the same function scores a single window, a
// merged estimate, and a full run.
type Metric struct {
	Name string
	Eval func(pipeline.Counters) float64
	// Bound is the declared relative error the sampled estimate must stay
	// within; Validate fails when |sampled − full| / max(|full|, Floor)
	// exceeds it.
	Bound float64
	// Floor keeps the relative error meaningful when the full-run value
	// is at or near zero (a benchmark with no L2 misses, a base machine
	// with no operand traffic).
	Floor float64
}

// pki converts an event count to events per kilo-instruction.
func pki(events, retired uint64) float64 {
	if retired == 0 {
		return 0
	}
	return 1000 * float64(events) / float64(retired)
}

// Metrics lists the tier-1 figure rates with their declared error bounds.
// The bounds are empirical — each sits at roughly 1.5-2x the worst
// relative error observed on a six-config calibration grid (gcc, comp,
// swim, hydro, gcc+DRA, m88-comp SMT) at the default sampling options;
// docs/DESIGN.md §12 records the methodology and the measured errors.
// TestSampledConvergence plus the CI convergence job enforce the bounds
// on the figure grid. IPC — the quantity every figure plots — carries the
// tightest bound; rare-event rates (mispredicts on branch-poor FP codes,
// squashes) get looser ones because a fixed instruction budget sees few
// of the underlying events.
func Metrics() []Metric {
	return []Metric{
		{Name: "ipc", Eval: pipeline.Counters.IPC, Bound: 0.10, Floor: 0.05},
		{Name: "mispredict_rate", Eval: pipeline.Counters.MispredictRate, Bound: 0.20, Floor: 0.005},
		{Name: "l1_miss_rate", Eval: pipeline.Counters.L1MissRate, Bound: 0.20, Floor: 0.005},
		{Name: "l2_miss_rate", Eval: pipeline.Counters.L2MissRate, Bound: 0.15, Floor: 0.003},
		{Name: "branch_pki", Eval: func(c pipeline.Counters) float64 { return pki(c.Branches, c.Retired) }, Bound: 0.08, Floor: 1},
		{Name: "load_pki", Eval: func(c pipeline.Counters) float64 { return pki(c.Loads, c.Retired) }, Bound: 0.10, Floor: 1},
		{Name: "squash_pki", Eval: func(c pipeline.Counters) float64 { return pki(c.SquashedTotal, c.Retired) }, Bound: 0.25, Floor: 10},
		{Name: "operand_miss_rate", Eval: pipeline.Counters.OperandMissRate, Bound: 0.25, Floor: 0.005},
	}
}

// Violation is one metric that left its declared error bound.
type Violation struct {
	Label   string
	Metric  string
	Full    float64
	Sampled float64
	RelErr  float64
	Bound   float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s sampled %.4f vs full %.4f (rel err %.1f%% > bound %.1f%%)",
		v.Label, v.Metric, v.Sampled, v.Full, 100*v.RelErr, 100*v.Bound)
}

// Compare scores a sampled estimate against a full run's counters and
// returns every metric outside its bound.
func Compare(label string, e *Estimate, full pipeline.Counters) []Violation {
	var out []Violation
	for _, met := range Metrics() {
		fv := met.Eval(full)
		sv := met.Eval(e.Counters)
		rel := math.Abs(sv-fv) / math.Max(math.Abs(fv), met.Floor)
		if rel > met.Bound {
			out = append(out, Violation{
				Label: label, Metric: met.Name,
				Full: fv, Sampled: sv, RelErr: rel, Bound: met.Bound,
			})
		}
	}
	return out
}

// ValidateOne runs cfg both ways — full cycle-accurate and sampled — and
// compares. The returned violations are empty when every tier-1 metric
// from the sampled run sits within its declared bound of the full run.
func ValidateOne(ctx context.Context, label string, cfg pipeline.Config, o Options) ([]Violation, error) {
	m, err := pipeline.New(cfg)
	if err != nil {
		return nil, err
	}
	fullRes, err := m.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("sample: full run %s: %w", label, err)
	}
	est, err := Run(ctx, cfg, o)
	if err != nil {
		return nil, fmt.Errorf("sample: sampled run %s: %w", label, err)
	}
	return Compare(label, est, fullRes.Counters), nil
}

// Validate runs sampled-vs-full convergence over a labelled config grid
// and collects every bound violation. It is the engine behind
// `loosim -validate` and the CI convergence job.
func Validate(ctx context.Context, labels []string, cfgs []pipeline.Config, o Options) ([]Violation, error) {
	if len(labels) != len(cfgs) {
		return nil, fmt.Errorf("sample: %d labels for %d configs", len(labels), len(cfgs))
	}
	var out []Violation
	for i, cfg := range cfgs {
		v, err := ValidateOne(ctx, labels[i], cfg, o)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}
