// Package snap is the deterministic binary codec under Machine
// checkpoints. It fixes three properties the snapshot layer needs and
// encoding/json cannot give:
//
//   - Byte stability. Every integer is fixed-width little-endian and
//     every variable-length field is length-prefixed, so equal state
//     encodes to equal bytes — the property the resume byte-identity
//     and content-addressing tests rely on.
//   - Hostility tolerance. Reader latches the first error and returns
//     zero values from then on; every count passes through Len with an
//     explicit bound. Corrupt or truncated bytes produce an error from
//     DecodeState, never a panic or a multi-gigabyte allocation.
//   - Tamper evidence. Seal stamps the container with a sha256 over
//     everything preceding it; Open rejects a flipped bit anywhere in
//     the payload before a decoder sees it.
//
// The container layout is:
//
//	magic   8 bytes  (ASCII, padded with NUL)
//	version u32      format version of the payload that follows
//	metaLen u32, meta     opaque caller bytes (config digest etc.)
//	payLen  u64, payload  the encoded state
//	sum     32 bytes sha256 of everything above
//
// Nothing may follow the sum: Open rejects trailing bytes so a
// checkpoint file is exactly one container.
package snap

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// ErrCorrupt is wrapped by every decode-side failure: truncation, a bad
// digest, an out-of-range count, trailing bytes. errors.Is(err, ErrCorrupt)
// identifies "the bytes are bad" as a class.
var ErrCorrupt = errors.New("snap: corrupt data")

// Writer accumulates a byte-stable encoding. The zero value is ready to
// use. Writers never fail: encoding in-memory state is infallible.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding. The slice aliases the writer's
// buffer; the caller must not keep writing afterwards.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64 as its two's-complement uint64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// I32 appends an int32 as its two's-complement uint32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// Int appends an int as int64. The decoder side re-checks range, so
// platform width differences cannot corrupt a snapshot silently.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Len appends a slice/collection length as u32.
func (w *Writer) Len(n int) { w.U32(uint32(n)) }

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Len(len(b))
	w.buf = append(w.buf, b...)
}

// U64s appends a length-prefixed []uint64.
func (w *Writer) U64s(s []uint64) {
	w.Len(len(s))
	for _, v := range s {
		w.U64(v)
	}
}

// I64s appends a length-prefixed []int64.
func (w *Writer) I64s(s []int64) {
	w.Len(len(s))
	for _, v := range s {
		w.I64(v)
	}
}

// Bools appends a length-prefixed []bool.
func (w *Writer) Bools(s []bool) {
	w.Len(len(s))
	for _, v := range s {
		w.Bool(v)
	}
}

// Reader decodes a Writer's output. The first failure latches: every
// subsequent call returns the zero value, and Err reports the cause.
// This keeps decoders linear — one error check at the end (or at each
// structural boundary) instead of one per field.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }

// Rest returns the number of unread bytes (0 once an error latches).
func (r *Reader) Rest() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// Failf latches a caller-raised validation failure. Restore code uses it
// to reject semantically invalid values — an index out of range, an enum
// past its last variant — with the same ErrCorrupt class as structural
// failures, so decoders keep their single-error-check shape.
func (r *Reader) Failf(format string, args ...any) { r.fail(format, args...) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf)-r.off < n {
		r.fail("truncated: need %d bytes at offset %d, have %d", n, r.off, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte and requires it to be exactly 0 or 1, so a bool
// round-trips to the same byte it was encoded from.
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.fail("bool byte %d at offset %d", v, r.off-1)
		return false
	}
	return v == 1
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// I32 reads an int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// Int reads an int encoded by Writer.Int, rejecting values outside the
// platform int range (only reachable on 32-bit builds or corrupt data).
func (r *Reader) Int() int {
	v := r.I64()
	if int64(int(v)) != v {
		r.fail("int %d overflows platform int", v)
		return 0
	}
	return int(v)
}

// Len reads a count and bounds it by max. Every collection length in a
// snapshot goes through this, so corrupt bytes can never drive a huge
// allocation or an index out of range.
func (r *Reader) Len(max int) int {
	v := r.U32()
	if int64(v) > int64(max) {
		r.fail("length %d exceeds bound %d at offset %d", v, max, r.off-4)
		return 0
	}
	return int(v)
}

// Blob reads a length-prefixed byte slice of at most max bytes. The
// result is a copy: it stays valid after the reader's buffer is reused.
func (r *Reader) Blob(max int) []byte {
	n := r.Len(max)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// U64s reads a length-prefixed []uint64 of at most max elements.
func (r *Reader) U64s(max int) []uint64 {
	n := r.Len(max)
	if r.err != nil {
		return nil
	}
	s := make([]uint64, n)
	for i := range s {
		s[i] = r.U64()
	}
	return s
}

// I64s reads a length-prefixed []int64 of at most max elements.
func (r *Reader) I64s(max int) []int64 {
	n := r.Len(max)
	if r.err != nil {
		return nil
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = r.I64()
	}
	return s
}

// Bools reads a length-prefixed []bool of at most max elements.
func (r *Reader) Bools(max int) []bool {
	n := r.Len(max)
	if r.err != nil {
		return nil
	}
	s := make([]bool, n)
	for i := range s {
		s[i] = r.Bool()
	}
	return s
}

// Expect requires the remaining input to be fully consumed; decoders
// call it after the last field so trailing garbage is an error.
func (r *Reader) Expect() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		r.fail("%d trailing bytes", len(r.buf)-r.off)
	}
	return r.err
}

// Container framing -----------------------------------------------------

const (
	magicLen = 8
	sumLen   = sha256.Size
	// headerLen is everything before meta: magic + version + metaLen.
	headerLen = magicLen + 4 + 4
	// maxMeta bounds the opaque meta blob; config digests are 64 bytes.
	maxMeta = 1 << 16
)

// Seal wraps payload in the versioned, sha256-stamped container. magic
// must be at most 8 ASCII bytes; it is padded with NULs.
func Seal(magic string, version uint32, meta, payload []byte) []byte {
	if len(magic) > magicLen {
		panic("snap: magic longer than 8 bytes")
	}
	if len(meta) > maxMeta {
		panic("snap: meta blob too large")
	}
	var w Writer
	w.buf = make([]byte, 0, headerLen+len(meta)+8+len(payload)+sumLen)
	var m [magicLen]byte
	copy(m[:], magic)
	w.buf = append(w.buf, m[:]...)
	w.U32(version)
	w.Blob(meta)
	w.U64(uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	sum := sha256.Sum256(w.buf)
	w.buf = append(w.buf, sum[:]...)
	return w.buf
}

// Open verifies the container framing and digest and returns the meta
// and payload sections. It checks, in order: minimum length, magic,
// version, internal lengths, then the sha256 over everything before the
// sum. The returned slices alias data.
func Open(data []byte, magic string, version uint32) (meta, payload []byte, err error) {
	if len(data) < headerLen+8+sumLen {
		return nil, nil, fmt.Errorf("%w: container too short (%d bytes)", ErrCorrupt, len(data))
	}
	var m [magicLen]byte
	copy(m[:], magic)
	if string(data[:magicLen]) != string(m[:]) {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:magicLen])
	}
	body, sum := data[:len(data)-sumLen], data[len(data)-sumLen:]
	got := sha256.Sum256(body)
	if got != [sumLen]byte(sum) {
		return nil, nil, fmt.Errorf("%w: sha256 mismatch", ErrCorrupt)
	}
	r := NewReader(body[magicLen:])
	v := r.U32()
	if r.err == nil && v != version {
		return nil, nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, version)
	}
	meta = r.Blob(maxMeta)
	payLen := r.U64()
	if r.err == nil && payLen != uint64(r.Rest()) {
		r.fail("payload length %d, have %d bytes", payLen, r.Rest())
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	payload = body[len(body)-int(payLen):]
	return meta, payload, nil
}

// Digest returns the hex sha256 of data — the content address of a
// sealed checkpoint, used as a cache-key prefix.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
