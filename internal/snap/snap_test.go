package snap

import (
	"bytes"
	"errors"
	"testing"
)

// TestRoundTrip encodes one of every field kind and decodes it back.
func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(1<<62 + 12345)
	w.I64(-42)
	w.I32(-7)
	w.Int(123456789)
	w.Blob([]byte("payload"))
	w.U64s([]uint64{1, 2, 3})
	w.I64s([]int64{-1, 0, 1})
	w.Bools([]bool{true, false, true})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<62+12345 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.I32(); got != -7 {
		t.Errorf("I32 = %d", got)
	}
	if got := r.Int(); got != 123456789 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Blob(64); !bytes.Equal(got, []byte("payload")) {
		t.Errorf("Blob = %q", got)
	}
	if got := r.U64s(8); len(got) != 3 || got[2] != 3 {
		t.Errorf("U64s = %v", got)
	}
	if got := r.I64s(8); len(got) != 3 || got[0] != -1 {
		t.Errorf("I64s = %v", got)
	}
	if got := r.Bools(8); len(got) != 3 || !got[2] {
		t.Errorf("Bools = %v", got)
	}
	if err := r.Expect(); err != nil {
		t.Fatalf("Expect: %v", err)
	}
}

// TestDeterminism: the same writes produce the same bytes.
func TestDeterminism(t *testing.T) {
	enc := func() []byte {
		var w Writer
		w.U64(99)
		w.Blob([]byte{1, 2, 3})
		w.Bools([]bool{true})
		return w.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("identical writes produced different bytes")
	}
}

// TestReaderLatchesErrors: after a failure every read returns zero and
// Err keeps the first cause.
func TestReaderLatchesErrors(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U64() // truncated
	first := r.Err()
	if first == nil {
		t.Fatal("expected truncation error")
	}
	if !errors.Is(first, ErrCorrupt) {
		t.Fatalf("error %v is not ErrCorrupt", first)
	}
	if got := r.U32(); got != 0 {
		t.Errorf("post-error U32 = %d, want 0", got)
	}
	if r.Err() != first { //nolint:errorlint // identity check on purpose
		t.Error("latched error was replaced")
	}
}

// TestLenBounds: a hostile count must error, not allocate.
func TestLenBounds(t *testing.T) {
	var w Writer
	w.U32(1 << 30) // claims a billion elements
	r := NewReader(w.Bytes())
	if got := r.Len(1024); got != 0 {
		t.Errorf("Len = %d, want 0", got)
	}
	if r.Err() == nil {
		t.Fatal("oversized length did not error")
	}
}

// TestBoolStrict: bool bytes other than 0/1 are corrupt (they would
// break re-encode byte-identity).
func TestBoolStrict(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

// TestExpectTrailing: leftover bytes after the last field are an error.
func TestExpectTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.U8()
	if err := r.Expect(); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestContainer seals and opens a payload, then flips every byte one at
// a time: each flip must be rejected.
func TestContainer(t *testing.T) {
	meta := []byte("cfg-digest")
	payload := []byte("machine state bytes")
	data := Seal("LOOSNAP", 3, meta, payload)

	gotMeta, gotPay, err := Open(data, "LOOSNAP", 3)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(gotMeta, meta) || !bytes.Equal(gotPay, payload) {
		t.Fatalf("Open returned meta=%q payload=%q", gotMeta, gotPay)
	}

	if _, _, err := Open(data, "LOOSNAP", 4); err == nil {
		t.Error("wrong version accepted")
	}
	if _, _, err := Open(data, "OTHERMAG", 3); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, _, err := Open(append(append([]byte{}, data...), 0), "LOOSNAP", 3); err == nil {
		t.Error("trailing byte accepted")
	}
	for i := range data {
		mut := append([]byte{}, data...)
		mut[i] ^= 0x40
		if _, _, err := Open(mut, "LOOSNAP", 3); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, _, err := Open(data[:cut], "LOOSNAP", 3); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestDigestStable: equal containers digest equal; different payloads
// digest differently.
func TestDigestStable(t *testing.T) {
	a := Seal("LOOSNAP", 1, nil, []byte("x"))
	b := Seal("LOOSNAP", 1, nil, []byte("x"))
	c := Seal("LOOSNAP", 1, nil, []byte("y"))
	if Digest(a) != Digest(b) {
		t.Error("equal containers digest differently")
	}
	if Digest(a) == Digest(c) {
		t.Error("different payloads digest equal")
	}
}
