package experiments

import "testing"

func TestAblationMemDepStructure(t *testing.T) {
	// The store-wait-vs-blind trap comparison needs training time, so this
	// test runs longer than the tiny structural checks.
	opt := tinyOptions()
	opt.Warmup, opt.Measure = 40_000, 40_000
	tab, err := AblationMemDep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Values[0] != 1.0 {
			t.Errorf("%s store-wait baseline not normalised", r.Label)
		}
		// Conservative ordering must lose badly everywhere.
		if r.Values[2] > 0.9 {
			t.Errorf("%s conservative = %.3f; expected a large loss", r.Label, r.Values[2])
		}
		// Conservative never traps.
		if r.Values[5] != 0 {
			t.Errorf("%s conservative trapped %v times", r.Label, r.Values[5])
		}
		// Store-wait must not trap substantially more than blind (small
		// runs leave some noise headroom).
		if r.Values[3] > r.Values[4]*1.2+10 {
			t.Errorf("%s store-wait traps (%v) far exceed blind (%v)", r.Label, r.Values[3], r.Values[4])
		}
	}
}

func TestAblationPredictorStructure(t *testing.T) {
	tab, err := AblationPredictor(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Values[0] != 1.0 {
			t.Errorf("%s tournament baseline not normalised", r.Label)
		}
		// Static prediction must mis-speculate far more than the
		// tournament and cost accordingly.
		if r.Values[9] <= r.Values[5] {
			t.Errorf("%s static mispredict %.1f%% not above tournament %.1f%%", r.Label, r.Values[9], r.Values[5])
		}
		if r.Values[4] >= 0.95 {
			t.Errorf("%s static speedup %.3f; expected a large loss", r.Label, r.Values[4])
		}
	}
}
