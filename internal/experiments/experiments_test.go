package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps experiment tests fast; statistical shape assertions use
// QuickOptions where they need more signal.
func tinyOptions() Options {
	return Options{Measure: 10_000, Warmup: 10_000, Seed: 1}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   []Row{{Label: "gcc", Values: []float64{1, 0.5}}},
		Notes:  "note",
	}
	out := tb.String()
	for _, want := range []string{"demo", "gcc", "note", "benchmark"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.Find("gcc") == nil || tb.Find("nope") != nil {
		t.Error("Find broken")
	}
	if tb.Rows[0].Value(1) != 0.5 {
		t.Error("Value broken")
	}
}

func TestFig6Structure(t *testing.T) {
	tab, err := Fig6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty Figure 6")
	}
	// CDF rows must be monotonically non-decreasing and end near the top.
	prev := 0.0
	for _, r := range tab.Rows {
		v := r.Value(0)
		if v < prev-1e-12 {
			t.Fatalf("CDF decreases at %s: %v < %v", r.Label, v, prev)
		}
		prev = v
	}
	if prev < 0.5 {
		t.Errorf("CDF tail %.3f unexpectedly low", prev)
	}
}

func TestFig4Structure(t *testing.T) {
	tab, err := Fig4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("Figure 4 rows = %d, want 13", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 4 {
			t.Fatalf("%s has %d points, want 4", r.Label, len(r.Values))
		}
		if r.Values[0] != 1.0 {
			t.Errorf("%s baseline not normalised: %v", r.Label, r.Values[0])
		}
	}
	// Headline shape: every benchmark loses performance at 18 cycles, and
	// branchy gcc loses more than memory-bound hydro.
	gcc, hydro := tab.Find("gcc"), tab.Find("hydro")
	if gcc.Values[3] >= 1.0 {
		t.Errorf("gcc must lose at 18 cycles, got %.3f", gcc.Values[3])
	}
	if gcc.Values[3] >= hydro.Values[3] {
		t.Errorf("gcc (%.3f) must lose more than hydro (%.3f)", gcc.Values[3], hydro.Values[3])
	}
}

func TestFig8Structure(t *testing.T) {
	tab, err := Fig8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("Figure 8 rows = %d", len(tab.Rows))
	}
	swim := tab.Find("swim")
	if swim == nil || len(swim.Values) != 3 {
		t.Fatal("swim row malformed")
	}
	if swim.Values[2] <= 1.0 {
		t.Errorf("swim DRA:9_3 must beat base:5_9, got %.3f", swim.Values[2])
	}
}

func TestFig9Structure(t *testing.T) {
	tab, err := Fig9(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		pr, fw, crc, missPct := r.Values[0], r.Values[1], r.Values[2], r.Values[3]
		sum := pr + fw + crc + missPct/100
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s operand shares sum to %v", r.Label, sum)
		}
		if fw < 0.3 {
			t.Errorf("%s forwarding share %.3f implausibly low", r.Label, fw)
		}
	}
	// apsi must have the worst miss rate of the suite.
	apsi := tab.Find("apsi")
	for _, r := range tab.Rows {
		if r.Label != "apsi" && r.Label != "apsi-swim" && r.Values[3] > apsi.Values[3] {
			t.Errorf("%s miss %.3f%% exceeds apsi %.3f%%", r.Label, r.Values[3], apsi.Values[3])
		}
	}
}

func TestAblationRecoveryStructure(t *testing.T) {
	tab, err := AblationLoadRecovery(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	swim := tab.Find("swim")
	if swim == nil {
		t.Fatal("swim missing")
	}
	if swim.Values[0] != 1.0 {
		t.Error("reissue column must be the baseline")
	}
	if swim.Values[1] >= 1.0 {
		t.Errorf("refetch must lose to reissue on swim, got %.3f", swim.Values[1])
	}
}

func TestAblationCRCStructure(t *testing.T) {
	tab, err := AblationCRC(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Find("apsi") == nil || len(tab.Find("apsi").Values) != 6 {
		t.Fatal("CRC ablation malformed")
	}
	// Baseline column (16e/2b) is index 2.
	for _, r := range tab.Rows {
		if r.Values[2] != 1.0 {
			t.Errorf("%s baseline column not normalised", r.Label)
		}
	}
}

func TestAblationIQPressureStructure(t *testing.T) {
	tab, err := AblationIQPressure(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		// Retained population must grow with IQ-EX latency.
		if r.Values[7] <= r.Values[4] {
			t.Errorf("%s retained must grow with IQ-EX: %v", r.Label, r.Values[4:])
		}
	}
}

func TestAblationCRCPolicyStructure(t *testing.T) {
	tab, err := AblationCRCPolicy(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Values[0] != 1.0 {
			t.Errorf("%s FIFO baseline not normalised", r.Label)
		}
		// The paper's claim: smarter replacement buys little. Allow noise
		// but catch gross divergence.
		if r.Values[1] < 0.85 || r.Values[1] > 1.15 {
			t.Errorf("%s LRU vs FIFO = %.3f; expected near parity", r.Label, r.Values[1])
		}
	}
}

func TestAblationMonolithicStructure(t *testing.T) {
	tab, err := AblationMonolithic(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Values[0] != 1.0 {
			t.Errorf("%s clustered baseline not normalised", r.Label)
		}
		// A single 16-entry cache must raise the operand miss rate over
		// the 8x16 clustered arrangement.
		if r.Values[5] < r.Values[4] {
			t.Errorf("%s mono16 miss %.3f%% below clustered %.3f%%", r.Label, r.Values[5], r.Values[4])
		}
	}
}

func TestLoopDelayCheck(t *testing.T) {
	tab := LoopDelayCheck()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0].Value(0) != 8 {
		t.Errorf("base load loop delay = %v, want 8 (paper Section 2.2.2)", tab.Rows[0].Value(0))
	}
}

func TestOptionsApply(t *testing.T) {
	if o := DefaultOptions(); o.Measure == 0 || o.Warmup == 0 {
		t.Error("default options empty")
	}
	if o := QuickOptions(); o.Measure >= DefaultOptions().Measure {
		t.Error("quick options must be shorter than default")
	}
}
