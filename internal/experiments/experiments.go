// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment
// returns a Table whose rows mirror the corresponding figure's series, so
// cmd/experiments, the benchmark harness, and the examples all print the
// same data.
package experiments

import (
	"fmt"
	"strings"

	"loosesim"
	"loosesim/internal/pipeline"
	"loosesim/internal/workload"
)

// Options control run lengths for every experiment.
type Options struct {
	// Measure is the number of instructions measured per run.
	Measure uint64
	// Warmup is the number of instructions retired before measurement.
	Warmup uint64
	// Seed is the base simulation seed.
	Seed int64
	// Runner, when non-nil, replaces loosesim.RunAll as the batch engine
	// behind every experiment. The serving layer injects a cached runner
	// here (serve.RunAllCached) so regenerating a figure reuses any sweep
	// point already in the content-addressed store. A Runner must honour
	// RunAll's contract: results in input order, first error aborts.
	Runner func([]pipeline.Config) ([]*pipeline.Result, error)
}

// DefaultOptions returns full-length runs (the numbers EXPERIMENTS.md
// records).
func DefaultOptions() Options {
	return Options{Measure: 300_000, Warmup: 200_000, Seed: 1}
}

// QuickOptions returns short runs for smoke tests and examples.
func QuickOptions() Options {
	return Options{Measure: 60_000, Warmup: 60_000, Seed: 1}
}

func (o Options) apply(cfg *pipeline.Config) {
	cfg.MeasureInstructions = o.Measure
	cfg.WarmupInstructions = o.Warmup
	cfg.Seed = o.Seed
}

// runBatch routes a batch of simulations through the configured engine.
func (o Options) runBatch(cfgs []pipeline.Config) ([]*pipeline.Result, error) {
	if o.Runner != nil {
		return o.Runner(cfgs)
	}
	return loosesim.RunAll(cfgs)
}

// Table is one experiment's result grid.
type Table struct {
	Title  string
	Header []string
	Rows   []Row
	Notes  string
}

// Row is one benchmark's (or sweep point's) series.
type Row struct {
	Label  string
	Values []float64
}

// Value returns the row's i-th value.
func (r Row) Value(i int) float64 { return r.Values[i] }

// Find returns the row with the given label, or nil.
func (t *Table) Find(label string) *Row {
	for i := range t.Rows {
		if t.Rows[i].Label == label {
			return &t.Rows[i]
		}
	}
	return nil
}

// String renders the table for terminal output.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header)+1)
	widths[0] = len("benchmark")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	for i, h := range t.Header {
		widths[i+1] = len(h)
		if widths[i+1] < 8 {
			widths[i+1] = 8
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], "benchmark")
	for i, h := range t.Header {
		fmt.Fprintf(&b, "  %*s", widths[i+1], h)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r.Label)
		for i, v := range r.Values {
			fmt.Fprintf(&b, "  %*.3f", widths[i+1], v)
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "%s\n", t.Notes)
	}
	return b.String()
}

// runGrid runs one simulation per (benchmark, variant) and returns IPCs
// indexed [bench][variant].
func runGrid(opt Options, benches []string, variants int, mk func(bench string, v int) (pipeline.Config, error)) ([][]float64, error) {
	var cfgs []pipeline.Config
	for _, b := range benches {
		for v := 0; v < variants; v++ {
			cfg, err := mk(b, v)
			if err != nil {
				return nil, err
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := opt.runBatch(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(benches))
	k := 0
	for i := range benches {
		out[i] = make([]float64, variants)
		for v := 0; v < variants; v++ {
			out[i][v] = results[k].IPC()
			k++
		}
	}
	return out, nil
}

// Fig4 reproduces Figure 4: performance as the decode→execute portion of
// the pipeline grows from 6 to 18 cycles (DEC-IQ and IQ-EX grown together),
// relative to the 6-cycle machine, with a 128-entry IQ.
func Fig4(opt Options) (*Table, error) {
	lats := []int{3, 5, 7, 9} // per-half latencies: totals 6, 10, 14, 18
	ipcs, err := runGrid(opt, workload.PaperOrder(), len(lats), func(b string, v int) (pipeline.Config, error) {
		cfg, err := loosesim.DefaultMachine(b)
		if err != nil {
			return cfg, err
		}
		cfg.DecIQLat = lats[v]
		cfg.IQExLat = lats[v]
		opt.apply(&cfg)
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 4: speedup vs decode-to-execute length (relative to 6 cycles)",
		Header: []string{"6cyc", "10cyc", "14cyc", "18cyc"},
		Notes:  "values are relative performance; < 1.0 is a loss",
	}
	for i, b := range workload.PaperOrder() {
		row := Row{Label: b}
		for v := range lats {
			row.Values = append(row.Values, ipcs[i][v]/ipcs[i][0])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5 reproduces Figure 5: fixed 12-cycle decode→execute length split as
// DEC-IQ_IQ-EX in {3_9, 5_7, 7_5, 9_3}, relative to 3_9.
func Fig5(opt Options) (*Table, error) {
	splits := [][2]int{{3, 9}, {5, 7}, {7, 5}, {9, 3}}
	ipcs, err := runGrid(opt, workload.PaperOrder(), len(splits), func(b string, v int) (pipeline.Config, error) {
		cfg, err := loosesim.DefaultMachine(b)
		if err != nil {
			return cfg, err
		}
		cfg.DecIQLat = splits[v][0]
		cfg.IQExLat = splits[v][1]
		opt.apply(&cfg)
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 5: speedup for fixed total latency (relative to 3_9)",
		Header: []string{"3_9", "5_7", "7_5", "9_3"},
		Notes:  "DEC-IQ_IQ-EX; moving cycles out of IQ-EX helps load-loop-bound programs",
	}
	for i, b := range workload.PaperOrder() {
		row := Row{Label: b}
		for v := range splits {
			row.Values = append(row.Values, ipcs[i][v]/ipcs[i][0])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6 reproduces Figure 6: the cumulative distribution of cycles between
// the availability of an instruction's first and second operand, on the
// base machine, for turb3d.
func Fig6(opt Options) (*Table, error) {
	cfg, err := loosesim.DefaultMachine("turb3d")
	if err != nil {
		return nil, err
	}
	opt.apply(&cfg)
	results, err := opt.runBatch([]pipeline.Config{cfg})
	if err != nil {
		return nil, err
	}
	res := results[0]
	t := &Table{
		Title:  "Figure 6: CDF of cycles between operand availability (turb3d)",
		Header: []string{"cum_frac"},
		Notes: fmt.Sprintf("median gap %d cycles; %.1f%% of instructions have gaps >= 25 cycles; forwarding depth 9 covers %.1f%%",
			res.OperandGap.Percentile(0.5),
			100*(1-res.OperandGap.Fraction(24)),
			100*res.OperandGap.Fraction(9)),
	}
	for _, c := range []int{0, 1, 2, 4, 6, 9, 15, 25, 50, 75, 99} {
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("<=%d cycles", c),
			Values: []float64{res.OperandGap.Fraction(c)},
		})
	}
	return t, nil
}

// Fig8 reproduces Figure 8: DRA speedup relative to the base machine for
// register file access latencies of 3, 5 and 7 cycles (DRA:5_3 vs Base:5_5,
// DRA:7_3 vs Base:5_7, DRA:9_3 vs Base:5_9).
func Fig8(opt Options) (*Table, error) {
	rfs := []int{3, 5, 7}
	// Variants: for each rf, base then DRA.
	ipcs, err := runGrid(opt, workload.PaperOrder(), 2*len(rfs), func(b string, v int) (pipeline.Config, error) {
		rf := rfs[v/2]
		var cfg pipeline.Config
		var err error
		if v%2 == 0 {
			cfg, err = loosesim.BaseMachine(b, rf)
		} else {
			cfg, err = loosesim.DRAMachine(b, rf)
		}
		if err != nil {
			return cfg, err
		}
		opt.apply(&cfg)
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 8: DRA speedup over base machine",
		Header: []string{"5_3/5_5", "7_3/5_7", "9_3/5_9"},
		Notes:  "columns are DRA:DEC-IQ_IQ-EX vs Base:DEC-IQ_IQ-EX for 3/5/7-cycle register files",
	}
	for i, b := range workload.PaperOrder() {
		row := Row{Label: b}
		for r := range rfs {
			row.Values = append(row.Values, ipcs[i][2*r+1]/ipcs[i][2*r])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9 reproduces Figure 9: where operands come from under the DRA with a
// 5-cycle register file (the 7_3 configuration): register pre-read,
// forwarding buffer, CRC, or operand miss.
func Fig9(opt Options) (*Table, error) {
	var cfgs []pipeline.Config
	for _, b := range workload.PaperOrder() {
		cfg, err := loosesim.DRAMachine(b, 5)
		if err != nil {
			return nil, err
		}
		opt.apply(&cfg)
		cfgs = append(cfgs, cfg)
	}
	results, err := opt.runBatch(cfgs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 9: operand location for the 7_3 DRA (fractions of operands read)",
		Header: []string{"pre-read", "fwdbuf", "crc", "miss%"},
		Notes:  "miss%% is in percent; everything else is a fraction of operands",
	}
	for i, b := range workload.PaperOrder() {
		pr, fw, crc, miss := results[i].OperandShare()
		t.Rows = append(t.Rows, Row{Label: b, Values: []float64{pr, fw, crc, 100 * miss}})
	}
	return t, nil
}
