package experiments

import (
	"fmt"

	"loosesim"
	"loosesim/internal/core"
	"loosesim/internal/pipeline"
)

// AblationLoadRecovery compares the three load resolution loop managements
// of Section 2.2.2 — reissue (the base machine), refetch, and stall — on a
// mix of branch-bound and load-bound programs. The paper reports refetch
// performing significantly worse than reissue, which is why it was dropped.
func AblationLoadRecovery(opt Options) (*Table, error) {
	benches := []string{"comp", "gcc", "swim", "turb3d"}
	policies := []pipeline.LoadRecovery{loosesim.LoadReissue, loosesim.LoadRefetch, loosesim.LoadStall}
	ipcs, err := runGrid(opt, benches, len(policies), func(b string, v int) (pipeline.Config, error) {
		cfg, err := loosesim.DefaultMachine(b)
		if err != nil {
			return cfg, err
		}
		cfg.LoadPolicy = policies[v]
		opt.apply(&cfg)
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: load resolution loop management (relative to reissue)",
		Header: []string{"reissue", "refetch", "stall"},
		Notes:  "Section 2.2.2: speculate+reissue beats speculate+refetch beats no speculation",
	}
	for i, b := range benches {
		row := Row{Label: b}
		for v := range policies {
			row.Values = append(row.Values, ipcs[i][v]/ipcs[i][0])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationCRC sweeps the cluster register cache geometry: capacity per
// cluster and insertion-counter width. The paper claims 16 entries are
// adequate and that 2-bit counters rarely saturate harmfully.
func AblationCRC(opt Options) (*Table, error) {
	benches := []string{"swim", "turb3d", "apsi"}
	type geom struct {
		entries, bits int
	}
	geoms := []geom{{4, 2}, {8, 2}, {16, 2}, {32, 2}, {16, 1}, {16, 3}}
	ipcs, err := runGrid(opt, benches, len(geoms), func(b string, v int) (pipeline.Config, error) {
		cfg, err := loosesim.DRAMachine(b, 5)
		if err != nil {
			return cfg, err
		}
		cfg.DRA.CRCEntries = geoms[v].entries
		cfg.DRA.CounterBits = geoms[v].bits
		opt.apply(&cfg)
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: CRC geometry under the 7_3 DRA (relative to 16 entries / 2 bits)",
		Header: []string{"4e/2b", "8e/2b", "16e/2b", "32e/2b", "16e/1b", "16e/3b"},
		Notes:  "entries per cluster / insertion-counter bits",
	}
	for i, b := range benches {
		row := Row{Label: b}
		for v := range geoms {
			row.Values = append(row.Values, ipcs[i][v]/ipcs[i][2])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationForwardDepth sweeps the forwarding buffer depth on the base
// machine. Figure 6's analysis says 9 cycles cover roughly half of all
// operand reads; shallower buffers push that traffic to the register file
// (base machine) or the CRCs (DRA).
func AblationForwardDepth(opt Options) (*Table, error) {
	benches := []string{"turb3d", "swim", "gcc"}
	depths := []int{3, 6, 9, 15}
	type cell struct {
		ipc, fwdShare float64
	}
	var cfgs []pipeline.Config
	for _, b := range benches {
		for _, d := range depths {
			cfg, err := loosesim.DRAMachine(b, 5)
			if err != nil {
				return nil, err
			}
			cfg.FwdDepth = d
			opt.apply(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := opt.runBatch(cfgs)
	if err != nil {
		return nil, err
	}
	cells := make([][]cell, len(benches))
	k := 0
	for i := range benches {
		cells[i] = make([]cell, len(depths))
		for v := range depths {
			_, fw, _, _ := results[k].OperandShare()
			cells[i][v] = cell{ipc: results[k].IPC(), fwdShare: fw}
			k++
		}
	}
	t := &Table{
		Title:  "Ablation: forwarding buffer depth under the 7_3 DRA (speedup vs depth 9 | fwd share)",
		Header: []string{"d3", "d6", "d9", "d15", "fw3", "fw6", "fw9", "fw15"},
		Notes:  "left half: relative performance; right half: fraction of operands from forwarding",
	}
	for i, b := range benches {
		row := Row{Label: b}
		for v := range depths {
			row.Values = append(row.Values, cells[i][v].ipc/cells[i][2].ipc)
		}
		for v := range depths {
			row.Values = append(row.Values, cells[i][v].fwdShare)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationCRCPolicy compares the paper's simple FIFO replacement against
// LRU and against the Section 5.5 timeout alternative. The paper reports
// that mechanisms with "almost perfect knowledge" gained nearly nothing
// over FIFO — this reproduces that comparison.
func AblationCRCPolicy(opt Options) (*Table, error) {
	benches := []string{"swim", "turb3d", "apsi"}
	type variant struct {
		label   string
		policy  core.ReplacementPolicy
		timeout int64
	}
	variants := []variant{
		{"fifo", core.FIFO, 0},
		{"lru", core.LRU, 0},
		{"fifo+to100", core.FIFO, 100},
		{"fifo+to400", core.FIFO, 400},
	}
	ipcs, err := runGrid(opt, benches, len(variants), func(b string, v int) (pipeline.Config, error) {
		cfg, err := loosesim.DRAMachine(b, 5)
		if err != nil {
			return cfg, err
		}
		cfg.DRA.Policy = variants[v].policy
		cfg.DRA.TimeoutCycles = variants[v].timeout
		opt.apply(&cfg)
		return cfg, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: CRC replacement policy under the 7_3 DRA (relative to FIFO)",
		Header: []string{"fifo", "lru", "fifo+to100", "fifo+to400"},
		Notes:  "Section 5.1/5.5: FIFO is adequate; smarter replacement buys little",
	}
	for i, b := range benches {
		row := Row{Label: b}
		for v := range variants {
			row.Values = append(row.Values, ipcs[i][v]/ipcs[i][0])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationMonolithic compares the clustered CRCs against the Section 4
// strawman: one shared register cache. A single cache of the per-cluster
// size thrashes; matching the DRA's total capacity in one structure would
// not be readable in a cycle, which is the paper's argument for clustering.
func AblationMonolithic(opt Options) (*Table, error) {
	benches := []string{"swim", "turb3d", "apsi"}
	type variant struct {
		label   string
		mono    bool
		entries int
	}
	variants := []variant{
		{"clustered8x16", false, 16},
		{"mono16", true, 16},
		{"mono32", true, 32},
		{"mono128", true, 128},
	}
	type cell struct {
		ipc, miss float64
	}
	var cfgs []pipeline.Config
	for _, b := range benches {
		for _, v := range variants {
			cfg, err := loosesim.DRAMachine(b, 5)
			if err != nil {
				return nil, err
			}
			cfg.DRA.Monolithic = v.mono
			cfg.DRA.CRCEntries = v.entries
			opt.apply(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := opt.runBatch(cfgs)
	if err != nil {
		return nil, err
	}
	cells := make([][]cell, len(benches))
	k := 0
	for i := range benches {
		cells[i] = make([]cell, len(variants))
		for v := range variants {
			cells[i][v] = cell{ipc: results[k].IPC(), miss: 100 * results[k].OperandMissRate()}
			k++
		}
	}
	t := &Table{
		Title:  "Ablation: clustered vs monolithic register cache (speedup vs clustered | operand miss %)",
		Header: []string{"clust", "mono16", "mono32", "mono128", "m%clust", "m%m16", "m%m32", "m%m128"},
		Notes:  "a single small cache thrashes (Section 4); mono128 matches total capacity but could not be read in one cycle",
	}
	for i, b := range benches {
		row := Row{Label: b}
		for v := range variants {
			row.Values = append(row.Values, cells[i][v].ipc/cells[i][0].ipc)
		}
		for v := range variants {
			row.Values = append(row.Values, cells[i][v].miss)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationMemDep compares managements of the memory dependence loop
// (Figure 2's load/store reorder trap loop): blind speculation (trap on
// every violation), 21264-style store-wait prediction, and conservative
// waiting (no speculation). The classic shape: conservative is far worse
// than speculating, and the predictor removes most repeat traps.
func AblationMemDep(opt Options) (*Table, error) {
	benches := []string{"gcc", "m88", "swim", "apsi"}
	policies := []pipeline.MemDepPolicy{pipeline.MemDepStoreWait, pipeline.MemDepBlind, pipeline.MemDepConservative}
	type cell struct {
		ipc   float64
		traps uint64
	}
	var cfgs []pipeline.Config
	for _, b := range benches {
		for _, pol := range policies {
			cfg, err := loosesim.DefaultMachine(b)
			if err != nil {
				return nil, err
			}
			cfg.MemDep = pol
			opt.apply(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := opt.runBatch(cfgs)
	if err != nil {
		return nil, err
	}
	cells := make([][]cell, len(benches))
	k := 0
	for i := range benches {
		cells[i] = make([]cell, len(policies))
		for v := range policies {
			cells[i][v] = cell{ipc: results[k].IPC(), traps: results[k].Counters.MemOrderTraps}
			k++
		}
	}
	t := &Table{
		Title:  "Ablation: memory dependence loop management (speedup vs store-wait | order traps)",
		Header: []string{"storewait", "blind", "conserv", "tSW", "tBlind", "tCons"},
		Notes:  "the memory trap loop of Figure 2: initiation at issue, recovery at fetch",
	}
	for i, b := range benches {
		row := Row{Label: b}
		for v := range policies {
			row.Values = append(row.Values, cells[i][v].ipc/cells[i][0].ipc)
		}
		for v := range policies {
			row.Values = append(row.Values, float64(cells[i][v].traps))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationIQPressure quantifies Section 2.2.2's IQ-pressure claim: mean IQ
// occupancy and the issued-but-retained population as IQ-EX grows.
func AblationIQPressure(opt Options) (*Table, error) {
	benches := []string{"gcc", "swim"}
	iqex := []int{3, 5, 7, 9}
	var cfgs []pipeline.Config
	for _, b := range benches {
		for _, x := range iqex {
			cfg, err := loosesim.DefaultMachine(b)
			if err != nil {
				return nil, err
			}
			cfg.IQExLat = x
			opt.apply(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := opt.runBatch(cfgs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: IQ pressure vs IQ-EX latency (mean occupancy | issued-retained)",
		Header: []string{"occ3", "occ5", "occ7", "occ9", "ret3", "ret5", "ret7", "ret9"},
		Notes:  "128-entry IQ; retained entries are issued instructions awaiting reissue confirmation",
	}
	k := 0
	for _, b := range benches {
		row := Row{Label: b}
		var occ, ret []float64
		for range iqex {
			occ = append(occ, results[k].IQOccupancy)
			ret = append(ret, results[k].IQRetained)
			k++
		}
		row.Values = append(row.Values, occ...)
		row.Values = append(row.Values, ret...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationPredictor sweeps branch predictor quality on the branchy integer
// programs, quantifying the branch resolution loop's leverage: the same
// machine with a worse predictor mis-speculates more often and loses
// accordingly.
func AblationPredictor(opt Options) (*Table, error) {
	benches := []string{"comp", "gcc", "go", "m88"}
	kinds := []pipeline.PredictorKind{
		pipeline.PredTournament, pipeline.PredPerceptron, pipeline.PredGShare,
		pipeline.PredBimodal, pipeline.PredStatic,
	}
	type cell struct {
		ipc, misp float64
	}
	var cfgs []pipeline.Config
	for _, b := range benches {
		for _, k := range kinds {
			cfg, err := loosesim.DefaultMachine(b)
			if err != nil {
				return nil, err
			}
			cfg.Predictor = k
			opt.apply(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := opt.runBatch(cfgs)
	if err != nil {
		return nil, err
	}
	cells := make([][]cell, len(benches))
	k := 0
	for i := range benches {
		cells[i] = make([]cell, len(kinds))
		for v := range kinds {
			cells[i][v] = cell{ipc: results[k].IPC(), misp: 100 * results[k].MispredictRate()}
			k++
		}
	}
	t := &Table{
		Title:  "Ablation: branch predictor quality (speedup vs tournament | mispredict %)",
		Header: []string{"tourn", "percep", "gshare", "bimod", "static", "m%tou", "m%per", "m%gsh", "m%bim", "m%sta"},
		Notes: "the branch resolution loop's cost scales with the mis-speculation rate (Section 1);\n" +
			"pure global-history gshare collapses on these streams because the synthetic sites\n" +
			"interleave randomly — per-PC components (bias weights, local history) carry the signal",
	}
	for i, b := range benches {
		row := Row{Label: b}
		for v := range kinds {
			row.Values = append(row.Values, cells[i][v].ipc/cells[i][0].ipc)
		}
		for v := range kinds {
			row.Values = append(row.Values, cells[i][v].misp)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// LoopDelayCheck verifies the loop-delay arithmetic of Sections 1–2 on the
// configured machine: the base load resolution loop delay (IQ-EX + feedback)
// and the minimum branch mis-speculation penalty.
func LoopDelayCheck() *Table {
	cfg, _ := loosesim.DefaultMachine("gcc")
	t := &Table{
		Title:  "Loop delay arithmetic (base machine)",
		Header: []string{"cycles"},
	}
	t.Rows = append(t.Rows,
		Row{Label: "load loop delay (IQ-EX + feedback)", Values: []float64{float64(cfg.IQExLat + cfg.FeedbackDelay)}},
		Row{Label: "branch loop length (DEC-IQ + IQ-EX + resolve)", Values: []float64{float64(cfg.DecIQLat + cfg.IQExLat + 1)}},
		Row{Label: "branch loop delay (+ fetch redirect)", Values: []float64{float64(cfg.DecIQLat + cfg.IQExLat + 1 + cfg.BranchFBDelay)}},
	)
	t.Notes = fmt.Sprintf("paper: base load loop delay = 8 (5 + 3); here %d + %d", cfg.IQExLat, cfg.FeedbackDelay)
	return t
}
