package bpred

import (
	"math/rand"
	"testing"
)

func TestPerceptronLearnsBias(t *testing.T) {
	p := NewDefaultPerceptron()
	pc := uint64(0x900)
	for i := 0; i < 200; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("perceptron must learn a biased branch")
	}
}

func TestPerceptronLearnsLongCorrelation(t *testing.T) {
	// Outcome equals the outcome 20 branches ago — far beyond a 2-bit
	// counter's reach, linear and learnable for a perceptron.
	p := NewDefaultPerceptron()
	pc := uint64(0x40)
	var past []bool
	rng := rand.New(rand.NewSource(3))
	outcome := func(i int) bool {
		if i < 20 {
			return rng.Intn(2) == 0
		}
		return past[i-20]
	}
	for i := 0; i < 4000; i++ {
		o := outcome(i)
		past = append(past, o)
		p.Update(pc, o)
	}
	correct := 0
	for i := 4000; i < 4400; i++ {
		o := outcome(i)
		past = append(past, o)
		if p.Predict(pc) == o {
			correct++
		}
		p.Update(pc, o)
	}
	if correct < 360 { // 90%
		t.Errorf("perceptron on 20-back correlation: %d/400 correct", correct)
	}
}

func TestPerceptronBeatsBimodalOnCorrelation(t *testing.T) {
	n := 8000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	hist := make([]bool, 0, n)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		pcs[i] = 0x100
		var o bool
		if i < 12 {
			o = rng.Intn(2) == 0
		} else {
			o = hist[i-12] != hist[i-7] // XOR of two past outcomes
		}
		outs[i] = o
		hist = append(hist, o)
	}
	perc := trainAccuracy(NewDefaultPerceptron(), outs, pcs)
	bim := trainAccuracy(NewBimodal(1024), outs, pcs)
	// XOR is not linearly separable, so the perceptron will not ace it,
	// but it must not be worse than bimodal's coin flip.
	if perc < bim-0.05 {
		t.Errorf("perceptron %.3f clearly worse than bimodal %.3f", perc, bim)
	}
}

func TestPerceptronWeightsStayClamped(t *testing.T) {
	p := NewPerceptron(8, 8)
	pc := uint64(0)
	for i := 0; i < 10_000; i++ {
		p.Update(pc, true)
	}
	for _, w := range p.weights[p.index(pc)] {
		if w > 127 || w < -128 {
			t.Fatalf("weight %d out of 8-bit range", w)
		}
	}
	if !p.Predict(pc) {
		t.Error("saturated perceptron must still predict taken")
	}
}

func TestPerceptronName(t *testing.T) {
	if NewDefaultPerceptron().Name() != "perceptron" {
		t.Error("name wrong")
	}
}

func TestPerceptronHistLenClamp(t *testing.T) {
	p := NewPerceptron(8, 0) // clamps to 1
	p.Update(0, true)
	_ = p.Predict(0)
}
