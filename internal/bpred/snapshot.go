package bpred

import (
	"fmt"

	"loosesim/internal/snap"
)

// counters2 encodes a 2-bit-counter table one byte per entry.
func counters2(w *snap.Writer, t []counter2) {
	for _, c := range t {
		w.U8(uint8(c))
	}
}

// restoreCounters2 decodes into an existing table, rejecting values the
// saturating arithmetic can never produce.
func restoreCounters2(r *snap.Reader, t []counter2) {
	for i := range t {
		v := r.U8()
		if v > 3 {
			r.Failf("2-bit counter value %d", v)
			return
		}
		t[i] = counter2(v)
	}
}

// Snapshot encodes the bimodal predictor's counter table.
func (b *Bimodal) Snapshot(w *snap.Writer) { counters2(w, b.table) }

// Restore overwrites the counter table; b must have the snapshot's size.
func (b *Bimodal) Restore(r *snap.Reader) { restoreCounters2(r, b.table) }

// Snapshot encodes the gshare predictor's counter table and global
// history register.
func (g *GShare) Snapshot(w *snap.Writer) {
	counters2(w, g.table)
	w.U64(g.history)
}

// Restore overwrites the mutable state; g must have the snapshot's
// geometry.
func (g *GShare) Restore(r *snap.Reader) {
	restoreCounters2(r, g.table)
	g.history = r.U64()
	if g.history&^((1<<g.histLen)-1) != 0 {
		r.Failf("gshare history %#x exceeds %d bits", g.history, g.histLen)
	}
}

// Snapshot encodes the tournament predictor's histories and all three
// counter tables.
func (t *Tournament) Snapshot(w *snap.Writer) {
	for _, h := range t.localHist {
		w.U16(h)
	}
	counters2(w, t.localPred)
	counters2(w, t.globalPred)
	counters2(w, t.choice)
	w.U64(t.history)
}

// Restore overwrites the mutable state; t must have the snapshot's
// geometry.
func (t *Tournament) Restore(r *snap.Reader) {
	lhMask := uint16((1 << t.lhBits) - 1)
	for i := range t.localHist {
		h := r.U16()
		if h&^lhMask != 0 {
			r.Failf("tournament local history %#x exceeds %d bits", h, t.lhBits)
			return
		}
		t.localHist[i] = h
	}
	restoreCounters2(r, t.localPred)
	restoreCounters2(r, t.globalPred)
	restoreCounters2(r, t.choice)
	t.history = r.U64()
	if t.history&^((1<<t.histBits)-1) != 0 {
		r.Failf("tournament history %#x exceeds %d bits", t.history, t.histBits)
	}
}

// Snapshot encodes the perceptron predictor's weight matrix and history.
func (p *Perceptron) Snapshot(w *snap.Writer) {
	for _, row := range p.weights {
		for _, wt := range row {
			w.U16(uint16(wt))
		}
	}
	for _, h := range p.history {
		w.U8(uint8(int8(h)))
	}
}

// Restore overwrites the mutable state; p must have the snapshot's
// geometry. Weights beyond the 8-bit clamp and history values other than
// ±1 or 0 are corrupt.
func (p *Perceptron) Restore(r *snap.Reader) {
	for _, row := range p.weights {
		for i := range row {
			wt := int16(r.U16())
			if wt < -128 || wt > 127 {
				r.Failf("perceptron weight %d outside clamp", wt)
				return
			}
			row[i] = wt
		}
	}
	for i := range p.history {
		h := int8(r.U8())
		if h != -1 && h != 0 && h != 1 {
			r.Failf("perceptron history value %d", h)
			return
		}
		p.history[i] = h
	}
}

// Snapshot encodes the static predictor's (single, configured) bit — so
// the type switch below stays exhaustive and the payload self-checks.
func (s *Static) Snapshot(w *snap.Writer) { w.Bool(s.Taken) }

// Restore checks the direction matches the configured one.
func (s *Static) Restore(r *snap.Reader) {
	if taken := r.Bool(); r.Err() == nil && taken != s.Taken {
		r.Failf("static predictor direction %v, configured %v", taken, s.Taken)
	}
}

// SnapshotPredictor dispatches over the concrete predictor types. The
// machine records the predictor kind in its config, so the restore side
// constructs the right type before calling RestorePredictor.
func SnapshotPredictor(w *snap.Writer, p Predictor) {
	switch v := p.(type) {
	case *Bimodal:
		v.Snapshot(w)
	case *GShare:
		v.Snapshot(w)
	case *Tournament:
		v.Snapshot(w)
	case *Perceptron:
		v.Snapshot(w)
	case *Static:
		v.Snapshot(w)
	default:
		panic(fmt.Sprintf("bpred: no snapshot support for %T", p))
	}
}

// RestorePredictor is SnapshotPredictor's decode-side twin.
func RestorePredictor(r *snap.Reader, p Predictor) {
	switch v := p.(type) {
	case *Bimodal:
		v.Restore(r)
	case *GShare:
		v.Restore(r)
	case *Tournament:
		v.Restore(r)
	case *Perceptron:
		v.Restore(r)
	case *Static:
		v.Restore(r)
	default:
		panic(fmt.Sprintf("bpred: no restore support for %T", p))
	}
}

// Snapshot encodes the BTB's tags, targets, valid bits, and statistics.
func (b *BTB) Snapshot(w *snap.Writer) {
	w.U64s(b.tags)
	w.U64s(b.targets)
	w.Bools(b.valid)
	w.U64(b.hits)
	w.U64(b.misses)
}

// Restore overwrites the mutable state; b must have the snapshot's size.
func (b *BTB) Restore(r *snap.Reader) {
	tags := r.U64s(len(b.tags))
	targets := r.U64s(len(b.targets))
	valid := r.Bools(len(b.valid))
	if len(tags) != len(b.tags) || len(targets) != len(b.targets) || len(valid) != len(b.valid) {
		r.Failf("btb: got %d/%d/%d entries, want %d", len(tags), len(targets), len(valid), len(b.tags))
		return
	}
	copy(b.tags, tags)
	copy(b.targets, targets)
	copy(b.valid, valid)
	b.hits = r.U64()
	b.misses = r.U64()
}

// Snapshot encodes the store-wait predictor's bits, clear schedule, and
// statistics.
func (s *StoreWait) Snapshot(w *snap.Writer) {
	w.Bools(s.bits)
	w.I64(s.nextClr)
	w.U64(s.trains)
	w.U64(s.clears)
}

// Restore overwrites the mutable state; s must have the snapshot's size.
func (s *StoreWait) Restore(r *snap.Reader) {
	bits := r.Bools(len(s.bits))
	if len(bits) != len(s.bits) {
		r.Failf("storewait: %d bits, want %d", len(bits), len(s.bits))
		return
	}
	copy(s.bits, bits)
	s.nextClr = r.I64()
	s.trains = r.U64()
	s.clears = r.U64()
}
