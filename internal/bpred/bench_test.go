package bpred

import (
	"math/rand"
	"testing"
)

func benchStream(n int) ([]uint64, []bool) {
	rng := rand.New(rand.NewSource(9))
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = uint64(rng.Intn(256)) * 4
		outs[i] = rng.Intn(4) != 0
	}
	return pcs, outs
}

func benchPredictor(b *testing.B, p Predictor) {
	pcs, outs := benchStream(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 4095
		p.Predict(pcs[k])
		p.Update(pcs[k], outs[k])
	}
}

func BenchmarkBimodal(b *testing.B)    { benchPredictor(b, NewBimodal(4096)) }
func BenchmarkGShare(b *testing.B)     { benchPredictor(b, NewGShare(4096, 12)) }
func BenchmarkTournament(b *testing.B) { benchPredictor(b, NewDefaultTournament()) }

func BenchmarkBTB(b *testing.B) {
	btb := NewBTB(1024)
	pcs, _ := benchStream(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 4095
		if _, hit := btb.Lookup(pcs[k]); !hit {
			btb.Insert(pcs[k], pcs[k]+64)
		}
	}
}
