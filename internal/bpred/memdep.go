package bpred

// StoreWait is the 21264-style memory dependence predictor: one bit per
// (hashed) load PC, set when the load is caught violating memory order
// against an older store. A set bit makes the load wait at issue until all
// older stores have resolved their addresses. Bits are cleared periodically
// so stale training does not serialise loads forever.
type StoreWait struct {
	bits     []bool
	mask     uint64
	interval int64
	nextClr  int64

	trains, clears uint64
}

// NewStoreWait returns a predictor with the given table size (power of two)
// that clears itself every clearInterval cycles.
func NewStoreWait(entries int, clearInterval int64) *StoreWait {
	checkPow2(entries)
	if clearInterval < 1 {
		clearInterval = 1
	}
	return &StoreWait{
		bits:     make([]bool, entries),
		mask:     uint64(entries - 1),
		interval: clearInterval,
		nextClr:  clearInterval,
	}
}

func (s *StoreWait) index(pc uint64) uint64 { return (pc >> 2) & s.mask }

// ShouldWait reports whether the load at pc should wait for older stores.
func (s *StoreWait) ShouldWait(pc uint64) bool { return s.bits[s.index(pc)] }

// Train marks the load at pc as a violator.
func (s *StoreWait) Train(pc uint64) {
	s.bits[s.index(pc)] = true
	s.trains++
}

// Tick advances the predictor's clock; at each clear interval the table
// resets so loads get periodic second chances.
func (s *StoreWait) Tick(cycle int64) {
	if cycle < s.nextClr {
		return
	}
	for i := range s.bits {
		s.bits[i] = false
	}
	s.clears++
	s.nextClr = cycle + s.interval
}

// Trains returns the number of Train calls.
func (s *StoreWait) Trains() uint64 { return s.trains }

// Clears returns the number of table resets.
func (s *StoreWait) Clears() uint64 { return s.clears }
