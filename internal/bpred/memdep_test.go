package bpred

import "testing"

func TestStoreWaitTrainAndQuery(t *testing.T) {
	s := NewStoreWait(64, 1000)
	pc := uint64(0x400)
	if s.ShouldWait(pc) {
		t.Error("untrained load must not wait")
	}
	s.Train(pc)
	if !s.ShouldWait(pc) {
		t.Error("trained load must wait")
	}
	if s.Trains() != 1 {
		t.Errorf("trains = %d", s.Trains())
	}
	// Aliasing: PCs table-size*4 apart share a bit.
	if !s.ShouldWait(pc + 64*4) {
		t.Error("aliased PC must share the bit")
	}
}

func TestStoreWaitPeriodicClear(t *testing.T) {
	s := NewStoreWait(64, 100)
	s.Train(0x80)
	s.Tick(99)
	if !s.ShouldWait(0x80) {
		t.Error("bit must survive before the interval")
	}
	s.Tick(100)
	if s.ShouldWait(0x80) {
		t.Error("bit must clear at the interval")
	}
	if s.Clears() != 1 {
		t.Errorf("clears = %d", s.Clears())
	}
	// Next clear is a full interval later.
	s.Train(0x80)
	s.Tick(150)
	if !s.ShouldWait(0x80) {
		t.Error("cleared too early")
	}
	s.Tick(200)
	if s.ShouldWait(0x80) {
		t.Error("second clear missed")
	}
}

func TestStoreWaitBadIntervalClamped(t *testing.T) {
	s := NewStoreWait(8, 0) // clamps to 1
	s.Train(0)
	s.Tick(1)
	if s.ShouldWait(0) {
		t.Error("interval clamp failed")
	}
}

func TestStoreWaitSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two must panic")
		}
	}()
	NewStoreWait(7, 100)
}
