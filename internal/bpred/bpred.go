// Package bpred implements the branch direction predictors used by the
// simulated front end. The branch resolution loop — the paper's canonical
// loose loop — is driven entirely by how often these predictors are wrong,
// so the predictors are real table-based hardware models rather than
// injected error rates: a bimodal predictor, a gshare predictor, and an
// Alpha 21264-style tournament predictor combining local and global history.
package bpred

import "fmt"

// Predictor predicts conditional branch directions. Implementations are
// deterministic state machines updated in program order at branch
// resolution.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome of the branch
	// at pc.
	Update(pc uint64, taken bool)
	// Name identifies the predictor for reports.
	Name() string
}

// counter2 is a 2-bit saturating counter; values 0..3, taken when >= 2.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of 2-bit saturating counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal returns a bimodal predictor with the given number of entries,
// which must be a power of two.
func NewBimodal(entries int) *Bimodal {
	checkPow2(entries)
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.table)) }

// GShare XORs global branch history into the PC index of a counter table.
type GShare struct {
	table   []counter2
	mask    uint64
	history uint64
	histLen uint
}

// NewGShare returns a gshare predictor with the given table size (power of
// two) and history length in bits.
func NewGShare(entries int, histBits uint) *GShare {
	checkPow2(entries)
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: uint64(entries - 1), histLen: histBits}
}

func (g *GShare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. It trains the counter and shifts the outcome
// into the global history register.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// Name implements Predictor.
func (g *GShare) Name() string { return fmt.Sprintf("gshare-%d-h%d", len(g.table), g.histLen) }

// Tournament is a McFarling-style hybrid: a local predictor (per-branch
// history indexing a counter table), a global predictor (path history XORed
// with the PC indexing a counter table, gshare-style, to reduce
// interference), and a PC-indexed choice predictor trained toward whichever
// component was correct.
type Tournament struct {
	localHist  []uint16
	localPred  []counter2
	globalPred []counter2
	choice     []counter2
	history    uint64

	lhMask   uint64
	lpMask   uint64
	gMask    uint64
	histBits uint
	lhBits   uint
}

// NewTournament builds the hybrid predictor. localEntries sizes the
// per-branch history table, localCounters and globalEntries size the two
// counter tables; all must be powers of two.
func NewTournament(localEntries, localCounters, globalEntries int, histBits, localHistBits uint) *Tournament {
	checkPow2(localEntries)
	checkPow2(localCounters)
	checkPow2(globalEntries)
	t := &Tournament{
		localHist:  make([]uint16, localEntries),
		localPred:  make([]counter2, localCounters),
		globalPred: make([]counter2, globalEntries),
		choice:     make([]counter2, globalEntries),
		lhMask:     uint64(localEntries - 1),
		lpMask:     uint64(localCounters - 1),
		gMask:      uint64(globalEntries - 1),
		histBits:   histBits,
		lhBits:     localHistBits,
	}
	for i := range t.localPred {
		t.localPred[i] = 2
	}
	for i := range t.globalPred {
		t.globalPred[i] = 2
	}
	for i := range t.choice {
		t.choice[i] = 1 // weakly prefer local until global history pays off
	}
	return t
}

// NewDefaultTournament returns the configuration used by the base machine:
// 1K local histories, 1K local counters, 4K global counters, 12 bits of
// global history, 10 bits of local history (a scaled 21264 arrangement).
func NewDefaultTournament() *Tournament {
	return NewTournament(1024, 1024, 4096, 12, 10)
}

func (t *Tournament) localIndex(pc uint64) uint64 {
	return (pc >> 2) & t.lhMask
}

func (t *Tournament) localPredict(pc uint64) bool {
	h := uint64(t.localHist[t.localIndex(pc)]) & t.lpMask
	return t.localPred[h].taken()
}

func (t *Tournament) globalIndex(pc uint64) uint64 { return (t.history ^ (pc >> 2)) & t.gMask }

func (t *Tournament) choiceIndex(pc uint64) uint64 { return (pc >> 2) & t.gMask }

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.choice[t.choiceIndex(pc)].taken() {
		return t.globalPred[t.globalIndex(pc)].taken()
	}
	return t.localPredict(pc)
}

// Update implements Predictor.
func (t *Tournament) Update(pc uint64, taken bool) {
	gi := t.globalIndex(pc)
	ci := t.choiceIndex(pc)
	li := t.localIndex(pc)
	lh := uint64(t.localHist[li]) & t.lpMask

	localCorrect := t.localPred[lh].taken() == taken
	globalCorrect := t.globalPred[gi].taken() == taken

	// Train the choice predictor toward whichever component was right.
	if localCorrect != globalCorrect {
		t.choice[ci] = t.choice[ci].update(globalCorrect)
	}
	t.localPred[lh] = t.localPred[lh].update(taken)
	t.globalPred[gi] = t.globalPred[gi].update(taken)

	// Shift the outcome into both history registers.
	h := t.localHist[li] << 1
	if taken {
		h |= 1
	}
	t.localHist[li] = h & uint16((1<<t.lhBits)-1)

	t.history <<= 1
	if taken {
		t.history |= 1
	}
	t.history &= (1 << t.histBits) - 1
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "tournament" }

// Static always predicts a fixed direction; useful as a baseline and for
// tests that need deterministic front-end behaviour.
type Static struct {
	// Taken is the direction predicted for every branch.
	Taken bool
}

// Predict implements Predictor.
func (s *Static) Predict(uint64) bool { return s.Taken }

// Update implements Predictor (no state).
func (s *Static) Update(uint64, bool) {}

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-not-taken"
}

// BTB is a direct-mapped branch target buffer with tags. The trace-driven
// front end always knows real targets, so the BTB only contributes hit/miss
// statistics, but it is modelled faithfully for completeness.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
	mask    uint64

	hits, misses uint64
}

// NewBTB returns a BTB with the given number of entries (power of two).
func NewBTB(entries int) *BTB {
	checkPow2(entries)
	return &BTB{
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		mask:    uint64(entries - 1),
	}
}

// Lookup returns the predicted target for pc and whether the BTB hit.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	i := (pc >> 2) & b.mask
	if b.valid[i] && b.tags[i] == pc {
		b.hits++
		return b.targets[i], true
	}
	b.misses++
	return 0, false
}

// Insert records the taken target of the branch at pc.
func (b *BTB) Insert(pc, target uint64) {
	i := (pc >> 2) & b.mask
	b.tags[i] = pc
	b.targets[i] = target
	b.valid[i] = true
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}

func checkPow2(n int) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("bpred: table size %d is not a power of two", n))
	}
}
