package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// trainAccuracy runs a predictor over a generated outcome stream and returns
// the fraction of correct predictions.
func trainAccuracy(p Predictor, outcomes []bool, pcs []uint64) float64 {
	correct := 0
	for i, taken := range outcomes {
		if p.Predict(pcs[i]) == taken {
			correct++
		}
		p.Update(pcs[i], taken)
	}
	return float64(correct) / float64(len(outcomes))
}

func TestCounter2Saturation(t *testing.T) {
	c := counter2(0)
	c = c.update(false)
	if c != 0 {
		t.Errorf("counter must saturate at 0, got %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter must saturate at 3, got %d", c)
	}
	if !c.taken() {
		t.Error("saturated-up counter must predict taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(256)
	pc := uint64(0x4000)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal must learn an always-taken branch")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal must re-learn an always-not-taken branch")
	}
}

func TestBimodalAliasing(t *testing.T) {
	b := NewBimodal(4)
	// PCs 16 apart with a 4-entry table alias to the same counter.
	b.Update(0x10, false)
	b.Update(0x10, false)
	b.Update(0x10, false)
	if b.Predict(0x10 + 4*4) {
		t.Error("aliased PCs must share a counter")
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	g := NewGShare(4096, 10)
	pc := uint64(0x1000)
	// Alternating pattern T,N,T,N is invisible to bimodal but trivially
	// captured by history-based prediction.
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		g.Update(pc, taken)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		taken := i%2 == 0
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
	}
	if correct < 95 {
		t.Errorf("gshare on alternating pattern: %d/100 correct, want >= 95", correct)
	}
}

func TestTournamentBeatsComponentsOnMixedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20000
	pcs := make([]uint64, n)
	outcomes := make([]bool, n)
	// Mix: some strongly biased branches (good for bimodal/local) and one
	// global-correlated branch.
	hist := 0
	for i := 0; i < n; i++ {
		which := rng.Intn(3)
		switch which {
		case 0: // biased branch
			pcs[i] = 0x100
			outcomes[i] = rng.Float64() < 0.95
		case 1: // loop-pattern branch: taken 7 of 8
			pcs[i] = 0x200
			outcomes[i] = i%8 != 0
		default: // correlated with recent history parity
			pcs[i] = 0x300
			outcomes[i] = hist%2 == 0
		}
		if outcomes[i] {
			hist++
		}
	}
	tourn := trainAccuracy(NewDefaultTournament(), outcomes, pcs)
	bim := trainAccuracy(NewBimodal(1024), outcomes, pcs)
	if tourn < bim-0.01 {
		t.Errorf("tournament (%.3f) should not be clearly worse than bimodal (%.3f)", tourn, bim)
	}
	if tourn < 0.75 {
		t.Errorf("tournament accuracy %.3f unexpectedly low", tourn)
	}
}

func TestTournamentLocalComponent(t *testing.T) {
	// A per-branch periodic pattern is a local-history specialty.
	tr := NewDefaultTournament()
	pc := uint64(0x40)
	for i := 0; i < 5000; i++ {
		tr.Update(pc, i%4 == 0)
	}
	correct := 0
	for i := 5000; i < 5200; i++ {
		want := i%4 == 0
		if tr.Predict(pc) == want {
			correct++
		}
		tr.Update(pc, want)
	}
	if correct < 180 {
		t.Errorf("tournament on periodic branch: %d/200, want >= 180", correct)
	}
}

func TestStaticPredictor(t *testing.T) {
	st := &Static{Taken: true}
	if !st.Predict(0x1234) {
		t.Error("static-taken must predict taken")
	}
	st.Update(0x1234, false) // must not change anything
	if !st.Predict(0x1234) {
		t.Error("static predictor must ignore updates")
	}
	snt := &Static{}
	if snt.Predict(0) {
		t.Error("static-not-taken must predict not taken")
	}
}

func TestNames(t *testing.T) {
	for _, p := range []Predictor{
		NewBimodal(64), NewGShare(64, 6), NewDefaultTournament(),
		&Static{Taken: true}, &Static{},
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(16)
	if _, hit := b.Lookup(0x500); hit {
		t.Error("empty BTB must miss")
	}
	b.Insert(0x500, 0x900)
	tgt, hit := b.Lookup(0x500)
	if !hit || tgt != 0x900 {
		t.Errorf("BTB lookup = (%#x,%v), want (0x900,true)", tgt, hit)
	}
	// Conflicting PC evicts.
	b.Insert(0x500+16*4, 0xA00)
	if _, hit := b.Lookup(0x500); hit {
		t.Error("direct-mapped conflict must evict")
	}
	if b.HitRate() <= 0 || b.HitRate() >= 1 {
		t.Errorf("hit rate %v should be strictly between 0 and 1 here", b.HitRate())
	}
}

func TestBTBEmptyHitRate(t *testing.T) {
	if NewBTB(8).HitRate() != 0 {
		t.Error("no-lookup hit rate must be 0")
	}
}

func TestCheckPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size must panic")
		}
	}()
	NewBimodal(100)
}

// Property: whatever the update sequence, predictors always return a
// deterministic bool and never panic for power-of-two tables.
func TestPredictorRobustnessProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := []Predictor{
			NewBimodal(64),
			NewGShare(64, 8),
			NewTournament(64, 64, 256, 8, 6),
		}
		for i := 0; i < int(n); i++ {
			pc := rng.Uint64() & 0xFFFF
			taken := rng.Intn(2) == 0
			for _, p := range preds {
				p.Predict(pc)
				p.Update(pc, taken)
			}
		}
		// Determinism: same pc twice without update in between gives the
		// same prediction.
		pc := rng.Uint64()
		for _, p := range preds {
			if p.Predict(pc) != p.Predict(pc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a fully biased branch stream converges to >= 90% accuracy for
// every adaptive predictor.
func TestBiasedStreamAccuracyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := rng.Intn(2) == 0
		n := 2000
		pcs := make([]uint64, n)
		outs := make([]bool, n)
		for i := range pcs {
			pcs[i] = uint64(rng.Intn(32)) * 4
			outs[i] = dir
		}
		for _, p := range []Predictor{NewBimodal(256), NewGShare(1024, 8), NewDefaultTournament()} {
			if trainAccuracy(p, outs, pcs) < 0.9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
