package bpred

// Perceptron is the perceptron branch predictor of Jiménez & Lin (HPCA
// 2001) — contemporary with the paper's machine. Each (hashed) branch PC
// owns a weight vector over the global history; the prediction is the sign
// of the dot product, and training bumps weights on a mispredict or a
// low-confidence correct prediction. It handles long linear correlations
// that saturating-counter tables cannot.
type Perceptron struct {
	weights [][]int16
	history []int8 // +1 taken, -1 not taken
	mask    uint64
	theta   int32
}

// NewPerceptron returns a perceptron predictor with the given table size
// (power of two) and history length.
func NewPerceptron(entries int, histLen int) *Perceptron {
	checkPow2(entries)
	if histLen < 1 {
		histLen = 1
	}
	w := make([][]int16, entries)
	backing := make([]int16, entries*(histLen+1))
	for i := range w {
		w[i], backing = backing[:histLen+1], backing[histLen+1:]
	}
	return &Perceptron{
		weights: w,
		history: make([]int8, histLen),
		mask:    uint64(entries - 1),
		// Optimal threshold from the paper: 1.93h + 14.
		theta: int32(1.93*float64(histLen) + 14),
	}
}

// NewDefaultPerceptron returns the configuration used by the predictor
// ablation: 512 perceptrons over 24 bits of history.
func NewDefaultPerceptron() *Perceptron { return NewPerceptron(512, 24) }

func (p *Perceptron) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

// output computes the dot product of the selected weight vector with the
// history (weight 0 is the bias).
func (p *Perceptron) output(pc uint64) int32 {
	w := p.weights[p.index(pc)]
	sum := int32(w[0])
	for i, h := range p.history {
		sum += int32(w[i+1]) * int32(h)
	}
	return sum
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool { return p.output(pc) >= 0 }

// Update implements Predictor: perceptron learning with threshold theta,
// then shift the outcome into the history.
func (p *Perceptron) Update(pc uint64, taken bool) {
	sum := p.output(pc)
	predicted := sum >= 0
	t := int32(-1)
	if taken {
		t = 1
	}
	if predicted != taken || abs32(sum) <= p.theta {
		w := p.weights[p.index(pc)]
		w[0] = clampW(int32(w[0]) + t)
		for i, h := range p.history {
			w[i+1] = clampW(int32(w[i+1]) + t*int32(h))
		}
	}
	copy(p.history, p.history[1:])
	if taken {
		p.history[len(p.history)-1] = 1
	} else {
		p.history[len(p.history)-1] = -1
	}
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return "perceptron" }

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// clampW keeps weights within the 8-bit budget the paper's hardware uses.
func clampW(v int32) int16 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int16(v)
}
