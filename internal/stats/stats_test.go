package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{0, 1, 1, 2, 9, 15, -3} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Bucket(1) != 2 {
		t.Errorf("bucket(1) = %d, want 2", h.Bucket(1))
	}
	if h.Bucket(0) != 2 { // 0 and clamped -3
		t.Errorf("bucket(0) = %d, want 2", h.Bucket(0))
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow())
	}
	if h.Max() != 15 {
		t.Errorf("max = %d, want 15", h.Max())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(100)
	for i := 1; i <= 5; i++ {
		h.Add(i)
	}
	if got := h.Mean(); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("mean = %v, want 3", got)
	}
	empty := NewHistogram(4)
	if empty.Mean() != 0 {
		t.Errorf("empty mean must be 0")
	}
}

func TestHistogramTinyBound(t *testing.T) {
	h := NewHistogram(0) // clamps to 1
	h.Add(0)
	h.Add(5)
	if h.Bucket(0) != 1 || h.Overflow() != 1 {
		t.Errorf("bound clamp misbehaved: %v", h)
	}
}

func TestCDFMonotonicAndNormalized(t *testing.T) {
	h := NewHistogram(50)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Intn(49))
	}
	cdf := h.CDF()
	prev := 0.0
	for i, v := range cdf {
		if v < prev {
			t.Fatalf("CDF decreasing at %d: %v < %v", i, v, prev)
		}
		prev = v
	}
	if math.Abs(cdf[len(cdf)-1]-1.0) > 1e-12 {
		t.Errorf("CDF must reach 1 with no overflow, got %v", cdf[len(cdf)-1])
	}
}

func TestCDFEmpty(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range h.CDF() {
		if v != 0 {
			t.Fatal("empty CDF must be all zero")
		}
	}
	if h.Fraction(3) != 0 {
		t.Fatal("empty Fraction must be 0")
	}
}

func TestFraction(t *testing.T) {
	h := NewHistogram(10)
	h.Add(0)
	h.Add(5)
	h.Add(5)
	h.Add(20) // overflow
	if got := h.Fraction(4); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Fraction(4) = %v, want 0.25", got)
	}
	if got := h.Fraction(5); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Fraction(5) = %v, want 0.75", got)
	}
	if got := h.Fraction(99); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Fraction beyond bound = %v, want 0.75", got)
	}
}

func TestPercentile(t *testing.T) {
	h := NewHistogram(100)
	for i := 1; i <= 100; i++ {
		h.Add(i - 1) // values 0..99 once each
	}
	if got := h.Percentile(0.5); got != 49 {
		t.Errorf("p50 = %d, want 49", got)
	}
	if got := h.Percentile(1.0); got != 99 {
		t.Errorf("p100 = %d, want 99", got)
	}
	if got := h.Percentile(0.01); got != 0 {
		t.Errorf("p1 = %d, want 0", got)
	}
}

// TestPercentileQuantileUnified locks the shared contract table-driven
// across both names: clamping of p <= 0, p > 1, NaN and infinities, and
// overflow reporting Max() rather than the histogram bound.
func TestPercentileQuantileUnified(t *testing.T) {
	uniform := NewHistogram(100) // values 0..99 once each
	for i := 0; i < 100; i++ {
		uniform.Add(i)
	}
	overflowed := NewHistogram(4) // half the mass beyond the bound
	for _, v := range []int{1, 2, 100, 200} {
		overflowed.Add(v)
	}
	allOver := NewHistogram(2)
	allOver.Add(10)

	cases := []struct {
		name string
		h    *Histogram
		p    float64
		want int
	}{
		{"empty", NewHistogram(4), 0.5, 0},
		{"uniform p50", uniform, 0.5, 49},
		{"uniform p100", uniform, 1.0, 99},
		{"uniform p1", uniform, 0.01, 0},
		{"clamp p=0 to rank 1", uniform, 0, 0},
		{"clamp negative to rank 1", uniform, -3, 0},
		{"clamp p>1 to rank count", uniform, 7, 99},
		{"clamp +Inf to rank count", uniform, math.Inf(1), 99},
		{"clamp -Inf to rank 1", uniform, math.Inf(-1), 0},
		{"NaN means rank 1", uniform, math.NaN(), 0},
		{"overflow tail reports Max", overflowed, 0.99, 200},
		{"below-bound mass unaffected", overflowed, 0.5, 2},
		{"all-overflow reports Max", allOver, 0.9, 10},
		{"all-overflow p>1 reports Max", allOver, 2, 10},
	}
	for _, tc := range cases {
		if got := tc.h.Percentile(tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v) = %d, want %d", tc.name, tc.p, got, tc.want)
		}
		if got := tc.h.Quantile(tc.p); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.p, got, tc.want)
		}
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{0, 1, 1, 3, 20, -5} {
		h.Add(v)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Histogram
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Count() != h.Count() || got.Mean() != h.Mean() || got.Max() != h.Max() ||
		got.Overflow() != h.Overflow() {
		t.Fatalf("round trip lost state: %v vs %v", &got, h)
	}
	for v := 0; v < 8; v++ {
		if got.Bucket(v) != h.Bucket(v) {
			t.Errorf("bucket %d = %d, want %d", v, got.Bucket(v), h.Bucket(v))
		}
	}
	// Bound survives trailing-zero trimming: a value past the original
	// data but inside the bound must still bucket, not overflow.
	got.Add(7)
	if got.Overflow() != h.Overflow() {
		t.Error("bound not restored: in-range Add overflowed")
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 10; i++ {
		h.Add(i) // values 0..9 once each
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("q50 = %d, want 4", got)
	}
	if got := h.Quantile(1.0); got != 9 {
		t.Errorf("q100 = %d, want 9", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(7); got != 9 {
		t.Errorf("q>1 must clamp to the maximum, got %d", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if NewHistogram(4).Quantile(0.99) != 0 {
		t.Error("empty quantile must be 0")
	}
}

func TestQuantileOverflow(t *testing.T) {
	// Quantiles landing in the overflow bucket report Max(), the largest
	// recorded sample — not the histogram bound. Percentile shares the
	// contract (TestPercentileQuantileUnified).
	h := NewHistogram(4)
	h.Add(1)
	h.Add(2)
	h.Add(100)
	h.Add(200)
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("q50 = %d, want 2", got)
	}
	if got := h.Quantile(0.99); got != 200 {
		t.Errorf("overflow q99 = %d, want Max() 200", got)
	}
	all := NewHistogram(2)
	all.Add(10)
	if got := all.Quantile(0.9); got != 10 {
		t.Errorf("all-overflow quantile = %d, want 10", got)
	}
}

// Property: Quantile output is weakly increasing in q and never exceeds
// Max().
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint8, a, b float64) bool {
		if len(samples) == 0 {
			return true
		}
		qa := math.Mod(math.Abs(a), 1.0)
		qb := math.Mod(math.Abs(b), 1.0)
		if qa == 0 || qb == 0 {
			return true
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		h := NewHistogram(16) // small bound: exercise overflow often
		for _, s := range samples {
			h.Add(int(s))
		}
		return h.Quantile(qa) <= h.Quantile(qb) && h.Quantile(qb) <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(0, 5) != 0 {
		t.Error("zero baseline must yield 0")
	}
	if got := Speedup(2, 3); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Speedup(2,3) = %v, want 1.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean must be 0")
	}
	if got := GeoMean([]float64{-1, 0, 3}); math.Abs(got-3) > 1e-9 {
		t.Errorf("GeoMean skipping non-positives = %v, want 3", got)
	}
}

func TestTable(t *testing.T) {
	var tb Table
	tb.AddRow("name", "ipc")
	tb.AddRow("gcc", "2.31")
	out := tb.String()
	if !strings.Contains(out, "gcc") || !strings.Contains(out, "ipc") {
		t.Errorf("table output missing cells: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("table rows = %d, want 2", len(lines))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("SortedKeys = %v", keys)
	}
}

// Property: for any sample set, the CDF is monotonically non-decreasing and
// bounded by 1, and Count equals the number of Add calls.
func TestHistogramProperties(t *testing.T) {
	f := func(samples []uint8) bool {
		h := NewHistogram(64)
		for _, s := range samples {
			h.Add(int(s))
		}
		if h.Count() != uint64(len(samples)) {
			return false
		}
		cdf := h.CDF()
		prev := 0.0
		for _, v := range cdf {
			if v < prev || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Percentile output is weakly increasing in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(samples []uint8, a, b float64) bool {
		if len(samples) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 1.0)
		pb := math.Mod(math.Abs(b), 1.0)
		if pa == 0 || pb == 0 {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		h := NewHistogram(64)
		for _, s := range samples {
			h.Add(int(s))
		}
		return h.Percentile(pa) <= h.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
