// Package stats provides the measurement plumbing shared by the simulator:
// scalar counters with rate helpers, bounded histograms, and cumulative
// distribution functions (used to regenerate the paper's Figure 6).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"loosesim/internal/snap"
)

// Histogram counts integer-valued samples in unit-width buckets up to a
// bound; samples at or beyond the bound accumulate in an overflow bucket.
// The zero value is not usable; construct with NewHistogram.
type Histogram struct {
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      uint64
	max      int
}

// NewHistogram returns a histogram covering values 0..bound-1 with an
// overflow bucket for values >= bound.
func NewHistogram(bound int) *Histogram {
	if bound < 1 {
		bound = 1
	}
	return &Histogram{buckets: make([]uint64, bound)}
}

// Add records one sample. Negative samples are clamped to zero.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += uint64(v)
	if v >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[v]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of the samples, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample recorded.
func (h *Histogram) Max() int { return h.max }

// Bucket returns the count of samples with value v (v within bounds).
func (h *Histogram) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Overflow returns the count of samples at or beyond the histogram bound.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// CDF returns the cumulative distribution F(v) = P(sample <= v) evaluated at
// each integer 0..bound-1. With no samples it returns all zeros.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.buckets))
	if h.count == 0 {
		return out
	}
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		out[i] = float64(cum) / float64(h.count)
	}
	return out
}

// Fraction returns P(sample <= v). Values beyond the bound report the
// fraction excluding only overflow samples above them, i.e. F(bound-1).
func (h *Histogram) Fraction(v int) float64 {
	if h.count == 0 {
		return 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	var cum uint64
	for i := 0; i <= v; i++ {
		cum += h.buckets[i]
	}
	return float64(cum) / float64(h.count)
}

// Percentile returns the smallest recorded sample value v with F(v) >= p.
// It is Quantile under its historical name; the two used to disagree —
// Percentile left p > 1 and NaN unclamped (uint64(NaN) is
// platform-defined) and reported the histogram bound, not Max(), when the
// rank landed in the overflow bucket. Both now share Quantile's
// definition.
func (h *Histogram) Percentile(p float64) int { return h.Quantile(p) }

// Quantile returns the smallest recorded sample value v with F(v) >= q.
// q is clamped to (0, 1]: q <= 0 and NaN mean rank 1, q > 1 (including
// +Inf) means rank count. A quantile landing in the overflow bucket
// reports Max(), the largest sample actually recorded, rather than the
// histogram bound — so p99 of a heavy-tailed delay distribution stays
// meaningful even when the tail outruns the buckets. With no samples it
// returns 0.
func (h *Histogram) Quantile(q float64) int {
	if h.count == 0 {
		return 0
	}
	// need is the 1-based rank of the sample being asked for. The clamp
	// handles NaN via the negated comparisons: NaN fails both q > 1 and
	// q > 0, landing on rank 1.
	need := uint64(1)
	switch {
	case q > 1:
		need = h.count
	case q > 0:
		need = uint64(math.Ceil(q * float64(h.count)))
		if need == 0 {
			need = 1
		}
		if need > h.count {
			need = h.count
		}
	}
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= need {
			return i
		}
	}
	return h.max
}

// Merge folds o's samples into h. Buckets add elementwise; when o has a
// wider bound h grows to cover it, so merging is associative and
// commutative even across histograms constructed with different bounds
// (a sample that overflowed o stays overflow in h — Merge cannot know
// its true value, so overflow counts simply add). o is unmodified; a nil
// o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if len(o.buckets) > len(h.buckets) {
		grown := make([]uint64, len(o.buckets))
		copy(grown, h.buckets)
		h.buckets = grown
	}
	for i, b := range o.buckets {
		h.buckets[i] += b
	}
	h.overflow += o.overflow
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Snapshot encodes the full histogram state into w (byte-stable; part of
// the machine checkpoint format).
func (h *Histogram) Snapshot(w *snap.Writer) {
	w.U64s(h.buckets)
	w.U64(h.overflow)
	w.U64(h.count)
	w.U64(h.sum)
	w.Int(h.max)
}

// maxSnapBuckets bounds a decoded histogram's bucket count; the simulator
// never configures more than a few thousand unit-width buckets.
const maxSnapBuckets = 1 << 20

// Restore overwrites h with state encoded by Snapshot.
func (h *Histogram) Restore(r *snap.Reader) {
	h.buckets = r.U64s(maxSnapBuckets)
	h.overflow = r.U64()
	h.count = r.U64()
	h.sum = r.U64()
	h.max = r.Int()
	// Add never records a negative max, and NewHistogram never builds an
	// empty bucket range; either means the bytes are corrupt.
	if h.max < 0 {
		r.Failf("histogram max %d negative", h.max)
		h.max = 0
	}
	if len(h.buckets) == 0 {
		r.Failf("histogram with no buckets")
		h.buckets = make([]uint64, 1)
	}
}

// histogramJSON is a Histogram's wire form: trailing zero buckets are
// trimmed on encode and restored on decode, with Bound preserving the
// configured bucket range so a round trip is lossless.
type histogramJSON struct {
	Bound    int      `json:"bound"`
	Buckets  []uint64 `json:"buckets"`
	Overflow uint64   `json:"overflow,omitempty"`
	Count    uint64   `json:"count"`
	Sum      uint64   `json:"sum"`
	Max      int      `json:"max"`
}

// MarshalJSON encodes the full histogram state; it exists so results that
// embed a Histogram (pipeline.Result.OperandGap) survive a JSON round
// trip, which the serve layer's content-addressed result cache relies on.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	buckets := h.buckets
	for len(buckets) > 0 && buckets[len(buckets)-1] == 0 {
		buckets = buckets[:len(buckets)-1]
	}
	return json.Marshal(histogramJSON{
		Bound:    len(h.buckets),
		Buckets:  buckets,
		Overflow: h.overflow,
		Count:    h.count,
		Sum:      h.sum,
		Max:      h.max,
	})
}

// UnmarshalJSON restores a histogram encoded by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	bound := w.Bound
	if bound < len(w.Buckets) {
		bound = len(w.Buckets)
	}
	if bound < 1 {
		bound = 1
	}
	h.buckets = make([]uint64, bound)
	copy(h.buckets, w.Buckets)
	h.overflow = w.Overflow
	h.count = w.Count
	h.sum = w.Sum
	h.max = w.Max
	return nil
}

// String renders a compact summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.2f max=%d overflow=%d}", h.count, h.Mean(), h.max, h.overflow)
}

// Speedup returns new/old as a ratio, guarding against a zero baseline.
func Speedup(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return improved / baseline
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative entries are skipped. Returns 0 for an empty input.
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Table formats aligned rows for terminal output: the first row is treated
// as a header. It is used by the experiment harness to print figure data.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order; used for deterministic
// reporting of per-benchmark results.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
