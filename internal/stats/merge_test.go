package stats

import (
	"bytes"
	"math/rand"
	"testing"

	"loosesim/internal/snap"
)

// fill populates a fresh histogram from a sample slice.
func fill(bound int, samples []int) *Histogram {
	h := NewHistogram(bound)
	for _, v := range samples {
		h.Add(v)
	}
	return h
}

// equalHist compares two histograms through their byte-stable encoding —
// exactly the equality the checkpoint layer relies on.
func equalHist(a, b *Histogram) bool {
	var wa, wb snap.Writer
	a.Snapshot(&wa)
	b.Snapshot(&wb)
	return bytes.Equal(wa.Bytes(), wb.Bytes())
}

// TestMergeMatchesDirect: merging window histograms must equal one
// histogram fed every sample directly.
func TestMergeMatchesDirect(t *testing.T) {
	cases := []struct {
		name    string
		bound   int
		windows [][]int
	}{
		{"two-windows", 8, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}},
		{"with-overflow", 4, [][]int{{0, 9, 2}, {11, 1, 300}}},
		{"empty-window", 6, [][]int{{1, 2}, {}, {3}}},
		{"clamped-negatives", 6, [][]int{{-5, 0}, {-1, 2}}},
		{"single", 16, [][]int{{7, 7, 7, 15, 16}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			direct := NewHistogram(tc.bound)
			merged := NewHistogram(tc.bound)
			for _, win := range tc.windows {
				for _, v := range win {
					direct.Add(v)
				}
				merged.Merge(fill(tc.bound, win))
			}
			if !equalHist(direct, merged) {
				t.Fatalf("merged %v != direct %v", merged, direct)
			}
		})
	}
}

// TestMergeAssociativeCommutative: (a+b)+c == a+(b+c) and a+b == b+a,
// including across histograms built with different bounds.
func TestMergeAssociativeCommutative(t *testing.T) {
	cases := []struct {
		name    string
		bounds  [3]int
		streams [3][]int
	}{
		{"same-bound", [3]int{8, 8, 8}, [3][]int{{0, 1, 2}, {3, 4}, {5, 6, 7, 9}}},
		{"mixed-bounds", [3]int{4, 8, 16}, [3][]int{{1, 5, 9}, {2, 6, 10}, {3, 7, 20}}},
		{"overflow-heavy", [3]int{2, 3, 4}, [3][]int{{10, 11}, {12}, {0, 1, 13}}},
		{"with-empty", [3]int{8, 8, 8}, [3][]int{{}, {1, 2}, {}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(i int) *Histogram { return fill(tc.bounds[i], tc.streams[i]) }

			// Associativity: ((a+b)+c) vs (a+(b+c)).
			left := mk(0)
			left.Merge(mk(1))
			left.Merge(mk(2))
			bc := mk(1)
			bc.Merge(mk(2))
			right := mk(0)
			right.Merge(bc)
			if !equalHist(left, right) {
				t.Fatalf("associativity: %v != %v", left, right)
			}

			// Commutativity needs a common accumulator shape, since the
			// receiver's bound grows to cover the widest operand: start both
			// orders from the same empty histogram.
			ab := NewHistogram(1)
			ab.Merge(mk(0))
			ab.Merge(mk(1))
			ba := NewHistogram(1)
			ba.Merge(mk(1))
			ba.Merge(mk(0))
			if !equalHist(ab, ba) {
				t.Fatalf("commutativity: %v != %v", ab, ba)
			}
		})
	}
}

// TestMergeOverflowPreserved: samples that overflowed a window histogram
// stay in the overflow bucket after merging — they are never reassigned
// into buckets the accumulator happens to have, and count/sum/max carry
// through exactly.
func TestMergeOverflowPreserved(t *testing.T) {
	narrow := fill(4, []int{1, 9, 12}) // 9 and 12 overflow bound 4
	wide := NewHistogram(32)
	wide.Merge(narrow)
	if got := wide.Overflow(); got != 2 {
		t.Fatalf("overflow after merge = %d, want 2", got)
	}
	if wide.Bucket(9) != 0 || wide.Bucket(12) != 0 {
		t.Fatal("overflowed samples were reassigned to in-range buckets")
	}
	if wide.Count() != 3 || wide.Max() != 12 {
		t.Fatalf("count=%d max=%d, want 3/12", wide.Count(), wide.Max())
	}
	if got, want := wide.Mean(), (1.0+9+12)/3; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

// TestMergeNilAndSelfZero: nil operand is a no-op; merging an empty
// histogram changes nothing but (possibly) the bucket range.
func TestMergeNilAndSelfZero(t *testing.T) {
	h := fill(8, []int{1, 2, 3})
	before := fill(8, []int{1, 2, 3})
	h.Merge(nil)
	h.Merge(NewHistogram(8))
	if !equalHist(h, before) {
		t.Fatalf("no-op merges changed state: %v -> %v", before, h)
	}
}

// TestMergeRandomizedAgainstDirect: property check on seeded random
// streams split into random windows.
func TestMergeRandomizedAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		bound := 1 + rng.Intn(20)
		direct := NewHistogram(bound)
		acc := NewHistogram(bound)
		minBound := bound
		for w := 0; w < 1+rng.Intn(6); w++ {
			wb := 1 + rng.Intn(30)
			if wb < minBound {
				minBound = wb
			}
			win := NewHistogram(wb)
			for i := 0; i < rng.Intn(40); i++ {
				v := rng.Intn(40) - 2
				direct.Add(v)
				win.Add(v)
			}
			acc.Merge(win)
		}
		if acc.Count() != direct.Count() || acc.Max() != direct.Max() {
			t.Fatalf("trial %d: count/max diverged", trial)
		}
		if acc.Mean() != direct.Mean() {
			t.Fatalf("trial %d: mean diverged", trial)
		}
		// Below every operand's bound no sample can have overflowed, so
		// the buckets must agree exactly; above that, bucket-vs-overflow
		// placement legitimately depends on each window's own bound.
		for v := 0; v < minBound; v++ {
			if acc.Bucket(v) != direct.Bucket(v) {
				t.Fatalf("trial %d: bucket %d: merged %d != direct %d",
					trial, v, acc.Bucket(v), direct.Bucket(v))
			}
		}
	}
}

// TestHistogramSnapshotRoundTrip: snap encode/decode is lossless and
// byte-stable, and corrupt bytes error instead of panicking.
func TestHistogramSnapshotRoundTrip(t *testing.T) {
	h := fill(6, []int{0, 1, 1, 5, 9, 42})
	var w snap.Writer
	h.Snapshot(&w)

	var got Histogram
	r := snap.NewReader(w.Bytes())
	got.Restore(r)
	if err := r.Expect(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !equalHist(h, &got) {
		t.Fatalf("round trip: %v != %v", &got, h)
	}

	// Truncations must error cleanly.
	for cut := 0; cut < len(w.Bytes()); cut += 3 {
		var bad Histogram
		r := snap.NewReader(w.Bytes()[:cut])
		bad.Restore(r)
		if r.Err() == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}

	// A negative max is semantically invalid.
	var wneg snap.Writer
	wneg.U64s([]uint64{1})
	wneg.U64(0)
	wneg.U64(1)
	wneg.U64(0)
	wneg.Int(-3)
	var bad Histogram
	rneg := snap.NewReader(wneg.Bytes())
	bad.Restore(rneg)
	if rneg.Err() == nil {
		t.Fatal("negative max accepted")
	}
}
