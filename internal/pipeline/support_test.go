package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loosesim/internal/isa"
	"loosesim/internal/uop"
)

func mkU(seq uint64) *uop.UOp { return uop.New(isa.Inst{Op: isa.IntALU}, 0, seq, 0) }

func TestDequeFIFO(t *testing.T) {
	var d deque
	for i := uint64(1); i <= 5; i++ {
		d.push(mkU(i))
	}
	if d.len() != 5 {
		t.Fatalf("len = %d, want 5", d.len())
	}
	if d.front().Seq != 1 {
		t.Errorf("front seq = %d, want 1", d.front().Seq)
	}
	if got := d.popFront(); got.Seq != 1 {
		t.Errorf("pop seq = %d, want 1", got.Seq)
	}
	if d.at(0).Seq != 2 || d.at(3).Seq != 5 {
		t.Error("relative indexing broken after pop")
	}
}

func TestDequeTruncFrom(t *testing.T) {
	var d deque
	for i := uint64(1); i <= 6; i++ {
		d.push(mkU(i))
	}
	d.popFront()
	d.truncFrom(2) // keep seqs 2,3
	if d.len() != 2 || d.at(0).Seq != 2 || d.at(1).Seq != 3 {
		t.Fatalf("truncFrom wrong: len=%d", d.len())
	}
	d.truncFrom(0)
	if d.len() != 0 || d.front() != nil {
		t.Error("empty deque front must be nil")
	}
}

func TestDequeCompaction(t *testing.T) {
	var d deque
	for i := uint64(0); i < 20000; i++ {
		d.push(mkU(i))
		if i >= 4 {
			d.popFront()
		}
	}
	if d.len() != 4 {
		t.Fatalf("len = %d, want 4", d.len())
	}
	if d.head > 8192 {
		t.Errorf("head = %d; compaction never ran", d.head)
	}
	if d.front().Seq != 20000-4 {
		t.Errorf("front seq wrong after compaction: %d", d.front().Seq)
	}
}

// Property: a deque behaves as a FIFO with tail truncation under arbitrary
// operation sequences (model-checked against a slice).
func TestDequeModelProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var d deque
		var model []*uop.UOp
		seq := uint64(0)
		for i := 0; i < int(steps); i++ {
			switch rng.Intn(3) {
			case 0:
				seq++
				u := mkU(seq)
				d.push(u)
				model = append(model, u)
			case 1:
				if len(model) > 0 {
					if d.popFront() != model[0] {
						return false
					}
					model = model[1:]
				}
			default:
				if len(model) > 0 {
					k := rng.Intn(len(model) + 1)
					d.truncFrom(k)
					model = model[:k]
				}
			}
			if d.len() != len(model) {
				return false
			}
			for j := range model {
				if d.at(j) != model[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEventRing(t *testing.T) {
	var r eventRing
	u := mkU(1)
	r.schedule(10, event{u: u, tag: 1})
	r.schedule(10, event{u: u, tag: 2})
	r.schedule(11, event{u: u, tag: 3})
	evs := r.take(10)
	if len(evs) != 2 || evs[0].tag != 1 || evs[1].tag != 2 {
		t.Fatalf("take(10) = %v", evs)
	}
	if len(r.take(10)) != 0 {
		t.Error("slot must be empty after take")
	}
	if len(r.take(11)) != 1 {
		t.Error("cycle 11 event lost")
	}
	// Slot reuse at +ringSize.
	r.schedule(10+ringSize, event{u: u, tag: 9})
	if evs := r.take(10 + ringSize); len(evs) != 1 || evs[0].tag != 9 {
		t.Error("ring wrap-around broken")
	}
}
