package pipeline

import (
	"fmt"

	"loosesim/internal/stats"
)

// Counters holds raw event counts. The machine snapshots it at the end of
// warmup and subtracts, so a Result reflects the measurement window only.
type Counters struct {
	Cycles  int64
	Retired uint64

	// Fetch / front end.
	Fetched        uint64
	WrongPathFetch uint64
	BTBBubbles     uint64
	RenameStallIQ  uint64 // cycles the rename head stalled on a full IQ
	FrontStalls    uint64 // cycles the front end stalled for DRA recovery

	// Branch resolution loop.
	Branches        uint64
	Mispredicts     uint64
	SquashedTotal   uint64 // instructions killed by branch/trap recovery
	SquashedIssued  uint64 // of those, how many had already issued
	BranchResLatSum uint64 // fetch->resolve latency sum over mispredicts

	// Load resolution loop.
	Loads          uint64
	L1Misses       uint64
	L2Misses       uint64
	BankConflicts  uint64
	LoadMisspecs   uint64 // loads whose hit speculation failed
	DataReissues   uint64 // instructions reissued after consuming unready data
	LoadRefetches  uint64 // refetch-policy recoveries
	TLBMissTraps   uint64
	MemOrderTraps  uint64 // load/store reorder traps (memory dep. loop)
	StoreForwards  uint64 // loads satisfied from the store queue
	IssuedTotal    uint64 // issue slots consumed (incl. reissues, wrong path)
	ExecutedUseful uint64 // correct-path successful executions

	// Operand resolution loop (DRA).
	OperandsRead     uint64 // classified source operands (correct path)
	OperandPreRead   uint64
	OperandForwarded uint64
	OperandCRC       uint64
	OperandMisses    uint64
	OperandReissues  uint64 // instructions reissued due to an operand miss
}

// sub returns c - base, field by field.
func (c Counters) sub(base Counters) Counters {
	return Counters{
		Cycles:  c.Cycles - base.Cycles,
		Retired: c.Retired - base.Retired,

		Fetched:        c.Fetched - base.Fetched,
		WrongPathFetch: c.WrongPathFetch - base.WrongPathFetch,
		BTBBubbles:     c.BTBBubbles - base.BTBBubbles,
		RenameStallIQ:  c.RenameStallIQ - base.RenameStallIQ,
		FrontStalls:    c.FrontStalls - base.FrontStalls,

		Branches:        c.Branches - base.Branches,
		Mispredicts:     c.Mispredicts - base.Mispredicts,
		SquashedTotal:   c.SquashedTotal - base.SquashedTotal,
		SquashedIssued:  c.SquashedIssued - base.SquashedIssued,
		BranchResLatSum: c.BranchResLatSum - base.BranchResLatSum,

		Loads:          c.Loads - base.Loads,
		L1Misses:       c.L1Misses - base.L1Misses,
		L2Misses:       c.L2Misses - base.L2Misses,
		BankConflicts:  c.BankConflicts - base.BankConflicts,
		LoadMisspecs:   c.LoadMisspecs - base.LoadMisspecs,
		DataReissues:   c.DataReissues - base.DataReissues,
		LoadRefetches:  c.LoadRefetches - base.LoadRefetches,
		TLBMissTraps:   c.TLBMissTraps - base.TLBMissTraps,
		MemOrderTraps:  c.MemOrderTraps - base.MemOrderTraps,
		StoreForwards:  c.StoreForwards - base.StoreForwards,
		IssuedTotal:    c.IssuedTotal - base.IssuedTotal,
		ExecutedUseful: c.ExecutedUseful - base.ExecutedUseful,

		OperandsRead:     c.OperandsRead - base.OperandsRead,
		OperandPreRead:   c.OperandPreRead - base.OperandPreRead,
		OperandForwarded: c.OperandForwarded - base.OperandForwarded,
		OperandCRC:       c.OperandCRC - base.OperandCRC,
		OperandMisses:    c.OperandMisses - base.OperandMisses,
		OperandReissues:  c.OperandReissues - base.OperandReissues,
	}
}

// Add returns c + o, field by field — the merge operation for combining
// per-window counters from sampled simulation (internal/sample) and for
// coordinator-side aggregation of sharded sample windows.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Cycles:  c.Cycles + o.Cycles,
		Retired: c.Retired + o.Retired,

		Fetched:        c.Fetched + o.Fetched,
		WrongPathFetch: c.WrongPathFetch + o.WrongPathFetch,
		BTBBubbles:     c.BTBBubbles + o.BTBBubbles,
		RenameStallIQ:  c.RenameStallIQ + o.RenameStallIQ,
		FrontStalls:    c.FrontStalls + o.FrontStalls,

		Branches:        c.Branches + o.Branches,
		Mispredicts:     c.Mispredicts + o.Mispredicts,
		SquashedTotal:   c.SquashedTotal + o.SquashedTotal,
		SquashedIssued:  c.SquashedIssued + o.SquashedIssued,
		BranchResLatSum: c.BranchResLatSum + o.BranchResLatSum,

		Loads:          c.Loads + o.Loads,
		L1Misses:       c.L1Misses + o.L1Misses,
		L2Misses:       c.L2Misses + o.L2Misses,
		BankConflicts:  c.BankConflicts + o.BankConflicts,
		LoadMisspecs:   c.LoadMisspecs + o.LoadMisspecs,
		DataReissues:   c.DataReissues + o.DataReissues,
		LoadRefetches:  c.LoadRefetches + o.LoadRefetches,
		TLBMissTraps:   c.TLBMissTraps + o.TLBMissTraps,
		MemOrderTraps:  c.MemOrderTraps + o.MemOrderTraps,
		StoreForwards:  c.StoreForwards + o.StoreForwards,
		IssuedTotal:    c.IssuedTotal + o.IssuedTotal,
		ExecutedUseful: c.ExecutedUseful + o.ExecutedUseful,

		OperandsRead:     c.OperandsRead + o.OperandsRead,
		OperandPreRead:   c.OperandPreRead + o.OperandPreRead,
		OperandForwarded: c.OperandForwarded + o.OperandForwarded,
		OperandCRC:       c.OperandCRC + o.OperandCRC,
		OperandMisses:    c.OperandMisses + o.OperandMisses,
		OperandReissues:  c.OperandReissues + o.OperandReissues,
	}
}

// The derived-rate helpers live on Counters (not Result) so that both the
// end-of-run Result and the observability layer's per-interval deltas
// (internal/obs) compute them identically.

// IPC returns retired correct-path instructions per cycle.
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// MispredictRate returns mispredicted / resolved correct-path branches.
func (c Counters) MispredictRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.Mispredicts) / float64(c.Branches)
}

// L1MissRate returns L1 data cache misses per correct-path load.
func (c Counters) L1MissRate() float64 {
	if c.Loads == 0 {
		return 0
	}
	return float64(c.L1Misses) / float64(c.Loads)
}

// L2MissRate returns L2 misses per correct-path load.
func (c Counters) L2MissRate() float64 {
	if c.Loads == 0 {
		return 0
	}
	return float64(c.L2Misses) / float64(c.Loads)
}

// OperandMissRate returns DRA operand misses per classified operand.
func (c Counters) OperandMissRate() float64 {
	if c.OperandsRead == 0 {
		return 0
	}
	return float64(c.OperandMisses) / float64(c.OperandsRead)
}

// OperandShare returns the Figure 9 breakdown: fractions of operands read
// via register pre-read, the forwarding buffer, the CRCs, and misses.
func (c Counters) OperandShare() (preRead, forwarded, crc, miss float64) {
	n := float64(c.OperandsRead)
	if n == 0 {
		return 0, 0, 0, 0
	}
	return float64(c.OperandPreRead) / n,
		float64(c.OperandForwarded) / n,
		float64(c.OperandCRC) / n,
		float64(c.OperandMisses) / n
}

// UselessWork returns the paper's useless-work measure: instructions
// reissued (load and operand loops) plus issued instructions squashed by
// branch/trap recovery.
func (c Counters) UselessWork() uint64 {
	return c.DataReissues + c.OperandReissues + c.SquashedIssued
}

// Result is the outcome of one simulation's measurement window.
type Result struct {
	Benchmark string
	Counters  Counters

	// TotalCycles and TotalRetired cover the whole run, warmup included
	// (Counters covers the measurement window only). The commands use
	// them for host-throughput self-profiling: simulated work per host
	// second is a whole-run quantity.
	TotalCycles  int64
	TotalRetired uint64

	// OperandGap is the Figure 6 distribution: cycles between the
	// availability of an instruction's first and second source operands.
	OperandGap *stats.Histogram

	// IQOccupancy and IQRetained are mean queue populations over the
	// measurement window (IQ-pressure data).
	IQOccupancy float64
	IQRetained  float64

	// RetiredPerThread breaks retirement down by hardware thread.
	RetiredPerThread []uint64

	// Cycles is the cycle-accounting (CPI stack) breakdown of the
	// measurement window.
	Cycles CycleStack
}

// IPC returns retired correct-path instructions per cycle.
func (r *Result) IPC() float64 { return r.Counters.IPC() }

// MispredictRate returns mispredicted / resolved correct-path branches.
func (r *Result) MispredictRate() float64 { return r.Counters.MispredictRate() }

// L1MissRate returns L1 data cache misses per correct-path load.
func (r *Result) L1MissRate() float64 { return r.Counters.L1MissRate() }

// OperandMissRate returns DRA operand misses per classified operand.
func (r *Result) OperandMissRate() float64 { return r.Counters.OperandMissRate() }

// OperandShare returns the Figure 9 breakdown: fractions of operands read
// via register pre-read, the forwarding buffer, the CRCs, and misses.
func (r *Result) OperandShare() (preRead, forwarded, crc, miss float64) {
	return r.Counters.OperandShare()
}

// UselessWork returns the paper's useless-work measure: instructions
// reissued (load and operand loops) plus issued instructions squashed by
// branch/trap recovery.
func (r *Result) UselessWork() uint64 { return r.Counters.UselessWork() }

// String summarises the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s: IPC=%.3f cycles=%d retired=%d bmiss=%.2f%% l1miss=%.2f%% opmiss=%.3f%%",
		r.Benchmark, r.IPC(), r.Counters.Cycles, r.Counters.Retired,
		100*r.MispredictRate(), 100*r.L1MissRate(), 100*r.OperandMissRate())
}
