package pipeline

import (
	"fmt"

	"loosesim/internal/uop"
)

// CycleStack is a cycle-accounting breakdown (a CPI stack): every cycle of
// the measurement window is attributed to one bucket. Cycles that retire at
// least one instruction are progress; a cycle that retires nothing is
// charged according to what the oldest in-flight instruction was doing,
// which names the loop or resource responsible for the stall.
type CycleStack struct {
	// Retiring cycles committed at least one instruction.
	Retiring int64
	// FrontEnd cycles had an empty window head: fetch was refilling after
	// a branch mispredict, trap, or refetch — the fetch-recovery loops.
	FrontEnd int64
	// Decode cycles were headed by an instruction still in the DEC-IQ
	// pipe (rename backpressure or a just-refilled pipe).
	Decode int64
	// IQWait cycles were headed by an instruction waiting in the IQ for
	// operands or ordering (dependence chains, load waits).
	IQWait int64
	// MemExec cycles were headed by an executing load waiting on the
	// memory hierarchy.
	MemExec int64
	// Exec cycles were headed by a non-load instruction in execution.
	Exec int64
}

// Total returns the cycles accounted.
func (s CycleStack) Total() int64 {
	return s.Retiring + s.FrontEnd + s.Decode + s.IQWait + s.MemExec + s.Exec
}

// Fractions returns each bucket as a fraction of the total.
func (s CycleStack) Fractions() (retiring, frontEnd, decode, iqWait, memExec, exec float64) {
	t := float64(s.Total())
	if t == 0 {
		return 0, 0, 0, 0, 0, 0
	}
	return float64(s.Retiring) / t, float64(s.FrontEnd) / t, float64(s.Decode) / t,
		float64(s.IQWait) / t, float64(s.MemExec) / t, float64(s.Exec) / t
}

// String renders the stack as percentages.
func (s CycleStack) String() string {
	r, f, d, q, m, e := s.Fractions()
	return fmt.Sprintf("retiring %.1f%%, front-end %.1f%%, decode %.1f%%, iq-wait %.1f%%, memory %.1f%%, exec %.1f%%",
		100*r, 100*f, 100*d, 100*q, 100*m, 100*e)
}

// sub returns s - base, field by field.
func (s CycleStack) sub(base CycleStack) CycleStack {
	return CycleStack{
		Retiring: s.Retiring - base.Retiring,
		FrontEnd: s.FrontEnd - base.FrontEnd,
		Decode:   s.Decode - base.Decode,
		IQWait:   s.IQWait - base.IQWait,
		MemExec:  s.MemExec - base.MemExec,
		Exec:     s.Exec - base.Exec,
	}
}

// Add returns s + o, field by field — the merge operation for combining
// per-window cycle stacks from sampled simulation.
func (s CycleStack) Add(o CycleStack) CycleStack {
	return CycleStack{
		Retiring: s.Retiring + o.Retiring,
		FrontEnd: s.FrontEnd + o.FrontEnd,
		Decode:   s.Decode + o.Decode,
		IQWait:   s.IQWait + o.IQWait,
		MemExec:  s.MemExec + o.MemExec,
		Exec:     s.Exec + o.Exec,
	}
}

// attributeCycle charges the just-finished cycle to a bucket. retired is
// the number of instructions committed this cycle.
func (m *Machine) attributeCycle(retired int) {
	if retired > 0 {
		m.stack.Retiring++
		return
	}
	// Find the oldest in-flight instruction across threads.
	var head *uop.UOp
	for _, t := range m.threads {
		if u := t.window.front(); u != nil && (head == nil || u.Seq < head.Seq) {
			head = u
		}
	}
	switch {
	case head == nil:
		m.stack.FrontEnd++
	case head.State == uop.StateDecode:
		m.stack.Decode++
	case head.State == uop.StateWaiting:
		m.stack.IQWait++
	case head.IsLoad() && head.ExecCycle != uop.NoCycle:
		m.stack.MemExec++
	default:
		m.stack.Exec++
	}
}
