package pipeline

import (
	"bytes"
	"context"
	"testing"

	"loosesim/internal/workload"
)

// fuzzCfg is the fixed machine the fuzzer restores against. It must stay
// byte-for-byte stable across runs or the committed corpus goes stale:
// the seed snapshots in testdata/fuzz were taken under exactly this
// config (see corpus_gen_test.go to regenerate them).
func fuzzCfg() (Config, error) {
	wl, err := workload.ByName("gcc")
	if err != nil {
		return Config{}, err
	}
	cfg := DefaultConfig(wl)
	cfg.WarmupInstructions = 1_000
	cfg.MeasureInstructions = 3_000
	// Tiny caches and tables keep the seed snapshots small enough to
	// commit — the codec walks the same encode/decode paths regardless of
	// array sizes.
	cfg.Mem.L1.SizeBytes = 4 << 10
	cfg.Mem.L2.SizeBytes = 16 << 10
	cfg.Mem.L2.Ways = 4
	cfg.BTBEntries = 64
	cfg.StoreWaitSize = 64
	cfg.MaxInFlight = 32
	cfg.IQEntries = 32
	cfg.NumPhysRegs = 128
	return cfg, nil
}

// FuzzSnapshotRoundTrip fuzzes the snapshot codec's decode path with
// arbitrary bytes. The contract: Restore either errors — it must never
// panic, whatever the input — or accepts, in which case re-encoding the
// restored machine must reproduce the input exactly (decode(encode(s)) ==
// s, and no second preimage sneaks past the checksum).
func FuzzSnapshotRoundTrip(f *testing.F) {
	cfg, err := fuzzCfg()
	if err != nil {
		f.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	fresh, err := m.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fresh)
	if err := m.RunUntilRetired(context.Background(), 2_000); err != nil {
		f.Fatal(err)
	}
	mid, err := m.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mid)
	// Structured near-misses: a flipped payload byte, a torn tail, a bare
	// header — the shapes a broken cache or torn write would produce.
	mut := bytes.Clone(mid)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut)
	f.Add(mid[:len(mid)/3])
	f.Add([]byte("LOOMACH\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Restore(cfg, data)
		if err != nil {
			return // rejected; the harness itself catches any panic
		}
		again, err := m.Snapshot()
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("decode(encode) is not the identity: %d bytes in, %d bytes out", len(data), len(again))
		}
	})
}
