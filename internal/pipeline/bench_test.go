package pipeline

import (
	"testing"

	"loosesim/internal/workload"
)

// BenchmarkMachine measures the simulation hot path end to end: one
// iteration is one full warmup+measurement run of the base machine. The
// -benchmem allocs/op figure is the hotalloc analyzer's ground truth — the
// per-cycle path must not regress (see scripts/check.sh and ISSUE 3's
// acceptance criteria).
func BenchmarkMachine(b *testing.B) {
	wl, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(wl)
	cfg.WarmupInstructions = 5_000
	cfg.MeasureInstructions = 30_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run()
		if res.Counters.Retired == 0 {
			b.Fatal("no instructions retired")
		}
	}
}

// BenchmarkMachineDRA is the same run with the DRA enabled, covering the
// operandsDelivered hot path.
func BenchmarkMachineDRA(b *testing.B) {
	wl, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DRAConfigRF(wl, 3)
	cfg.WarmupInstructions = 5_000
	cfg.MeasureInstructions = 30_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run()
		if res.Counters.Retired == 0 {
			b.Fatal("no instructions retired")
		}
	}
}
