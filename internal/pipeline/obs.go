package pipeline

import (
	"loosesim/internal/obs"
	"loosesim/internal/uop"
)

// Observability instrumentation. Every loose-loop traversal flows through
// one of the note* helpers below: the helper performs the counter update
// the machine has always done and, when an event sink is attached, emits
// one structured obs.Event describing the traversal. The nil-sink check is
// the entire cost when observability is off, and no helper reads anything
// back from a sink — the layer is passive by construction, which
// TestObservabilityDoesNotPerturb enforces.

// emitEvent sends one loop event to the configured sink.
func (m *Machine) emitEvent(kind obs.EventKind, u *uop.UOp, delay int64) {
	if m.evSink == nil {
		return
	}
	m.evSink.Event(obs.Event{
		Cycle:  m.cycle,
		Kind:   kind,
		Thread: u.Thread,
		Seq:    u.Seq,
		PC:     u.Inst.PC,
		Delay:  delay,
	})
}

// noteMispredict records one branch resolution loop recovery; the event's
// delay is the branch's measured fetch→resolve latency, the same quantity
// BranchResLatSum accumulates.
func (m *Machine) noteMispredict(u *uop.UOp) {
	d := m.cycle - u.FetchCycle
	m.ctr.Mispredicts++
	m.ctr.BranchResLatSum += uint64(d)
	m.emitEvent(obs.EvBranchMispredict, u, d)
}

// noteLoadMisspec records a failed load-hit speculation; the delay is the
// remaining time until the data actually returns.
func (m *Machine) noteLoadMisspec(u *uop.UOp) {
	m.ctr.LoadMisspecs++
	m.emitEvent(obs.EvLoadMisspec, u, u.DataReady-m.cycle)
}

// noteDataReissue records an instruction reverting to waiting after
// consuming data inside a producer's mis-speculation shadow.
func (m *Machine) noteDataReissue(u *uop.UOp) {
	m.ctr.DataReissues++
	m.emitEvent(obs.EvDataReissue, u, int64(m.cfg.FeedbackDelay))
}

// noteLoadRefetch records a refetch-policy load recovery. Like the counter
// it wraps, it fires for wrong-path loads too: the flush really happens.
func (m *Machine) noteLoadRefetch(u *uop.UOp) {
	m.ctr.LoadRefetches++
	m.emitEvent(obs.EvLoadRefetch, u, int64(m.cfg.FeedbackDelay))
}

// noteMemOrderTrap records a load/store reorder trap against the
// violating load.
func (m *Machine) noteMemOrderTrap(victim *uop.UOp) {
	m.ctr.MemOrderTraps++
	m.emitEvent(obs.EvMemOrderTrap, victim, int64(m.cfg.FeedbackDelay))
}

// noteTLBTrap records a data-TLB miss trap; the delay is the TLB refill
// the load pays on top of the fetch-stage recovery.
func (m *Machine) noteTLBTrap(u *uop.UOp) {
	m.ctr.TLBMissTraps++
	m.emitEvent(obs.EvTLBTrap, u, int64(m.cfg.TLBRefill))
}

// noteOperandMiss records one DRA operand-delivery miss (per operand).
func (m *Machine) noteOperandMiss(u *uop.UOp) {
	m.ctr.OperandMisses++
	m.emitEvent(obs.EvOperandMiss, u, 0)
}

// noteOperandReissue records an operand resolution loop recovery: the
// instruction reissues after the feedback delay plus the register read.
func (m *Machine) noteOperandReissue(u *uop.UOp, delay int64) {
	m.ctr.OperandReissues++
	m.emitEvent(obs.EvOperandReissue, u, delay)
}

// noteFrontStall records a front-end stall installed for a DRA operand
// recovery; delay is the number of cycles the stall extends the previous
// one by. (The FrontStalls counter itself counts stalled cycles and keeps
// accumulating in rename.)
func (m *Machine) noteFrontStall(u *uop.UOp, delay int64) {
	m.emitEvent(obs.EvFrontStall, u, delay)
}

// sampleInterval accumulates the per-cycle state the interval probe needs
// and emits a record each time the period elapses. Called once per cycle,
// only when an interval sink is configured.
func (m *Machine) sampleInterval() {
	m.ivOcc += uint64(m.q.Len())
	if m.cycle-m.ivStart >= m.sampleEvery {
		m.emitInterval()
	}
}

// emitInterval closes the open interval: the counter delta since the last
// snapshot becomes one obs.Interval with its derived rates.
func (m *Machine) emitInterval() {
	if m.ivSink == nil {
		return
	}
	d := m.ctr.sub(m.ivSnap)
	pr, fw, crc, miss := d.OperandShare()
	iv := obs.Interval{
		Index:      m.ivIndex,
		StartCycle: m.ivStart,
		EndCycle:   m.cycle,

		Retired: d.Retired,
		IPC:     d.IPC(),

		Branches:       d.Branches,
		Mispredicts:    d.Mispredicts,
		MispredictRate: d.MispredictRate(),

		Loads:      d.Loads,
		L1Misses:   d.L1Misses,
		L2Misses:   d.L2Misses,
		L1MissRate: d.L1MissRate(),
		L2MissRate: d.L2MissRate(),

		OperandsRead:     d.OperandsRead,
		OperandPreRead:   d.OperandPreRead,
		OperandForwarded: d.OperandForwarded,
		OperandCRC:       d.OperandCRC,
		OperandMisses:    d.OperandMisses,
		PreReadShare:     pr,
		ForwardShare:     fw,
		CRCShare:         crc,
		MissShare:        miss,

		OperandReissues: d.OperandReissues,
		DataReissues:    d.DataReissues,
		SquashedIssued:  d.SquashedIssued,
		UselessWork:     d.UselessWork(),
	}
	if cycles := d.Cycles; cycles > 0 {
		iv.IQOccupancy = float64(m.ivOcc) / float64(cycles)
	}
	m.ivSink.Interval(iv)
	m.ivIndex++
	m.ivStart = m.cycle
	m.ivSnap = m.ctr
	m.ivOcc = 0
}
