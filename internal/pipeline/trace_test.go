package pipeline

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestTracerEmitsRetirementRecords(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(t, "m88")
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 5_000
	cfg.Tracer = NewTracer(&buf, 1000)
	run(t, cfg)

	if cfg.Tracer.Err() != nil {
		t.Fatalf("tracer error: %v", cfg.Tracer.Err())
	}
	if cfg.Tracer.Count() != 1000 {
		t.Fatalf("tracer emitted %d records, want 1000", cfg.Tracer.Count())
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "# seq") {
		t.Fatal("missing header")
	}
	lines := 0
	lastRetire := int64(-1)
	for sc.Scan() {
		lines++
		f := strings.Fields(sc.Text())
		if len(f) != 13 {
			t.Fatalf("record has %d fields: %q", len(f), sc.Text())
		}
		fetch, _ := strconv.ParseInt(f[4], 10, 64)
		issue, _ := strconv.ParseInt(f[6], 10, 64)
		exec, _ := strconv.ParseInt(f[7], 10, 64)
		complete, _ := strconv.ParseInt(f[8], 10, 64)
		retire, _ := strconv.ParseInt(f[9], 10, 64)
		if !(fetch <= issue && issue < exec && exec < complete && complete <= retire) {
			t.Fatalf("non-monotonic stage times: %q", sc.Text())
		}
		if retire < lastRetire {
			t.Fatalf("retirement order violated: %d after %d", retire, lastRetire)
		}
		lastRetire = retire
	}
	if lines != 1000 {
		t.Fatalf("trace has %d records, want 1000", lines)
	}
}

func TestTracerUnlimited(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 0)
	cfg := quickCfg(t, "m88")
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 2_000
	cfg.Tracer = tr
	run(t, cfg)
	if tr.Count() < 2_000 {
		t.Errorf("unlimited tracer recorded %d, want >= 2000", tr.Count())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, bytes.ErrTooLarge }

func TestTracerLatchesError(t *testing.T) {
	tr := NewTracer(failWriter{}, 10)
	if tr.Err() == nil {
		t.Fatal("header write error must latch")
	}
}

// failAfterWriter accepts the first n writes and fails every later one —
// the mid-run disk-full case.
type failAfterWriter struct {
	n int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	w.n--
	return len(p), nil
}

func TestTracerLatchesMidRunError(t *testing.T) {
	// Header plus two records succeed; the third record's write fails.
	// The contract (see NewTracer): the run completes untraced from there,
	// later records are dropped, and Err reports the first failure.
	w := &failAfterWriter{n: 3}
	tr := NewTracer(w, 0)
	if tr.Err() != nil {
		t.Fatalf("premature error: %v", tr.Err())
	}
	cfg := quickCfg(t, "m88")
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 2_000
	cfg.Tracer = tr
	res := run(t, cfg) // must not panic or abort
	if res.Counters.Retired < cfg.MeasureInstructions {
		t.Fatal("a failing tracer must not stop the simulation")
	}
	if tr.Err() == nil {
		t.Fatal("record write error must latch")
	}
	if tr.Count() != 3 {
		t.Errorf("tracer counted %d records, want 3 (two written + the failed attempt)", tr.Count())
	}
}
