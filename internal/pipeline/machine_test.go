package pipeline

import (
	"bytes"
	"math"
	"testing"

	"loosesim/internal/obs"
	"loosesim/internal/workload"
)

// quickCfg returns a short-run configuration for the named benchmark.
func quickCfg(t *testing.T, bench string) Config {
	t.Helper()
	wl, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(wl)
	cfg.WarmupInstructions = 20_000
	cfg.MeasureInstructions = 40_000
	return cfg
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func TestConfigValidation(t *testing.T) {
	wl, _ := workload.ByName("gcc")
	cases := []func(*Config){
		func(c *Config) { c.Workload.Threads = nil },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.IQEntries = 0 },
		func(c *Config) { c.DecIQLat = 0 },
		func(c *Config) { c.IQExLat = -1 },
		func(c *Config) { c.NumPhysRegs = 100 },
		func(c *Config) { c.MeasureInstructions = 0 },
		func(c *Config) { c.UseDRA = true; c.DRA.Clusters = 4 },
		func(c *Config) { c.IQEvictDelay = -1 },
		func(c *Config) { c.StoreForwardLat = -1 },
		func(c *Config) { c.TLBRefill = -1 },
		func(c *Config) { c.BTBMissBubble = -1 },
		func(c *Config) { c.LoadPolicy = LoadRecovery(9) },
		func(c *Config) { c.MemDep = MemDepPolicy(9) },
		func(c *Config) { c.StoreWaitSize = 3000 },
		func(c *Config) { c.StoreWaitClear = 0 },
		func(c *Config) { c.Predictor = PredictorKind("bogus") },
		func(c *Config) { c.BTBEntries = 1000 },
		func(c *Config) { c.Mem.L1.LineBytes = 48 },
		func(c *Config) { c.UseDRA = true; c.DRA.CounterBits = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig(wl)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected a configuration error", i)
		}
	}
}

func TestRunRetiresExactBudget(t *testing.T) {
	cfg := quickCfg(t, "gcc")
	res := run(t, cfg)
	// Retirement happens up to RetireWidth per cycle, so the run may
	// overshoot by at most a retire group.
	if res.Counters.Retired < cfg.MeasureInstructions ||
		res.Counters.Retired >= cfg.MeasureInstructions+uint64(cfg.RetireWidth) {
		t.Errorf("retired %d, want [%d, %d)", res.Counters.Retired,
			cfg.MeasureInstructions, cfg.MeasureInstructions+uint64(cfg.RetireWidth))
	}
	if res.Counters.Cycles <= 0 {
		t.Error("no cycles recorded")
	}
	if ipc := res.IPC(); ipc <= 0.1 || ipc > 8 {
		t.Errorf("IPC %v outside sane bounds (0.1, 8]", ipc)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickCfg(t, "comp")
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Counters != b.Counters {
		t.Errorf("same config diverged:\n%+v\n%+v", a.Counters, b.Counters)
	}

	// Same config with sampler and event stream enabled: the Counters must
	// be byte-identical to the unprobed run, and two probed runs must
	// produce byte-identical observability streams.
	probed := func() (*Result, string, string) {
		var evBuf, ivBuf bytes.Buffer
		c := cfg
		events := obs.NewRingWriter(&evBuf, 0)
		intervals := obs.NewIntervalCSV(&ivBuf)
		c.Events = events
		c.Intervals = intervals
		c.SampleInterval = 2_500
		res := run(t, c)
		if err := events.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := intervals.Err(); err != nil {
			t.Fatal(err)
		}
		return res, evBuf.String(), ivBuf.String()
	}
	p1, ev1, iv1 := probed()
	p2, ev2, iv2 := probed()
	if a.Counters != p1.Counters {
		t.Errorf("observability perturbed the run:\n%+v\n%+v", a.Counters, p1.Counters)
	}
	if p1.Counters != p2.Counters {
		t.Errorf("probed runs diverged:\n%+v\n%+v", p1.Counters, p2.Counters)
	}
	if ev1 != ev2 {
		t.Error("event streams of identical runs differ")
	}
	if iv1 != iv2 {
		t.Error("interval streams of identical runs differ")
	}

	cfg.Seed = 99
	c := run(t, cfg)
	if a.Counters.Cycles == c.Counters.Cycles && a.Counters.Mispredicts == c.Counters.Mispredicts {
		t.Error("different seeds produced identical cycle/mispredict counts")
	}
}

func TestLoopDelayArithmetic(t *testing.T) {
	// Paper Section 2.2.2: the base machine's load resolution loop delay
	// is 8 cycles — IQ-EX (5) plus feedback (3).
	wl, _ := workload.ByName("gcc")
	cfg := DefaultConfig(wl)
	if got := cfg.IQExLat + cfg.FeedbackDelay; got != 8 {
		t.Errorf("base load loop delay = %d, want 8", got)
	}
	// Section 6: configuration arithmetic for base and DRA machines.
	for _, c := range []struct {
		rf, baseDec, baseIQ, draDec, draIQ int
	}{{3, 5, 5, 5, 3}, {5, 5, 7, 7, 3}, {7, 5, 9, 9, 3}} {
		b := BaseConfigRF(wl, c.rf)
		if b.DecIQLat != c.baseDec || b.IQExLat != c.baseIQ {
			t.Errorf("BaseConfigRF(%d) = %d_%d, want %d_%d", c.rf, b.DecIQLat, b.IQExLat, c.baseDec, c.baseIQ)
		}
		d := DRAConfigRF(wl, c.rf)
		if d.DecIQLat != c.draDec || d.IQExLat != c.draIQ {
			t.Errorf("DRAConfigRF(%d) = %d_%d, want %d_%d", c.rf, d.DecIQLat, d.IQExLat, c.draDec, c.draIQ)
		}
		if !d.UseDRA || b.UseDRA {
			t.Error("UseDRA flags wrong")
		}
	}
}

func TestLongerPipelineIsSlower(t *testing.T) {
	cfg := quickCfg(t, "gcc")
	cfg.DecIQLat, cfg.IQExLat = 3, 3
	short := run(t, cfg)
	cfg.DecIQLat, cfg.IQExLat = 9, 9
	long := run(t, cfg)
	if long.IPC() >= short.IPC() {
		t.Errorf("18-cycle pipe (%.3f) must be slower than 6-cycle (%.3f)", long.IPC(), short.IPC())
	}
	// The loss should be material for a branchy benchmark (paper: ~20%).
	if ratio := long.IPC() / short.IPC(); ratio > 0.95 {
		t.Errorf("pipeline-length loss only %.1f%%; expected well over 5%%", 100*(1-ratio))
	}
}

func TestIQExShorterBeatsDecIQShorter(t *testing.T) {
	// Figure 5's headline: for a load-bound benchmark, 9_3 beats 3_9.
	cfg := quickCfg(t, "swim")
	cfg.DecIQLat, cfg.IQExLat = 3, 9
	deep := run(t, cfg)
	cfg.DecIQLat, cfg.IQExLat = 9, 3
	shallow := run(t, cfg)
	if shallow.IPC() <= deep.IPC() {
		t.Errorf("9_3 (%.3f) must beat 3_9 (%.3f) on swim", shallow.IPC(), deep.IPC())
	}
}

func TestBranchStatsSane(t *testing.T) {
	res := run(t, quickCfg(t, "gcc"))
	c := res.Counters
	if c.Branches == 0 {
		t.Fatal("no branches resolved")
	}
	if c.Mispredicts == 0 || c.Mispredicts > c.Branches {
		t.Errorf("mispredicts %d outside (0, %d]", c.Mispredicts, c.Branches)
	}
	r := res.MispredictRate()
	if r < 0.02 || r > 0.30 {
		t.Errorf("gcc mispredict rate %.3f outside plausible band", r)
	}
	if c.SquashedTotal == 0 || c.WrongPathFetch == 0 {
		t.Error("mispredicts must cause squashes and wrong-path fetch")
	}
}

func TestLoadLoopStats(t *testing.T) {
	res := run(t, quickCfg(t, "swim"))
	c := res.Counters
	if c.Loads == 0 || c.L1Misses == 0 {
		t.Fatal("swim must have loads and L1 misses")
	}
	if c.L1Misses > c.Loads {
		t.Error("more L1 misses than loads")
	}
	if c.L2Misses > c.L1Misses {
		t.Error("more L2 misses than L1 misses")
	}
	if c.LoadMisspecs == 0 || c.DataReissues == 0 {
		t.Error("load-hit speculation must mis-speculate and reissue on swim")
	}
	// Every mis-speculation is a miss or a bank conflict.
	if c.LoadMisspecs > c.L1Misses+c.BankConflicts {
		t.Errorf("misspecs %d exceed misses+conflicts %d", c.LoadMisspecs, c.L1Misses+c.BankConflicts)
	}
}

func TestMemoryBoundInsensitiveToPipeline(t *testing.T) {
	// hydro (L2-missing) must be less pipeline-length sensitive than gcc.
	loss := func(bench string) float64 {
		cfg := quickCfg(t, bench)
		cfg.DecIQLat, cfg.IQExLat = 3, 3
		short := run(t, cfg)
		cfg.DecIQLat, cfg.IQExLat = 9, 9
		long := run(t, cfg)
		return 1 - long.IPC()/short.IPC()
	}
	if lh, lg := loss("hydro"), loss("gcc"); lh >= lg {
		t.Errorf("hydro loss %.3f should be below gcc loss %.3f", lh, lg)
	}
}

func TestLoadRecoveryPolicyOrdering(t *testing.T) {
	// Section 2.2.2: reissue > refetch, and reissue > stall, for a
	// load-miss-heavy benchmark.
	ipc := func(p LoadRecovery) float64 {
		cfg := quickCfg(t, "swim")
		cfg.LoadPolicy = p
		return run(t, cfg).IPC()
	}
	re, rf, st := ipc(LoadReissue), ipc(LoadRefetch), ipc(LoadStall)
	if re <= rf {
		t.Errorf("reissue (%.3f) must beat refetch (%.3f)", re, rf)
	}
	if re <= st {
		t.Errorf("reissue (%.3f) must beat stall (%.3f)", re, st)
	}
}

func TestTLBTrapsOnTurb3d(t *testing.T) {
	turb := run(t, quickCfg(t, "turb3d"))
	gcc := run(t, quickCfg(t, "gcc"))
	if turb.Counters.TLBMissTraps == 0 {
		t.Error("turb3d must take TLB traps")
	}
	if gcc.Counters.TLBMissTraps > turb.Counters.TLBMissTraps {
		t.Error("gcc must trap less than turb3d")
	}
}

func TestSMTRunsBothThreads(t *testing.T) {
	res := run(t, quickCfg(t, "apsi-swim"))
	if len(res.RetiredPerThread) != 2 {
		t.Fatalf("thread count = %d, want 2", len(res.RetiredPerThread))
	}
	total := res.RetiredPerThread[0] + res.RetiredPerThread[1]
	if total != res.Counters.Retired {
		t.Errorf("per-thread retired %d != total %d", total, res.Counters.Retired)
	}
	for i, r := range res.RetiredPerThread {
		if r < res.Counters.Retired/10 {
			t.Errorf("thread %d starved: %d of %d", i, r, res.Counters.Retired)
		}
	}
}

func TestSMTShieldsMisspeculation(t *testing.T) {
	// Section 3.1: multi-threaded pipeline-length impact is generally less
	// than the worst component program's.
	loss := func(bench string) float64 {
		cfg := quickCfg(t, bench)
		cfg.DecIQLat, cfg.IQExLat = 3, 3
		short := run(t, cfg)
		cfg.DecIQLat, cfg.IQExLat = 9, 9
		long := run(t, cfg)
		return 1 - long.IPC()/short.IPC()
	}
	pair := loss("go-su2cor")
	worst := math.Max(loss("go"), loss("su2cor"))
	if pair >= worst+0.03 {
		t.Errorf("SMT pair loss %.3f should not clearly exceed worst component %.3f", pair, worst)
	}
}

func TestOperandGapDistribution(t *testing.T) {
	res := run(t, quickCfg(t, "turb3d"))
	g := res.OperandGap
	if g.Count() == 0 {
		t.Fatal("no operand gaps recorded")
	}
	// Figure 6's shape: a large spike at zero (single-operand and
	// same-cycle operands), with a long tail.
	if g.Fraction(0) < 0.2 {
		t.Errorf("zero-gap fraction %.3f implausibly small", g.Fraction(0))
	}
	if g.Fraction(9) > 0.99 {
		t.Error("gap distribution has no tail beyond the forwarding depth")
	}
}

func TestIQPressureGrowsWithIQEx(t *testing.T) {
	cfg := quickCfg(t, "swim")
	cfg.IQExLat = 3
	shallow := run(t, cfg)
	cfg.IQExLat = 9
	deep := run(t, cfg)
	if deep.IQRetained <= shallow.IQRetained {
		t.Errorf("issued-retained population must grow with IQ-EX: %.1f vs %.1f",
			deep.IQRetained, shallow.IQRetained)
	}
}

func TestWrongPathDoesNotRetire(t *testing.T) {
	res := run(t, quickCfg(t, "go"))
	c := res.Counters
	if c.WrongPathFetch == 0 {
		t.Fatal("go must fetch wrong-path work")
	}
	// All retired instructions are correct-path: retired == measure budget
	// (checked elsewhere); here check useless work accounting exists.
	if res.UselessWork() == 0 {
		t.Error("useless work must be non-zero on a mispredict-heavy benchmark")
	}
}

func TestCountersSubtraction(t *testing.T) {
	a := Counters{Cycles: 100, Retired: 50, Branches: 10}
	b := Counters{Cycles: 40, Retired: 20, Branches: 4}
	d := a.sub(b)
	if d.Cycles != 60 || d.Retired != 30 || d.Branches != 6 {
		t.Errorf("sub wrong: %+v", d)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := &Result{Counters: Counters{
		Cycles: 100, Retired: 250, Branches: 10, Mispredicts: 2,
		Loads: 50, L1Misses: 5,
		OperandsRead: 200, OperandPreRead: 60, OperandForwarded: 120, OperandCRC: 18, OperandMisses: 2,
	}}
	if r.IPC() != 2.5 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.MispredictRate() != 0.2 {
		t.Errorf("mispredict rate = %v", r.MispredictRate())
	}
	if r.L1MissRate() != 0.1 {
		t.Errorf("L1 miss rate = %v", r.L1MissRate())
	}
	if r.OperandMissRate() != 0.01 {
		t.Errorf("operand miss rate = %v", r.OperandMissRate())
	}
	pr, fw, crc, miss := r.OperandShare()
	if math.Abs(pr+fw+crc+miss-1.0) > 1e-12 {
		t.Errorf("operand shares must sum to 1, got %v", pr+fw+crc+miss)
	}
	empty := &Result{}
	if empty.IPC() != 0 || empty.MispredictRate() != 0 || empty.L1MissRate() != 0 || empty.OperandMissRate() != 0 {
		t.Error("zero-division guards failed")
	}
}

func TestString(t *testing.T) {
	res := run(t, quickCfg(t, "m88"))
	if res.String() == "" {
		t.Error("empty result string")
	}
	for _, p := range []LoadRecovery{LoadReissue, LoadRefetch, LoadStall, LoadRecovery(9)} {
		if p.String() == "" {
			t.Error("empty policy string")
		}
	}
}
