package pipeline

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"loosesim/internal/snap"
	"loosesim/internal/workload"
)

// snapshotConfigs covers the machine variants with distinct snapshot
// payloads: every predictor family the dispatcher handles, DRA on and
// off, and SMT (two threads, two generators, shared IQ).
func snapshotConfigs(t *testing.T) map[string]Config {
	t.Helper()
	mk := func(bench string, mutate func(*Config)) Config {
		wl, err := workload.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(wl)
		cfg.WarmupInstructions = 5_000
		cfg.MeasureInstructions = 12_000
		if mutate != nil {
			mutate(&cfg)
		}
		return cfg
	}
	return map[string]Config{
		"base":     mk("gcc", nil),
		"gshare":   mk("m88", func(c *Config) { c.Predictor = PredGShare }),
		"bimodal":  mk("swim", func(c *Config) { c.Predictor = PredBimodal }),
		"static":   mk("comp", func(c *Config) { c.Predictor = PredStatic }),
		"smt":      mk("m88-comp", nil),
		"dra": mk("gcc", func(c *Config) {
			c.UseDRA = true
			c.Predictor = PredPerceptron
		}),
	}
}

// mustSnapshot wraps Snapshot with the test fatal path.
func mustSnapshot(t *testing.T, m *Machine) []byte {
	t.Helper()
	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSnapshotRoundTrip checks the codec identity decode(encode(state)) ==
// state by re-encoding a restored machine and comparing bytes — at the
// fresh state and mid-run with the pipeline full.
func TestSnapshotRoundTrip(t *testing.T) {
	for name, cfg := range snapshotConfigs(t) {
		t.Run(name, func(t *testing.T) {
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, stop := range []uint64{0, 7_001} {
				if err := m.RunUntilRetired(context.Background(), stop); err != nil {
					t.Fatal(err)
				}
				data := mustSnapshot(t, m)
				m2, err := Restore(cfg, data)
				if err != nil {
					t.Fatalf("restore at %d retired: %v", stop, err)
				}
				if again := mustSnapshot(t, m2); !bytes.Equal(data, again) {
					t.Fatalf("restore at %d retired re-encodes differently: %d vs %d bytes",
						stop, len(data), len(again))
				}
			}
		})
	}
}

// TestSnapshotResumeByteIdentity is the tentpole invariant: checkpoint a
// machine mid-run, restore into a fresh machine, run both to completion —
// the results and the final machine states must be byte-identical, and
// taking the snapshot must not perturb the original run.
func TestSnapshotResumeByteIdentity(t *testing.T) {
	for name, cfg := range snapshotConfigs(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()

			// Reference: an uninterrupted run.
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			refRes, err := ref.RunContext(ctx)
			if err != nil {
				t.Fatal(err)
			}
			refFinal := mustSnapshot(t, ref)

			// Checkpoint mid-warmup and mid-measurement, restore, resume.
			for _, stop := range []uint64{3_000, 9_500} {
				m, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.RunUntilRetired(ctx, stop); err != nil {
					t.Fatal(err)
				}
				ckpt := mustSnapshot(t, m)

				resumed, err := Restore(cfg, ckpt)
				if err != nil {
					t.Fatal(err)
				}
				res, err := resumed.RunContext(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, refRes) {
					t.Fatalf("stop %d: resumed result differs:\n%+v\nwant\n%+v", stop, res, refRes)
				}
				if got := mustSnapshot(t, resumed); !bytes.Equal(got, refFinal) {
					t.Fatalf("stop %d: final state differs from uninterrupted run", stop)
				}

				// The snapshotted original continues unperturbed too.
				res2, err := m.RunContext(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res2, refRes) {
					t.Fatalf("stop %d: snapshotting perturbed the original run", stop)
				}
			}
		})
	}
}

// TestSnapshotRejectsMismatchedConfig checks the config digest guards
// against restoring under a structurally different machine.
func TestSnapshotRejectsMismatchedConfig(t *testing.T) {
	cfgs := snapshotConfigs(t)
	cfg := cfgs["base"]
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilRetired(context.Background(), 2_000); err != nil {
		t.Fatal(err)
	}
	data := mustSnapshot(t, m)

	// Run-length and observability changes are compatible by design.
	compat := cfg
	compat.WarmupInstructions = 1
	compat.MeasureInstructions = 99_999
	compat.CycleBudget = 1 << 40
	if _, err := Restore(compat, data); err != nil {
		t.Fatalf("compatible config rejected: %v", err)
	}

	// Structural changes are not.
	for name, mutate := range map[string]func(*Config){
		"seed":      func(c *Config) { c.Seed ^= 1 },
		"iq":        func(c *Config) { c.IQEntries *= 2 },
		"predictor": func(c *Config) { c.Predictor = PredGShare },
		"regs":      func(c *Config) { c.NumPhysRegs += 32 },
	} {
		bad := cfg
		mutate(&bad)
		if _, err := Restore(bad, data); !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("%s: mismatched config accepted (err=%v)", name, err)
		}
	}
}

// TestSnapshotCorruptionDetected flips bytes across the container and
// checks every corruption either errors or, at minimum, never panics.
func TestSnapshotCorruptionDetected(t *testing.T) {
	cfg := snapshotConfigs(t)["base"]
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilRetired(context.Background(), 6_000); err != nil {
		t.Fatal(err)
	}
	data := mustSnapshot(t, m)

	if _, err := Restore(cfg, data[:len(data)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	step := len(data)/97 + 1
	for i := 0; i < len(data); i += step {
		mutated := bytes.Clone(data)
		mutated[i] ^= 0x41
		if _, err := Restore(cfg, mutated); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
}

// TestWarmForwardAdvancesState checks the functional-warming fast path
// moves the generators and trains caches and predictor without running
// the pipeline.
func TestWarmForwardAdvancesState(t *testing.T) {
	cfg := snapshotConfigs(t)["smt"]
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.WarmForward(50_000)
	if got := m.Warmed(); got != 50_000 {
		t.Fatalf("Warmed() = %d, want 50000", got)
	}
	if m.Cycle() != 0 || m.Retired() != 0 {
		t.Fatalf("warming ran the pipeline: cycle %d, retired %d", m.Cycle(), m.Retired())
	}

	// A warmed machine snapshots and restores like any other, and the
	// restored copy runs identically to the warmed original.
	data := mustSnapshot(t, m)
	m2, err := Restore(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resB, err := m2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("warmed-restored run differs:\n%+v\nwant\n%+v", resB, resA)
	}

	// Warming must change behaviour relative to a cold machine — that is
	// its whole point: the caches and predictor carry history forward.
	cold, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resCold, err := cold.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(resA.Counters, resCold.Counters) {
		t.Fatal("warming had no effect on a subsequent run")
	}
}

// TestRestoreReusingMatchesFresh: a donor-accelerated restore must be
// byte-identical to a from-zero restore — the donor only changes where
// generator replay starts, never what state it reaches — and the donor
// must be consumed.
func TestRestoreReusingMatchesFresh(t *testing.T) {
	cfg := snapshotConfigs(t)["smt"]
	chain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chain.WarmForward(4_000)
	early := mustSnapshot(t, chain)
	chain.WarmForward(20_000)
	late := mustSnapshot(t, chain)

	donor, err := Restore(cfg, early)
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.RunUntilRetired(context.Background(), 1_000); err != nil {
		t.Fatal(err)
	}

	fresh, err := Restore(cfg, late)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := RestoreReusing(cfg, late, donor)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustSnapshot(t, reused), mustSnapshot(t, fresh)) {
		t.Fatal("donor-accelerated restore differs from fresh restore")
	}
	resA, err := fresh.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resB, err := reused.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("runs diverge after donor restore:\n%+v\nwant\n%+v", resB, resA)
	}

	// The donor's generators were transplanted; using it again must fail
	// fast rather than silently desynchronize.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("consumed donor still usable")
			}
		}()
		donor.WarmForward(10)
	}()

	// A donor under a different structural config is rejected.
	om, err := New(snapshotConfigs(t)["base"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreReusing(cfg, late, om); err == nil {
		t.Fatal("cross-config donor restore accepted")
	}
}
