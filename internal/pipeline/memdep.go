package pipeline

import (
	"loosesim/internal/uop"
)

// Memory dependence loop (Figure 2's load/store reorder trap loop).
//
// Stores learn their addresses at execute. A load that issues past an older
// store whose address is still unknown is speculating that they do not
// alias; if the store later resolves to the same granule, the load read
// stale data and the machine takes a memory-order trap: recovery at the
// fetch stage (flush from the load, replay), exactly the 21264's
// initiation-at-issue / recovery-at-fetch loop the paper's Figure 2 shows.
// The store-wait predictor (bpred.StoreWait) turns repeat offenders into
// waiting loads.

// granule returns the aliasing granule of an address (8 bytes).
func granule(addr uint64) uint64 { return addr >> 3 }

// noStore marks "no unexecuted older store" for minUnexecStore.
const noStore = ^uint64(0)

// refreshMemDep recomputes, once per cycle per thread, the sequence number
// of the oldest store whose address is still unknown; the issue stage's
// load gating compares against it.
func (m *Machine) refreshMemDep() {
	if m.cfg.MemDep == MemDepBlind {
		return // no gating: nothing to refresh
	}
	for _, t := range m.threads {
		t.minUnexecStore = noStore
		for _, s := range t.memStores {
			if s.ExecCycle == uop.NoCycle {
				t.minUnexecStore = s.Seq
				break
			}
		}
	}
}

// loadMustWait implements the issue-stage gate for the configured policy.
func (m *Machine) loadMustWait(u *uop.UOp) bool {
	if u.WrongPath || !u.IsLoad() {
		return false
	}
	switch m.cfg.MemDep {
	case MemDepConservative:
		return u.Seq > m.threads[u.Thread].minUnexecStore
	case MemDepStoreWait:
		return m.swPred.ShouldWait(u.Inst.PC) &&
			u.Seq > m.threads[u.Thread].minUnexecStore
	default:
		return false
	}
}

// forwardingStore returns the youngest older store with a resolved address
// on the load's granule, or nil. Such a load reads its data from the store
// queue instead of the cache.
func (m *Machine) forwardingStore(u *uop.UOp) *uop.UOp {
	t := m.threads[u.Thread]
	g := granule(u.Inst.Addr)
	for i := len(t.memStores) - 1; i >= 0; i-- {
		s := t.memStores[i]
		if s.Seq >= u.Seq {
			continue
		}
		if s.ExecCycle != uop.NoCycle && granule(s.Inst.Addr) == g {
			return s
		}
	}
	return nil
}

// storeResolved runs when a store's address becomes known at execute: any
// younger load on the same granule that already executed read stale data —
// a memory-order violation. The oldest violator traps: flush from the load,
// replay from fetch, and train the store-wait predictor.
func (m *Machine) storeResolved(u *uop.UOp) {
	t := m.threads[u.Thread]
	g := granule(u.Inst.Addr)
	var victim *uop.UOp
	for _, ld := range t.memLoads {
		if ld.Seq > u.Seq && granule(ld.Inst.Addr) == g {
			if victim == nil || ld.Seq < victim.Seq {
				victim = ld
			}
		}
	}
	if victim == nil {
		return
	}
	m.noteMemOrderTrap(victim)
	m.swPred.Train(victim.Inst.PC)
	m.squashYounger(t, victim.Seq-1) // inclusive of the load: it refetches
	if t.wpBranch != nil && t.wpBranch.State == uop.StateSquashed {
		t.wrongPath = false
		t.wpBranch = nil
	}
	redirect := m.cycle + int64(m.cfg.FeedbackDelay)
	if redirect > t.fetchBlockedUntil {
		t.fetchBlockedUntil = redirect
	}
}

// trackLoad records an executed load for violation checks until it retires.
func (t *threadState) trackLoad(u *uop.UOp) {
	// simlint:prealloc sized to MaxInFlight at construction
	t.memLoads = append(t.memLoads, u)
}

// trackStore records a renamed store until it retires.
func (t *threadState) trackStore(u *uop.UOp) {
	// simlint:prealloc sized to MaxInFlight at construction
	t.memStores = append(t.memStores, u)
}

// untrackRetired drops a retiring memory instruction from the tracking
// lists. Stores retire in program order, so the store is the list head;
// loads are appended in execute order and removed by search.
func (t *threadState) untrackRetired(u *uop.UOp) {
	if u.WrongPath {
		return
	}
	switch {
	case u.Inst.Op.IsMem() && u.IsLoad():
		for i, ld := range t.memLoads {
			if ld == u {
				t.memLoads = append(t.memLoads[:i], t.memLoads[i+1:]...)
				return
			}
		}
	case u.Inst.Op.IsMem():
		if len(t.memStores) > 0 && t.memStores[0] == u {
			t.memStores = t.memStores[1:]
			return
		}
		// A store must retire in order; reaching here is a tracking bug.
		panic("pipeline: retiring store is not the oldest tracked store")
	}
}

// untrackSquashed drops squashed instructions (Seq > seq) from the tracking
// lists.
func (t *threadState) untrackSquashed(seq uint64) {
	for len(t.memStores) > 0 && t.memStores[len(t.memStores)-1].Seq > seq {
		t.memStores = t.memStores[:len(t.memStores)-1]
	}
	kept := t.memLoads[:0]
	for _, ld := range t.memLoads {
		if ld.Seq <= seq {
			kept = append(kept, ld)
		}
	}
	t.memLoads = kept
}
