package pipeline

import (
	"math"
	"strings"
	"testing"
)

func TestCycleStackAccountsEveryCycle(t *testing.T) {
	res := run(t, quickCfg(t, "gcc"))
	if got, want := res.Cycles.Total(), res.Counters.Cycles; got != want {
		t.Errorf("stack accounts %d cycles, run took %d", got, want)
	}
	r, f, d, q, m, e := res.Cycles.Fractions()
	if sum := r + f + d + q + m + e; math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	if res.Cycles.Retiring == 0 {
		t.Error("a completing run must have retiring cycles")
	}
}

func TestCycleStackMemoryBoundShape(t *testing.T) {
	hydro := run(t, quickCfg(t, "hydro"))
	m88 := run(t, quickCfg(t, "m88"))
	_, _, _, _, hMem, _ := hydro.Cycles.Fractions()
	_, _, _, _, mMem, _ := m88.Cycles.Fractions()
	if hMem <= mMem {
		t.Errorf("hydro memory share (%.3f) must exceed m88's (%.3f)", hMem, mMem)
	}
	if hMem < 0.3 {
		t.Errorf("hydro memory share %.3f; expected memory-bound", hMem)
	}
}

func TestCycleStackStringAndZero(t *testing.T) {
	var s CycleStack
	if s.Total() != 0 {
		t.Error("zero stack total")
	}
	r, f, d, q, m, e := s.Fractions()
	if r+f+d+q+m+e != 0 {
		t.Error("zero stack fractions must be zero")
	}
	s.Retiring = 3
	s.MemExec = 7
	if !strings.Contains(s.String(), "retiring 30.0%") {
		t.Errorf("stack string = %q", s.String())
	}
}

func TestCycleStackSub(t *testing.T) {
	a := CycleStack{Retiring: 10, FrontEnd: 5, Decode: 1, IQWait: 2, MemExec: 3, Exec: 4}
	b := CycleStack{Retiring: 4, FrontEnd: 2, Decode: 1, IQWait: 1, MemExec: 1, Exec: 1}
	d := a.sub(b)
	if d.Retiring != 6 || d.FrontEnd != 3 || d.Decode != 0 || d.IQWait != 1 || d.MemExec != 2 || d.Exec != 3 {
		t.Errorf("sub = %+v", d)
	}
}
