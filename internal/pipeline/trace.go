package pipeline

import (
	"fmt"
	"io"

	"loosesim/internal/uop"
)

// Tracer receives one record per retired instruction, in retirement order,
// carrying the cycle at which the instruction passed each stage. It is the
// simulator's pipeline-viewer hook: piping it through sort/awk (or reading
// it directly) shows loops resolving — reissued instructions have
// issue != first-issue, trapped regions show fetch-cycle gaps, and so on.
type Tracer struct {
	w     io.Writer
	limit uint64
	count uint64
	err   error
}

// NewTracer traces the first limit retired instructions to w (limit 0 means
// no bound).
//
// Error latching contract: the header is written here, and a failure — of
// the header or of any later record — latches rather than aborts. The
// simulation keeps running untraced (a broken trace destination must never
// change simulation results), subsequent records are dropped, and the
// first error is reported by Err. Callers that care about trace
// completeness MUST check Err after the run and treat a non-nil result as
// a truncated trace; cmd/loosim exits nonzero on it.
func NewTracer(w io.Writer, limit uint64) *Tracer {
	t := &Tracer{w: w, limit: limit}
	t.header()
	return t
}

func (t *Tracer) header() {
	_, t.err = fmt.Fprintln(t.w, "# seq thread op pc fetch rename issue exec complete retire issues cluster flags")
}

// record emits one retired instruction. Tracing errors latch; the first is
// reported by Err. Tracing is an opt-in debug mode — a traced run pays for
// formatting, an untraced run never reaches this function.
//
// simlint:coldpath opt-in trace mode; formatting cost accepted when tracing
func (t *Tracer) record(u *uop.UOp, retireCycle int64) {
	if t.err != nil || (t.limit > 0 && t.count >= t.limit) {
		return
	}
	t.count++
	flags := "-"
	if u.Issues > 1 {
		flags = fmt.Sprintf("reissued(%d)", u.Issues-1)
	}
	_, err := fmt.Fprintf(t.w, "%d %d %s %#x %d %d %d %d %d %d %d %d %s\n",
		u.Seq, u.Thread, u.Inst.Op, u.Inst.PC,
		u.FetchCycle, u.EnterIQCycle, u.IssueCycle, u.ExecCycle,
		u.CompleteCycle, retireCycle, u.Issues, u.Cluster, flags)
	if err != nil {
		t.err = err
	}
}

// Count returns the number of records emitted.
func (t *Tracer) Count() uint64 { return t.count }

// Err returns the first write error, if any.
func (t *Tracer) Err() error { return t.err }
