package pipeline

import (
	"bytes"
	"testing"

	"loosesim/internal/obs"
	"loosesim/internal/workload"
)

// obsCfg returns a DRA machine with no warmup, so the measurement window
// equals the whole run and the event stream can be cross-checked against
// Counters exactly.
func obsCfg(t *testing.T, bench string) Config {
	t.Helper()
	wl, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DRAConfigRF(wl, 5)
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 40_000
	return cfg
}

func TestObservabilityDoesNotPerturb(t *testing.T) {
	cfg := obsCfg(t, "apsi")
	base := run(t, cfg)

	delays := obs.NewLoopDelays(0)
	var series []obs.Interval
	withObs := cfg
	withObs.Events = delays
	withObs.Intervals = obs.IntervalFunc(func(iv obs.Interval) { series = append(series, iv) })
	withObs.SampleInterval = 1_000
	probed := run(t, withObs)

	// The whole point of the layer: probes observe, never steer.
	if base.Counters != probed.Counters {
		t.Fatalf("enabling observability changed the simulation:\nbase   %+v\nprobed %+v",
			base.Counters, probed.Counters)
	}
	if base.TotalCycles != probed.TotalCycles || base.TotalRetired != probed.TotalRetired {
		t.Fatalf("whole-run totals diverged: %d/%d vs %d/%d",
			base.TotalCycles, base.TotalRetired, probed.TotalCycles, probed.TotalRetired)
	}

	// With zero warmup the event stream covers exactly the measurement
	// window, so per-loop event counts must equal the counters, and the
	// branch loop's summed delay must equal BranchResLatSum.
	c := probed.Counters
	checks := []struct {
		kind obs.EventKind
		want uint64
	}{
		{obs.EvBranchMispredict, c.Mispredicts},
		{obs.EvLoadMisspec, c.LoadMisspecs},
		{obs.EvDataReissue, c.DataReissues},
		{obs.EvTLBTrap, c.TLBMissTraps},
		{obs.EvMemOrderTrap, c.MemOrderTraps},
		{obs.EvOperandMiss, c.OperandMisses},
		{obs.EvOperandReissue, c.OperandReissues},
	}
	for _, ck := range checks {
		if got := delays.Count(ck.kind); got != ck.want {
			t.Errorf("%s events = %d, counter says %d", ck.kind, got, ck.want)
		}
	}
	if got := delays.CyclesLost(obs.EvBranchMispredict); got != c.BranchResLatSum {
		t.Errorf("branch loop cycles lost = %d, BranchResLatSum = %d", got, c.BranchResLatSum)
	}
	if delays.Count(obs.EvOperandReissue) == 0 {
		t.Error("apsi with DRA must produce operand-reissue events")
	}

	// The interval series must tile the run exactly: contiguous, indexed,
	// and summing to the whole-run totals.
	if len(series) == 0 {
		t.Fatal("no intervals emitted")
	}
	var retired uint64
	prevEnd := int64(0)
	for i, iv := range series {
		if iv.Index != i {
			t.Fatalf("interval %d has index %d", i, iv.Index)
		}
		if iv.StartCycle != prevEnd {
			t.Fatalf("interval %d starts at %d, previous ended at %d", i, iv.StartCycle, prevEnd)
		}
		if iv.Cycles() <= 0 {
			t.Fatalf("interval %d is empty: %+v", i, iv)
		}
		prevEnd = iv.EndCycle
		retired += iv.Retired
	}
	if prevEnd != probed.TotalCycles {
		t.Errorf("intervals end at cycle %d, run ended at %d", prevEnd, probed.TotalCycles)
	}
	if retired != probed.TotalRetired {
		t.Errorf("intervals retired %d, run retired %d", retired, probed.TotalRetired)
	}
}

func TestObservabilityDefaultInterval(t *testing.T) {
	cfg := obsCfg(t, "gcc")
	var series []obs.Interval
	cfg.Intervals = obs.IntervalFunc(func(iv obs.Interval) { series = append(series, iv) })
	// SampleInterval deliberately left 0: the default must apply.
	res := run(t, cfg)
	if len(series) == 0 {
		t.Fatal("no intervals with the default period")
	}
	for _, iv := range series[:len(series)-1] {
		if iv.Cycles() != DefaultSampleInterval {
			t.Fatalf("interval %d spans %d cycles, want default %d", iv.Index, iv.Cycles(), DefaultSampleInterval)
		}
	}
	if last := series[len(series)-1]; last.EndCycle != res.TotalCycles {
		t.Errorf("tail interval must be flushed at run end: %d vs %d", last.EndCycle, res.TotalCycles)
	}
}

func TestObservabilitySampleIntervalValidation(t *testing.T) {
	cfg := obsCfg(t, "gcc")
	cfg.SampleInterval = -5
	if _, err := New(cfg); err == nil {
		t.Error("negative SampleInterval must be rejected")
	}
}

func TestObservabilityWritersProduceParseableStreams(t *testing.T) {
	cfg := obsCfg(t, "swim")
	cfg.MeasureInstructions = 20_000

	var evBuf, ivBuf bytes.Buffer
	events := obs.NewRingWriter(&evBuf, 0)
	intervals := obs.NewIntervalCSV(&ivBuf)
	cfg.Events = events
	cfg.Intervals = intervals
	cfg.SampleInterval = 2_000
	run(t, cfg)

	if err := events.Flush(); err != nil {
		t.Fatalf("event stream: %v", err)
	}
	if err := intervals.Err(); err != nil {
		t.Fatalf("interval stream: %v", err)
	}
	if evBuf.Len() == 0 || bytes.Count(ivBuf.Bytes(), []byte{'\n'}) < 2 {
		t.Fatalf("streams suspiciously empty: events %d bytes, intervals %d bytes",
			evBuf.Len(), ivBuf.Len())
	}
}
