package pipeline

import (
	"testing"

	"loosesim/internal/workload"
)

func memCfg(t *testing.T, bench string, pol MemDepPolicy) Config {
	t.Helper()
	wl, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(wl)
	cfg.WarmupInstructions = 20_000
	cfg.MeasureInstructions = 60_000
	cfg.MemDep = pol
	return cfg
}

func TestMemDepPolicyStrings(t *testing.T) {
	for _, p := range []MemDepPolicy{MemDepStoreWait, MemDepBlind, MemDepConservative, MemDepPolicy(9)} {
		if p.String() == "" {
			t.Error("empty policy name")
		}
	}
	if MemDepStoreWait.String() != "storewait" {
		t.Errorf("default policy name = %q", MemDepStoreWait.String())
	}
}

func TestConservativeNeverTraps(t *testing.T) {
	res := run(t, memCfg(t, "gcc", MemDepConservative))
	if res.Counters.MemOrderTraps != 0 {
		t.Errorf("conservative policy trapped %d times", res.Counters.MemOrderTraps)
	}
}

func TestBlindTrapsOnReloadTraffic(t *testing.T) {
	res := run(t, memCfg(t, "gcc", MemDepBlind))
	if res.Counters.MemOrderTraps == 0 {
		t.Error("blind speculation must take memory-order traps on gcc")
	}
	if res.Counters.StoreForwards == 0 {
		t.Error("reload traffic must produce store-to-load forwarding")
	}
}

func TestStoreWaitLearns(t *testing.T) {
	blind := run(t, memCfg(t, "swim", MemDepBlind))
	sw := run(t, memCfg(t, "swim", MemDepStoreWait))
	if sw.Counters.MemOrderTraps*4 >= blind.Counters.MemOrderTraps {
		t.Errorf("store-wait must remove most repeat traps: %d vs blind %d",
			sw.Counters.MemOrderTraps, blind.Counters.MemOrderTraps)
	}
}

func TestSpeculationBeatsConservative(t *testing.T) {
	sw := run(t, memCfg(t, "swim", MemDepStoreWait))
	cons := run(t, memCfg(t, "swim", MemDepConservative))
	if cons.IPC() >= sw.IPC() {
		t.Errorf("conservative (%.3f) must lose badly to store-wait (%.3f)", cons.IPC(), sw.IPC())
	}
	if cons.IPC() > 0.8*sw.IPC() {
		t.Errorf("conservative loss only %.1f%%; expected dramatic serialisation",
			100*(1-cons.IPC()/sw.IPC()))
	}
}

func TestGranule(t *testing.T) {
	if granule(0) != granule(7) {
		t.Error("same 8-byte granule must match")
	}
	if granule(0) == granule(8) {
		t.Error("adjacent granules must differ")
	}
}

func TestMemDepTrackingBounded(t *testing.T) {
	// The tracking lists must stay bounded by the in-flight window, or
	// they would leak across a long run.
	cfg := memCfg(t, "gcc", MemDepStoreWait)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	for _, th := range m.threads {
		if len(th.memStores) > cfg.MaxInFlight || len(th.memLoads) > cfg.MaxInFlight {
			t.Errorf("tracking lists leaked: stores=%d loads=%d", len(th.memStores), len(th.memLoads))
		}
	}
}

func TestMemDepWithDRAAndSMT(t *testing.T) {
	// The memory dependence loop must compose with the DRA and SMT.
	wl, _ := workload.ByName("m88-comp")
	cfg := DRAConfigRF(wl, 5)
	cfg.WarmupInstructions = 10_000
	cfg.MeasureInstructions = 30_000
	res := run(t, cfg)
	if res.IPC() <= 0 {
		t.Fatal("no progress")
	}
	if res.Counters.StoreForwards == 0 {
		t.Error("forwarding must occur under DRA+SMT too")
	}
}
