package pipeline

import (
	"context"
	"errors"
	"fmt"

	"loosesim/internal/bpred"
	"loosesim/internal/core"
	"loosesim/internal/fwd"
	"loosesim/internal/iq"
	"loosesim/internal/isa"
	"loosesim/internal/mem"
	"loosesim/internal/obs"
	"loosesim/internal/regfile"
	"loosesim/internal/stats"
	"loosesim/internal/uop"
	"loosesim/internal/workload"
)

// threadState is one hardware thread's front-end and window state.
type threadState struct {
	id  int
	gen *workload.Generator // correct-path stream
	wp  *workload.Generator // wrong-path filler stream

	window deque // every fetched, unretired, unsquashed uop, fetch order
	decode deque // the subset still in the DEC-IQ pipe

	wrongPath bool
	wpBranch  *uop.UOp // the unresolved mispredicted branch, if any

	// replay holds correct-path instructions flushed by a fetch-stage
	// recovery (trap or refetch-policy load recovery); fetch re-delivers
	// them before drawing new instructions from the generator. The buffer
	// is head-indexed rather than re-sliced so its storage is stable: the
	// consumed prefix [0, replayHead) doubles as prepend room for the next
	// squash, keeping replayPrepend allocation-free in steady state.
	replay     []isa.Inst
	replayHead int

	// Memory dependence tracking (memdep.go): in-flight correct-path
	// stores in program order, executed unretired loads, and the oldest
	// store whose address is still unknown (refreshed each cycle).
	memStores      []*uop.UOp
	memLoads       []*uop.UOp
	minUnexecStore uint64

	fetchBlockedUntil int64
	retired           uint64
	warmRetired       uint64
}

// Machine is one configured simulation instance. Create with New, run with
// Run; a Machine is single-use.
type Machine struct {
	cfg Config

	cycle int64
	seq   uint64

	pred   bpred.Predictor
	btb    *bpred.BTB
	swPred *bpred.StoreWait
	rf     *regfile.File
	fb     *fwd.Buffer
	q      *iq.Queue
	dra    *core.DRA // nil unless cfg.UseDRA
	memh   *mem.Hierarchy

	threads []*threadState

	// Per-physical-register wakeup state. readyAt is the IQ's (possibly
	// speculative) belief of when the value is available at the FUs;
	// actualAt is ground truth, set when the producer's timing resolves.
	// regGen counts reallocations, guarding in-flight writeback events.
	readyAt  []int64
	actualAt []int64
	regGen   []uint32

	rings [numEvKinds]eventRing

	ctr       Counters
	warmSnap  Counters
	measuring bool
	opGap     *stats.Histogram
	occSum    uint64
	retainSum uint64
	samples   uint64

	stack     CycleStack
	warmStack CycleStack

	// Observability (internal/obs): the event sink, and the interval
	// probe's sink, period, and open-interval state. Both sinks nil is
	// the fast path — see pipeline/obs.go.
	evSink      obs.EventSink
	ivSink      obs.IntervalSink
	sampleEvery int64
	ivSnap      Counters
	ivStart     int64
	ivIndex     int
	ivOcc       uint64

	frontStallUntil int64
	lastRetireCycle int64
	rrRename        int
	rrRetire        int
	rrFetch         int

	// Uop recycling. fetch draws records from pool; retire and squash
	// enqueue dead records on the delay queue, and reclaimDead returns
	// them to the pool once every stale reference has provably expired.
	// srcReadyFn is m.srcReady bound once: passing the bound method to the
	// IQ avoids allocating a fresh method-value closure every issue cycle.
	pool       uop.Pool
	dead       []deadRecord
	deadHead   int
	srcReadyFn func(*uop.UOp) bool

	// genDonor, when non-nil during restorePayload, is a consumed machine
	// whose generators seed the replay fast-forward (see RestoreReusing).
	genDonor *Machine
}

// deadRecord is one retired or squashed uop awaiting reuse: at is the first
// cycle the record may be recycled. Death cycles are non-decreasing, so the
// queue stays sorted by construction.
type deadRecord struct {
	u  *uop.UOp
	at int64
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		rf:    regfile.NewFile(cfg.NumPhysRegs, len(cfg.Workload.Threads)),
		fb:    fwd.New(cfg.NumPhysRegs, cfg.FwdDepth, cfg.WBDelay),
		q:     iq.New(iq.Config{Entries: cfg.IQEntries, Clusters: cfg.Clusters}),
		memh:  mem.NewHierarchy(cfg.Mem),
		btb:   bpred.NewBTB(cfg.BTBEntries),
		opGap: stats.NewHistogram(100),
	}
	switch cfg.Predictor {
	case PredBimodal:
		m.pred = bpred.NewBimodal(4096)
	case PredGShare:
		m.pred = bpred.NewGShare(4096, 12)
	case PredStatic:
		m.pred = &bpred.Static{Taken: true}
	case PredPerceptron:
		m.pred = bpred.NewDefaultPerceptron()
	default:
		m.pred = bpred.NewDefaultTournament()
	}
	if cfg.UseDRA {
		m.dra = core.New(cfg.DRA, cfg.NumPhysRegs)
	}
	m.swPred = bpred.NewStoreWait(cfg.StoreWaitSize, cfg.StoreWaitClear)
	for k := range m.rings {
		m.rings[k].init()
	}
	m.evSink = cfg.Events
	if cfg.Intervals != nil {
		m.ivSink = cfg.Intervals
		m.sampleEvery = cfg.SampleInterval
		if m.sampleEvery == 0 {
			m.sampleEvery = DefaultSampleInterval
		}
	}
	m.readyAt = make([]int64, cfg.NumPhysRegs)
	m.actualAt = make([]int64, cfg.NumPhysRegs)
	m.regGen = make([]uint32, cfg.NumPhysRegs)
	m.srcReadyFn = m.srcReady
	for i, p := range cfg.Workload.Threads {
		m.threads = append(m.threads, &threadState{
			id: i,
			// The wrong-path stream shares the thread's address space:
			// wrong-path loads touch the same data regions the correct
			// path does, so cache pollution is realistic rather than a
			// doubling of the footprint.
			gen: workload.NewGenerator(p, cfg.Seed+int64(i)*7919, uint64(i)<<33),
			wp:  workload.NewGenerator(p, cfg.Seed+int64(i)*7919+104729, uint64(i)<<33),
			// Tracked memory instructions are in-flight by definition, so
			// MaxInFlight caps both lists; sized here so the per-cycle
			// track calls never grow them.
			memLoads:  make([]*uop.UOp, 0, cfg.MaxInFlight),
			memStores: make([]*uop.UOp, 0, cfg.MaxInFlight),
		})
	}
	return m, nil
}

// Run simulates until the warmup plus measurement instruction budget
// retires and returns the measurement-window result. It is RunContext
// under a background context; callers that set Config.CycleBudget should
// prefer RunContext, since Run reports a budget abort only as a nil
// Result.
func (m *Machine) Run() *Result {
	res, _ := m.RunContext(context.Background())
	return res
}

// cancelCheckInterval is how often, in simulated cycles, RunContext polls
// its context. A power of two keeps the check to a mask and a compare; at
// 4096 cycles the poll is invisible in profiles yet bounds the abort
// latency to well under a millisecond of host time.
const cancelCheckInterval = 1 << 12

// ErrCycleBudget is returned by RunContext when Config.CycleBudget expires
// before the measurement window completes.
var ErrCycleBudget = errors.New("pipeline: cycle budget exhausted")

// RunContext is Run with cooperative cancellation: every
// cancelCheckInterval cycles the machine polls ctx and aborts with
// ctx.Err() if it is done, and a positive Config.CycleBudget aborts the
// run with ErrCycleBudget once the cycle counter passes it. Both checks
// are outside the modelled machine — a run that finishes is identical to
// the same run under Run. On abort the partial state is discarded and the
// Result is nil; a Machine is single-use either way.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	budget := m.cfg.CycleBudget
	if m.cfg.WarmupInstructions == 0 && !m.measuring {
		m.startMeasuring()
	}
	for !m.measuring || m.ctr.Retired-m.warmSnap.Retired < m.cfg.MeasureInstructions {
		if budget > 0 && m.cycle >= budget {
			return nil, fmt.Errorf("%w: budget %d spent at cycle %d with %d retired",
				ErrCycleBudget, budget, m.cycle, m.ctr.Retired)
		}
		if done != nil && m.cycle&(cancelCheckInterval-1) == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		m.step()
		if !m.measuring && m.ctr.Retired >= m.cfg.WarmupInstructions {
			m.startMeasuring()
		}
		if m.cycle-m.lastRetireCycle > 500_000 {
			panic(fmt.Sprintf("pipeline: deadlock at cycle %d (%d retired, IQ %d/%d, inflight %d)",
				m.cycle, m.ctr.Retired, m.q.Len(), m.cfg.IQEntries, m.inFlight()))
		}
	}
	if m.ivSink != nil && m.cycle > m.ivStart {
		m.emitInterval() // flush the partial tail interval
	}
	res := &Result{
		Benchmark:    m.cfg.Workload.Name,
		Counters:     m.ctr.sub(m.warmSnap),
		TotalCycles:  m.cycle,
		TotalRetired: m.ctr.Retired,
		OperandGap:   m.opGap,
		Cycles:       m.stack.sub(m.warmStack),
	}
	if m.samples > 0 {
		res.IQOccupancy = float64(m.occSum) / float64(m.samples)
		res.IQRetained = float64(m.retainSum) / float64(m.samples)
	}
	for _, t := range m.threads {
		res.RetiredPerThread = append(res.RetiredPerThread, t.retired-t.warmRetired)
	}
	return res, nil
}

// startMeasuring snapshots counters at the warmup boundary.
func (m *Machine) startMeasuring() {
	m.measuring = true
	m.warmSnap = m.ctr
	m.warmStack = m.stack
	for _, t := range m.threads {
		t.warmRetired = t.retired
	}
}

// inFlight counts fetched-but-unretired instructions across threads.
func (m *Machine) inFlight() int {
	n := 0
	for _, t := range m.threads {
		n += t.window.len()
	}
	return n
}

// step advances the machine one cycle. Stage order within a cycle runs the
// back of the pipe first; all cross-stage timing is via scheduled events,
// so the order only fixes same-cycle visibility (e.g. a result completing
// in cycle c is usable by an execution in cycle c).
func (m *Machine) step() {
	m.cycle++
	m.ctr.Cycles = m.cycle
	m.reclaimDead()
	m.processEvents()
	retired := m.retire()
	if m.measuring {
		m.attributeCycle(retired)
	}
	m.swPred.Tick(m.cycle)
	m.refreshMemDep()
	m.issue()
	m.rename()
	m.fetch()
	if m.measuring {
		m.samples++
		m.occSum += uint64(m.q.Len())
		m.retainSum += uint64(m.q.Retained())
	}
	if m.ivSink != nil {
		m.sampleInterval()
	}
}

func (m *Machine) schedule(kind int, cycle int64, e event) {
	if cycle <= m.cycle {
		panic("pipeline: event scheduled in the past")
	}
	if cycle-m.cycle >= ringSize {
		panic("pipeline: event scheduled beyond ring horizon")
	}
	m.rings[kind].schedule(cycle, e)
}

// recycleDead queues a just-retired or just-squashed record for reuse. The
// event rings may still hold guarded references to it (tag/state checks
// drop them when they fire), and a retired instruction's IQ entry may wait
// on its evIQFree; both are scheduled at most ringSize-1 cycles ahead of
// the death cycle, so after ringSize cycles nothing in the machine can
// reach the record and it is safe to reissue.
func (m *Machine) recycleDead(u *uop.UOp) {
	// simlint:prealloc grows to the reclaim high-water mark once, then head-compacted and reused
	m.dead = append(m.dead, deadRecord{u: u, at: m.cycle + ringSize})
}

// reclaimDead returns expired records to the pool; called once per cycle.
func (m *Machine) reclaimDead() {
	for m.deadHead < len(m.dead) && m.dead[m.deadHead].at <= m.cycle {
		m.pool.Put(m.dead[m.deadHead].u)
		m.dead[m.deadHead].u = nil
		m.deadHead++
	}
	if m.deadHead == len(m.dead) {
		m.dead = m.dead[:0]
		m.deadHead = 0
	} else if m.deadHead > 4096 && m.deadHead*2 > len(m.dead) {
		n := copy(m.dead, m.dead[m.deadHead:])
		for i := n; i < len(m.dead); i++ {
			m.dead[i].u = nil
		}
		m.dead = m.dead[:n]
		m.deadHead = 0
	}
}

func (m *Machine) processEvents() {
	for kind := 0; kind < numEvKinds; kind++ {
		for _, e := range m.rings[kind].take(m.cycle) {
			switch kind {
			case evComplete:
				m.onComplete(e)
			case evLoadResolve:
				m.onLoadResolve(e)
			case evExec:
				m.onExec(e)
			case evWriteback:
				m.onWriteback(e)
			case evIQFree:
				m.onIQFree(e)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Event handlers (back end).

// onComplete publishes an instruction's result: the value becomes
// forwardable, the instruction becomes retirable, and branches resolve.
func (m *Machine) onComplete(e event) {
	u := e.u
	if u.State == uop.StateSquashed || int(e.tag) != u.Issues {
		return
	}
	u.State = uop.StateDone
	u.CompleteCycle = m.cycle
	if u.Dest != regfile.PRegInvalid {
		m.fb.Record(u.Dest, m.cycle)
		m.schedule(evWriteback, m.fb.WritebackCycle(m.cycle), event{u: u, gen: m.regGen[u.Dest]})
	}
	if u.IsBranch() && !u.WrongPath {
		m.resolveBranch(u)
	}
}

// resolveBranch trains the predictor and, on a mispredict, performs the
// branch resolution loop's recovery: squash younger work and redirect fetch
// after the feedback delay.
func (m *Machine) resolveBranch(u *uop.UOp) {
	m.pred.Update(u.Inst.PC, u.Inst.Taken)
	if u.Inst.Taken {
		m.btb.Insert(u.Inst.PC, u.Inst.PC+64) // synthetic target
	}
	m.ctr.Branches++
	if !u.Mispredicted {
		return
	}
	m.noteMispredict(u)
	t := m.threads[u.Thread]
	m.squashYounger(t, u.Seq)
	if t.wpBranch == u {
		t.wrongPath = false
		t.wpBranch = nil
	}
	redirect := m.cycle + int64(m.cfg.BranchFBDelay)
	if redirect > t.fetchBlockedUntil {
		t.fetchBlockedUntil = redirect
	}
}

// onLoadResolve handles the two wakeup-state updates of a mis-speculated
// load. The first firing (feedback-delay cycles after the cache probe) is
// the miss notification: it closes the load shadow by marking the result
// unavailable. The second firing is the data return itself: only L1 hits
// have a latency the scheduler can anticipate (that is the premise of
// load-hit speculation), so beyond L1 the fill is *signaled*, and
// dependents issue after it and pay the full IQ-EX traversal on top of the
// miss latency. This is why the load resolution loop punishes a long
// issue-to-execute path.
func (m *Machine) onLoadResolve(e event) {
	u := e.u
	if u.State == uop.StateSquashed || int(e.tag) != u.Issues {
		return
	}
	if u.Dest == regfile.PRegInvalid {
		return
	}
	if m.cycle < u.DataReady {
		m.readyAt[u.Dest] = inf // miss notification: shadow closes
	} else {
		m.readyAt[u.Dest] = m.cycle // data return: dependents may issue
	}
}

// onWriteback lands a value in the register file: the RPFT bit sets and
// the DRA caches the value in every cluster with outstanding consumers.
func (m *Machine) onWriteback(e event) {
	u := e.u
	if u.State == uop.StateSquashed {
		return
	}
	p := u.Dest
	if p == regfile.PRegInvalid || m.regGen[p] != e.gen {
		return // register reallocated since completion
	}
	m.rf.Writeback(p)
	if m.dra != nil {
		m.dra.Writeback(p, m.cycle)
	}
}

// onIQFree reclaims an issued instruction's IQ entry once the execution
// stage has confirmed (loop delay later) that it will not reissue.
func (m *Machine) onIQFree(e event) {
	u := e.u
	if int(e.tag) != u.Issues || !u.InIQ {
		return
	}
	switch u.State {
	case uop.StateIssued, uop.StateDone, uop.StateRetired:
		m.q.Remove(u)
	}
}

// onExec is the functional-unit stage: the instruction's operands are read
// (via the base path or the DRA's four paths) and execution begins. This is
// where both the load and operand resolution loops' mis-speculations are
// discovered.
func (m *Machine) onExec(e event) {
	u := e.u
	if u.State != uop.StateIssued || int(e.tag) != u.Issues {
		return
	}
	now := m.cycle

	// Validity: did every source's value actually exist when we read it?
	// A violation means this instruction issued inside some producer's
	// mis-speculation shadow (typically a load miss) and consumed garbage.
	for i := 0; i < u.NumSrc; i++ {
		if m.actualAt[u.Src[i]] > now {
			if !u.WrongPath {
				m.noteDataReissue(u)
			}
			m.revertToWaiting(u, now+int64(m.cfg.FeedbackDelay))
			return
		}
	}

	// DRA operand delivery: payload (pre-read), forwarding buffer, CRC,
	// or miss.
	if m.dra != nil && !m.operandsDelivered(u, now) {
		return
	}

	// Success: execution begins.
	u.ExecCycle = now
	if !u.WrongPath {
		m.ctr.ExecutedUseful++
		m.recordOperandGap(u)
	}

	lat := int64(u.Inst.Op.Latency())
	switch u.Inst.Op {
	case isa.Load:
		if s := m.forwardingStore(u); s != nil {
			// Store-to-load forwarding: the data comes from the store
			// queue at a deterministic latency, so load-hit speculation
			// holds and no cache or TLB access occurs.
			lat = int64(m.cfg.StoreForwardLat)
			u.DataReady = now + lat
			if !u.WrongPath {
				m.ctr.Loads++
				m.ctr.StoreForwards++
				if !u.MemTracked {
					u.MemTracked = true
					m.threads[u.Thread].trackLoad(u)
				}
			}
			if m.cfg.LoadPolicy == LoadStall && u.Dest != regfile.PRegInvalid {
				ready := u.DataReady
				if min := now + int64(m.cfg.FeedbackDelay+m.cfg.IQExLat); ready < min {
					ready = min
				}
				m.readyAt[u.Dest] = ready
			}
			break
		}
		res := m.memh.Load(u.Inst.Addr, now)
		lat = int64(res.Latency)
		if res.TLBMiss {
			lat += int64(m.cfg.TLBRefill)
			m.trapRecover(u)
		}
		u.DataReady = now + lat
		if !u.WrongPath {
			m.ctr.Loads++
			if !res.L1Hit {
				m.ctr.L1Misses++
			}
			if !res.L1Hit && !res.L2Hit {
				m.ctr.L2Misses++
			}
			if res.BankConflict {
				m.ctr.BankConflicts++
			}
			if !u.MemTracked {
				u.MemTracked = true
				m.threads[u.Thread].trackLoad(u)
			}
		}
		switch {
		case m.cfg.LoadPolicy == LoadStall:
			// No speculation: dependents wait until the IQ knows when
			// the data will be available. For hits the resolution signal
			// (feedback-delay cycles from now) carries the known timing;
			// for misses the fill itself is the signal, so dependents
			// issue at data return and pay IQ-EX on top.
			var ready int64
			if res.Hit() {
				ready = u.DataReady
				if min := now + int64(m.cfg.FeedbackDelay+m.cfg.IQExLat); ready < min {
					ready = min
				}
			} else {
				ready = u.DataReady + int64(m.cfg.IQExLat)
			}
			if u.Dest != regfile.PRegInvalid {
				m.readyAt[u.Dest] = ready
			}
		case !res.Hit():
			// Load-hit speculation failed: the load resolution loop
			// mis-speculated. The IQ learns of the miss after the
			// feedback delay (closing the load shadow — dependents
			// issued meanwhile consumed garbage and will reissue), but
			// the fill time itself is non-deterministic, so dependents
			// can be woken only when the data actually returns.
			if !u.WrongPath {
				m.noteLoadMisspec(u)
			}
			tag := int32(u.Issues)
			m.schedule(evLoadResolve, now+int64(m.cfg.FeedbackDelay), event{u: u, tag: tag})
			if u.DataReady > now+int64(m.cfg.FeedbackDelay) {
				m.schedule(evLoadResolve, u.DataReady, event{u: u, tag: tag})
			}
			if m.cfg.LoadPolicy == LoadRefetch {
				m.noteLoadRefetch(u)
				t := m.threads[u.Thread]
				m.squashYounger(t, u.Seq)
				if t.wpBranch != nil && t.wpBranch.State == uop.StateSquashed {
					t.wrongPath = false
					t.wpBranch = nil
				}
				redirect := now + int64(m.cfg.FeedbackDelay)
				if redirect > t.fetchBlockedUntil {
					t.fetchBlockedUntil = redirect
				}
			}
		}
	case isa.Store:
		m.memh.Store(u.Inst.Addr)
		if !u.WrongPath {
			u.ExecCycle = now // address now known to the ordering logic
			m.storeResolved(u)
		}
	default:
		// IntALU, IntMul, FPAdd, FPMul, FPDiv, Branch, Nop: no memory
		// access; the class latency computed above is the whole story.
	}

	if u.Dest != regfile.PRegInvalid {
		m.actualAt[u.Dest] = now + lat
	}
	m.schedule(evComplete, now+lat, event{u: u, tag: int32(u.Issues)})
}

// operandsDelivered classifies each source through the DRA's delivery
// paths. It returns false after initiating operand-miss recovery: the
// register file is read into the payload, the instruction reverts to
// waiting, and the front end stalls while the read occupies the file.
func (m *Machine) operandsDelivered(u *uop.UOp, now int64) bool {
	missed := false
	for i := 0; i < u.NumSrc; i++ {
		src := u.Src[i]
		switch {
		case u.PreRead[i]:
			if !u.WrongPath {
				m.ctr.OperandsRead++
				m.ctr.OperandPreRead++
			}
		case m.fb.Available(src, now):
			m.dra.ForwardHit(u.Cluster, src)
			if !u.WrongPath {
				m.ctr.OperandsRead++
				m.ctr.OperandForwarded++
			}
		case m.dra.LookupCRC(u.Cluster, src, now):
			if !u.WrongPath {
				m.ctr.OperandsRead++
				m.ctr.OperandCRC++
			}
		default:
			// Operand miss: the operand resolution loop mis-speculated.
			missed = true
			u.PreRead[i] = true // recovery reads it into the payload
			if !u.WrongPath {
				m.ctr.OperandsRead++
				m.noteOperandMiss(u)
			}
		}
	}
	if !missed {
		return true
	}
	recoverAt := now + int64(m.cfg.FeedbackDelay+m.cfg.RegReadLat)
	if !u.WrongPath {
		m.noteOperandReissue(u, recoverAt-now)
	}
	m.revertToWaiting(u, recoverAt)
	if recoverAt > m.frontStallUntil {
		m.noteFrontStall(u, recoverAt-m.frontStallUntil)
		m.frontStallUntil = recoverAt
	}
	return false
}

// revertToWaiting is loose-loop recovery at the IQ: the instruction keeps
// its queue entry, reverts to the waiting state, and may not be reselected
// before the recovery signal arrives at minIssue. Its destination's wakeup
// state goes back to unknown so dependents stop issuing against it.
func (m *Machine) revertToWaiting(u *uop.UOp, minIssue int64) {
	u.State = uop.StateWaiting
	u.MinIssueCycle = minIssue
	if u.Dest != regfile.PRegInvalid {
		m.readyAt[u.Dest] = inf
	}
}

// recordOperandGap feeds the Figure 6 distribution: cycles between the
// availability of the first and second source operand (zero for
// single-operand instructions).
func (m *Machine) recordOperandGap(u *uop.UOp) {
	for i := 0; i < u.NumSrc; i++ {
		u.SrcAvail[i] = m.actualAt[u.Src[i]]
	}
	if !m.measuring {
		return
	}
	gap := 0
	if u.NumSrc == 2 {
		d := u.SrcAvail[0] - u.SrcAvail[1]
		if d < 0 {
			d = -d
		}
		gap = int(d)
	}
	m.opGap.Add(gap)
}

// trapRecover implements the memory trap loop for a data TLB miss:
// recovery is at the fetch stage, so everything younger than the load is
// flushed and refetched.
func (m *Machine) trapRecover(u *uop.UOp) {
	if u.WrongPath {
		return // a wrong-path trap is squashed work either way
	}
	m.noteTLBTrap(u)
	t := m.threads[u.Thread]
	m.squashYounger(t, u.Seq)
	if t.wpBranch != nil && t.wpBranch.State == uop.StateSquashed {
		t.wrongPath = false
		t.wpBranch = nil
	}
	redirect := m.cycle + int64(m.cfg.FeedbackDelay)
	if redirect > t.fetchBlockedUntil {
		t.fetchBlockedUntil = redirect
	}
}

// squashYounger kills every instruction of t strictly younger than seq,
// unwinding rename state youngest-first. Squashed correct-path instructions
// are queued for replay: a fetch-stage recovery refetches the same program,
// so the front end must re-deliver them.
func (m *Machine) squashYounger(t *threadState, seq uint64) {
	// Find the first surviving prefix length.
	w := &t.window
	keep := w.len()
	for keep > 0 && w.at(keep-1).Seq > seq {
		keep--
	}
	// Queue the correct-path victims in program order for replay, ahead
	// of any previously queued replay (which is even younger).
	n := 0
	for i := keep; i < w.len(); i++ {
		if !w.at(i).WrongPath {
			n++
		}
	}
	if n > 0 {
		t.replayPrepend(w, keep, n)
	}
	for i := w.len() - 1; i >= keep; i-- {
		u := w.at(i)
		m.ctr.SquashedTotal++
		if u.Issues > 0 {
			m.ctr.SquashedIssued++
		}
		if u.InIQ {
			m.q.Remove(u)
		}
		if u.Renamed && u.Inst.Dest.Valid() {
			m.rf.SquashRestore(t.id, u.Inst.Dest, u.Dest, u.OldPhy)
		}
		u.State = uop.StateSquashed
		m.recycleDead(u)
	}
	w.truncFrom(keep)
	t.untrackSquashed(seq)
	// Drop squashed entries from the decode pipe (they are the tail).
	d := &t.decode
	dkeep := d.len()
	for dkeep > 0 && d.at(dkeep-1).Seq > seq {
		dkeep--
	}
	d.truncFrom(dkeep)
}

// replayPrepend inserts the n correct-path instructions of w[keep:] (in
// program order) ahead of the queued replay. The consumed prefix
// [0, replayHead) is reused as prepend room, so in steady state — where a
// squash usually finds the replay queue drained — no allocation happens;
// the buffer only grows when a squash outsizes every previous one.
func (t *threadState) replayPrepend(w *deque, keep, n int) {
	if t.replayHead < n {
		tail := t.replay[t.replayHead:]
		need := n + len(tail)
		if cap(t.replay) < need {
			// simlint:ignore perf grows to the squash high-water mark once, then never again
			t.replayGrow(tail, n)
		} else {
			t.replay = t.replay[:need]
			copy(t.replay[n:], tail) // overlap-safe rightward move
		}
		t.replayHead = 0
	} else {
		t.replayHead -= n
	}
	j := t.replayHead
	for i := keep; i < w.len(); i++ {
		if u := w.at(i); !u.WrongPath {
			t.replay[j] = u.Inst
			j++
		}
	}
}

// replayGrow reallocates the replay buffer to hold n prepended entries
// ahead of tail, leaving [0, n) for the caller to fill.
//
// simlint:coldpath grows to the squash high-water mark, then never again
func (t *threadState) replayGrow(tail []isa.Inst, n int) {
	grown := make([]isa.Inst, n+len(tail))
	copy(grown[n:], tail)
	t.replay = grown
}

// ---------------------------------------------------------------------------
// Cycle stages (front end and scheduling).

// retire commits up to RetireWidth instructions in order per thread,
// rotating across threads for fairness, and reports how many committed.
func (m *Machine) retire() int {
	budget := m.cfg.RetireWidth
	n := len(m.threads)
	idle := 0
	for budget > 0 && idle < n {
		t := m.threads[m.rrRetire%n]
		m.rrRetire++
		u := t.window.front()
		if u == nil || u.State != uop.StateDone {
			idle++
			continue
		}
		idle = 0
		t.window.popFront()
		u.State = uop.StateRetired
		if m.cfg.Tracer != nil {
			m.cfg.Tracer.record(u, m.cycle)
		}
		t.untrackRetired(u)
		m.rf.Free(u.OldPhy)
		t.retired++
		m.ctr.Retired++
		m.lastRetireCycle = m.cycle
		m.recycleDead(u)
		budget--
	}
	return m.cfg.RetireWidth - budget
}

// srcReady is the wakeup predicate: every source's value must be (believed)
// available by the time the instruction reaches the functional units.
func (m *Machine) srcReady(u *uop.UOp) bool {
	if m.cycle < u.MinIssueCycle {
		return false
	}
	if m.loadMustWait(u) {
		return false
	}
	horizon := m.cycle + int64(m.cfg.IQExLat)
	for i := 0; i < u.NumSrc; i++ {
		if m.readyAt[u.Src[i]] > horizon {
			return false
		}
	}
	return true
}

// issue selects at most one ready instruction per cluster, beginning its
// IQ-EX traversal. Destinations are announced to the wakeup state at the
// speculative latency (loads: L1 hit), which is precisely the load-hit
// speculation of the load resolution loop.
func (m *Machine) issue() {
	for c := 0; c < m.cfg.Clusters; c++ {
		u := m.q.SelectOldestReady(c, m.srcReadyFn)
		if u == nil {
			continue
		}
		u.State = uop.StateIssued
		u.Issues++
		u.IssueCycle = m.cycle
		m.ctr.IssuedTotal++
		if u.Dest != regfile.PRegInvalid {
			if u.IsLoad() && m.cfg.LoadPolicy == LoadStall {
				m.readyAt[u.Dest] = inf // no speculation: wait for resolve
			} else {
				spec := int64(u.Inst.Op.Latency())
				if u.IsLoad() {
					spec = int64(m.cfg.Mem.L1.HitLatency)
				}
				m.readyAt[u.Dest] = m.cycle + int64(m.cfg.IQExLat) + spec
			}
		}
		exec := m.cycle + int64(m.cfg.IQExLat)
		m.schedule(evExec, exec, event{u: u, tag: int32(u.Issues)})
		m.schedule(evIQFree, exec+int64(m.cfg.FeedbackDelay+1+m.cfg.IQEvictDelay), event{u: u, tag: int32(u.Issues)})
	}
}

// rename drains the DEC-IQ pipe into the IQ: register renaming, cluster
// slotting, DRA pre-read, and queue insertion.
func (m *Machine) rename() {
	if m.cycle < m.frontStallUntil {
		m.ctr.FrontStalls++
		return
	}
	budget := m.cfg.RenameWidth
	n := len(m.threads)
	idle := 0
	for budget > 0 && idle < n {
		t := m.threads[m.rrRename%n]
		m.rrRename++
		u := t.decode.front()
		if u == nil || u.FetchCycle+int64(m.cfg.DecIQLat) > m.cycle {
			idle++
			continue
		}
		if m.q.Full() {
			m.ctr.RenameStallIQ++
			idle++
			continue
		}
		if u.Inst.Dest.Valid() && m.rf.FreeCount() == 0 {
			idle++
			continue
		}
		idle = 0
		t.decode.popFront()
		m.renameOne(t, u)
		budget--
	}
}

// renameOne performs rename, slotting, and IQ insertion for one uop.
func (m *Machine) renameOne(t *threadState, u *uop.UOp) {
	u.NumSrc = 0
	for i := 0; i < 2; i++ {
		if !u.Inst.Src[i].Valid() {
			break
		}
		u.Src[u.NumSrc] = m.rf.Lookup(t.id, u.Inst.Src[i])
		u.NumSrc++
	}
	u.Cluster = m.q.LeastLoadedCluster()
	if m.dra != nil {
		for i := 0; i < u.NumSrc; i++ {
			u.PreRead[i] = m.dra.RenameSource(u.Cluster, u.Src[i])
		}
	}
	if u.Inst.Dest.Valid() {
		newP, oldP, ok := m.rf.Rename(t.id, u.Inst.Dest)
		if !ok {
			panic("pipeline: rename ran out of registers after availability check")
		}
		u.Dest, u.OldPhy = newP, oldP
		m.regGen[newP]++
		m.readyAt[newP] = inf
		m.actualAt[newP] = inf
		m.fb.Invalidate(newP)
		if m.dra != nil {
			m.dra.RenameDest(newP)
		}
	}
	u.Renamed = true
	u.State = uop.StateWaiting
	u.EnterIQCycle = m.cycle
	if u.Inst.Op == isa.Store && !u.WrongPath {
		t.trackStore(u)
	}
	if !m.q.Insert(u) {
		panic("pipeline: IQ insert failed after fullness check")
	}
}

// fetch brings up to FetchWidth instructions from one thread (ICOUNT
// choice) into the DEC-IQ pipe, following the wrong path past mispredicted
// branches until they resolve.
func (m *Machine) fetch() {
	if m.inFlight() >= m.cfg.MaxInFlight {
		return
	}
	t := m.pickFetchThread()
	if t == nil {
		return
	}
	for i := 0; i < m.cfg.FetchWidth; i++ {
		var in isa.Inst
		switch {
		case t.wrongPath:
			in = t.wp.Next()
		case t.replayHead < len(t.replay):
			in = t.replay[t.replayHead]
			t.replayHead++
			if t.replayHead == len(t.replay) {
				t.replay = t.replay[:0]
				t.replayHead = 0
			}
		default:
			in = t.gen.Next()
		}
		m.seq++
		u := m.pool.Get(in, t.id, m.seq, m.cycle)
		u.WrongPath = t.wrongPath
		t.window.push(u)
		t.decode.push(u)
		m.ctr.Fetched++
		if u.WrongPath {
			m.ctr.WrongPathFetch++
		}
		stop := false
		if in.Op == isa.Branch {
			stop = m.fetchBranch(t, u)
		}
		if stop || m.inFlight() >= m.cfg.MaxInFlight {
			break
		}
	}
}

// fetchBranch runs the front end's branch handling for a just-fetched
// branch: direction prediction, wrong-path entry, and the next-address
// (BTB) loop. It reports whether the fetch group must end.
func (m *Machine) fetchBranch(t *threadState, u *uop.UOp) (stopGroup bool) {
	predTaken := m.pred.Predict(u.Inst.PC)
	if !t.wrongPath && predTaken != u.Inst.Taken {
		u.Mispredicted = true
		t.wrongPath = true
		t.wpBranch = u
	}
	if predTaken {
		// Taken-predicted branches end the fetch group; a BTB miss also
		// costs a bubble while the front end computes the target (the
		// next-address loop of Figure 2).
		if _, hit := m.btb.Lookup(u.Inst.PC); !hit {
			m.ctr.BTBBubbles++
			blocked := m.cycle + int64(m.cfg.BTBMissBubble)
			if blocked > t.fetchBlockedUntil {
				t.fetchBlockedUntil = blocked
			}
		}
		return true
	}
	return false
}

// pickFetchThread applies the ICOUNT policy: the unblocked thread with the
// fewest instructions in flight fetches this cycle.
func (m *Machine) pickFetchThread() *threadState {
	var best *threadState
	n := len(m.threads)
	for k := 0; k < n; k++ {
		t := m.threads[(m.rrFetch+k)%n]
		if t.fetchBlockedUntil > m.cycle {
			continue
		}
		if best == nil || t.window.len() < best.window.len() {
			best = t
		}
	}
	m.rrFetch++
	return best
}
