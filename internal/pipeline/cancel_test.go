package pipeline

import (
	"context"
	"errors"
	"testing"

	"loosesim/internal/workload"
)

func cancelCfg(t *testing.T, measure uint64) Config {
	t.Helper()
	wl, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(wl)
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = measure
	return cfg
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := New(cancelCfg(t, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("aborted run must not return a partial result")
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m, err := New(cancelCfg(t, 50_000_000)) // far longer than the test would tolerate
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		cancel() // races the run start; the per-4096-cycle poll must catch it
	}()
	res, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run must not return a result")
	}
}

func TestRunContextCycleBudget(t *testing.T) {
	cfg := cancelCfg(t, 1_000_000)
	cfg.CycleBudget = 1 // the acceptance case: abort promptly at one cycle
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunContext(context.Background())
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("err = %v, want ErrCycleBudget", err)
	}
	if res != nil {
		t.Fatal("budget-aborted run must not return a result")
	}
	// Run (the legacy entry point) reports the same abort as a nil result.
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Run() != nil {
		t.Fatal("Run must report a budget abort as nil")
	}
}

// TestRunContextBudgetDoesNotPerturb locks the guard-rail contract: a run
// that completes within its budget is byte-identical to the same run with
// no budget, and to the same run under plain Run.
func TestRunContextBudgetDoesNotPerturb(t *testing.T) {
	cfg := cancelCfg(t, 20_000)
	base := run(t, cfg)

	cfg.CycleBudget = 1 << 40
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Counters != base.Counters {
		t.Errorf("budgeted counters diverge:\n got %+v\nwant %+v", budgeted.Counters, base.Counters)
	}
	if budgeted.TotalCycles != base.TotalCycles {
		t.Errorf("budgeted cycles = %d, want %d", budgeted.TotalCycles, base.TotalCycles)
	}
}

func TestValidateRejectsNegativeBudget(t *testing.T) {
	cfg := cancelCfg(t, 1000)
	cfg.CycleBudget = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative CycleBudget must fail validation")
	}
}
