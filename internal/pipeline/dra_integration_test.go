package pipeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loosesim/internal/workload"
)

func quickDRACfg(t *testing.T, bench string, rf int) Config {
	t.Helper()
	wl, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DRAConfigRF(wl, rf)
	cfg.WarmupInstructions = 20_000
	cfg.MeasureInstructions = 40_000
	return cfg
}

func TestDRAOperandSharesSumToOne(t *testing.T) {
	res := run(t, quickDRACfg(t, "swim", 5))
	pr, fw, crc, miss := res.OperandShare()
	if sum := pr + fw + crc + miss; math.Abs(sum-1) > 1e-9 {
		t.Errorf("operand shares sum to %v, want 1", sum)
	}
	if res.Counters.OperandsRead == 0 {
		t.Fatal("no operands classified")
	}
	// Figure 9's dominant path: the forwarding buffer serves the majority
	// of operands.
	if fw < 0.4 {
		t.Errorf("forwarding share %.3f; expected the largest share (paper: >50%%)", fw)
	}
	if pr == 0 || crc == 0 {
		t.Error("pre-read and CRC paths must both be exercised")
	}
}

func TestDRABaseNeverClassifies(t *testing.T) {
	res := run(t, quickCfg(t, "swim"))
	if res.Counters.OperandsRead != 0 || res.Counters.OperandMisses != 0 {
		t.Error("base machine must not classify operands")
	}
}

func TestDRAApsiLoses(t *testing.T) {
	// The paper's headline negative result: apsi's operand miss rate makes
	// the DRA a loss (Figure 8, Section 6).
	base := run(t, func() Config {
		wl, _ := workload.ByName("apsi")
		cfg := BaseConfigRF(wl, 5)
		cfg.WarmupInstructions = 20_000
		cfg.MeasureInstructions = 40_000
		return cfg
	}())
	dra := run(t, quickDRACfg(t, "apsi", 5))
	if dra.IPC() >= base.IPC() {
		t.Errorf("apsi DRA (%.3f) must lose to base (%.3f)", dra.IPC(), base.IPC())
	}
	if rate := dra.OperandMissRate(); rate < 0.003 {
		t.Errorf("apsi operand miss rate %.4f too low to drive the loss", rate)
	}
	if dra.Counters.OperandReissues == 0 || dra.Counters.FrontStalls == 0 {
		t.Error("operand misses must reissue and stall the front end")
	}
}

func TestDRAWinsOnLoadBound(t *testing.T) {
	// Figure 8's positive result, at its largest lever (7-cycle register
	// file): the DRA wins for load-bound programs.
	wl, _ := workload.ByName("swim")
	bcfg := BaseConfigRF(wl, 7)
	bcfg.WarmupInstructions = 20_000
	bcfg.MeasureInstructions = 40_000
	base := run(t, bcfg)
	dra := run(t, quickDRACfg(t, "swim", 7))
	if dra.IPC() <= base.IPC() {
		t.Errorf("swim DRA:9_3 (%.3f) must beat base:5_9 (%.3f)", dra.IPC(), base.IPC())
	}
}

func TestDRAGainGrowsWithRegisterFileLatency(t *testing.T) {
	// This trend needs more statistical weight than the other quick tests:
	// the rf=3 and rf=7 speedups differ by a few percent.
	speedup := func(rf int) float64 {
		wl, _ := workload.ByName("swim")
		bcfg := BaseConfigRF(wl, rf)
		bcfg.WarmupInstructions = 60_000
		bcfg.MeasureInstructions = 150_000
		base := run(t, bcfg)
		dcfg := DRAConfigRF(wl, rf)
		dcfg.WarmupInstructions = 60_000
		dcfg.MeasureInstructions = 150_000
		dra := run(t, dcfg)
		return dra.IPC() / base.IPC()
	}
	s3, s7 := speedup(3), speedup(7)
	if s7 <= s3 {
		t.Errorf("DRA speedup must grow with register file latency: rf3=%.3f rf7=%.3f", s3, s7)
	}
}

func TestDRAMissRateLowOutsideApsi(t *testing.T) {
	// Figure 9: most benchmarks have operand miss rates well under 1%.
	for _, b := range []string{"gcc", "swim", "m88"} {
		res := run(t, quickDRACfg(t, b, 5))
		if rate := res.OperandMissRate(); rate > 0.01 {
			t.Errorf("%s operand miss rate %.4f, want < 1%%", b, rate)
		}
	}
}

func TestDRATinyCRCHurts(t *testing.T) {
	cfg := quickDRACfg(t, "apsi", 5)
	cfg.DRA.CRCEntries = 1
	tiny := run(t, cfg)
	cfg.DRA.CRCEntries = 16
	full := run(t, cfg)
	if tiny.OperandMissRate() <= full.OperandMissRate() {
		t.Errorf("1-entry CRC must miss more: %.4f vs %.4f",
			tiny.OperandMissRate(), full.OperandMissRate())
	}
}

func TestDRAWiderCountersReduceMisses(t *testing.T) {
	cfg := quickDRACfg(t, "apsi", 5)
	cfg.DRA.CounterBits = 1
	narrow := run(t, cfg)
	cfg.DRA.CounterBits = 4
	wide := run(t, cfg)
	if wide.OperandMissRate() > narrow.OperandMissRate() {
		t.Errorf("wider insertion counters must not increase misses: %.4f vs %.4f",
			wide.OperandMissRate(), narrow.OperandMissRate())
	}
}

func TestShallowForwardingShiftsTrafficToCRC(t *testing.T) {
	cfg := quickDRACfg(t, "swim", 5)
	cfg.FwdDepth = 9
	deep := run(t, cfg)
	cfg.FwdDepth = 3
	shallow := run(t, cfg)
	_, fwDeep, crcDeep, _ := deep.OperandShare()
	_, fwShallow, crcShallow, _ := shallow.OperandShare()
	if fwShallow >= fwDeep {
		t.Errorf("shallower buffer must forward less: %.3f vs %.3f", fwShallow, fwDeep)
	}
	if crcShallow <= crcDeep {
		t.Errorf("shallower buffer must shift traffic to CRCs: %.3f vs %.3f", crcShallow, crcDeep)
	}
}

// Property: any benchmark at any supported register-file latency, base or
// DRA, completes a short run without panicking and with sane accounting.
func TestRandomConfigRobustnessProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	benches := workload.PaperOrder()
	f := func(seed int64, benchIdx, rfIdx uint8, dra bool) bool {
		bench := benches[int(benchIdx)%len(benches)]
		rf := []int{3, 5, 7}[int(rfIdx)%3]
		wl, err := workload.ByName(bench)
		if err != nil {
			return false
		}
		var cfg Config
		if dra {
			cfg = DRAConfigRF(wl, rf)
		} else {
			cfg = BaseConfigRF(wl, rf)
		}
		cfg.Seed = seed
		cfg.WarmupInstructions = 2_000
		cfg.MeasureInstructions = 8_000
		m, err := New(cfg)
		if err != nil {
			return false
		}
		res := m.Run()
		if res.IPC() <= 0 || res.IPC() > float64(cfg.FetchWidth) {
			return false
		}
		c := res.Counters
		return c.Mispredicts <= c.Branches && c.L1Misses <= c.Loads && c.L2Misses <= c.L1Misses
	}
	if err := quick.Check(f, &quick.Config{
		MaxCount: 12,
		Rand:     rand.New(rand.NewSource(2)),
	}); err != nil {
		t.Error(err)
	}
}
