package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestRegenFuzzCorpus rewrites the committed seed corpus for
// FuzzSnapshotRoundTrip. It is a no-op unless LOOSIM_REGEN_CORPUS=1: run
// it after any snapshot format change (bump of machineSnapVersion, new
// payload fields) so the checked-in seeds decode under the new codec.
//
//	LOOSIM_REGEN_CORPUS=1 go test ./internal/pipeline -run TestRegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("LOOSIM_REGEN_CORPUS") != "1" {
		t.Skip("set LOOSIM_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	cfg, err := fuzzCfg()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[string][]byte{}
	snapAt := func(name string, retired uint64) {
		if err := m.RunUntilRetired(context.Background(), retired); err != nil {
			t.Fatal(err)
		}
		data, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		seeds[name] = data
	}
	snapAt("fresh", 0)
	snapAt("warmup", 500)
	snapAt("measure", 2_500)
	snapAt("done", cfg.WarmupInstructions+cfg.MeasureInstructions)

	// Corrupt mutants keep the fuzzer's rejection paths in the corpus.
	mut := bytes.Clone(seeds["measure"])
	mut[len(mut)/2] ^= 0xff
	seeds["flipped"] = mut
	seeds["torn"] = seeds["measure"][:len(seeds["measure"])/3]
	seeds["header-only"] = []byte("LOOMACH\x00")

	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
