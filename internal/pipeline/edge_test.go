package pipeline

import (
	"testing"

	"loosesim/internal/workload"
)

// tiny runs a very short simulation with the given mutations applied to the
// default gcc machine, checking only that it completes sanely.
func tiny(t *testing.T, bench string, mutate func(*Config)) *Result {
	t.Helper()
	wl, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(wl)
	cfg.WarmupInstructions = 2_000
	cfg.MeasureInstructions = 8_000
	if mutate != nil {
		mutate(&cfg)
	}
	return run(t, cfg)
}

func TestNarrowMachine(t *testing.T) {
	res := tiny(t, "gcc", func(c *Config) {
		c.FetchWidth, c.RenameWidth, c.RetireWidth = 1, 1, 1
		c.Clusters = 1
		c.DRA.Clusters = 1
	})
	if ipc := res.IPC(); ipc <= 0 || ipc > 1.0 {
		t.Errorf("1-wide machine IPC %v outside (0, 1]", ipc)
	}
}

func TestTinyIQ(t *testing.T) {
	res := tiny(t, "swim", func(c *Config) {
		c.IQEntries = 8
		c.Clusters = 2
		c.DRA.Clusters = 2
	})
	if res.IPC() <= 0 {
		t.Error("tiny IQ must still make progress")
	}
	if res.IQOccupancy > 8 {
		t.Errorf("occupancy %v exceeds capacity", res.IQOccupancy)
	}
}

func TestTinyWindow(t *testing.T) {
	res := tiny(t, "gcc", func(c *Config) {
		c.MaxInFlight = 16
		c.IQEntries = 16
	})
	if res.IPC() <= 0 {
		t.Error("tiny window must still make progress")
	}
}

func TestMinimalLatencies(t *testing.T) {
	res := tiny(t, "comp", func(c *Config) {
		c.DecIQLat, c.IQExLat = 1, 1
		c.FeedbackDelay, c.BranchFBDelay = 1, 1
		c.FwdDepth, c.WBDelay = 1, 1
		c.IQEvictDelay = 1
	})
	if res.IPC() <= 0 {
		t.Error("minimal-latency machine must run")
	}
}

func TestVeryDeepPipe(t *testing.T) {
	res := tiny(t, "go", func(c *Config) {
		c.DecIQLat, c.IQExLat = 20, 20
	})
	if res.IPC() <= 0 {
		t.Error("deep pipe must run")
	}
}

func TestZeroWarmup(t *testing.T) {
	res := tiny(t, "m88", func(c *Config) { c.WarmupInstructions = 0 })
	if res.Counters.Retired < 8_000 {
		t.Errorf("retired %d with zero warmup", res.Counters.Retired)
	}
}

func TestDRAOnEveryEdge(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.DRA.CRCEntries = 1 },
		func(c *Config) { c.DRA.CounterBits = 1 },
		func(c *Config) { c.DRA.CounterBits = 8 },
		func(c *Config) { c.FwdDepth = 1 },
	} {
		res := tiny(t, "apsi", func(c *Config) {
			c.UseDRA = true
			c.IQExLat = 3
			c.DecIQLat = 7
			mutate(c)
		})
		if res.IPC() <= 0 {
			t.Error("DRA edge config must run")
		}
	}
}

func TestAllPoliciesAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("slow matrix")
	}
	for _, b := range workload.PaperOrder() {
		for _, p := range []LoadRecovery{LoadReissue, LoadRefetch, LoadStall} {
			res := tiny(t, b, func(c *Config) { c.LoadPolicy = p })
			if res.IPC() <= 0 {
				t.Errorf("%s with %v produced no progress", b, p)
			}
		}
	}
}

func TestStallPolicyNeverReissuesOnLoads(t *testing.T) {
	res := tiny(t, "swim", func(c *Config) { c.LoadPolicy = LoadStall })
	// Without load-hit speculation there is no load shadow, so data
	// reissues should be zero (no garbage is ever consumed).
	if res.Counters.DataReissues != 0 {
		t.Errorf("stall policy reissued %d instructions", res.Counters.DataReissues)
	}
	if res.Counters.LoadMisspecs != 0 {
		t.Errorf("stall policy recorded %d mis-speculations", res.Counters.LoadMisspecs)
	}
}

func TestRefetchPolicyFlushes(t *testing.T) {
	res := tiny(t, "swim", func(c *Config) { c.LoadPolicy = LoadRefetch })
	if res.Counters.LoadRefetches == 0 {
		t.Error("refetch policy must refetch on swim's misses")
	}
	if res.Counters.SquashedTotal == 0 {
		t.Error("refetch recovery must squash")
	}
}

func TestAlternatePredictors(t *testing.T) {
	for _, k := range []PredictorKind{PredBimodal, PredGShare, PredStatic, PredTournament} {
		res := tiny(t, "gcc", func(c *Config) { c.Predictor = k })
		if res.IPC() <= 0 {
			t.Errorf("predictor %s: no progress", k)
		}
	}
	// The static predictor must be clearly worse than the tournament on a
	// branchy benchmark.
	static := tiny(t, "gcc", func(c *Config) { c.Predictor = PredStatic })
	tourn := tiny(t, "gcc", func(c *Config) { c.Predictor = PredTournament })
	if static.IPC() >= tourn.IPC() {
		t.Errorf("static (%.3f) should lose to tournament (%.3f)", static.IPC(), tourn.IPC())
	}
}

func TestFourThreadSMT(t *testing.T) {
	// The machine is not limited to two hardware threads.
	wl := workload.Workload{Name: "quad"}
	for _, n := range []string{"gcc", "swim", "m88", "comp"} {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		wl.Threads = append(wl.Threads, w.Threads[0])
	}
	cfg := DefaultConfig(wl)
	cfg.WarmupInstructions = 2_000
	cfg.MeasureInstructions = 12_000
	res := run(t, cfg)
	if len(res.RetiredPerThread) != 4 {
		t.Fatalf("threads = %d", len(res.RetiredPerThread))
	}
	for i, r := range res.RetiredPerThread {
		if r == 0 {
			t.Errorf("thread %d starved", i)
		}
	}
}
