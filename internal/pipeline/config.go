// Package pipeline is the cycle-level model of the paper's base machine
// (Section 2) and of the DRA machine built on it (Sections 4–6): an 8-wide,
// clustered, SMT, out-of-order processor with a 128-entry unified
// instruction queue, load-hit speculation with reissue recovery, a 9-cycle
// forwarding buffer, and a configurable decode→IQ (DEC-IQ) and IQ→execute
// (IQ-EX) latency split. All three of the paper's loose loops — branch
// resolution, load resolution, and (with the DRA) operand resolution — arise
// mechanically from the model.
package pipeline

import (
	"fmt"

	"loosesim/internal/core"
	"loosesim/internal/mem"
	"loosesim/internal/obs"
	"loosesim/internal/workload"
)

// LoadRecovery selects how the machine manages the load resolution loop
// (paper Section 2.2.2).
type LoadRecovery int

const (
	// LoadReissue speculates that loads hit and reissues the issued part
	// of the load dependency tree from the IQ on a mis-speculation — the
	// base machine's policy.
	LoadReissue LoadRecovery = iota
	// LoadRefetch speculates that loads hit but recovers at the fetch
	// stage: the pipeline behind the load is flushed and refetched. The
	// paper reports this performs significantly worse than reissue.
	LoadRefetch
	// LoadStall never speculates: dependents wait in the IQ until the
	// load's latency is known and the data is available, adding the
	// feedback and issue latency to every load-to-use.
	LoadStall
)

var loadRecoveryNames = [...]string{"reissue", "refetch", "stall"}

// String names the policy.
func (p LoadRecovery) String() string {
	if int(p) < len(loadRecoveryNames) {
		return loadRecoveryNames[p]
	}
	return fmt.Sprintf("loadrecovery(%d)", int(p))
}

// MemDepPolicy selects how the machine manages the memory dependence loop
// (Figure 2's load/store reorder trap loop): may a load issue past older
// stores whose addresses are still unknown?
type MemDepPolicy int

const (
	// MemDepStoreWait speculates by default but trains a store-wait bit
	// for loads caught violating memory order, making them wait next
	// time — the Alpha 21264 policy.
	MemDepStoreWait MemDepPolicy = iota
	// MemDepBlind always lets loads issue past unresolved stores; every
	// violation costs a trap.
	MemDepBlind
	// MemDepConservative makes every load wait until all older stores
	// have resolved their addresses; no violations, much less overlap.
	MemDepConservative
)

var memDepNames = [...]string{"storewait", "blind", "conservative"}

// String names the policy.
func (p MemDepPolicy) String() string {
	if int(p) < len(memDepNames) {
		return memDepNames[p]
	}
	return fmt.Sprintf("memdep(%d)", int(p))
}

// PredictorKind selects the branch direction predictor.
type PredictorKind string

// Supported predictor kinds.
const (
	PredTournament PredictorKind = "tournament"
	PredBimodal    PredictorKind = "bimodal"
	PredGShare     PredictorKind = "gshare"
	PredStatic     PredictorKind = "static-taken"
	PredPerceptron PredictorKind = "perceptron"
)

// Config fully describes one simulation.
type Config struct {
	// Workload supplies one profile per hardware thread.
	Workload workload.Workload
	// Seed makes the run deterministic.
	Seed int64 // simlint:novalidate every seed is a valid run

	// Machine widths.
	FetchWidth  int // instructions fetched per cycle (8)
	RenameWidth int // instructions renamed/inserted per cycle (8)
	RetireWidth int // instructions retired per cycle (8)

	// Window sizes.
	IQEntries   int // unified instruction queue capacity (128)
	Clusters    int // functional-unit clusters, 1 issue each per cycle (8)
	MaxInFlight int // maximum instructions in flight (256)
	NumPhysRegs int // physical register file size (512)

	// Pipeline latencies (cycles). The paper's headline parameters:
	// DEC-IQ is decode through IQ insertion; IQ-EX is issue through
	// operand delivery at the functional units; RegReadLat is the
	// register file access within whichever path performs it.
	DecIQLat      int
	IQExLat       int
	RegReadLat    int
	FeedbackDelay int // execute -> IQ notification (3)
	BranchFBDelay int // branch resolve -> fetch redirect (1)

	// IQEvictDelay is the extra cycles needed to clear an IQ entry after
	// it is tagged for eviction (Section 2.2.2: "Once an instruction is
	// tagged for eviction from the IQ, extra cycles are needed to clear
	// the entry").
	IQEvictDelay int

	// Forwarding buffer.
	FwdDepth int // cycles results remain forwardable (9)
	WBDelay  int // completion -> register file write (4)

	// DRA. When UseDRA is set, operands are delivered via the paper's
	// four paths (pre-read payload, forwarding buffer, CRC, miss
	// recovery) and the operand resolution loop exists.
	UseDRA bool
	DRA    core.Config

	// Load resolution loop policy.
	LoadPolicy LoadRecovery

	// Memory dependence loop policy, plus the store-wait predictor's
	// geometry (used by MemDepStoreWait).
	MemDep          MemDepPolicy
	StoreWaitSize   int   // predictor entries (power of two)
	StoreWaitClear  int64 // cycles between predictor resets
	StoreForwardLat int   // load-to-use latency when forwarding from a store

	// Memory system.
	Mem mem.HierConfig
	// TLBRefill is the extra latency added to a load that misses the TLB
	// (on top of the trap recovery at fetch).
	TLBRefill int

	// Predictor selects the branch predictor model.
	Predictor PredictorKind
	// BTBEntries sizes the branch target buffer used by the next-address
	// loop; predicted-taken branches that miss the BTB cost a fetch
	// bubble.
	BTBEntries int
	// BTBMissBubble is the fetch-stall, in cycles, for a predicted-taken
	// branch whose target is not in the BTB.
	BTBMissBubble int

	// Run lengths, in retired correct-path instructions (all threads).
	WarmupInstructions  uint64
	MeasureInstructions uint64

	// CycleBudget, when positive, bounds the run in simulated cycles:
	// RunContext aborts with ErrCycleBudget once the machine passes it
	// without finishing its measurement window. Zero means unbounded. The
	// budget is a guard rail around the run, not part of the modelled
	// machine — a run that completes within its budget is cycle-for-cycle
	// identical to the same run with no budget.
	CycleBudget int64

	// Tracer, when non-nil, receives one record per retired instruction
	// (a pipeline-viewer stream). Tracing does not perturb timing.
	Tracer *Tracer // simlint:novalidate nil and non-nil are both legal

	// Observability (internal/obs). The probes are strictly passive:
	// enabling them must not change any simulation outcome, and both
	// sinks nil makes the layer free.

	// SampleInterval is the interval probe's period in simulated cycles;
	// 0 selects DefaultSampleInterval when Intervals is set.
	SampleInterval int64
	// Intervals, when non-nil, receives one counter-delta record per
	// SampleInterval cycles, covering the whole run including warmup.
	Intervals obs.IntervalSink // simlint:novalidate nil disables the probe
	// Events, when non-nil, receives one record per loose-loop traversal
	// (mispredicts, load/operand reissues, traps, front-end stalls).
	Events obs.EventSink // simlint:novalidate nil disables the stream
}

// DefaultSampleInterval is the interval probe's period when
// Config.SampleInterval is left zero.
const DefaultSampleInterval = 10_000

// DefaultConfig returns the paper's base machine running the given
// workload: 8-wide SMT with a 128-entry IQ, 256 in flight, DEC-IQ = 5,
// IQ-EX = 5 with a 3-cycle register file read, 9-cycle forwarding buffer,
// and load-hit speculation with reissue recovery.
func DefaultConfig(wl workload.Workload) Config {
	return Config{
		Workload:    wl,
		Seed:        1,
		FetchWidth:  8,
		RenameWidth: 8,
		RetireWidth: 8,
		IQEntries:   128,
		Clusters:    8,
		MaxInFlight: 256,
		NumPhysRegs: 512,

		DecIQLat:      5,
		IQExLat:       5,
		RegReadLat:    3,
		FeedbackDelay: 3,
		BranchFBDelay: 1,

		IQEvictDelay: 2,

		FwdDepth: 9,
		WBDelay:  4,

		UseDRA: false,
		DRA:    core.DefaultConfig(),

		LoadPolicy: LoadReissue,

		MemDep:          MemDepStoreWait,
		StoreWaitSize:   4096,
		StoreWaitClear:  131_072,
		StoreForwardLat: 3,

		Mem:       mem.DefaultHierConfig(),
		TLBRefill: 30,

		Predictor:     PredTournament,
		BTBEntries:    1024,
		BTBMissBubble: 2,

		WarmupInstructions:  150_000,
		MeasureInstructions: 300_000,
	}
}

// BaseConfigRF returns the base (non-DRA) machine for a given register file
// access latency, per the paper's Section 6 arithmetic: IQ-EX is the
// register read plus one cycle of select and one of payload access.
func BaseConfigRF(wl workload.Workload, regReadLat int) Config {
	cfg := DefaultConfig(wl)
	cfg.RegReadLat = regReadLat
	cfg.DecIQLat = 5
	cfg.IQExLat = 2 + regReadLat // 3 -> 5_5, 5 -> 5_7, 7 -> 5_9
	return cfg
}

// DRAConfigRF returns the DRA machine for a given register file access
// latency: the register read moves into the DEC-IQ path (which grows to
// cover it once it exceeds the base 5 cycles) and IQ-EX shrinks to 3 — one
// cycle each for select, payload, and the forwarding/CRC access.
func DRAConfigRF(wl workload.Workload, regReadLat int) Config {
	cfg := DefaultConfig(wl)
	cfg.UseDRA = true
	cfg.RegReadLat = regReadLat
	cfg.IQExLat = 3
	cfg.DecIQLat = 2 + regReadLat // rename results available after cycle 2
	if cfg.DecIQLat < 5 {
		cfg.DecIQLat = 5 // 3 -> 5_3, 5 -> 7_3, 7 -> 9_3
	}
	return cfg
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if len(c.Workload.Threads) == 0 {
		return fmt.Errorf("pipeline: no workload threads")
	}
	for _, p := range c.Workload.Threads {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	pos := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth}, {"RenameWidth", c.RenameWidth}, {"RetireWidth", c.RetireWidth},
		{"IQEntries", c.IQEntries}, {"Clusters", c.Clusters}, {"MaxInFlight", c.MaxInFlight},
		{"DecIQLat", c.DecIQLat}, {"IQExLat", c.IQExLat}, {"RegReadLat", c.RegReadLat},
		{"FeedbackDelay", c.FeedbackDelay}, {"BranchFBDelay", c.BranchFBDelay},
		{"FwdDepth", c.FwdDepth}, {"WBDelay", c.WBDelay},
	}
	for _, p := range pos {
		if p.v < 1 {
			return fmt.Errorf("pipeline: %s = %d, must be >= 1", p.name, p.v)
		}
	}
	nonneg := []struct {
		name string
		v    int
	}{
		{"IQEvictDelay", c.IQEvictDelay}, {"StoreForwardLat", c.StoreForwardLat},
		{"TLBRefill", c.TLBRefill}, {"BTBMissBubble", c.BTBMissBubble},
	}
	for _, p := range nonneg {
		if p.v < 0 {
			return fmt.Errorf("pipeline: %s = %d, must be >= 0", p.name, p.v)
		}
	}
	if c.NumPhysRegs < c.MaxInFlight {
		return fmt.Errorf("pipeline: %d physical registers cannot cover %d in flight", c.NumPhysRegs, c.MaxInFlight)
	}
	if c.MeasureInstructions == 0 {
		return fmt.Errorf("pipeline: MeasureInstructions must be > 0")
	}
	if c.SampleInterval < 0 {
		return fmt.Errorf("pipeline: SampleInterval = %d, must be >= 0", c.SampleInterval)
	}
	if c.CycleBudget < 0 {
		return fmt.Errorf("pipeline: CycleBudget = %d, must be >= 0", c.CycleBudget)
	}
	if c.WarmupInstructions > 1<<40 {
		return fmt.Errorf("pipeline: WarmupInstructions = %d, implausibly large", c.WarmupInstructions)
	}
	if int(c.LoadPolicy) < 0 || int(c.LoadPolicy) >= len(loadRecoveryNames) {
		return fmt.Errorf("pipeline: unknown load recovery policy %d", int(c.LoadPolicy))
	}
	if int(c.MemDep) < 0 || int(c.MemDep) >= len(memDepNames) {
		return fmt.Errorf("pipeline: unknown memory dependence policy %d", int(c.MemDep))
	}
	// The store-wait predictor is constructed for every policy (it is
	// simply untrained outside MemDepStoreWait), so its geometry must
	// always be legal.
	if c.StoreWaitSize < 1 || c.StoreWaitSize&(c.StoreWaitSize-1) != 0 {
		return fmt.Errorf("pipeline: StoreWaitSize = %d, must be a power of two", c.StoreWaitSize)
	}
	if c.StoreWaitClear < 1 {
		return fmt.Errorf("pipeline: StoreWaitClear = %d, must be >= 1", c.StoreWaitClear)
	}
	switch c.Predictor {
	case PredTournament, PredBimodal, PredGShare, PredStatic, PredPerceptron, "":
	default:
		return fmt.Errorf("pipeline: unknown predictor kind %q", c.Predictor)
	}
	if c.BTBEntries < 1 || c.BTBEntries&(c.BTBEntries-1) != 0 {
		return fmt.Errorf("pipeline: BTBEntries = %d, must be a power of two", c.BTBEntries)
	}
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if c.UseDRA {
		if err := c.DRA.Validate(); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		if c.DRA.Clusters != c.Clusters {
			return fmt.Errorf("pipeline: DRA clusters (%d) must match machine clusters (%d)", c.DRA.Clusters, c.Clusters)
		}
	}
	return nil
}
