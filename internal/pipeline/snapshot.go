package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"loosesim/internal/bpred"
	"loosesim/internal/isa"
	"loosesim/internal/snap"
	"loosesim/internal/uop"
)

// Machine checkpoints. Snapshot serializes the complete mutable state of
// a machine — every in-flight uop, the per-thread front ends, the IQ,
// rename/forwarding/memory/predictor state, the event rings, and all
// statistics — into a versioned, sha256-sealed container whose meta
// section carries a digest of the run-invariant configuration. Restore
// rebuilds a machine from the same configuration and the container;
// running the restored machine is bit-identical to running the original
// through the same cycles (enforced by TestSnapshotResumeByteIdentity).
//
// The uop graph is serialized as a table: every live record — members of
// the per-thread windows plus the dead queue awaiting reclaim — gets an
// index, and every cross-reference (decode pipes, IQ entries, memory
// dependence lists, event-ring entries) is encoded as an index into that
// table. The set is complete by construction: fetch puts every record
// into its thread's window, and retire/squash moves it to the dead queue
// for ringSize cycles, longer than any event or IQ reference outlives it.

const (
	snapMagic   = "LOOMACH"
	snapVersion = 1

	// noUop is the encoded id for a nil uop reference.
	noUop = ^uint32(0)

	// maxSnapUops bounds the live-uop table a decoder will accept.
	maxSnapUops = 1 << 20
	// maxSnapReplay bounds a thread's queued replay instructions.
	maxSnapReplay = 1 << 20
	// maxGenReplay bounds the generator fast-forward count, mirroring
	// Config.Validate's bound on run length.
	maxGenReplay = uint64(1) << 40
)

// ConfigDigest returns the hex sha256 identifying the run-invariant part
// of cfg: run lengths and observability hooks are zeroed first, so a
// checkpoint taken under one warmup/measure split restores under another
// (the sampler's measurement windows), while any structural difference —
// widths, latencies, workload, seed — is rejected.
func ConfigDigest(cfg Config) (string, error) {
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 0
	cfg.CycleBudget = 0
	cfg.SampleInterval = 0
	cfg.Tracer = nil
	cfg.Events = nil
	cfg.Intervals = nil
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("pipeline: config digest: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Snapshot encodes the machine's complete state as a sealed checkpoint.
// It reads but never mutates the machine: snapshotting mid-run and
// continuing is exactly the uninterrupted run.
func (m *Machine) Snapshot() ([]byte, error) {
	digest, err := ConfigDigest(m.cfg)
	if err != nil {
		return nil, err
	}
	var w snap.Writer
	m.encodePayload(&w)
	return snap.Seal(snapMagic, snapVersion, []byte(digest), w.Bytes()), nil
}

// Restore builds a machine from cfg and a checkpoint produced by
// Snapshot under a configuration with the same ConfigDigest. Corrupt or
// mismatched data returns an error (wrapping snap.ErrCorrupt for bad
// bytes); it never panics.
func Restore(cfg Config, data []byte) (*Machine, error) {
	return RestoreReusing(cfg, data, nil)
}

// RestoreReusing is Restore with a generator donor. Checkpoints encode
// each workload generator as its stream position and Restore rebuilds it
// by replaying the deterministic stream from zero — O(position) work
// that dominates restore cost deep into a run. A donor machine under the
// same ConfigDigest whose generators sit at or before the checkpoint's
// positions lets the replay start from where the donor left off instead:
// the sampler passes each window's finished machine as the donor for the
// next, turning N restores costing O(N·position) total into one
// incremental pass over the stream.
//
// The donor is consumed: its generators are transplanted (or discarded)
// and it must not be used afterwards, whether or not an error is
// returned. A nil donor makes this identical to Restore.
func RestoreReusing(cfg Config, data []byte, donor *Machine) (*Machine, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	digest, err := ConfigDigest(cfg)
	if err != nil {
		return nil, err
	}
	if donor != nil {
		ddigest, err := ConfigDigest(donor.cfg)
		if err != nil {
			return nil, err
		}
		if ddigest != digest {
			return nil, fmt.Errorf("pipeline: donor machine has config %.12s…, restoring under %.12s…", ddigest, digest)
		}
		m.genDonor = donor
		defer func() {
			m.genDonor = nil
			// Fail fast if the caller touches the consumed donor again:
			// its generators may now belong to the restored machine.
			for _, t := range donor.threads {
				t.gen, t.wp = nil, nil
			}
		}()
	}
	meta, payload, err := snap.Open(data, snapMagic, snapVersion)
	if err != nil {
		return nil, err
	}
	if string(meta) != digest {
		return nil, fmt.Errorf("pipeline: checkpoint was taken under config %.12s…, restoring under %.12s…: %w",
			meta, digest, snap.ErrCorrupt)
	}
	r := snap.NewReader(payload)
	m.restorePayload(r)
	if err := r.Expect(); err != nil {
		return nil, err
	}
	return m, nil
}

// Cycle returns the machine's current cycle.
func (m *Machine) Cycle() int64 { return m.cycle }

// Retired returns the total retired correct-path instructions so far,
// warmup included.
func (m *Machine) Retired() uint64 { return m.ctr.Retired }

// RunUntilRetired advances the machine until at least n total
// instructions have retired (warmup included), using exactly the
// RunContext loop structure so that stopping here, snapshotting, and
// continuing — in this process or another — is cycle-for-cycle identical
// to an uninterrupted run.
func (m *Machine) RunUntilRetired(ctx context.Context, n uint64) error {
	done := ctx.Done()
	budget := m.cfg.CycleBudget
	if m.cfg.WarmupInstructions == 0 && !m.measuring {
		m.startMeasuring()
	}
	for m.ctr.Retired < n {
		if budget > 0 && m.cycle >= budget {
			return fmt.Errorf("%w: budget %d spent at cycle %d with %d retired",
				ErrCycleBudget, budget, m.cycle, m.ctr.Retired)
		}
		if done != nil && m.cycle&(cancelCheckInterval-1) == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		m.step()
		if !m.measuring && m.ctr.Retired >= m.cfg.WarmupInstructions {
			m.startMeasuring()
		}
		if m.cycle-m.lastRetireCycle > 500_000 {
			panic(fmt.Sprintf("pipeline: deadlock at cycle %d (%d retired, IQ %d/%d, inflight %d)",
				m.cycle, m.ctr.Retired, m.q.Len(), m.cfg.IQEntries, m.inFlight()))
		}
	}
	return nil
}

// wpWarmDepth is the wrong-path traffic model for functional warming: on
// each branch the warmed predictor would mispredict, this many wrong-path
// instructions are drawn from the thread's wrong-path generator and their
// loads and stores applied to the cache hierarchy. The detailed machine
// spends the branch-resolution latency fetching — and speculatively
// executing — the wrong path, and on these workloads that traffic touches
// the same working set, so skipping it leaves the warmed caches biased
// against the detailed machine's contents. The depth was calibrated on
// the tier-1 grid (docs/DESIGN.md §12): it sits near the detailed
// machine's observed wrong-path fetches per mispredict, and the sampled
// IPC bias crosses zero close to it on both the most branch-bound
// benchmarks (gcc, comp).
const wpWarmDepth = 64

// WarmForward is the functional-warming fast path: it draws n
// instructions round-robin across threads and applies only their cache,
// TLB, and predictor effects — no pipeline timing, no uops, no counters.
// This is how the sampler carries long-lived microarchitectural state
// (cache contents, predictor training) across the gap between measurement
// windows at a small fraction of cycle-accurate cost. Only meaningful on
// a machine that has not started detailed execution.
//
// The store-wait predictor is deliberately NOT warmed: a trap requires a
// load to issue before an older aliasing store resolves, which is a
// property of detailed timing that the functional stream cannot observe.
// Training on stream-order aliasing alone saturates the table and
// suppresses the memory-order trap replays the detailed machine actually
// takes (measured on gcc: warmed-table windows took zero traps where the
// detailed machine took several, hiding the replay cost). An empty table
// plus the per-window detailed warmup reproduces the trap rate almost
// exactly.
func (m *Machine) WarmForward(n uint64) {
	nt := len(m.threads)
	for i := uint64(0); i < n; i++ {
		ti := int(i) % nt
		t := m.threads[ti]
		in := t.gen.Next()
		switch in.Op {
		case isa.Load:
			m.memh.WarmLoad(in.Addr)
		case isa.Store:
			m.memh.WarmStore(in.Addr)
		case isa.Branch:
			predTaken := m.pred.Predict(in.PC)
			m.pred.Update(in.PC, in.Taken)
			if in.Taken {
				m.btb.Insert(in.PC, in.PC+64) // synthetic target, as resolveBranch
			}
			if predTaken != in.Taken {
				for j := 0; j < wpWarmDepth; j++ {
					win := t.wp.Next()
					switch win.Op {
					case isa.Load:
						m.memh.WarmLoad(win.Addr)
					case isa.Store:
						m.memh.WarmStore(win.Addr)
					default:
						// Wrong-path compute leaves no long-lived state.
					}
				}
			}
		default:
			// IntALU, IntMul, FPAdd, FPMul, FPDiv, Nop: pure compute, no
			// long-lived microarchitectural state to warm.
		}
	}
}

// Warmed returns the number of instructions the generators have produced
// so far across threads — the stream position a checkpoint captures.
func (m *Machine) Warmed() uint64 {
	var n uint64
	for _, t := range m.threads {
		n += t.gen.Generated()
	}
	return n
}

// ---------------------------------------------------------------------------
// Payload encoding.

// snapCounters writes every Counters field in declaration order.
func snapCounters(w *snap.Writer, c Counters) {
	w.I64(c.Cycles)
	w.U64(c.Retired)
	w.U64(c.Fetched)
	w.U64(c.WrongPathFetch)
	w.U64(c.BTBBubbles)
	w.U64(c.RenameStallIQ)
	w.U64(c.FrontStalls)
	w.U64(c.Branches)
	w.U64(c.Mispredicts)
	w.U64(c.SquashedTotal)
	w.U64(c.SquashedIssued)
	w.U64(c.BranchResLatSum)
	w.U64(c.Loads)
	w.U64(c.L1Misses)
	w.U64(c.L2Misses)
	w.U64(c.BankConflicts)
	w.U64(c.LoadMisspecs)
	w.U64(c.DataReissues)
	w.U64(c.LoadRefetches)
	w.U64(c.TLBMissTraps)
	w.U64(c.MemOrderTraps)
	w.U64(c.StoreForwards)
	w.U64(c.IssuedTotal)
	w.U64(c.ExecutedUseful)
	w.U64(c.OperandsRead)
	w.U64(c.OperandPreRead)
	w.U64(c.OperandForwarded)
	w.U64(c.OperandCRC)
	w.U64(c.OperandMisses)
	w.U64(c.OperandReissues)
}

func restoreCounters(r *snap.Reader) Counters {
	var c Counters
	c.Cycles = r.I64()
	c.Retired = r.U64()
	c.Fetched = r.U64()
	c.WrongPathFetch = r.U64()
	c.BTBBubbles = r.U64()
	c.RenameStallIQ = r.U64()
	c.FrontStalls = r.U64()
	c.Branches = r.U64()
	c.Mispredicts = r.U64()
	c.SquashedTotal = r.U64()
	c.SquashedIssued = r.U64()
	c.BranchResLatSum = r.U64()
	c.Loads = r.U64()
	c.L1Misses = r.U64()
	c.L2Misses = r.U64()
	c.BankConflicts = r.U64()
	c.LoadMisspecs = r.U64()
	c.DataReissues = r.U64()
	c.LoadRefetches = r.U64()
	c.TLBMissTraps = r.U64()
	c.MemOrderTraps = r.U64()
	c.StoreForwards = r.U64()
	c.IssuedTotal = r.U64()
	c.ExecutedUseful = r.U64()
	c.OperandsRead = r.U64()
	c.OperandPreRead = r.U64()
	c.OperandForwarded = r.U64()
	c.OperandCRC = r.U64()
	c.OperandMisses = r.U64()
	c.OperandReissues = r.U64()
	return c
}

func snapStack(w *snap.Writer, s CycleStack) {
	w.I64(s.Retiring)
	w.I64(s.FrontEnd)
	w.I64(s.Decode)
	w.I64(s.IQWait)
	w.I64(s.MemExec)
	w.I64(s.Exec)
}

func restoreStack(r *snap.Reader) CycleStack {
	var s CycleStack
	s.Retiring = r.I64()
	s.FrontEnd = r.I64()
	s.Decode = r.I64()
	s.IQWait = r.I64()
	s.MemExec = r.I64()
	s.Exec = r.I64()
	return s
}

// encodePayload writes the machine's state. The live-uop table comes
// first; every later uop reference is a u32 index into it.
func (m *Machine) encodePayload(w *snap.Writer) {
	w.I64(m.cycle)
	w.U64(m.seq)

	// Live-uop table: thread windows front-to-back, then the dead queue.
	ids := make(map[*uop.UOp]uint32)
	var table []*uop.UOp
	add := func(u *uop.UOp) {
		if _, dup := ids[u]; dup {
			panic(fmt.Sprintf("pipeline: snapshot: %v appears twice in the live set", u))
		}
		ids[u] = uint32(len(table))
		table = append(table, u)
	}
	for _, t := range m.threads {
		for i := 0; i < t.window.len(); i++ {
			add(t.window.at(i))
		}
	}
	for _, rec := range m.dead[m.deadHead:] {
		add(rec.u)
	}
	id := func(u *uop.UOp) uint32 {
		if u == nil {
			return noUop
		}
		i, ok := ids[u]
		if !ok {
			panic(fmt.Sprintf("pipeline: snapshot: reference to %v outside the live set", u))
		}
		return i
	}
	idList := func(us []*uop.UOp) {
		w.Len(len(us))
		for _, u := range us {
			w.U32(id(u))
		}
	}
	w.Len(len(table))
	for _, u := range table {
		u.Snapshot(w)
	}

	// Per-thread front-end and window state. Generators are encoded as
	// their stream positions: they are deterministic functions of the
	// config, so the restore side rebuilds them by replay.
	for _, t := range m.threads {
		w.U64(t.gen.Generated())
		w.U64(t.wp.Generated())
		w.Len(t.window.len())
		for i := 0; i < t.window.len(); i++ {
			w.U32(id(t.window.at(i)))
		}
		w.Len(t.decode.len())
		for i := 0; i < t.decode.len(); i++ {
			w.U32(id(t.decode.at(i)))
		}
		w.Bool(t.wrongPath)
		w.U32(id(t.wpBranch))
		w.Len(len(t.replay) - t.replayHead)
		for _, in := range t.replay[t.replayHead:] {
			in.Snapshot(w)
		}
		idList(t.memStores)
		idList(t.memLoads)
		w.U64(t.minUnexecStore)
		w.I64(t.fetchBlockedUntil)
		w.U64(t.retired)
		w.U64(t.warmRetired)
	}

	// IQ entry lists (rebuilt through Insert on restore) and counters.
	for c := 0; c < m.cfg.Clusters; c++ {
		idList(m.q.ClusterEntries(c))
	}
	m.q.Snapshot(w)

	// Subsystems.
	m.rf.Snapshot(w)
	m.fb.Snapshot(w)
	m.memh.Snapshot(w)
	bpred.SnapshotPredictor(w, m.pred)
	m.btb.Snapshot(w)
	m.swPred.Snapshot(w)
	if m.dra != nil {
		m.dra.Snapshot(w)
	}

	// Wakeup state.
	w.I64s(m.readyAt)
	w.I64s(m.actualAt)
	w.Len(len(m.regGen))
	for _, g := range m.regGen {
		w.U32(g)
	}

	// Event rings: per kind, the non-empty future slots in cycle order.
	// At a step boundary every slot holds events for exactly one cycle in
	// (m.cycle, m.cycle+ringSize), so (kind, offset) identifies a slot.
	for kind := 0; kind < numEvKinds; kind++ {
		nonEmpty := 0
		for off := int64(1); off < ringSize; off++ {
			if len(m.rings[kind].slots[(m.cycle+off)&(ringSize-1)]) > 0 {
				nonEmpty++
			}
		}
		w.Len(nonEmpty)
		for off := int64(1); off < ringSize; off++ {
			slot := m.rings[kind].slots[(m.cycle+off)&(ringSize-1)]
			if len(slot) == 0 {
				continue
			}
			w.U16(uint16(off))
			w.Len(len(slot))
			for _, e := range slot {
				w.U32(id(e.u))
				w.I32(e.tag)
				w.U32(e.gen)
			}
		}
	}

	// Measurement and observability state.
	snapCounters(w, m.ctr)
	snapCounters(w, m.warmSnap)
	w.Bool(m.measuring)
	m.opGap.Snapshot(w)
	w.U64(m.occSum)
	w.U64(m.retainSum)
	w.U64(m.samples)
	snapStack(w, m.stack)
	snapStack(w, m.warmStack)
	snapCounters(w, m.ivSnap)
	w.I64(m.ivStart)
	w.Int(m.ivIndex)
	w.U64(m.ivOcc)

	w.I64(m.frontStallUntil)
	w.I64(m.lastRetireCycle)
	w.Int(m.rrRename)
	w.Int(m.rrRetire)
	w.Int(m.rrFetch)

	// Dead queue (head-normalized: restore starts at deadHead = 0).
	w.Len(len(m.dead) - m.deadHead)
	for _, rec := range m.dead[m.deadHead:] {
		w.U32(id(rec.u))
		w.I64(rec.at)
	}
}

// restorePayload overwrites m (freshly built by New) with the encoded
// state. Every index, enum, and count is bounds-checked against the
// machine's geometry; any violation latches snap.ErrCorrupt on r and the
// caller discards the machine.
func (m *Machine) restorePayload(r *snap.Reader) {
	m.cycle = r.I64()
	m.seq = r.U64()

	// Live-uop table. Records come from the pool exactly as fetch would
	// draw them; the member check runs per uop so corrupt indices fail
	// before they can touch a slice.
	n := r.Len(maxSnapUops)
	if r.Err() != nil {
		return
	}
	uops := make([]*uop.UOp, n)
	for i := range uops {
		u := m.pool.Get(isa.Inst{}, 0, 0, 0)
		u.Restore(r)
		if r.Err() != nil {
			return
		}
		if u.Thread >= len(m.threads) {
			r.Failf("uop %d: thread %d of %d", i, u.Thread, len(m.threads))
			return
		}
		if u.Cluster >= m.cfg.Clusters {
			r.Failf("uop %d: cluster %d of %d", i, u.Cluster, m.cfg.Clusters)
			return
		}
		for _, p := range []int32{int32(u.Dest), int32(u.OldPhy), int32(u.Src[0]), int32(u.Src[1])} {
			if p != -1 && int(p) >= m.cfg.NumPhysRegs {
				r.Failf("uop %d: preg %d of %d", i, p, m.cfg.NumPhysRegs)
				return
			}
		}
		uops[i] = u
	}
	seen := make([]bool, n) // window/dead membership: each uop exactly once
	byID := func(context string) (int, bool) {
		v := r.U32()
		if r.Err() != nil {
			return 0, false
		}
		if v >= uint32(n) {
			r.Failf("%s: uop id %d of %d", context, v, n)
			return 0, false
		}
		return int(v), true
	}
	idList := func(context string, dst []*uop.UOp) []*uop.UOp {
		cnt := r.Len(n)
		for i := 0; i < cnt; i++ {
			idx, ok := byID(context)
			if !ok {
				return dst
			}
			dst = append(dst, uops[idx])
		}
		return dst
	}

	// Threads.
	for _, t := range m.threads {
		genN := r.U64()
		wpN := r.U64()
		if genN > maxGenReplay || wpN > maxGenReplay {
			r.Failf("thread %d: generator position %d/%d implausible", t.id, genN, wpN)
			return
		}
		if r.Err() != nil {
			return
		}
		// Replay the deterministic streams up to the recorded positions.
		// A donor generator already partway there (never past) resumes
		// the replay from its position instead of from zero.
		if d := m.genDonor; d != nil && t.id < len(d.threads) {
			dt := d.threads[t.id]
			if dt.gen != nil && dt.gen.Generated() <= genN {
				t.gen = dt.gen
			}
			if dt.wp != nil && dt.wp.Generated() <= wpN {
				t.wp = dt.wp
			}
		}
		// simlint:bounded Generated() increments by one on every Next()
		for t.gen.Generated() < genN {
			t.gen.Next()
		}
		// simlint:bounded Generated() increments by one on every Next()
		for t.wp.Generated() < wpN {
			t.wp.Next()
		}
		wn := r.Len(n)
		for i := 0; i < wn; i++ {
			idx, ok := byID("window")
			if !ok {
				return
			}
			if seen[idx] {
				r.Failf("uop %d in two containers", idx)
				return
			}
			seen[idx] = true
			t.window.push(uops[idx])
		}
		dn := r.Len(n)
		for i := 0; i < dn; i++ {
			idx, ok := byID("decode")
			if !ok {
				return
			}
			t.decode.push(uops[idx])
		}
		t.wrongPath = r.Bool()
		if v := r.U32(); v != noUop {
			if v >= uint32(n) {
				r.Failf("wpBranch: uop id %d of %d", v, n)
				return
			}
			t.wpBranch = uops[v]
		}
		rn := r.Len(maxSnapReplay)
		if r.Err() != nil {
			return
		}
		t.replay = t.replay[:0]
		t.replayHead = 0
		for i := 0; i < rn; i++ {
			var in isa.Inst
			in.Restore(r)
			if r.Err() != nil {
				return
			}
			t.replay = append(t.replay, in)
		}
		t.memStores = idList("memStores", t.memStores)
		t.memLoads = idList("memLoads", t.memLoads)
		t.minUnexecStore = r.U64()
		t.fetchBlockedUntil = r.I64()
		t.retired = r.U64()
		t.warmRetired = r.U64()
		if r.Err() != nil {
			return
		}
	}

	// IQ: rebuild the entry lists through Insert (which re-checks
	// capacity), then overwrite the counters it bumped.
	inIQ := make([]bool, n)
	for c := 0; c < m.cfg.Clusters; c++ {
		cnt := r.Len(n)
		for i := 0; i < cnt; i++ {
			idx, ok := byID("iq")
			if !ok {
				return
			}
			u := uops[idx]
			if inIQ[idx] || !u.InIQ || u.Cluster != c {
				r.Failf("iq cluster %d entry %d: inconsistent membership for uop %d", c, i, idx)
				return
			}
			inIQ[idx] = true
			u.InIQ = false
			if !m.q.Insert(u) {
				r.Failf("iq cluster %d: overfull", c)
				return
			}
		}
	}
	for i, u := range uops {
		if u.InIQ != inIQ[i] {
			r.Failf("uop %d marked InIQ but in no cluster list", i)
			return
		}
	}
	m.q.Restore(r)

	// Subsystems.
	m.rf.Restore(r)
	m.fb.Restore(r)
	m.memh.Restore(r)
	bpred.RestorePredictor(r, m.pred)
	m.btb.Restore(r)
	m.swPred.Restore(r)
	if m.dra != nil {
		m.dra.Restore(r)
	}
	if r.Err() != nil {
		return
	}

	// Wakeup state.
	readyAt := r.I64s(m.cfg.NumPhysRegs)
	actualAt := r.I64s(m.cfg.NumPhysRegs)
	if len(readyAt) != m.cfg.NumPhysRegs || len(actualAt) != m.cfg.NumPhysRegs {
		r.Failf("wakeup state: %d/%d entries, want %d", len(readyAt), len(actualAt), m.cfg.NumPhysRegs)
		return
	}
	copy(m.readyAt, readyAt)
	copy(m.actualAt, actualAt)
	gn := r.Len(m.cfg.NumPhysRegs)
	if gn != m.cfg.NumPhysRegs {
		r.Failf("regGen: %d entries, want %d", gn, m.cfg.NumPhysRegs)
		return
	}
	for i := 0; i < gn; i++ {
		m.regGen[i] = r.U32()
	}

	// Event rings.
	for kind := 0; kind < numEvKinds; kind++ {
		slots := r.Len(ringSize - 1)
		prevOff := 0
		for s := 0; s < slots; s++ {
			off := int(r.U16())
			if off <= prevOff || off >= ringSize {
				r.Failf("ring %d: slot offset %d after %d", kind, off, prevOff)
				return
			}
			prevOff = off
			cnt := r.Len(n)
			for i := 0; i < cnt; i++ {
				idx, ok := byID("event")
				if !ok {
					return
				}
				tag := r.I32()
				gen := r.U32()
				m.rings[kind].schedule(m.cycle+int64(off), event{u: uops[idx], tag: tag, gen: gen})
			}
		}
	}

	// Measurement and observability state.
	m.ctr = restoreCounters(r)
	m.warmSnap = restoreCounters(r)
	m.measuring = r.Bool()
	m.opGap.Restore(r)
	m.occSum = r.U64()
	m.retainSum = r.U64()
	m.samples = r.U64()
	m.stack = restoreStack(r)
	m.warmStack = restoreStack(r)
	m.ivSnap = restoreCounters(r)
	m.ivStart = r.I64()
	m.ivIndex = r.Int()
	m.ivOcc = r.U64()

	m.frontStallUntil = r.I64()
	m.lastRetireCycle = r.I64()
	m.rrRename = r.Int()
	m.rrRetire = r.Int()
	m.rrFetch = r.Int()

	// Dead queue.
	dn := r.Len(n)
	for i := 0; i < dn; i++ {
		idx, ok := byID("dead")
		if !ok {
			return
		}
		if seen[idx] {
			r.Failf("uop %d in two containers", idx)
			return
		}
		seen[idx] = true
		at := r.I64()
		m.dead = append(m.dead, deadRecord{u: uops[idx], at: at})
	}
	m.deadHead = 0

	// Every table entry must live in exactly one container, or the pool
	// recycling discipline breaks on the restored machine.
	for i, s := range seen {
		if !s {
			r.Failf("uop %d in no window and not dead", i)
			return
		}
	}
}
