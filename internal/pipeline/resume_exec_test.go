package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSnapshotResumeFreshProcess is the cross-process half of the resume
// guarantee: a checkpoint taken here and restored by a brand-new process
// (re-exec of this test binary) must run to a result byte-identical to an
// uninterrupted run, and the trace stream must concatenate seamlessly —
// parent's records up to the checkpoint plus the child's records after it
// reproduce the uninterrupted stream exactly. In-process resume identity
// (TestSnapshotResumeByteIdentity) cannot see state smuggled through
// process globals or pointer identity; this test can.
func TestSnapshotResumeFreshProcess(t *testing.T) {
	cfg, err := fuzzCfg()
	if err != nil {
		t.Fatal(err)
	}

	if dir := os.Getenv("LOOSIM_RESUME_DIR"); dir != "" {
		resumeChild(t, cfg, dir)
		return
	}

	// Uninterrupted reference run, tracing every retirement.
	var refTrace bytes.Buffer
	refCfg := cfg
	refCfg.Tracer = NewTracer(&refTrace, 0)
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := refCfg.Tracer.Err(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: trace, stop mid-warmup, checkpoint, hand off.
	const stopAt = 500
	var preTrace bytes.Buffer
	preCfg := cfg
	preCfg.Tracer = NewTracer(&preTrace, 0)
	m, err := New(preCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilRetired(context.Background(), stopAt); err != nil {
		t.Fatal(err)
	}
	ckpt := mustSnapshot(t, m)

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ckpt"), ckpt, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestSnapshotResumeFreshProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(), "LOOSIM_RESUME_DIR="+dir)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}

	childRes, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := json.Marshal(refRes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(childRes, wantRes) {
		t.Fatalf("fresh-process result differs:\nchild: %s\nwant:  %s", childRes, wantRes)
	}

	childTrace, err := os.ReadFile(filepath.Join(dir, "trace"))
	if err != nil {
		t.Fatal(err)
	}
	// Every tracer writes its own header line; the child's is an artifact
	// of opening a new stream, not part of the record sequence.
	if i := bytes.IndexByte(childTrace, '\n'); i < 0 || !bytes.HasPrefix(childTrace, []byte("#")) {
		t.Fatalf("child trace has no header: %.80s", childTrace)
	} else {
		childTrace = childTrace[i+1:]
	}
	joined := append(bytes.Clone(preTrace.Bytes()), childTrace...)
	if !bytes.Equal(joined, refTrace.Bytes()) {
		t.Fatalf("trace streams do not concatenate: parent %d + child %d bytes vs uninterrupted %d",
			preTrace.Len(), len(childTrace), refTrace.Len())
	}
}

// resumeChild is the re-exec'd half: restore the parent's checkpoint, run
// to completion with a fresh tracer, and write the result and trace
// suffix back for the parent to compare.
func resumeChild(t *testing.T, cfg Config, dir string) {
	ckpt, err := os.ReadFile(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	cfg.Tracer = NewTracer(&trace, 0)
	m, err := Restore(cfg, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Err(); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "result.json"), out, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace"), trace.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}
