package pipeline

import "loosesim/internal/uop"

// inf is a cycle later than any the simulation reaches.
const inf int64 = 1 << 62

// deque is a FIFO of uops with O(1) amortised pop-front and tail
// truncation, used for per-thread windows and decode pipes.
type deque struct {
	buf  []*uop.UOp
	head int
}

func (d *deque) push(u *uop.UOp) {
	// simlint:prealloc grows to the window high-water mark once, then head-compacted and reused
	d.buf = append(d.buf, u)
}

func (d *deque) len() int { return len(d.buf) - d.head }

// at returns the i-th element from the front (0 = oldest).
func (d *deque) at(i int) *uop.UOp { return d.buf[d.head+i] }

func (d *deque) front() *uop.UOp {
	if d.len() == 0 {
		return nil
	}
	return d.buf[d.head]
}

func (d *deque) popFront() *uop.UOp {
	u := d.buf[d.head]
	d.buf[d.head] = nil
	d.head++
	if d.head > 4096 && d.head*2 > len(d.buf) {
		n := copy(d.buf, d.buf[d.head:])
		for i := n; i < len(d.buf); i++ {
			d.buf[i] = nil
		}
		d.buf = d.buf[:n]
		d.head = 0
	}
	return u
}

// truncFrom drops every element at relative index >= i.
func (d *deque) truncFrom(i int) {
	for j := d.head + i; j < len(d.buf); j++ {
		d.buf[j] = nil
	}
	d.buf = d.buf[:d.head+i]
}

// Event kinds, processed in this order within a cycle so same-cycle
// interactions resolve deterministically: completions publish results
// before loads update wakeup state, and executions observe both.
const (
	evComplete = iota
	evLoadResolve
	evExec
	evWriteback
	evIQFree
	numEvKinds
)

// event is one scheduled pipeline occurrence. tag snapshots u.Issues at
// scheduling time so events belonging to a superseded issue of the same
// instruction are ignored; gen snapshots the destination register's
// generation for writeback events.
type event struct {
	u   *uop.UOp
	tag int32
	gen uint32
}

// ringSize must exceed the longest scheduling distance (memory latency +
// TLB refill + writeback delay, plus slack).
const ringSize = 1024

// slotCap is the event capacity preallocated per ring slot. Per-cycle
// per-kind event counts are bounded by machine widths (at most one evExec
// and one evIQFree per cluster per cycle); completions can pile deeper on
// pathological latency coincidences, in which case the slot grows once via
// append and keeps the larger capacity.
const slotCap = 8

// eventRing is a calendar queue: slot c%ringSize holds the events of cycle
// c for one event kind. init carves every slot out of one backing slab so
// the per-cycle schedule path never grows a slot from nil — before the
// slab, slot-by-slot append growth was ~90% of the machine's allocations.
type eventRing struct {
	slots [ringSize][]event
}

func (r *eventRing) init() {
	slab := make([]event, ringSize*slotCap)
	for i := range r.slots {
		r.slots[i] = slab[i*slotCap : i*slotCap : (i+1)*slotCap]
	}
}

func (r *eventRing) schedule(cycle int64, e event) {
	i := cycle & (ringSize - 1)
	// simlint:prealloc slots carved from the init slab; overflow growth is retained
	r.slots[i] = append(r.slots[i], e)
}

// take returns and clears the events for the given cycle.
func (r *eventRing) take(cycle int64) []event {
	i := cycle & (ringSize - 1)
	evs := r.slots[i]
	r.slots[i] = r.slots[i][:0]
	return evs
}
