package core

import (
	"math/rand"
	"testing"

	"loosesim/internal/regfile"
)

func BenchmarkCRCLookup(b *testing.B) {
	c := NewCRC(16)
	for p := regfile.PReg(0); p < 16; p++ {
		c.Insert(p, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(regfile.PReg(i&31), int64(i))
	}
}

func BenchmarkDRAEventMix(b *testing.B) {
	d := New(DefaultConfig(), 512)
	rng := rand.New(rand.NewSource(3))
	pregs := make([]regfile.PReg, 4096)
	clusters := make([]int, 4096)
	for i := range pregs {
		pregs[i] = regfile.PReg(rng.Intn(512))
		clusters[i] = rng.Intn(8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 4095
		switch i & 3 {
		case 0:
			d.RenameDest(pregs[k])
			d.RenameSource(clusters[k], pregs[k])
		case 1:
			d.ForwardHit(clusters[k], pregs[k])
		case 2:
			d.LookupCRC(clusters[k], pregs[k], int64(i))
		default:
			d.Writeback(pregs[k], int64(i))
		}
	}
}
