// Package core implements the paper's primary contribution: the
// Distributed Register Algorithm (DRA, Sections 4–5 of "Loose Loops Sink
// Chips"). The DRA moves the multi-cycle register file read out of the
// issue-to-execute (IQ-EX) path — shortening the load resolution loop — and
// replaces it with:
//
//   - a register pre-read filtering table (RPFT): one valid bit per
//     physical register, set at writeback and cleared at allocation.
//     Sources whose bit is set at rename are *completed operands* and are
//     pre-read from the register file in the DEC-IQ path into the IQ
//     payload;
//   - per-cluster insertion tables: 2-bit saturating counters, one per
//     physical register per functional-unit cluster, counting outstanding
//     consumers slotted to that cluster that still need the operand;
//   - per-cluster cluster register caches (CRCs): small fully associative
//     FIFO caches close to the functional units that hold *cached
//     operands* — values that were neither pre-read nor picked up from the
//     forwarding buffer.
//
// A consumer that finds its operand in none of payload / forwarding buffer /
// CRC suffers an *operand miss*, the mis-speculation of the new operand
// resolution loop the DRA introduces; the pipeline recovers by reading the
// register file into the payload and reissuing the instruction and its
// issued dependents.
package core

import (
	"fmt"

	"loosesim/internal/regfile"
)

// ReplacementPolicy selects how a CRC chooses victims.
type ReplacementPolicy uint8

// CRC replacement policies. The paper uses FIFO and reports that
// near-oracle knowledge buys almost nothing (Section 5.1); LRU is provided
// to reproduce that comparison.
const (
	// FIFO replaces the oldest-inserted entry.
	FIFO ReplacementPolicy = iota
	// LRU replaces the least recently read entry.
	LRU
)

// String names the policy.
func (p ReplacementPolicy) String() string {
	if p == LRU {
		return "lru"
	}
	return "fifo"
}

// Config sizes the DRA structures.
type Config struct {
	// Clusters is the number of functional-unit clusters (8 in the base
	// machine), each with its own CRC and insertion table.
	Clusters int
	// CRCEntries is the capacity of each cluster register cache (16 in
	// the paper: small enough for single-cycle fully associative access).
	CRCEntries int
	// CounterBits is the width of each insertion table counter (2 in the
	// paper, saturating at 3 outstanding consumers per cluster).
	CounterBits int
	// Policy selects the CRC replacement policy (paper: FIFO).
	Policy ReplacementPolicy
	// TimeoutCycles, when positive, expires CRC entries that have been
	// resident longer than this — the alternative staleness mechanism the
	// paper sketches in Section 5.5.
	TimeoutCycles int64
	// Monolithic collapses the per-cluster CRCs into one shared register
	// cache of CRCEntries entries — the strawman design Section 4 argues
	// against (a single small cache has too little capacity, a single
	// large one cannot be read in a cycle). Used by ablations.
	Monolithic bool // simlint:novalidate shape toggle; both values are legal
}

// DefaultConfig returns the paper's DRA geometry: 8 clusters × 16-entry
// CRCs with 2-bit insertion counters.
func DefaultConfig() Config {
	return Config{Clusters: 8, CRCEntries: 16, CounterBits: 2}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Clusters < 1 {
		return fmt.Errorf("core: Clusters = %d, must be >= 1", c.Clusters)
	}
	if c.CRCEntries < 1 {
		return fmt.Errorf("core: CRCEntries = %d, must be >= 1", c.CRCEntries)
	}
	if c.CounterBits < 1 || c.CounterBits > 8 {
		return fmt.Errorf("core: CounterBits = %d, must be in 1..8", c.CounterBits)
	}
	if c.Policy != FIFO && c.Policy != LRU {
		return fmt.Errorf("core: unknown replacement policy %d", c.Policy)
	}
	if c.TimeoutCycles < 0 {
		return fmt.Errorf("core: TimeoutCycles = %d, must be >= 0", c.TimeoutCycles)
	}
	return nil
}

func (c Config) counterMax() uint8 {
	if c.CounterBits <= 0 {
		return 1
	}
	if c.CounterBits >= 8 {
		return 255
	}
	return uint8(1<<c.CounterBits) - 1
}

// RPFT is the register pre-read filtering table: one bit per physical
// register indicating the value is present in the register file and may be
// pre-read in the DEC-IQ path (paper Section 5.2). It mirrors the register
// file's valid state as a separate physical structure with 16 read and 8
// write ports.
type RPFT struct {
	bits []bool
}

// NewRPFT returns an RPFT for numPhys physical registers, all initially
// valid (architectural state is in the register file at reset).
func NewRPFT(numPhys int) *RPFT {
	b := make([]bool, numPhys)
	for i := range b {
		b[i] = true
	}
	return &RPFT{bits: b}
}

// Set marks p as present in the register file (called at writeback).
func (r *RPFT) Set(p regfile.PReg) {
	if p != regfile.PRegInvalid {
		r.bits[p] = true
	}
}

// Clear marks p as in flight (called when the renamer allocates p).
func (r *RPFT) Clear(p regfile.PReg) {
	if p != regfile.PRegInvalid {
		r.bits[p] = false
	}
}

// Read reports whether p may be pre-read from the register file.
func (r *RPFT) Read(p regfile.PReg) bool {
	return p != regfile.PRegInvalid && r.bits[p]
}

// crcEntry is one CRC slot.
type crcEntry struct {
	preg     regfile.PReg
	valid    bool
	inserted int64 // cycle the value was written
	lastUse  int64 // cycle the value was last read
}

// CRC is a cluster register cache: a small fully associative structure
// managed as a simple FIFO (paper Section 5.1 — more complex replacement
// bought nothing measurable). LRU replacement and entry timeouts are
// available for the ablations that reproduce those design comparisons.
// Values are not modelled; presence is.
type CRC struct {
	entries []crcEntry
	policy  ReplacementPolicy
	timeout int64 // 0 = no timeout

	hits, misses, inserts, invalidates, expirations uint64
}

// NewCRC returns a FIFO CRC with the given capacity.
func NewCRC(entries int) *CRC { return NewCRCWith(entries, FIFO, 0) }

// NewCRCWith returns a CRC with the given capacity, replacement policy and
// entry timeout (0 disables timeouts).
func NewCRCWith(entries int, policy ReplacementPolicy, timeout int64) *CRC {
	if entries < 1 {
		panic(fmt.Sprintf("core: CRC needs at least one entry, got %d", entries))
	}
	return &CRC{entries: make([]crcEntry, entries), policy: policy, timeout: timeout}
}

// Lookup reports whether preg's value is present at the given cycle,
// updating statistics and LRU state. Timed-out entries miss and expire.
func (c *CRC) Lookup(p regfile.PReg, cycle int64) bool {
	i := c.probe(p)
	if i >= 0 && c.timeout > 0 && cycle-c.entries[i].inserted > c.timeout {
		c.entries[i].valid = false
		c.expirations++
		i = -1
	}
	if i >= 0 {
		c.entries[i].lastUse = cycle
		c.hits++
		return true
	}
	c.misses++
	return false
}

// probe returns the index holding p, or -1.
func (c *CRC) probe(p regfile.PReg) int {
	if p == regfile.PRegInvalid {
		return -1
	}
	for i := range c.entries {
		if c.entries[i].valid && c.entries[i].preg == p {
			return i
		}
	}
	return -1
}

// Contains reports presence without touching statistics (for tests).
func (c *CRC) Contains(p regfile.PReg) bool { return c.probe(p) >= 0 }

// Insert writes preg into the cache at the given cycle. If already present
// the entry's timestamp refreshes; otherwise the policy picks the victim.
func (c *CRC) Insert(p regfile.PReg, cycle int64) {
	if p == regfile.PRegInvalid {
		return
	}
	c.inserts++
	if i := c.probe(p); i >= 0 {
		c.entries[i].inserted = cycle
		return
	}
	victim := 0
	best := int64(1<<62 - 1)
	for i := range c.entries {
		if !c.entries[i].valid {
			victim = i
			break
		}
		key := c.entries[i].inserted
		if c.policy == LRU {
			key = c.entries[i].lastUse
		}
		if key < best {
			best = key
			victim = i
		}
	}
	c.entries[victim] = crcEntry{preg: p, valid: true, inserted: cycle, lastUse: cycle}
}

// Invalidate removes preg if present. Called when the physical register is
// reallocated so a stale value cannot be read (paper Section 5.5).
func (c *CRC) Invalidate(p regfile.PReg) {
	if i := c.probe(p); i >= 0 {
		c.entries[i].valid = false
		c.invalidates++
	}
}

// Occupancy returns the number of valid entries.
func (c *CRC) Occupancy() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].valid {
			n++
		}
	}
	return n
}

// Hits returns the lookup hit count.
func (c *CRC) Hits() uint64 { return c.hits }

// Misses returns the lookup miss count.
func (c *CRC) Misses() uint64 { return c.misses }

// Expirations returns the number of entries invalidated by timeout.
func (c *CRC) Expirations() uint64 { return c.expirations }

// InsertionTable counts, per physical register, the outstanding consumers
// slotted to one cluster that have not yet obtained the operand (paper
// Section 5.3). The counter saturates at 2^CounterBits−1 consumers: an
// operand with more consumers than that on one cluster will take an operand
// miss for the extras — one of the paper's two documented miss sources.
type InsertionTable struct {
	counts []uint8
	max    uint8

	saturations uint64
}

// NewInsertionTable returns a table for numPhys registers with counters
// saturating at maxCount.
func NewInsertionTable(numPhys int, maxCount uint8) *InsertionTable {
	return &InsertionTable{counts: make([]uint8, numPhys), max: maxCount}
}

// Inc notes a new outstanding consumer of p on this cluster (a failed
// pre-read routed here by the RPFT).
func (t *InsertionTable) Inc(p regfile.PReg) {
	if p == regfile.PRegInvalid {
		return
	}
	if t.counts[p] >= t.max {
		t.saturations++
		return
	}
	t.counts[p]++
}

// Dec notes a consumer on this cluster obtained p from the forwarding
// buffer; clamps at zero.
func (t *InsertionTable) Dec(p regfile.PReg) {
	if p != regfile.PRegInvalid && t.counts[p] > 0 {
		t.counts[p]--
	}
}

// Count returns the outstanding-consumer count for p.
func (t *InsertionTable) Count(p regfile.PReg) uint8 {
	if p == regfile.PRegInvalid {
		return 0
	}
	return t.counts[p]
}

// Clear zeroes the counter for p (after a CRC insertion consumes it, or
// when the register is reallocated).
func (t *InsertionTable) Clear(p regfile.PReg) {
	if p != regfile.PRegInvalid {
		t.counts[p] = 0
	}
}

// Saturations returns how many Inc calls hit the counter ceiling.
func (t *InsertionTable) Saturations() uint64 { return t.saturations }

// DRA composes the RPFT, insertion tables and CRCs and exposes the event
// interface the pipeline drives. All methods are per-event and O(small).
type DRA struct {
	cfg    Config
	rpft   *RPFT
	tables []*InsertionTable
	crcs   []*CRC

	preReads         uint64
	failedPreReads   uint64
	crcInsertsNeeded uint64
	discardedWBs     uint64
}

// New builds a DRA for a machine with numPhys physical registers.
func New(cfg Config, numPhys int) *DRA {
	if cfg.Clusters < 1 {
		panic("core: DRA needs at least one cluster")
	}
	d := &DRA{cfg: cfg, rpft: NewRPFT(numPhys)}
	banks := cfg.Clusters
	if cfg.Monolithic {
		banks = 1
	}
	for i := 0; i < banks; i++ {
		d.tables = append(d.tables, NewInsertionTable(numPhys, cfg.counterMax()))
		d.crcs = append(d.crcs, NewCRCWith(cfg.CRCEntries, cfg.Policy, cfg.TimeoutCycles))
	}
	return d
}

// bank maps a functional-unit cluster to its CRC/table index (always 0 for
// the monolithic strawman).
func (d *DRA) bank(cluster int) int {
	if d.cfg.Monolithic {
		return 0
	}
	return cluster
}

// Config returns the DRA geometry.
func (d *DRA) Config() Config { return d.cfg }

// RPFT exposes the pre-read filtering table.
func (d *DRA) RPFT() *RPFT { return d.rpft }

// CRCOf exposes one cluster's register cache.
func (d *DRA) CRCOf(cluster int) *CRC { return d.crcs[d.bank(cluster)] }

// TableOf exposes one cluster's insertion table.
func (d *DRA) TableOf(cluster int) *InsertionTable { return d.tables[d.bank(cluster)] }

// RenameSource handles one source operand at rename time for an instruction
// slotted to `cluster`. If the RPFT bit is set the operand is a completed
// operand: it is pre-read from the register file into the payload, and
// RenameSource returns true. Otherwise the source register number is routed
// to the cluster's insertion table and RenameSource returns false.
func (d *DRA) RenameSource(cluster int, p regfile.PReg) (preRead bool) {
	if p == regfile.PRegInvalid {
		return false
	}
	if d.rpft.Read(p) {
		d.preReads++
		return true
	}
	d.failedPreReads++
	d.tables[d.bank(cluster)].Inc(p)
	return false
}

// RenameDest handles destination allocation: the RPFT bit clears (the
// producer is now in flight) and any stale CRC entries for the reallocated
// physical register are invalidated, along with leftover insertion-table
// counts from its previous life.
func (d *DRA) RenameDest(p regfile.PReg) {
	if p == regfile.PRegInvalid {
		return
	}
	d.rpft.Clear(p)
	for i := range d.crcs {
		d.crcs[i].Invalidate(p)
	}
	for i := range d.tables {
		d.tables[i].Clear(p)
	}
}

// ForwardHit notes that a consumer on `cluster` obtained operand p from the
// forwarding buffer, decrementing that cluster's outstanding-consumer count.
func (d *DRA) ForwardHit(cluster int, p regfile.PReg) {
	d.tables[d.bank(cluster)].Dec(p)
}

// LookupCRC reports whether operand p is present in cluster's CRC at the
// given cycle.
func (d *DRA) LookupCRC(cluster int, p regfile.PReg, cycle int64) bool {
	return d.crcs[d.bank(cluster)].Lookup(p, cycle)
}

// Writeback handles a value arriving at the register file at the given
// cycle: the RPFT bit sets, and the value is inserted into the CRC of every
// cluster whose insertion table shows outstanding consumers (clearing those
// counts). It returns the number of CRCs the value was written into.
func (d *DRA) Writeback(p regfile.PReg, cycle int64) int {
	if p == regfile.PRegInvalid {
		return 0
	}
	d.rpft.Set(p)
	inserted := 0
	for i := range d.tables {
		if d.tables[i].Count(p) > 0 {
			d.crcs[i].Insert(p, cycle)
			d.tables[i].Clear(p)
			inserted++
		}
	}
	if inserted == 0 {
		d.discardedWBs++
	} else {
		d.crcInsertsNeeded++
	}
	return inserted
}

// PreReads returns the number of successful pre-read classifications.
func (d *DRA) PreReads() uint64 { return d.preReads }

// FailedPreReads returns the number of sources routed to insertion tables.
func (d *DRA) FailedPreReads() uint64 { return d.failedPreReads }

// DiscardedWritebacks returns writebacks with no outstanding consumers
// anywhere (the value was not cached — the common case, since most register
// values are read once, via forwarding).
func (d *DRA) DiscardedWritebacks() uint64 { return d.discardedWBs }
