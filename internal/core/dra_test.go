package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loosesim/internal/regfile"
)

func TestRPFTLifecycle(t *testing.T) {
	r := NewRPFT(16)
	p := regfile.PReg(3)
	if !r.Read(p) {
		t.Error("registers start valid (architectural state committed)")
	}
	r.Clear(p)
	if r.Read(p) {
		t.Error("cleared bit must read false")
	}
	r.Set(p)
	if !r.Read(p) {
		t.Error("set bit must read true")
	}
	if r.Read(regfile.PRegInvalid) {
		t.Error("invalid register must read false")
	}
	r.Set(regfile.PRegInvalid)   // no-op
	r.Clear(regfile.PRegInvalid) // no-op
}

func TestCRCFIFOEviction(t *testing.T) {
	c := NewCRC(4)
	for p := regfile.PReg(0); p < 4; p++ {
		c.Insert(p, 0)
	}
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4", c.Occupancy())
	}
	c.Insert(4, 0) // evicts oldest (0)
	if c.Contains(0) {
		t.Error("FIFO must evict the oldest entry")
	}
	for p := regfile.PReg(1); p <= 4; p++ {
		if !c.Contains(p) {
			t.Errorf("p%d must be resident", p)
		}
	}
}

func TestCRCDuplicateInsert(t *testing.T) {
	c := NewCRC(4)
	c.Insert(7, 0)
	c.Insert(7, 0)
	if c.Occupancy() != 1 {
		t.Errorf("duplicate insert must not consume a second slot, occupancy=%d", c.Occupancy())
	}
}

func TestCRCInvalidate(t *testing.T) {
	c := NewCRC(4)
	c.Insert(1, 0)
	c.Insert(2, 0)
	c.Invalidate(1)
	if c.Contains(1) {
		t.Error("invalidated entry must be gone")
	}
	if !c.Contains(2) {
		t.Error("other entries must survive invalidation")
	}
	c.Invalidate(99) // absent: no-op
}

func TestCRCLookupStats(t *testing.T) {
	c := NewCRC(2)
	c.Insert(5, 0)
	if !c.Lookup(5, 0) {
		t.Error("lookup of resident entry must hit")
	}
	if c.Lookup(6, 0) {
		t.Error("lookup of absent entry must miss")
	}
	if c.Lookup(regfile.PRegInvalid, 0) {
		t.Error("invalid register must miss")
	}
	if c.Hits() != 1 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d, want 1/2", c.Hits(), c.Misses())
	}
}

func TestCRCZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-entry CRC must panic")
		}
	}()
	NewCRC(0)
}

func TestInsertionTableSaturation(t *testing.T) {
	it := NewInsertionTable(8, 3)
	p := regfile.PReg(2)
	for i := 0; i < 5; i++ {
		it.Inc(p)
	}
	if it.Count(p) != 3 {
		t.Errorf("count = %d, want saturation at 3", it.Count(p))
	}
	if it.Saturations() != 2 {
		t.Errorf("saturations = %d, want 2", it.Saturations())
	}
	it.Dec(p)
	it.Dec(p)
	it.Dec(p)
	it.Dec(p) // clamps
	if it.Count(p) != 0 {
		t.Errorf("count after clamped decs = %d, want 0", it.Count(p))
	}
	it.Inc(p)
	it.Clear(p)
	if it.Count(p) != 0 {
		t.Error("clear must zero the counter")
	}
	if it.Count(regfile.PRegInvalid) != 0 {
		t.Error("invalid register count must be 0")
	}
}

func newDRA() *DRA {
	return New(Config{Clusters: 2, CRCEntries: 4, CounterBits: 2}, 32)
}

func TestDRARenameSourcePreRead(t *testing.T) {
	d := newDRA()
	p := regfile.PReg(1)
	// Valid at rename -> completed operand, pre-read.
	if !d.RenameSource(0, p) {
		t.Error("valid register must pre-read")
	}
	if d.TableOf(0).Count(p) != 0 {
		t.Error("pre-read must not touch the insertion table")
	}
	// After the register is reallocated, pre-read fails and the source is
	// routed to the slotted cluster's insertion table.
	d.RenameDest(p)
	if d.RenameSource(1, p) {
		t.Error("in-flight register must not pre-read")
	}
	if d.TableOf(1).Count(p) != 1 {
		t.Error("failed pre-read must increment the cluster's table")
	}
	if d.TableOf(0).Count(p) != 0 {
		t.Error("other clusters' tables must be untouched")
	}
	if d.PreReads() != 1 || d.FailedPreReads() != 1 {
		t.Errorf("prereads=%d failed=%d, want 1/1", d.PreReads(), d.FailedPreReads())
	}
}

func TestDRAWritebackInsertsWhereNeeded(t *testing.T) {
	d := newDRA()
	p := regfile.PReg(4)
	d.RenameDest(p) // in flight
	d.RenameSource(0, p)
	d.RenameSource(0, p)
	d.RenameSource(1, p)
	// One cluster-0 consumer picks the value up from forwarding.
	d.ForwardHit(0, p)
	n := d.Writeback(p, 0)
	if n != 2 {
		t.Fatalf("writeback inserted into %d CRCs, want 2 (both have outstanding consumers)", n)
	}
	if !d.CRCOf(0).Contains(p) || !d.CRCOf(1).Contains(p) {
		t.Error("value must be cached in both clusters")
	}
	if d.TableOf(0).Count(p) != 0 || d.TableOf(1).Count(p) != 0 {
		t.Error("insertion counts must clear after caching")
	}
	if !d.RPFT().Read(p) {
		t.Error("writeback must set the RPFT bit")
	}
}

func TestDRAWritebackDiscardsUnneeded(t *testing.T) {
	d := newDRA()
	p := regfile.PReg(9)
	d.RenameDest(p)
	d.RenameSource(0, p)
	d.ForwardHit(0, p) // the only consumer got it from forwarding
	if n := d.Writeback(p, 0); n != 0 {
		t.Errorf("writeback inserted into %d CRCs, want 0", n)
	}
	if d.DiscardedWritebacks() != 1 {
		t.Errorf("discarded = %d, want 1", d.DiscardedWritebacks())
	}
	if d.CRCOf(0).Contains(p) {
		t.Error("unneeded value must not be cached")
	}
}

func TestDRASaturationCausesDroppedConsumers(t *testing.T) {
	// Paper Section 5.4: >3 consumers of one operand on the same cluster
	// saturate the 2-bit counter; 3 forwarding hits zero the count and the
	// 4th consumer finds nothing in the CRC.
	d := newDRA()
	p := regfile.PReg(6)
	d.RenameDest(p)
	for i := 0; i < 4; i++ {
		d.RenameSource(0, p)
	}
	if d.TableOf(0).Count(p) != 3 {
		t.Fatalf("count = %d, want saturated 3", d.TableOf(0).Count(p))
	}
	for i := 0; i < 3; i++ {
		d.ForwardHit(0, p)
	}
	if n := d.Writeback(p, 0); n != 0 {
		t.Errorf("saturated-then-drained writeback inserted %d, want 0", n)
	}
	if d.LookupCRC(0, p, 0) {
		t.Error("4th consumer must miss — exactly the paper's saturation miss")
	}
}

func TestDRARenameDestInvalidatesStaleState(t *testing.T) {
	d := newDRA()
	p := regfile.PReg(3)
	d.RenameDest(p)
	d.RenameSource(0, p)
	d.Writeback(p, 0)
	if !d.CRCOf(0).Contains(p) {
		t.Fatal("setup: value must be cached")
	}
	// Reallocation: stale CRC entry and any counts must vanish.
	d.RenameSource(1, p) // leave a stray count on cluster 1... (valid now, so pre-reads)
	d.RenameDest(p)
	if d.CRCOf(0).Contains(p) {
		t.Error("reallocation must invalidate stale CRC entries")
	}
	if d.RPFT().Read(p) {
		t.Error("reallocation must clear the RPFT bit")
	}
	if d.TableOf(0).Count(p) != 0 || d.TableOf(1).Count(p) != 0 {
		t.Error("reallocation must clear insertion counts")
	}
}

func TestConfigCounterMax(t *testing.T) {
	cases := []struct {
		bits int
		want uint8
	}{{0, 1}, {1, 1}, {2, 3}, {3, 7}, {8, 255}, {12, 255}}
	for _, c := range cases {
		cfg := Config{CounterBits: c.bits}
		if got := cfg.counterMax(); got != c.want {
			t.Errorf("counterMax(%d bits) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Clusters != 8 || cfg.CRCEntries != 16 || cfg.CounterBits != 2 {
		t.Errorf("DefaultConfig = %+v, want paper geometry 8/16/2", cfg)
	}
}

// Property: CRC occupancy never exceeds capacity, and a Lookup immediately
// after Insert always hits (no self-eviction), for any operation sequence.
func TestCRCInvariantsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCRC(4)
		for i := 0; i < int(n); i++ {
			p := regfile.PReg(rng.Intn(12))
			switch rng.Intn(3) {
			case 0:
				c.Insert(p, 0)
				if !c.Contains(p) {
					return false
				}
			case 1:
				c.Lookup(p, 0)
			default:
				c.Invalidate(p)
				if c.Contains(p) {
					return false
				}
			}
			if c.Occupancy() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: insertion table counters stay within [0, max] under arbitrary
// inc/dec/clear streams.
func TestInsertionTableRangeProperty(t *testing.T) {
	f := func(seed int64, n uint8, bits uint8) bool {
		maxC := uint8(1<<(bits%3+1)) - 1
		rng := rand.New(rand.NewSource(seed))
		it := NewInsertionTable(8, maxC)
		for i := 0; i < int(n); i++ {
			p := regfile.PReg(rng.Intn(8))
			switch rng.Intn(3) {
			case 0:
				it.Inc(p)
			case 1:
				it.Dec(p)
			default:
				it.Clear(p)
			}
			if it.Count(p) > maxC {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
