package core

import (
	"loosesim/internal/regfile"
	"loosesim/internal/snap"
)

// Snapshot encodes the RPFT's valid bits.
func (r *RPFT) Snapshot(w *snap.Writer) { w.Bools(r.bits) }

// Restore overwrites the bits; r must have the snapshot's size.
func (r *RPFT) Restore(rd *snap.Reader) {
	bits := rd.Bools(len(r.bits))
	if len(bits) != len(r.bits) {
		rd.Failf("rpft: %d bits, want %d", len(bits), len(r.bits))
		return
	}
	copy(r.bits, bits)
}

// Snapshot encodes one CRC's entries and statistics. Policy and timeout
// are configuration, rebuilt by the constructor.
func (c *CRC) Snapshot(w *snap.Writer) {
	for _, e := range c.entries {
		w.I32(int32(e.preg))
		w.Bool(e.valid)
		w.I64(e.inserted)
		w.I64(e.lastUse)
	}
	w.U64(c.hits)
	w.U64(c.misses)
	w.U64(c.inserts)
	w.U64(c.invalidates)
	w.U64(c.expirations)
}

// Restore overwrites the mutable state; c must have the snapshot's
// capacity, and entry register names must be valid for numPhys.
func (c *CRC) Restore(r *snap.Reader, numPhys int) {
	for i := range c.entries {
		e := crcEntry{
			preg:     regfile.PReg(r.I32()),
			valid:    r.Bool(),
			inserted: r.I64(),
			lastUse:  r.I64(),
		}
		if e.preg != regfile.PRegInvalid && (e.preg < 0 || int(e.preg) >= numPhys) {
			r.Failf("crc entry %d: preg %d out of range", i, e.preg)
			return
		}
		c.entries[i] = e
	}
	c.hits = r.U64()
	c.misses = r.U64()
	c.inserts = r.U64()
	c.invalidates = r.U64()
	c.expirations = r.U64()
}

// Snapshot encodes one insertion table's counters and saturation count.
func (t *InsertionTable) Snapshot(w *snap.Writer) {
	for _, c := range t.counts {
		w.U8(c)
	}
	w.U64(t.saturations)
}

// Restore overwrites the mutable state; t must have the snapshot's size.
// Counts beyond the saturation ceiling are corrupt.
func (t *InsertionTable) Restore(r *snap.Reader) {
	for i := range t.counts {
		v := r.U8()
		if v > t.max {
			r.Failf("insertion count %d exceeds max %d", v, t.max)
			return
		}
		t.counts[i] = v
	}
	t.saturations = r.U64()
}

// Snapshot encodes the whole DRA: RPFT, every bank's insertion table and
// CRC, and the classification statistics.
func (d *DRA) Snapshot(w *snap.Writer) {
	d.rpft.Snapshot(w)
	for _, t := range d.tables {
		t.Snapshot(w)
	}
	for _, c := range d.crcs {
		c.Snapshot(w)
	}
	w.U64(d.preReads)
	w.U64(d.failedPreReads)
	w.U64(d.crcInsertsNeeded)
	w.U64(d.discardedWBs)
}

// Restore overwrites d's mutable state with state encoded by Snapshot.
// d must have been constructed by New with the same config and numPhys.
func (d *DRA) Restore(r *snap.Reader) {
	numPhys := len(d.rpft.bits)
	d.rpft.Restore(r)
	for _, t := range d.tables {
		t.Restore(r)
	}
	for _, c := range d.crcs {
		c.Restore(r, numPhys)
	}
	d.preReads = r.U64()
	d.failedPreReads = r.U64()
	d.crcInsertsNeeded = r.U64()
	d.discardedWBs = r.U64()
}
