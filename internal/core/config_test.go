package core

import "testing"

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default DRA config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero clusters", func(c *Config) { c.Clusters = 0 }},
		{"zero CRC entries", func(c *Config) { c.CRCEntries = 0 }},
		{"zero counter bits", func(c *Config) { c.CounterBits = 0 }},
		{"oversized counter bits", func(c *Config) { c.CounterBits = 9 }},
		{"unknown policy", func(c *Config) { c.Policy = ReplacementPolicy(9) }},
		{"negative timeout", func(c *Config) { c.TimeoutCycles = -1 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
	monolithic := DefaultConfig()
	monolithic.Monolithic = true
	if err := monolithic.Validate(); err != nil {
		t.Errorf("monolithic shape should be legal: %v", err)
	}
}
