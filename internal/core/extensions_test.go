package core

import (
	"testing"

	"loosesim/internal/regfile"
)

func TestCRCLRUEviction(t *testing.T) {
	c := NewCRCWith(2, LRU, 0)
	c.Insert(1, 10)
	c.Insert(2, 11)
	if !c.Lookup(1, 12) { // 1 becomes MRU
		t.Fatal("setup lookup failed")
	}
	c.Insert(3, 13) // evicts 2 (LRU), not 1
	if c.Contains(2) {
		t.Error("LRU must evict the least recently read entry")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("MRU and new entries must survive")
	}
}

func TestCRCFIFOIgnoresRecency(t *testing.T) {
	c := NewCRCWith(2, FIFO, 0)
	c.Insert(1, 10)
	c.Insert(2, 11)
	c.Lookup(1, 50) // recency must not matter under FIFO
	c.Insert(3, 51) // evicts 1 (oldest insert)
	if c.Contains(1) {
		t.Error("FIFO must evict the oldest insert regardless of reads")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("younger entries must survive")
	}
}

func TestCRCTimeout(t *testing.T) {
	c := NewCRCWith(4, FIFO, 100)
	c.Insert(5, 0)
	if !c.Lookup(5, 100) {
		t.Error("entry within timeout must hit")
	}
	if c.Lookup(5, 101) {
		t.Error("entry beyond timeout must miss")
	}
	if c.Contains(5) {
		t.Error("timed-out entry must be invalidated")
	}
	if c.Expirations() != 1 {
		t.Errorf("expirations = %d, want 1", c.Expirations())
	}
}

func TestCRCTimeoutDisabled(t *testing.T) {
	c := NewCRCWith(4, FIFO, 0)
	c.Insert(5, 0)
	if !c.Lookup(5, 1<<40) {
		t.Error("without a timeout, entries never expire")
	}
}

func TestReplacementPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || LRU.String() != "lru" {
		t.Error("policy names wrong")
	}
}

func TestMonolithicDRASharesOneCache(t *testing.T) {
	d := New(Config{Clusters: 8, CRCEntries: 16, CounterBits: 2, Monolithic: true}, 64)
	p := regfile.PReg(7)
	d.RenameDest(p)
	// Consumers on different clusters all route to the single bank.
	d.RenameSource(0, p)
	d.RenameSource(5, p)
	if d.TableOf(0) != d.TableOf(5) {
		t.Fatal("monolithic mode must share one insertion table")
	}
	if d.TableOf(3).Count(p) != 2 {
		t.Errorf("shared count = %d, want 2", d.TableOf(3).Count(p))
	}
	if n := d.Writeback(p, 0); n != 1 {
		t.Errorf("monolithic writeback inserted into %d banks, want 1", n)
	}
	if !d.LookupCRC(2, p, 1) || !d.LookupCRC(7, p, 1) {
		t.Error("every cluster must see the shared cache")
	}
	if d.CRCOf(0) != d.CRCOf(7) {
		t.Error("monolithic mode must share one CRC")
	}
}

func TestMonolithicCapacityPressure(t *testing.T) {
	// The Section 4 argument: one 16-entry cache for the whole machine
	// thrashes where 8x16 clustered caches would not.
	mono := New(Config{Clusters: 8, CRCEntries: 16, CounterBits: 2, Monolithic: true}, 256)
	clus := New(Config{Clusters: 8, CRCEntries: 16, CounterBits: 2}, 256)
	// 64 values, each consumed on its own cluster, none via forwarding.
	for i := 0; i < 64; i++ {
		p := regfile.PReg(i)
		mono.RenameDest(p)
		clus.RenameDest(p)
		mono.RenameSource(i%8, p)
		clus.RenameSource(i%8, p)
		mono.Writeback(p, int64(i))
		clus.Writeback(p, int64(i))
	}
	monoHits, clusHits := 0, 0
	for i := 0; i < 64; i++ {
		p := regfile.PReg(i)
		if mono.LookupCRC(i%8, p, 100) {
			monoHits++
		}
		if clus.LookupCRC(i%8, p, 100) {
			clusHits++
		}
	}
	if clusHits != 64 {
		t.Errorf("clustered caches hold all 64 values, got %d", clusHits)
	}
	if monoHits >= clusHits {
		t.Errorf("monolithic cache must thrash: %d vs %d hits", monoHits, clusHits)
	}
}
