package iq

import (
	"loosesim/internal/snap"
	"loosesim/internal/uop"
)

// ClusterEntries returns cluster c's entry list in age order. The slice
// is the queue's own storage — callers must treat it as read-only. It
// exists for the machine's snapshot encoder, which serializes the lists
// as live-uop indices.
func (q *Queue) ClusterEntries(c int) []*uop.UOp { return q.byCluster[c] }

// Snapshot encodes the queue's statistics counters. The entry lists
// themselves hold pointers into the machine's live-uop set, so the
// machine serializes them as uop indices and rebuilds them through
// Insert on restore; only the counters are the queue's own state.
func (q *Queue) Snapshot(w *snap.Writer) {
	w.U64(q.inserted)
	w.U64(q.occupancySum)
	w.U64(q.retainedSum)
	w.U64(q.samples)
	w.U64(q.fullStalls)
}

// Restore overwrites the statistics counters with state encoded by
// Snapshot. Call it after the entry lists have been rebuilt — the
// re-inserts bump `inserted`, and this puts the true value back.
func (q *Queue) Restore(r *snap.Reader) {
	q.inserted = r.U64()
	q.occupancySum = r.U64()
	q.retainedSum = r.U64()
	q.samples = r.U64()
	q.fullStalls = r.U64()
}
