// Package iq models the unified, clustered instruction queue of the base
// machine (paper Section 2): a 128-entry window whose entries are slotted at
// decode to one of eight functional-unit clusters, so that selecting 8
// instructions out of 128 reduces to selecting 1 out of ~16 per cluster.
//
// The IQ is where the load resolution loop exerts its secondary cost, IQ
// pressure (Section 2.2.2): issued instructions must be *retained* until the
// execution stage confirms they will not be reissued, which takes the loop
// delay (IQ-EX latency plus feedback). Entries of issued-but-unconfirmed
// instructions are dead weight that shrinks the effective window.
package iq

import (
	"fmt"

	"loosesim/internal/uop"
)

// Config sizes the queue.
type Config struct {
	// Entries is the total queue capacity (128 in the base machine).
	Entries int
	// Clusters is the number of functional-unit clusters instructions are
	// slotted across (8 in the base machine).
	Clusters int
}

// Queue is the clustered instruction queue. Each cluster's list is kept in
// age order; age order across clusters is preserved by the global Seq.
type Queue struct {
	cfg       Config
	byCluster [][]*uop.UOp
	count     int

	inserted     uint64
	occupancySum uint64
	retainedSum  uint64
	samples      uint64
	fullStalls   uint64
}

// New returns an empty queue.
func New(cfg Config) *Queue {
	if cfg.Entries < 1 || cfg.Clusters < 1 {
		panic(fmt.Sprintf("iq: bad config %+v", cfg))
	}
	q := &Queue{cfg: cfg, byCluster: make([][]*uop.UOp, cfg.Clusters)}
	// Slotting is least-loaded but nothing caps one cluster short of the
	// whole queue, so each list is provisioned to the full capacity —
	// Insert must never grow on the per-cycle path.
	for c := range q.byCluster {
		q.byCluster[c] = make([]*uop.UOp, 0, cfg.Entries)
	}
	return q
}

// Config returns the queue configuration.
func (q *Queue) Config() Config { return q.cfg }

// Len returns the number of occupied entries.
func (q *Queue) Len() int { return q.count }

// Free returns the number of unoccupied entries.
func (q *Queue) Free() int { return q.cfg.Entries - q.count }

// Full reports whether the queue has no free entries.
func (q *Queue) Full() bool { return q.count >= q.cfg.Entries }

// ClusterLen returns the number of entries slotted to cluster c.
func (q *Queue) ClusterLen(c int) int { return len(q.byCluster[c]) }

// LeastLoadedCluster returns the cluster with the fewest queue entries,
// breaking ties toward lower indices. This is the decode-time slotting
// policy: it approximates the uniform distribution the paper assumes.
func (q *Queue) LeastLoadedCluster() int {
	best := 0
	for c := 1; c < q.cfg.Clusters; c++ {
		if len(q.byCluster[c]) < len(q.byCluster[best]) {
			best = c
		}
	}
	return best
}

// Insert places u (already slotted to u.Cluster) into the queue. It returns
// false, counting a structural stall, if the queue is full.
func (q *Queue) Insert(u *uop.UOp) bool {
	if q.Full() {
		q.fullStalls++
		return false
	}
	if u.Cluster < 0 || u.Cluster >= q.cfg.Clusters {
		panic(fmt.Sprintf("iq: uop %v has bad cluster", u))
	}
	if u.InIQ {
		panic(fmt.Sprintf("iq: duplicate insert of %v", u))
	}
	// simlint:prealloc cluster lists sized to Entries at construction
	q.byCluster[u.Cluster] = append(q.byCluster[u.Cluster], u)
	q.count++
	q.inserted++
	u.InIQ = true
	return true
}

// Remove releases u's entry (retire-side eviction or squash).
func (q *Queue) Remove(u *uop.UOp) {
	if !u.InIQ {
		return
	}
	list := q.byCluster[u.Cluster]
	for i, e := range list {
		if e == u {
			q.byCluster[u.Cluster] = append(list[:i], list[i+1:]...)
			q.count--
			u.InIQ = false
			return
		}
	}
	panic(fmt.Sprintf("iq: %v marked InIQ but not found", u))
}

// SelectOldestReady returns the oldest waiting instruction in cluster c for
// which ready returns true, or nil. It models the per-cluster select logic
// (one issue per cluster per cycle).
func (q *Queue) SelectOldestReady(c int, ready func(*uop.UOp) bool) *uop.UOp {
	for _, u := range q.byCluster[c] {
		// simlint:ignore ifacedispatch wakeup predicate seam; the caller binds it once at construction
		if u.State == uop.StateWaiting && ready(u) {
			return u
		}
	}
	return nil
}

// ForEach visits every queue entry in cluster-major, age-minor order.
func (q *Queue) ForEach(f func(*uop.UOp)) {
	for _, list := range q.byCluster {
		for _, u := range list {
			f(u)
		}
	}
}

// Retained returns the number of entries held by instructions that have
// issued (or completed) but whose entries have not yet been reclaimed —
// the IQ-pressure population.
// Iterating the cluster lists directly (rather than via ForEach) keeps the
// per-cycle sampling path closure-free.
func (q *Queue) Retained() int {
	n := 0
	for _, list := range q.byCluster {
		for _, u := range list {
			if u.State == uop.StateIssued || u.State == uop.StateDone {
				n++
			}
		}
	}
	return n
}

// Sample records one cycle's occupancy for the pressure statistics.
func (q *Queue) Sample() {
	q.samples++
	q.occupancySum += uint64(q.count)
	q.retainedSum += uint64(q.Retained())
}

// MeanOccupancy returns the average sampled occupancy.
func (q *Queue) MeanOccupancy() float64 {
	if q.samples == 0 {
		return 0
	}
	return float64(q.occupancySum) / float64(q.samples)
}

// MeanRetained returns the average sampled count of issued-but-retained
// entries — the paper's "already issued instructions ... waiting for the
// load to resolve" population.
func (q *Queue) MeanRetained() float64 {
	if q.samples == 0 {
		return 0
	}
	return float64(q.retainedSum) / float64(q.samples)
}

// FullStalls returns the number of rejected inserts.
func (q *Queue) FullStalls() uint64 { return q.fullStalls }

// Inserted returns the number of successful inserts.
func (q *Queue) Inserted() uint64 { return q.inserted }
