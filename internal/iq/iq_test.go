package iq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loosesim/internal/isa"
	"loosesim/internal/uop"
)

func mk(seq uint64, cluster int) *uop.UOp {
	u := uop.New(isa.Inst{Op: isa.IntALU}, 0, seq, 0)
	u.Cluster = cluster
	u.State = uop.StateWaiting
	return u
}

func TestInsertRemove(t *testing.T) {
	q := New(Config{Entries: 4, Clusters: 2})
	u := mk(1, 0)
	if !q.Insert(u) {
		t.Fatal("insert into empty queue failed")
	}
	if !u.InIQ || q.Len() != 1 || q.ClusterLen(0) != 1 {
		t.Error("bookkeeping after insert wrong")
	}
	q.Remove(u)
	if u.InIQ || q.Len() != 0 {
		t.Error("bookkeeping after remove wrong")
	}
	q.Remove(u) // second remove is a no-op
	if q.Len() != 0 {
		t.Error("double remove must be a no-op")
	}
}

func TestFullRejects(t *testing.T) {
	q := New(Config{Entries: 2, Clusters: 1})
	q.Insert(mk(1, 0))
	q.Insert(mk(2, 0))
	if q.Insert(mk(3, 0)) {
		t.Error("full queue must reject")
	}
	if q.FullStalls() != 1 {
		t.Errorf("fullStalls = %d, want 1", q.FullStalls())
	}
	if !q.Full() || q.Free() != 0 {
		t.Error("Full/Free inconsistent")
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	q := New(Config{Entries: 4, Clusters: 1})
	u := mk(1, 0)
	q.Insert(u)
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert must panic")
		}
	}()
	q.Insert(u)
}

func TestLeastLoadedCluster(t *testing.T) {
	q := New(Config{Entries: 16, Clusters: 4})
	if q.LeastLoadedCluster() != 0 {
		t.Error("empty queue must slot to cluster 0")
	}
	q.Insert(mk(1, 0))
	q.Insert(mk(2, 1))
	if got := q.LeastLoadedCluster(); got != 2 {
		t.Errorf("least loaded = %d, want 2", got)
	}
}

func TestSelectOldestReady(t *testing.T) {
	q := New(Config{Entries: 8, Clusters: 2})
	a, b, c := mk(10, 0), mk(11, 0), mk(12, 1)
	q.Insert(a)
	q.Insert(b)
	q.Insert(c)

	all := func(*uop.UOp) bool { return true }
	if got := q.SelectOldestReady(0, all); got != a {
		t.Errorf("cluster 0 select = %v, want oldest %v", got, a)
	}
	if got := q.SelectOldestReady(1, all); got != c {
		t.Errorf("cluster 1 select = %v, want %v", got, c)
	}
	// Issued instructions are not selectable even while retained.
	a.State = uop.StateIssued
	if got := q.SelectOldestReady(0, all); got != b {
		t.Errorf("select after issue = %v, want %v", got, b)
	}
	// Readiness filter applies.
	onlyEven := func(u *uop.UOp) bool { return u.Seq%2 == 0 }
	b.State = uop.StateWaiting
	if got := q.SelectOldestReady(0, onlyEven); got != nil {
		t.Errorf("no odd-seq instruction should select, got %v", got)
	}
}

func TestReissueSelectableAgain(t *testing.T) {
	q := New(Config{Entries: 4, Clusters: 1})
	u := mk(5, 0)
	q.Insert(u)
	u.State = uop.StateIssued
	all := func(*uop.UOp) bool { return true }
	if q.SelectOldestReady(0, all) != nil {
		t.Fatal("issued uop must not reselect")
	}
	// Load-miss recovery: the uop reverts to waiting while still holding
	// its entry, and becomes selectable again.
	u.State = uop.StateWaiting
	if q.SelectOldestReady(0, all) != u {
		t.Error("reissued uop must be selectable")
	}
}

func TestRetainedAndSampling(t *testing.T) {
	q := New(Config{Entries: 8, Clusters: 2})
	a, b := mk(1, 0), mk(2, 1)
	q.Insert(a)
	q.Insert(b)
	a.State = uop.StateIssued
	if q.Retained() != 1 {
		t.Errorf("retained = %d, want 1", q.Retained())
	}
	q.Sample()
	b.State = uop.StateDone
	q.Sample()
	if got := q.MeanOccupancy(); got != 2 {
		t.Errorf("mean occupancy = %v, want 2", got)
	}
	if got := q.MeanRetained(); got != 1.5 {
		t.Errorf("mean retained = %v, want 1.5", got)
	}
}

func TestEmptyStats(t *testing.T) {
	q := New(Config{Entries: 2, Clusters: 1})
	if q.MeanOccupancy() != 0 || q.MeanRetained() != 0 {
		t.Error("unsampled means must be 0")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config must panic")
		}
	}()
	New(Config{Entries: 0, Clusters: 1})
}

func TestBadClusterPanics(t *testing.T) {
	q := New(Config{Entries: 4, Clusters: 2})
	u := mk(1, 5)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range cluster must panic")
		}
	}()
	q.Insert(u)
}

// Property: after any insert/remove sequence, Len equals the sum of cluster
// lengths, never exceeds capacity, and ForEach visits exactly Len entries.
func TestOccupancyInvariantProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New(Config{Entries: 8, Clusters: 3})
		var live []*uop.UOp
		seq := uint64(0)
		for i := 0; i < int(steps); i++ {
			if rng.Intn(2) == 0 {
				seq++
				u := mk(seq, rng.Intn(3))
				if q.Insert(u) {
					live = append(live, u)
				}
			} else if len(live) > 0 {
				k := rng.Intn(len(live))
				q.Remove(live[k])
				live = append(live[:k], live[k+1:]...)
			}
			sum := 0
			for c := 0; c < 3; c++ {
				sum += q.ClusterLen(c)
			}
			visits := 0
			q.ForEach(func(*uop.UOp) { visits++ })
			if q.Len() != sum || q.Len() != len(live) || q.Len() > 8 || visits != q.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: SelectOldestReady always returns the minimum-Seq waiting entry
// among those passing the filter.
func TestSelectOldestProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New(Config{Entries: 32, Clusters: 1})
		var waiting []*uop.UOp
		for i := 0; i < int(n%20); i++ {
			u := mk(uint64(i), 0)
			if rng.Intn(4) == 0 {
				u.State = uop.StateIssued
			}
			q.Insert(u)
			if u.State == uop.StateWaiting {
				waiting = append(waiting, u)
			}
		}
		got := q.SelectOldestReady(0, func(*uop.UOp) bool { return true })
		if len(waiting) == 0 {
			return got == nil
		}
		return got == waiting[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
