// Package regfile models register renaming and the monolithic physical
// register file of the base machine: the per-thread rename map, the free
// list, and the per-physical-register valid bit that the DRA's register
// pre-read filtering table (RPFT) observes. The register file's 3–7 cycle
// access latency is the quantity the DRA moves out of the issue-to-execute
// path, so its book-keeping here is deliberately explicit.
package regfile

import (
	"fmt"

	"loosesim/internal/isa"
)

// PReg names a physical register.
type PReg int32

// PRegInvalid marks an absent physical operand.
const PRegInvalid PReg = -1

// File is the rename subsystem: rename maps for every hardware thread, the
// shared free list, and validity state for every physical register.
//
// Validity semantics follow the paper's RPFT description (Section 5.2): a
// register's bit is cleared when the renamer allocates it as a destination
// (the producer is in flight) and set when the value is written back to the
// register file.
type File struct {
	numPhys int
	threads int

	rename [][]PReg // [thread][archReg] -> PReg
	free   []PReg   // stack of free physical registers
	valid  []bool   // [PReg] -> value present in the register file
	refCnt []int32  // [PReg] -> debug refcount of mapping holders
}

// NewFile builds a rename subsystem with numPhys physical registers shared
// by the given number of threads. Each thread's architectural state consumes
// isa.NumArchRegs physical registers up front; the remainder form the free
// list. numPhys must leave at least 32 renaming registers spare.
func NewFile(numPhys, threads int) *File {
	need := threads * isa.NumArchRegs
	if numPhys < need+32 {
		panic(fmt.Sprintf("regfile: %d physical registers cannot back %d threads", numPhys, threads))
	}
	f := &File{
		numPhys: numPhys,
		threads: threads,
		rename:  make([][]PReg, threads),
		valid:   make([]bool, numPhys),
		refCnt:  make([]int32, numPhys),
		// The free stack can hold at most every physical register, so this
		// capacity makes Free's push growth-free for the machine's lifetime.
		free: make([]PReg, 0, numPhys),
	}
	next := PReg(0)
	for t := 0; t < threads; t++ {
		f.rename[t] = make([]PReg, isa.NumArchRegs)
		for a := 0; a < isa.NumArchRegs; a++ {
			f.rename[t][a] = next
			f.valid[next] = true // architectural state is committed
			f.refCnt[next] = 1
			next++
		}
	}
	for p := next; int(p) < numPhys; p++ {
		f.free = append(f.free, p)
	}
	return f
}

// NumPhys returns the size of the physical register file.
func (f *File) NumPhys() int { return f.numPhys }

// FreeCount returns the number of unallocated physical registers.
func (f *File) FreeCount() int { return len(f.free) }

// Lookup returns the current physical mapping of an architectural source.
func (f *File) Lookup(thread int, r isa.Reg) PReg {
	if !r.Valid() {
		return PRegInvalid
	}
	return f.rename[thread][r]
}

// Rename allocates a new physical register for a destination write,
// clearing its valid bit (producer in flight), and returns the new mapping
// together with the previous mapping (to be freed when the instruction
// retires, or re-installed if it is squashed). It returns ok=false when the
// free list is empty, in which case rename must stall.
func (f *File) Rename(thread int, dest isa.Reg) (newP, oldP PReg, ok bool) {
	if !dest.Valid() {
		return PRegInvalid, PRegInvalid, true
	}
	n := len(f.free)
	if n == 0 {
		return PRegInvalid, PRegInvalid, false
	}
	newP = f.free[n-1]
	f.free = f.free[:n-1]
	oldP = f.rename[thread][dest]
	f.rename[thread][dest] = newP
	f.valid[newP] = false
	f.refCnt[newP] = 1
	return newP, oldP, true
}

// Writeback marks a physical register's value as present in the register
// file (the RPFT bit becomes set).
func (f *File) Writeback(p PReg) {
	if p != PRegInvalid {
		f.valid[p] = true
	}
}

// Valid reports whether the value for p is present in the register file.
// This is exactly the RPFT query the DRA performs at rename.
func (f *File) Valid(p PReg) bool {
	return p != PRegInvalid && f.valid[p]
}

// Free returns a physical register to the free list. Called at retire for
// the destination's previous mapping, and at squash for the squashed
// instruction's own mapping.
func (f *File) Free(p PReg) {
	if p == PRegInvalid {
		return
	}
	if f.refCnt[p] == 0 {
		panic(fmt.Sprintf("regfile: double free of p%d", p))
	}
	f.refCnt[p] = 0
	// simlint:prealloc free stack sized to numPhys at construction
	f.free = append(f.free, p)
}

// SquashRestore undoes a rename performed for a squashed instruction: the
// architectural register's mapping reverts to oldP and newP returns to the
// free list. Squashes must be applied youngest-first so the mappings unwind
// in reverse order.
func (f *File) SquashRestore(thread int, dest isa.Reg, newP, oldP PReg) {
	if !dest.Valid() {
		return
	}
	if f.rename[thread][dest] != newP {
		panic(fmt.Sprintf("regfile: out-of-order squash restore for t%d r%d (have p%d, squashing p%d)",
			thread, dest, f.rename[thread][dest], newP))
	}
	f.rename[thread][dest] = oldP
	f.Free(newP)
}

// InFlight returns the number of physical registers currently allocated
// beyond the committed architectural state.
func (f *File) InFlight() int {
	return f.numPhys - len(f.free) - f.threads*isa.NumArchRegs
}
