package regfile

import "loosesim/internal/snap"

// Snapshot encodes the rename subsystem's mutable state: the per-thread
// rename maps, the free stack (order matters — allocation order feeds
// determinism), the valid bits, and the debug refcounts. Geometry
// (numPhys, threads) is derived from the machine config and not encoded.
func (f *File) Snapshot(w *snap.Writer) {
	for _, m := range f.rename {
		w.Len(len(m))
		for _, p := range m {
			w.I32(int32(p))
		}
	}
	w.Len(len(f.free))
	for _, p := range f.free {
		w.I32(int32(p))
	}
	w.Bools(f.valid)
	w.Len(len(f.refCnt))
	for _, c := range f.refCnt {
		w.I32(c)
	}
}

// Restore overwrites f's mutable state with state encoded by Snapshot.
// f must have been constructed by NewFile with the same geometry; a
// snapshot taken under a different geometry is rejected as corrupt, as
// is any register name outside the file.
func (f *File) Restore(r *snap.Reader) {
	inFile := func(p PReg) bool { return p >= 0 && int(p) < f.numPhys }
	for t := range f.rename {
		n := r.Len(f.numPhys)
		if n != len(f.rename[t]) {
			r.Failf("rename map thread %d: %d entries, want %d", t, n, len(f.rename[t]))
			return
		}
		for a := 0; a < n; a++ {
			p := PReg(r.I32())
			if !inFile(p) {
				r.Failf("rename map thread %d arch %d: preg %d out of range", t, a, p)
				return
			}
			f.rename[t][a] = p
		}
	}
	nFree := r.Len(f.numPhys)
	if r.Err() != nil {
		return
	}
	f.free = f.free[:0]
	for i := 0; i < nFree; i++ {
		p := PReg(r.I32())
		if !inFile(p) {
			r.Failf("free list entry %d: preg %d out of range", i, p)
			return
		}
		f.free = append(f.free, p)
	}
	valid := r.Bools(f.numPhys)
	if len(valid) != f.numPhys {
		r.Failf("valid bits: %d, want %d", len(valid), f.numPhys)
		return
	}
	copy(f.valid, valid)
	nRef := r.Len(f.numPhys)
	if nRef != f.numPhys {
		r.Failf("refcounts: %d, want %d", nRef, f.numPhys)
		return
	}
	for i := 0; i < nRef; i++ {
		f.refCnt[i] = r.I32()
	}
}
