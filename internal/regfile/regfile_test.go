package regfile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loosesim/internal/isa"
)

func TestNewFileInitialState(t *testing.T) {
	f := NewFile(512, 2)
	if f.NumPhys() != 512 {
		t.Errorf("NumPhys = %d", f.NumPhys())
	}
	want := 512 - 2*isa.NumArchRegs
	if f.FreeCount() != want {
		t.Errorf("FreeCount = %d, want %d", f.FreeCount(), want)
	}
	// All architectural mappings valid and distinct across threads.
	seen := map[PReg]bool{}
	for th := 0; th < 2; th++ {
		for a := 0; a < isa.NumArchRegs; a++ {
			p := f.Lookup(th, isa.Reg(a))
			if seen[p] {
				t.Fatalf("duplicate mapping p%d", p)
			}
			seen[p] = true
			if !f.Valid(p) {
				t.Errorf("architectural p%d must be valid", p)
			}
		}
	}
	if f.InFlight() != 0 {
		t.Errorf("InFlight = %d, want 0", f.InFlight())
	}
}

func TestNewFileTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undersized file must panic")
		}
	}()
	NewFile(isa.NumArchRegs+8, 1)
}

func TestRenameInvalidDest(t *testing.T) {
	f := NewFile(256, 1)
	n, o, ok := f.Rename(0, isa.RegInvalid)
	if !ok || n != PRegInvalid || o != PRegInvalid {
		t.Error("renaming an invalid dest must be a no-op success")
	}
}

func TestRenameClearsValid(t *testing.T) {
	f := NewFile(256, 1)
	n, o, ok := f.Rename(0, 5)
	if !ok {
		t.Fatal("rename failed with free registers available")
	}
	if f.Valid(n) {
		t.Error("freshly renamed destination must be invalid (producer in flight)")
	}
	if !f.Valid(o) {
		t.Error("previous mapping must remain valid")
	}
	if f.Lookup(0, 5) != n {
		t.Error("lookup must return the new mapping")
	}
	f.Writeback(n)
	if !f.Valid(n) {
		t.Error("writeback must set the valid bit")
	}
}

func TestRenameExhaustion(t *testing.T) {
	f := NewFile(isa.NumArchRegs+32, 1)
	var last PReg
	for i := 0; i < 32; i++ {
		n, _, ok := f.Rename(0, isa.Reg(i%isa.NumArchRegs))
		if !ok {
			t.Fatalf("rename %d failed early", i)
		}
		last = n
	}
	if _, _, ok := f.Rename(0, 0); ok {
		t.Error("rename must fail once the free list is empty")
	}
	f.Free(last)
	if _, _, ok := f.Rename(0, 0); !ok {
		t.Error("rename must succeed after a free")
	}
}

func TestRetireStyleFree(t *testing.T) {
	f := NewFile(256, 1)
	before := f.FreeCount()
	n, o, _ := f.Rename(0, 3)
	if f.FreeCount() != before-1 {
		t.Fatal("rename must consume one register")
	}
	// Retire: free the old mapping.
	f.Free(o)
	if f.FreeCount() != before {
		t.Error("retire must restore the free count")
	}
	if f.Lookup(0, 3) != n {
		t.Error("retire must not disturb the current mapping")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	f := NewFile(256, 1)
	_, o, _ := f.Rename(0, 3)
	f.Free(o)
	defer func() {
		if recover() == nil {
			t.Error("double free must panic")
		}
	}()
	f.Free(o)
}

func TestSquashRestore(t *testing.T) {
	f := NewFile(256, 1)
	orig := f.Lookup(0, 7)
	n1, o1, _ := f.Rename(0, 7)
	n2, o2, _ := f.Rename(0, 7)
	if o2 != n1 {
		t.Fatalf("second rename old mapping = p%d, want p%d", o2, n1)
	}
	// Squash youngest-first.
	f.SquashRestore(0, 7, n2, o2)
	if f.Lookup(0, 7) != n1 {
		t.Error("first squash must restore to n1")
	}
	f.SquashRestore(0, 7, n1, o1)
	if f.Lookup(0, 7) != orig {
		t.Error("second squash must restore the original mapping")
	}
	if f.InFlight() != 0 {
		t.Errorf("InFlight = %d after full unwind, want 0", f.InFlight())
	}
}

func TestSquashOutOfOrderPanics(t *testing.T) {
	f := NewFile(256, 1)
	n1, o1, _ := f.Rename(0, 7)
	f.Rename(0, 7)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order squash must panic")
		}
	}()
	f.SquashRestore(0, 7, n1, o1) // n2 still mapped
}

func TestThreadIsolation(t *testing.T) {
	f := NewFile(512, 2)
	n0, _, _ := f.Rename(0, 4)
	if f.Lookup(1, 4) == n0 {
		t.Error("threads must have independent rename maps")
	}
}

// Property: under a random sequence of rename/retire operations the free
// list plus allocated registers always partition the file, and no physical
// register is ever mapped by two architectural registers at once.
func TestRenameConsistencyProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		file := NewFile(192, 1)
		type pending struct{ old PReg }
		var retireQ []pending
		for i := 0; i < int(steps); i++ {
			if rng.Intn(3) != 0 && file.FreeCount() > 0 {
				r := isa.Reg(rng.Intn(isa.NumArchRegs))
				_, o, ok := file.Rename(0, r)
				if !ok {
					return false
				}
				retireQ = append(retireQ, pending{o})
			} else if len(retireQ) > 0 {
				file.Free(retireQ[0].old)
				retireQ = retireQ[1:]
			}
		}
		// Invariant: every architectural register maps to a distinct preg.
		seen := map[PReg]bool{}
		for a := 0; a < isa.NumArchRegs; a++ {
			p := file.Lookup(0, isa.Reg(a))
			if p == PRegInvalid || seen[p] {
				return false
			}
			seen[p] = true
		}
		// Invariant: allocated = mapped + pending retires.
		allocated := file.NumPhys() - file.FreeCount()
		return allocated == isa.NumArchRegs+len(retireQ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
