package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Writer is the span stream's JSONL exporter. Spans accumulate in
// memory and are encoded by Flush in canonical (trace, span) order, so
// the stream's bytes do not depend on which goroutine finished which
// stage first — concurrent sweeps export byte-stable files. Errors
// latch, reusing obs.RingWriter's contract: the first write error stops
// further output, later spans are dropped, and the caller must check
// Flush/Err after the run — the writer never aborts the work it
// observes.
//
// Unlike obs.RingWriter (which one machine feeds from one goroutine), a
// Writer is shared by every goroutine of a sweep, so it is safe for
// concurrent use.
type Writer struct {
	mu    sync.Mutex
	enc   *json.Encoder
	spans []Span
	err   error
}

// NewWriter writes spans to w as JSON Lines on Flush.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

// Span buffers one finished span, implementing SpanSink.
func (w *Writer) Span(s Span) {
	w.mu.Lock()
	if w.err == nil {
		// simlint:prealloc run-lifetime buffer; growth amortises across the sweep and Flush reuses it
		w.spans = append(w.spans, s)
	}
	w.mu.Unlock()
}

// Flush sorts the buffered spans into canonical order, encodes them,
// and returns the first latched error. Call it once the sweep
// completes; a Writer holds no OS resources, so there is no separate
// Close.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	sort.Slice(w.spans, func(i, j int) bool {
		a, b := w.spans[i], w.spans[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		return a.Span < b.Span
	})
	for _, s := range w.spans {
		if err := w.enc.Encode(s); err != nil {
			w.err = err
			break
		}
	}
	w.spans = w.spans[:0]
	return w.err
}

// Err returns the first write error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Collector buffers finished spans in memory for tests and in-process
// analysis, implementing SpanSink.
type Collector struct {
	mu    sync.Mutex
	spans []Span
}

// Span implements SpanSink.
func (c *Collector) Span(s Span) {
	c.mu.Lock()
	// simlint:prealloc run-lifetime test buffer; growth amortises across the run
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Spans returns the collected spans in canonical (trace, span) order.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	out := append([]Span(nil), c.spans...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		return out[i].Span < out[j].Span
	})
	return out
}
