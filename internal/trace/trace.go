// Package trace is the serving stack's distributed-tracing layer: a
// deterministic span model that decomposes a sweep job's end-to-end
// latency into its stages — coordinator attempt, backoff wait, hedge,
// backend queue wait, cache lookup, simulation run — the same way the
// simulator decomposes IPC loss into per-loop delay contributions.
//
// Determinism is the design center, mirroring the rest of internal/:
//
//   - Trace IDs are a pure function of (tracer seed, job content key,
//     per-key occurrence count), so the same sweep produces the same
//     trace IDs on every run regardless of goroutine scheduling.
//   - Span IDs encode the tree path (each child's ID is its parent's ID
//     shifted by one base-256 digit plus the child index), so two
//     processes extending the same trace — the coordinator and the
//     backend a request landed on — can allocate IDs independently
//     without ever colliding, and the (trace, span) pair is a total
//     order the exporter can sort into a canonical stream.
//   - Timestamps come only from an injected clock (Options.Now), never
//     the wall clock, keeping the package clean under simlint's noclock
//     analyzer. A nil clock records zero timestamps: the span structure
//     stays byte-identical across runs, which is what the selfcheck and
//     the propagation tests pin.
//
// A nil *Tracer (tracing off) is free: every method is a nil-receiver
// no-op, so instrumented code pays one pointer compare per site and
// allocates nothing.
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one finished stage of a trace, as written to the JSONL stream.
// Spans carry no process-local identifiers (job IDs, goroutine order):
// everything in a span is a deterministic function of the work it
// describes, so streams from repeated runs are byte-comparable.
type Span struct {
	// Trace identifies the job this span belongs to: 32 hex characters,
	// shared by every span of the job across coordinator and backends.
	Trace string `json:"trace"`
	// Span is the span's ID, unique within its trace. The root is 1;
	// a child's ID is parent*256 + index, encoding the tree path.
	Span uint64 `json:"span"`
	// Parent is the parent span's ID; 0 marks a root.
	Parent uint64 `json:"parent,omitempty"`
	// Name is the stage: "job", "post", "hedge", "backoff", "local",
	// "probe" on the coordinator; "serve", "cache", "queue", "run" on a
	// backend.
	Name string `json:"name"`
	// Key is the job's content address (serve.ConfigKey), set on roots.
	Key string `json:"key,omitempty"`
	// Target names what the stage acted on (a backend URL), when any.
	Target string `json:"target,omitempty"`
	// Status is the stage's outcome: "ok", "error", "hit", "miss", a
	// terminal job state, or "" when the stage has no outcome.
	Status string `json:"status,omitempty"`
	// Detail carries the error message or outcome annotation, if any.
	Detail string `json:"detail,omitempty"`
	// Winner marks the attempt whose response the job actually used —
	// the survivor of a retry chain or a hedge race.
	Winner bool `json:"winner,omitempty"`
	// Start and End are injected-clock timestamps in nanoseconds; zero
	// when the tracer has no clock.
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
}

// Duration is the span's measured length, zero under a nil clock.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// SpanSink receives finished spans. Implementations must be safe for
// concurrent use: spans finish on whatever goroutine ran the stage.
type SpanSink interface {
	Span(Span)
}

// SpanContext is the propagated slice of a trace: enough for a remote
// process to continue it. The zero value means "no trace".
type SpanContext struct {
	Trace string
	Span  uint64
}

// TraceparentHeader is the HTTP header the coordinator sets and the
// backend reads, carrying a SpanContext in W3C traceparent layout.
const TraceparentHeader = "Traceparent"

// Format renders sc as a traceparent header value
// ("00-<trace>-<span>-01"), or "" for the zero context.
func Format(sc SpanContext) string {
	if sc.Trace == "" {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", sc.Trace, sc.Span)
}

// Parse inverts Format. It reports false for an empty, malformed, or
// foreign-version header — the server then simply starts its own trace.
func Parse(s string) (SpanContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(parts[1]); err != nil {
		return SpanContext{}, false
	}
	span, err := hex.DecodeString(parts[2])
	if err != nil {
		return SpanContext{}, false
	}
	id := binary.BigEndian.Uint64(span)
	if id == 0 {
		return SpanContext{}, false
	}
	return SpanContext{Trace: parts[1], Span: id}, true
}

// Options configure a Tracer.
type Options struct {
	// Seed feeds trace-ID derivation; two tracers with the same seed
	// assign the same trace IDs to the same job keys.
	Seed int64
	// Now is the injected clock for span timestamps; nil records zeros,
	// keeping the span stream fully deterministic. Commands inject
	// time.Now; internal packages never read the clock themselves.
	Now func() time.Time
	// Sink receives finished spans; a nil sink makes New return a nil
	// tracer (tracing off).
	Sink SpanSink
}

// Tracer mints spans. A nil *Tracer is the off state: all methods are
// nil-receiver no-ops, so call sites need no separate enabled flag.
// Create with New; safe for concurrent use.
type Tracer struct {
	seed int64
	now  func() time.Time
	sink SpanSink

	open atomic.Int64

	mu  sync.Mutex
	occ map[string]uint64 // per-key trace occurrence counts
}

// New returns a tracer over opts.Sink, or nil (tracing off) when the
// sink is nil.
func New(opts Options) *Tracer {
	if opts.Sink == nil {
		return nil
	}
	return &Tracer{
		seed: opts.Seed,
		now:  opts.Now,
		sink: opts.Sink,
		occ:  make(map[string]uint64),
	}
}

// Open reports the number of started-but-unfinished spans; tests use it
// to assert that every terminal path closes what it opened.
func (t *Tracer) Open() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}

// nowNS reads the injected clock, zero when there is none.
func (t *Tracer) nowNS() int64 {
	if t.now == nil {
		return 0
	}
	// simlint:ignore ifacedispatch injected-clock seam (noclock bans time.Now here)
	return t.now().UnixNano()
}

// traceID derives a trace's 32-hex-character ID from the tracer seed,
// the job key, and how many traces this key already started — pure
// inputs, so scheduling cannot perturb it.
func traceID(seed int64, key string, occurrence uint64) string {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(key))
	binary.BigEndian.PutUint64(b[:], occurrence)
	_, _ = h.Write(b[:])
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// maxChildIndex caps one span's distinguishable children. Index
// assignment saturates there: a 256th child would reuse the ID, which
// degrades uniqueness but never breaks the encoding — and no stage in
// the serving stack approaches it (attempts are bounded by
// Options.Attempts, backend stages by the job lifecycle).
const maxChildIndex = 255

// childID extends a parent's tree-path ID by one digit.
func childID(parent uint64, index int) uint64 {
	if index > maxChildIndex {
		index = maxChildIndex
	}
	return parent*(maxChildIndex+1) + uint64(index)
}

// Root starts a new trace for the job addressed by key and returns its
// root span. The root's ID is always 1.
func (t *Tracer) Root(key, name string) *ActiveSpan {
	if t == nil || t.sink == nil {
		return nil
	}
	t.mu.Lock()
	occ := t.occ[key]
	t.occ[key] = occ + 1
	t.mu.Unlock()
	t.open.Add(1)
	a := &ActiveSpan{t: t}
	a.s = Span{
		Trace: traceID(t.seed, key, occ),
		Span:  1,
		Name:  name,
		Key:   key,
		Start: t.nowNS(),
	}
	return a
}

// Continue extends a propagated trace with this process's first span
// (child 1 of the propagated parent). A zero context returns nil: an
// untraced request stays untraced.
func (t *Tracer) Continue(sc SpanContext, name string) *ActiveSpan {
	if t == nil || t.sink == nil || sc.Trace == "" {
		return nil
	}
	t.open.Add(1)
	a := &ActiveSpan{t: t}
	a.s = Span{
		Trace:  sc.Trace,
		Span:   childID(sc.Span, 1),
		Parent: sc.Span,
		Name:   name,
		Start:  t.nowNS(),
	}
	return a
}

// ActiveSpan is a started span. All methods are safe for concurrent use
// and are no-ops on a nil receiver or after End, so instrumentation
// never needs to branch on whether tracing is enabled.
type ActiveSpan struct {
	t *Tracer

	mu     sync.Mutex
	s      Span
	nchild int
	ended  bool
}

// Child starts a sub-span. Child indices are assigned in call order, so
// deterministic call sequences yield deterministic IDs.
func (a *ActiveSpan) Child(name string) *ActiveSpan {
	if a == nil {
		return nil
	}
	t := a.t
	if t.sink == nil {
		return nil
	}
	a.mu.Lock()
	a.nchild++
	idx := a.nchild
	trace, parent := a.s.Trace, a.s.Span
	a.mu.Unlock()
	t.open.Add(1)
	c := &ActiveSpan{t: t}
	c.s = Span{
		Trace:  trace,
		Span:   childID(parent, idx),
		Parent: parent,
		Name:   name,
		Start:  t.nowNS(),
	}
	return c
}

// Context returns the span's propagation slice for the traceparent
// header; zero on a nil span.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return SpanContext{Trace: a.s.Trace, Span: a.s.Span}
}

// SetTarget records what the stage acted on; dropped after End.
func (a *ActiveSpan) SetTarget(target string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.ended {
		a.s.Target = target
	}
	a.mu.Unlock()
}

// SetStatus records the stage outcome; dropped after End.
func (a *ActiveSpan) SetStatus(status string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.ended {
		a.s.Status = status
	}
	a.mu.Unlock()
}

// SetDetail records an outcome annotation; dropped after End.
func (a *ActiveSpan) SetDetail(detail string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.ended {
		a.s.Detail = detail
	}
	a.mu.Unlock()
}

// SetError records status "error" with the message as detail, or status
// "ok" for a nil error; dropped after End.
func (a *ActiveSpan) SetError(err error) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.ended {
		if err != nil {
			a.s.Status = "error"
			a.s.Detail = err.Error()
		} else {
			a.s.Status = "ok"
		}
	}
	a.mu.Unlock()
}

// SetWinner marks the span as the attempt whose result the job used;
// dropped after End.
func (a *ActiveSpan) SetWinner() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.ended {
		a.s.Winner = true
	}
	a.mu.Unlock()
}

// End finishes the span and delivers it to the sink. End is idempotent:
// the first call wins, so a safety-net deferred End after an explicit
// one is harmless. This is the trace layer's per-event emit path (a
// simlint hot-path root): one mutex round, a struct copy, and a guarded
// interface call.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return
	}
	a.ended = true
	s := a.s
	a.mu.Unlock()
	t := a.t
	s.End = t.nowNS()
	t.open.Add(-1)
	if t.sink == nil {
		return
	}
	t.sink.Span(s)
}
