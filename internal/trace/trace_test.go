package trace

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDDeterministic(t *testing.T) {
	a := traceID(1, "key-a", 0)
	if len(a) != 32 {
		t.Fatalf("trace ID length = %d, want 32", len(a))
	}
	if b := traceID(1, "key-a", 0); b != a {
		t.Fatalf("same inputs produced different trace IDs: %s vs %s", a, b)
	}
	for _, other := range []string{
		traceID(1, "key-a", 1), // next occurrence
		traceID(1, "key-b", 0), // other key
		traceID(2, "key-a", 0), // other seed
	} {
		if other == a {
			t.Fatalf("distinct inputs collided on trace ID %s", a)
		}
	}
}

func TestRootOccurrenceAdvances(t *testing.T) {
	var c Collector
	tr := New(Options{Seed: 1, Sink: &c})
	first := tr.Root("k", "job")
	second := tr.Root("k", "job")
	if first.Context().Trace == second.Context().Trace {
		t.Fatal("two traces for the same key share an ID")
	}
	first.End()
	second.End()

	// A fresh tracer with the same seed replays the same IDs in order.
	var c2 Collector
	tr2 := New(Options{Seed: 1, Sink: &c2})
	if got := tr2.Root("k", "job").Context().Trace; got != first.Context().Trace {
		t.Fatalf("replayed first trace ID = %s, want %s", got, first.Context().Trace)
	}
}

func TestChildIDsEncodeTreePath(t *testing.T) {
	var c Collector
	tr := New(Options{Seed: 1, Sink: &c})
	root := tr.Root("k", "job")
	k1 := root.Child("post")
	k2 := root.Child("backoff")
	g1 := k1.Child("x")
	if id := root.Context().Span; id != 1 {
		t.Fatalf("root span ID = %d, want 1", id)
	}
	if id := k1.Context().Span; id != 256+1 {
		t.Fatalf("first child ID = %d, want %d", id, 256+1)
	}
	if id := k2.Context().Span; id != 256+2 {
		t.Fatalf("second child ID = %d, want %d", id, 256+2)
	}
	if id := g1.Context().Span; id != (256+1)*256+1 {
		t.Fatalf("grandchild ID = %d, want %d", id, (256+1)*256+1)
	}
	for _, sp := range []*ActiveSpan{g1, k1, k2, root} {
		sp.End()
	}
	if n := tr.Open(); n != 0 {
		t.Fatalf("open spans after ending all = %d", n)
	}
}

func TestContinueMatchesRemoteChild(t *testing.T) {
	var c Collector
	tr := New(Options{Seed: 7, Sink: &c})
	root := tr.Root("k", "job")
	post := root.Child("post")

	header := Format(post.Context())
	sc, ok := Parse(header)
	if !ok {
		t.Fatalf("Parse(%q) failed", header)
	}
	if sc != post.Context() {
		t.Fatalf("round-tripped context = %+v, want %+v", sc, post.Context())
	}

	var backendSink Collector
	backend := New(Options{Seed: 99, Sink: &backendSink}) // seed must not matter for continuations
	srv := backend.Continue(sc, "serve")
	if got := srv.Context().Trace; got != root.Context().Trace {
		t.Fatalf("continued trace = %s, want %s", got, root.Context().Trace)
	}
	if got, want := srv.Context().Span, childID(post.Context().Span, 1); got != want {
		t.Fatalf("continued span ID = %d, want %d", got, want)
	}
	srv.End()
	post.End()
	root.End()
	spans := backendSink.Spans()
	if len(spans) != 1 || spans[0].Parent != post.Context().Span {
		t.Fatalf("backend spans = %+v, want one child of the post span", spans)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-0000000000000001-01",
		"01-00000000000000000000000000000000-0000000000000001-01", // foreign version
		"00-zz000000000000000000000000000000-0000000000000001-01",
		"00-00000000000000000000000000000000-zz00000000000001-01",
		"00-00000000000000000000000000000000-0000000000000000-01", // zero span
		"00-00000000000000000000000000000000-0000000000000001",
	}
	for _, s := range bad {
		if _, ok := Parse(s); ok {
			t.Errorf("Parse(%q) accepted a malformed header", s)
		}
	}
	if got := Format(SpanContext{}); got != "" {
		t.Errorf("Format(zero) = %q, want empty", got)
	}
}

func TestNilTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	root := tr.Root("k", "job")
	child := root.Child("post")
	child.SetTarget("x")
	child.SetStatus("ok")
	child.SetError(errors.New("boom"))
	child.SetWinner()
	child.End()
	root.End()
	if sc := child.Context(); sc != (SpanContext{}) {
		t.Fatalf("nil span context = %+v, want zero", sc)
	}
	if n := tr.Open(); n != 0 {
		t.Fatalf("nil tracer open = %d", n)
	}

	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Root("k", "job")
		c := sp.Child("post")
		c.SetStatus("ok")
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("tracing-off path allocates %v allocs/op, want 0", allocs)
	}

	if got := New(Options{}); got != nil {
		t.Fatal("New with no sink must return the nil (off) tracer")
	}
}

func TestEndIdempotentAndSettersDropAfterEnd(t *testing.T) {
	var c Collector
	tr := New(Options{Seed: 1, Sink: &c})
	sp := tr.Root("k", "job")
	sp.SetStatus("ok")
	sp.End()
	sp.SetStatus("late")
	sp.SetWinner()
	sp.End()
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("span delivered %d times, want 1", len(spans))
	}
	if spans[0].Status != "ok" || spans[0].Winner {
		t.Fatalf("post-End mutation leaked into %+v", spans[0])
	}
	if n := tr.Open(); n != 0 {
		t.Fatalf("open = %d after double End", n)
	}
}

func TestInjectedClockTimestamps(t *testing.T) {
	var c Collector
	now := time.Unix(0, 1000)
	tr := New(Options{Seed: 1, Now: func() time.Time { return now }, Sink: &c})
	sp := tr.Root("k", "job")
	now = time.Unix(0, 5000)
	sp.End()
	spans := c.Spans()
	if spans[0].Start != 1000 || spans[0].End != 5000 {
		t.Fatalf("span times = (%d, %d), want (1000, 5000)", spans[0].Start, spans[0].End)
	}
	if d := spans[0].Duration(); d != 4000 {
		t.Fatalf("duration = %v, want 4000ns", d)
	}
}

func TestWriterCanonicalOrderAndLatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Deliver out of order, concurrently.
	spans := []Span{
		{Trace: "bb", Span: 2, Name: "x"},
		{Trace: "aa", Span: 257, Name: "y"},
		{Trace: "aa", Span: 1, Name: "z"},
	}
	var wg sync.WaitGroup
	for _, s := range spans {
		wg.Add(1)
		go func(s Span) {
			defer wg.Done()
			w.Span(s)
		}(s)
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	wantOrder := []string{`"z"`, `"y"`, `"x"`}
	for i, want := range wantOrder {
		if !strings.Contains(lines[i], want) {
			t.Fatalf("line %d = %s, want name %s (canonical order)", i, lines[i], want)
		}
	}

	// Error latch: the first failed write sticks; later spans drop.
	fw := NewWriter(failWriter{})
	fw.Span(Span{Trace: "aa", Span: 1})
	if err := fw.Flush(); err == nil {
		t.Fatal("Flush over a failing writer returned nil")
	}
	fw.Span(Span{Trace: "aa", Span: 2}) // dropped
	if fw.Err() == nil {
		t.Fatal("Err not latched")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk gone") }
