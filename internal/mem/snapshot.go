package mem

import "loosesim/internal/snap"

// snapshotLines encodes a line slice (cache set or TLB array).
func snapshotLines(w *snap.Writer, lines []line) {
	for _, ln := range lines {
		w.U64(ln.tag)
		w.Bool(ln.valid)
		w.U64(ln.used)
	}
}

// restoreLines overwrites a line slice in place.
func restoreLines(r *snap.Reader, lines []line) {
	for i := range lines {
		lines[i].tag = r.U64()
		lines[i].valid = r.Bool()
		lines[i].used = r.U64()
	}
}

// Snapshot encodes the cache's mutable state: every line's tag/valid/LRU
// stamp, the LRU clock, and the hit/miss statistics. Geometry is config,
// rebuilt by NewCache.
func (c *Cache) Snapshot(w *snap.Writer) {
	w.Len(len(c.sets))
	for _, set := range c.sets {
		snapshotLines(w, set)
	}
	w.U64(c.clock)
	w.U64(c.hits)
	w.U64(c.misses)
}

// Restore overwrites c's mutable state with state encoded by Snapshot.
// c must have been constructed by NewCache with the same geometry.
func (c *Cache) Restore(r *snap.Reader) {
	n := r.Len(len(c.sets))
	if n != len(c.sets) {
		r.Failf("cache: %d sets, want %d", n, len(c.sets))
		return
	}
	for _, set := range c.sets {
		restoreLines(r, set)
	}
	c.clock = r.U64()
	c.hits = r.U64()
	c.misses = r.U64()
}

// Snapshot encodes the TLB's mutable state.
func (t *TLB) Snapshot(w *snap.Writer) {
	w.Len(len(t.entries))
	snapshotLines(w, t.entries)
	w.U64(t.clock)
	w.U64(t.hits)
	w.U64(t.missesCt)
}

// Restore overwrites t's mutable state with state encoded by Snapshot.
func (t *TLB) Restore(r *snap.Reader) {
	n := r.Len(len(t.entries))
	if n != len(t.entries) {
		r.Failf("tlb: %d entries, want %d", n, len(t.entries))
		return
	}
	restoreLines(r, t.entries)
	t.clock = r.U64()
	t.hits = r.U64()
	t.missesCt = r.U64()
}

// Snapshot encodes the hierarchy: both cache levels, the TLB, the
// current-cycle bank-busy tracking, and the access statistics.
func (h *Hierarchy) Snapshot(w *snap.Writer) {
	h.l1.Snapshot(w)
	h.l2.Snapshot(w)
	h.tlb.Snapshot(w)
	w.I64(h.bankCycle)
	w.U64(h.bankMask)
	w.U64(h.loads)
	w.U64(h.stores)
	w.U64(h.bankConflictsCt)
}

// Restore overwrites h's mutable state with state encoded by Snapshot.
// h must have been constructed by NewHierarchy with the same config.
func (h *Hierarchy) Restore(r *snap.Reader) {
	h.l1.Restore(r)
	h.l2.Restore(r)
	h.tlb.Restore(r)
	h.bankCycle = r.I64()
	h.bankMask = r.U64()
	h.loads = r.U64()
	h.stores = r.U64()
	h.bankConflictsCt = r.U64()
}

// WarmLoad touches the TLB and cache state for one load without the
// cycle-coupled bank-conflict tracking or the load/store statistics —
// the functional-warming fast path between sample windows. Cache and TLB
// hit/miss counters do advance: warming exists exactly to carry that
// state forward.
func (h *Hierarchy) WarmLoad(addr uint64) {
	h.tlb.Access(addr)
	if !h.l1.Access(addr) {
		h.l2.Access(addr)
	}
}

// WarmStore is WarmLoad's store-side twin.
func (h *Hierarchy) WarmStore(addr uint64) {
	h.tlb.Access(addr)
	if !h.l1.Access(addr) {
		h.l2.Access(addr)
	}
}
