package mem

import "fmt"

// HierConfig describes the full data-memory hierarchy of the base machine.
type HierConfig struct {
	L1 CacheConfig
	L2 CacheConfig
	// MemLatency is the load-to-use latency of a main-memory access.
	MemLatency int
	// TLBEntries and PageBytes size the data TLB.
	TLBEntries int
	PageBytes  int
	// BankConflictPenalty is the extra latency a load pays when its bank
	// was already accessed this cycle.
	BankConflictPenalty int
}

// Validate reports configuration errors.
func (c HierConfig) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if c.MemLatency < 1 {
		return fmt.Errorf("mem: MemLatency = %d, must be >= 1", c.MemLatency)
	}
	if c.TLBEntries < 1 {
		return fmt.Errorf("mem: TLBEntries = %d, must be >= 1", c.TLBEntries)
	}
	if c.PageBytes < 1 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("mem: PageBytes = %d, must be a power of two", c.PageBytes)
	}
	if c.BankConflictPenalty < 0 {
		return fmt.Errorf("mem: BankConflictPenalty = %d, must be >= 0", c.BankConflictPenalty)
	}
	return nil
}

// DefaultHierConfig returns the hierarchy of the paper's base machine
// analogue: 64KB 4-way 8-bank L1 with 3-cycle load-to-use, 2MB 8-way L2 at
// 16 cycles, 150-cycle memory, and a 128-entry 8KB-page TLB.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1:                  CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, Banks: 8, HitLatency: 3},
		L2:                  CacheConfig{SizeBytes: 2 << 20, LineBytes: 64, Ways: 8, HitLatency: 16},
		MemLatency:          150,
		TLBEntries:          128,
		PageBytes:           8 << 10,
		BankConflictPenalty: 1,
	}
}

// AccessResult reports the timing outcome of one load.
type AccessResult struct {
	// Latency is the load-to-use latency in cycles.
	Latency int
	// L1Hit reports a first-level hit.
	L1Hit bool
	// L2Hit reports a second-level hit (only meaningful when !L1Hit).
	L2Hit bool
	// BankConflict reports that the L1 bank was busy this cycle, delaying
	// the access. A conflicted hit still mis-speculates the load loop,
	// because dependents were woken for the unconflicted hit latency.
	BankConflict bool
	// TLBMiss reports a data TLB miss, which the pipeline treats as a
	// memory trap (flush and refetch — the paper's memory trap loop).
	TLBMiss bool
}

// Hit reports whether the load delivered data at the speculated L1 hit
// latency, i.e. whether load-hit speculation was correct.
func (r AccessResult) Hit() bool { return r.L1Hit && !r.BankConflict }

// Hierarchy ties the cache levels, banks, and TLB together and produces the
// per-load AccessResult the pipeline consumes.
type Hierarchy struct {
	cfg HierConfig
	l1  *Cache
	l2  *Cache
	tlb *TLB

	// Bank-busy tracking for the current cycle.
	bankCycle int64
	bankMask  uint64

	loads, stores   uint64
	bankConflictsCt uint64
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	return &Hierarchy{
		cfg:       cfg,
		l1:        NewCache(cfg.L1),
		l2:        NewCache(cfg.L2),
		tlb:       NewTLB(cfg.TLBEntries, cfg.PageBytes),
		bankCycle: -1,
	}
}

// L1 exposes the first-level cache for statistics.
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 exposes the second-level cache for statistics.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// TLB exposes the data TLB for statistics.
func (h *Hierarchy) TLB() *TLB { return h.tlb }

// Load performs a load access at the given cycle and returns its timing.
func (h *Hierarchy) Load(addr uint64, cycle int64) AccessResult {
	h.loads++
	var res AccessResult
	if !h.tlb.Access(addr) {
		res.TLBMiss = true
	}
	if h.cfg.L1.Banks > 1 {
		if cycle != h.bankCycle {
			h.bankCycle = cycle
			h.bankMask = 0
		}
		bit := uint64(1) << uint(h.l1.Bank(addr))
		if h.bankMask&bit != 0 {
			res.BankConflict = true
			h.bankConflictsCt++
		}
		h.bankMask |= bit
	}
	res.L1Hit = h.l1.Access(addr)
	switch {
	case res.L1Hit:
		res.Latency = h.cfg.L1.HitLatency
	default:
		res.L2Hit = h.l2.Access(addr)
		if res.L2Hit {
			res.Latency = h.cfg.L2.HitLatency
		} else {
			res.Latency = h.cfg.MemLatency
		}
	}
	if res.BankConflict {
		res.Latency += h.cfg.BankConflictPenalty
	}
	return res
}

// Store performs a store access for cache-state and statistics purposes.
// Stores produce no register result, so their latency does not feed wakeup.
func (h *Hierarchy) Store(addr uint64) {
	h.stores++
	h.tlb.Access(addr)
	if !h.l1.Access(addr) {
		h.l2.Access(addr)
	}
}

// Loads returns the number of load accesses.
func (h *Hierarchy) Loads() uint64 { return h.loads }

// Stores returns the number of store accesses.
func (h *Hierarchy) Stores() uint64 { return h.stores }

// BankConflicts returns the number of bank-conflicted loads.
func (h *Hierarchy) BankConflicts() uint64 { return h.bankConflictsCt }
