package mem

import "testing"

func TestCacheConfigValidate(t *testing.T) {
	good := DefaultHierConfig().L1
	if err := good.Validate(); err != nil {
		t.Fatalf("default L1 config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*CacheConfig)
	}{
		{"zero size", func(c *CacheConfig) { c.SizeBytes = 0 }},
		{"non-pow2 line", func(c *CacheConfig) { c.LineBytes = 48 }},
		{"zero ways", func(c *CacheConfig) { c.Ways = 0 }},
		{"negative banks", func(c *CacheConfig) { c.Banks = -1 }},
		{"non-pow2 banks", func(c *CacheConfig) { c.Banks = 3 }},
		{"zero hit latency", func(c *CacheConfig) { c.HitLatency = 0 }},
		{"non-pow2 sets", func(c *CacheConfig) { c.SizeBytes = 48 << 10 }},
	}
	for _, c := range cases {
		cfg := DefaultHierConfig().L1
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
}

func TestHierConfigValidate(t *testing.T) {
	if err := DefaultHierConfig().Validate(); err != nil {
		t.Fatalf("default hierarchy config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*HierConfig)
	}{
		{"bad L1", func(c *HierConfig) { c.L1.Ways = 0 }},
		{"bad L2", func(c *HierConfig) { c.L2.LineBytes = 3 }},
		{"zero mem latency", func(c *HierConfig) { c.MemLatency = 0 }},
		{"zero TLB", func(c *HierConfig) { c.TLBEntries = 0 }},
		{"non-pow2 page", func(c *HierConfig) { c.PageBytes = 3000 }},
		{"negative conflict penalty", func(c *HierConfig) { c.BankConflictPenalty = -1 }},
	}
	for _, c := range cases {
		cfg := DefaultHierConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
}
