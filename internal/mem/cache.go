// Package mem models the data-memory substrate of the simulated machine: a
// set-associative, banked L1 data cache backed by a unified L2 and main
// memory, plus a data TLB. Load latency non-determinism — did the load hit,
// miss, or suffer a bank conflict — is what creates the paper's load
// resolution loop, so these structures are real tag/LRU models over the
// generated address streams rather than fixed probabilities.
package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the block size; must be a power of two.
	LineBytes int
	// Ways is the associativity.
	Ways int
	// Banks is the number of independently addressed banks (L1 only);
	// zero means unbanked.
	Banks int
	// HitLatency is the load-to-use latency in cycles on a hit at this
	// level (measured from the start of the access).
	HitLatency int
}

// Validate reports configuration errors: the geometry the constructor
// would otherwise panic on, checked up front so a bad sweep config fails
// with an error instead of taking down the process mid-batch.
func (c CacheConfig) Validate() error {
	if c.SizeBytes < 1 {
		return fmt.Errorf("mem: SizeBytes = %d, must be >= 1", c.SizeBytes)
	}
	if c.LineBytes < 1 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: LineBytes = %d, must be a power of two", c.LineBytes)
	}
	if c.Ways < 1 {
		return fmt.Errorf("mem: Ways = %d, must be >= 1", c.Ways)
	}
	if c.Banks < 0 {
		return fmt.Errorf("mem: Banks = %d, must be >= 0", c.Banks)
	}
	if c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("mem: Banks = %d, must be zero or a power of two", c.Banks)
	}
	if c.HitLatency < 1 {
		return fmt.Errorf("mem: HitLatency = %d, must be >= 1", c.HitLatency)
	}
	if s := c.sets(); s&(s-1) != 0 {
		return fmt.Errorf("mem: set count %d not a power of two (size=%d line=%d ways=%d)",
			s, c.SizeBytes, c.LineBytes, c.Ways)
	}
	return nil
}

func (c CacheConfig) sets() int {
	s := c.SizeBytes / (c.LineBytes * c.Ways)
	if s < 1 {
		s = 1
	}
	return s
}

type line struct {
	tag   uint64
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative cache with true LRU replacement. It tracks
// hits and misses; data contents are not modelled (timing-only simulator).
type Cache struct {
	cfg     CacheConfig // simlint:noreset immutable geometry, fixed at construction
	sets    [][]line
	setMask uint64 // simlint:noreset derived from cfg at construction
	lnShift uint   // simlint:noreset derived from cfg at construction
	clock   uint64

	hits, misses uint64
}

// NewCache builds a cache from cfg. Line size and set count must come out
// as powers of two.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("mem: line size %d not a power of two", cfg.LineBytes))
	}
	nsets := cfg.sets()
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("mem: set count %d not a power of two (size=%d ways=%d)", nsets, cfg.SizeBytes, cfg.Ways))
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	sh := uint(0)
	for 1<<sh < cfg.LineBytes {
		sh++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nsets - 1), lnShift: sh}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) set(addr uint64) ([]line, uint64) {
	blk := addr >> c.lnShift
	return c.sets[blk&c.setMask], blk >> 0
}

// Access probes the cache for addr, allocating the line on a miss (LRU
// victim) and updating LRU state. It returns whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			c.hits++
			return true
		}
	}
	c.misses++
	// Choose the LRU victim (or an invalid way).
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, used: c.clock}
	return false
}

// Probe checks for addr without updating any state. Used by tests.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Bank returns the bank index addr maps to (0 for unbanked caches).
func (c *Cache) Bank(addr uint64) int {
	if c.cfg.Banks <= 1 {
		return 0
	}
	return int((addr >> c.lnShift) % uint64(c.cfg.Banks))
}

// Hits returns the number of hits observed.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses observed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses / accesses, or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.hits, c.misses, c.clock = 0, 0, 0
}

// TLB is a fully associative data TLB with LRU replacement. A TLB miss is
// the paper's memory-trap loop: recovery happens at the fetch stage, so the
// pipeline flushes and refetches.
type TLB struct {
	entries  []line
	pgShift  uint
	clock    uint64
	hits     uint64
	missesCt uint64
}

// NewTLB returns a TLB with the given entry count and page size (power of
// two bytes).
func NewTLB(entries int, pageBytes int) *TLB {
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d not a power of two", pageBytes))
	}
	sh := uint(0)
	for 1<<sh < pageBytes {
		sh++
	}
	return &TLB{entries: make([]line, entries), pgShift: sh}
}

// Access probes the TLB for the page containing addr, filling it on a miss.
// It returns whether the access hit.
func (t *TLB) Access(addr uint64) bool {
	t.clock++
	page := addr >> t.pgShift
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].tag == page {
			t.entries[i].used = t.clock
			t.hits++
			return true
		}
	}
	t.missesCt++
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].used < t.entries[victim].used {
			victim = i
		}
	}
	t.entries[victim] = line{tag: page, valid: true, used: t.clock}
	return false
}

// Misses returns the number of TLB misses observed.
func (t *TLB) Misses() uint64 { return t.missesCt }

// MissRate returns the TLB miss rate.
func (t *TLB) MissRate() float64 {
	total := t.hits + t.missesCt
	if total == 0 {
		return 0
	}
	return float64(t.missesCt) / float64(total)
}
