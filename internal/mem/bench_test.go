package mem

import (
	"math/rand"
	"testing"
)

func benchAddrs(n int, span uint64) []uint64 {
	rng := rand.New(rand.NewSource(5))
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = rng.Uint64() % span
	}
	return addrs
}

func BenchmarkL1Access(b *testing.B) {
	c := NewCache(DefaultHierConfig().L1)
	addrs := benchAddrs(4096, 256<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

func BenchmarkHierarchyLoad(b *testing.B) {
	h := NewHierarchy(DefaultHierConfig())
	addrs := benchAddrs(4096, 4<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(addrs[i&4095], int64(i/4))
	}
}

func BenchmarkTLBAccess(b *testing.B) {
	t := NewTLB(128, 8<<10)
	addrs := benchAddrs(4096, 2<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Access(addrs[i&4095])
	}
}
