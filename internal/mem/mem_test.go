package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 64B lines = 512B.
	return NewCache(CacheConfig{SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 3})
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access must hit")
	}
	if !c.Access(0x1010) {
		t.Error("same-line access must hit")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", c.Hits(), c.Misses())
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	c := smallCache() // 2 ways
	// Three distinct lines mapping to the same set (stride = sets*line = 256B).
	a, b, d := uint64(0x0), uint64(0x100), uint64(0x200)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("a must survive (MRU)")
	}
	if c.Probe(b) {
		t.Error("b must be the LRU victim")
	}
	if !c.Probe(d) {
		t.Error("d must be resident")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, HitLatency: 3})
	// Touch a 4KB working set twice; second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4096; a += 64 {
			c.Access(a)
		}
	}
	if c.Misses() != 64 {
		t.Errorf("misses = %d, want exactly 64 cold misses", c.Misses())
	}
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestCacheThrashingWorkingSet(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 10, LineBytes: 64, Ways: 1, HitLatency: 3})
	// A 2KB set-conflicting sweep in a 1KB direct-mapped cache thrashes.
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 2048; a += 64 {
			c.Access(a)
		}
	}
	if c.MissRate() != 1.0 {
		t.Errorf("direct-mapped thrash miss rate = %v, want 1.0", c.MissRate())
	}
}

func TestCacheReset(t *testing.T) {
	c := smallCache()
	c.Access(0x40)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("reset must clear statistics")
	}
	if c.Probe(0x40) {
		t.Error("reset must clear contents")
	}
}

func TestCacheBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two line size must panic")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 512, LineBytes: 48, Ways: 2})
}

func TestCacheBank(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 4 << 10, LineBytes: 64, Ways: 2, Banks: 8, HitLatency: 3})
	if c.Bank(0) == c.Bank(64) {
		t.Error("consecutive lines must map to different banks")
	}
	if c.Bank(0) != c.Bank(8*64) {
		t.Error("bank mapping must wrap at Banks lines")
	}
	un := smallCache()
	if un.Bank(0x123456) != 0 {
		t.Error("unbanked cache must report bank 0")
	}
}

func TestTLBHitMissLRU(t *testing.T) {
	tlb := NewTLB(2, 4096)
	if tlb.Access(0x0000) {
		t.Error("cold TLB access must miss")
	}
	if !tlb.Access(0x0FFF) {
		t.Error("same-page access must hit")
	}
	tlb.Access(0x1000) // page 1
	tlb.Access(0x0000) // page 0 -> MRU
	tlb.Access(0x2000) // page 2 evicts page 1 (LRU)
	if tlb.Access(0x1000) {
		t.Error("evicted page must miss")
	}
	if tlb.Misses() != 4 {
		t.Errorf("TLB misses = %d, want 4", tlb.Misses())
	}
	if tlb.MissRate() <= 0 || tlb.MissRate() >= 1 {
		t.Errorf("miss rate %v out of range", tlb.MissRate())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultHierConfig()
	h := NewHierarchy(cfg)
	// Cold load: misses everywhere -> memory latency.
	r := h.Load(0x10000, 0)
	if r.L1Hit || r.L2Hit {
		t.Error("cold load must miss both levels")
	}
	if r.Latency != cfg.MemLatency {
		t.Errorf("cold latency = %d, want %d", r.Latency, cfg.MemLatency)
	}
	if !r.TLBMiss {
		t.Error("cold load must miss the TLB")
	}
	// Second load to same line: L1 hit.
	r = h.Load(0x10000, 1)
	if !r.L1Hit || r.Latency != cfg.L1.HitLatency || r.TLBMiss {
		t.Errorf("warm load = %+v, want L1 hit at %d cycles", r, cfg.L1.HitLatency)
	}
	if !r.Hit() {
		t.Error("warm unconflicted L1 access must report Hit()")
	}
}

func TestHierarchyL2HitLatency(t *testing.T) {
	cfg := DefaultHierConfig()
	h := NewHierarchy(cfg)
	h.Load(0x40000, 0) // installs in L1 and L2
	// Evict from L1 by sweeping its capacity with conflicting lines, but
	// stay within L2.
	for a := uint64(0); a < uint64(cfg.L1.SizeBytes*2); a += 64 {
		h.Load(0x80000+a, 1)
	}
	r := h.Load(0x40000, 2)
	if r.L1Hit {
		t.Fatal("line should have been evicted from L1")
	}
	if !r.L2Hit {
		t.Fatal("line should still be resident in L2")
	}
	if r.Latency != cfg.L2.HitLatency {
		t.Errorf("L2 hit latency = %d, want %d", r.Latency, cfg.L2.HitLatency)
	}
}

func TestHierarchyBankConflict(t *testing.T) {
	cfg := DefaultHierConfig()
	h := NewHierarchy(cfg)
	sameBank := uint64(cfg.L1.Banks) * 64
	// Warm two lines in the same bank (Banks*64 apart).
	h.Load(0x0, 0)
	h.Load(sameBank, 1)
	// Same cycle, same bank -> second conflicts.
	r1 := h.Load(0x0, 10)
	r2 := h.Load(sameBank, 10)
	if r1.BankConflict {
		t.Error("first access of the cycle must not conflict")
	}
	if !r2.BankConflict {
		t.Error("second same-bank access in a cycle must conflict")
	}
	if r2.Hit() {
		t.Error("conflicted access must not count as a clean hit")
	}
	if r2.Latency != cfg.L1.HitLatency+cfg.BankConflictPenalty {
		t.Errorf("conflicted latency = %d, want %d", r2.Latency, cfg.L1.HitLatency+cfg.BankConflictPenalty)
	}
	// Different bank same cycle: no conflict.
	h.Load(64, 11)
	r3 := h.Load(2*64, 11)
	if r3.BankConflict {
		t.Error("different banks must not conflict")
	}
	if h.BankConflicts() != 1 {
		t.Errorf("bank conflicts = %d, want 1", h.BankConflicts())
	}
}

func TestHierarchyStoreCounts(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.Store(0x100)
	h.Load(0x100, 0)
	if h.Stores() != 1 || h.Loads() != 1 {
		t.Errorf("loads=%d stores=%d, want 1/1", h.Loads(), h.Stores())
	}
	// The store should have warmed the line for the load.
	r := h.Load(0x100, 1)
	if !r.L1Hit {
		t.Error("store must install the line")
	}
}

// Property: hits + misses equals accesses, and MissRate stays in [0,1].
func TestCacheAccountingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := smallCache()
		for i := 0; i < int(n); i++ {
			c.Access(rng.Uint64() & 0xFFFF)
		}
		if c.Hits()+c.Misses() != uint64(n) {
			return false
		}
		mr := c.MissRate()
		return mr >= 0 && mr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an address accessed twice in a row always hits the second time
// (no spurious invalidation), regardless of interleaved history length < ways.
func TestCacheRepeatHitProperty(t *testing.T) {
	f := func(seed int64, addr uint32) bool {
		c := smallCache()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			c.Access(rng.Uint64() & 0xFFFF)
		}
		a := uint64(addr)
		c.Access(a)
		return c.Access(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: hierarchy latency is always one of the four legal values
// (L1, L2, memory, each optionally plus the conflict penalty).
func TestHierarchyLatencyDomainProperty(t *testing.T) {
	cfg := DefaultHierConfig()
	legal := map[int]bool{
		cfg.L1.HitLatency: true, cfg.L1.HitLatency + cfg.BankConflictPenalty: true,
		cfg.L2.HitLatency: true, cfg.L2.HitLatency + cfg.BankConflictPenalty: true,
		cfg.MemLatency: true, cfg.MemLatency + cfg.BankConflictPenalty: true,
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHierarchy(cfg)
		for i := 0; i < int(n); i++ {
			r := h.Load(rng.Uint64()&0xFFFFF, int64(i/4))
			if !legal[r.Latency] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
