package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", ClassInteractive, true},
		{"interactive", ClassInteractive, true},
		{"standard", ClassStandard, true},
		{"batch", ClassBatch, true},
		{"premium", 0, false},
		{"Interactive", 0, false},
	}
	for _, c := range cases {
		got, err := ParseClass(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseClass(%q) = (%v, %v), want (%v, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
}

// TestAdmissionStaircase pins the shed staircase on a depth-4 queue with
// the default thresholds: batch stops at occupancy 2, standard at 3,
// interactive only rejects at 4.
func TestAdmissionStaircase(t *testing.T) {
	a := NewAdmission(AdmissionConfig{QueueDepth: 4})
	steps := []struct {
		class Class
		want  Decision
	}{
		{ClassBatch, Admit},       // depth 0 -> 1
		{ClassBatch, Admit},       // depth 1 -> 2
		{ClassBatch, Shed},        // 2 >= ceil(0.5*4)
		{ClassStandard, Admit},    // depth 2 -> 3
		{ClassStandard, Shed},     // 3 >= ceil(0.75*4)
		{ClassBatch, Shed},        // still over its limit
		{ClassInteractive, Admit}, // depth 3 -> 4
		{ClassInteractive, Reject},
		{ClassBatch, Reject}, // full queue rejects every class
	}
	for i, s := range steps {
		if got := a.Decide(s.class, ""); got != s.want {
			t.Fatalf("step %d (%s at depth %d): decision = %v, want %v", i, s.class, a.Depth(), got, s.want)
		}
	}
	if a.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", a.Depth())
	}
	// Releasing batch capacity reopens the staircase from the bottom.
	a.Release(ClassBatch, "")
	a.Release(ClassBatch, "")
	a.Release(ClassStandard, "")
	if got := a.Decide(ClassBatch, ""); got != Admit {
		t.Fatalf("batch after release = %v, want Admit", got)
	}
}

func TestAdmissionClientCap(t *testing.T) {
	a := NewAdmission(AdmissionConfig{QueueDepth: 16, ClientCap: 2})
	if got := a.Decide(ClassInteractive, "greedy"); got != Admit {
		t.Fatalf("first = %v", got)
	}
	if got := a.Decide(ClassInteractive, "greedy"); got != Admit {
		t.Fatalf("second = %v", got)
	}
	if got := a.Decide(ClassInteractive, "greedy"); got != Shed {
		t.Fatalf("over-cap = %v, want Shed", got)
	}
	if got := a.Decide(ClassInteractive, "other"); got != Admit {
		t.Fatalf("other client = %v, want Admit", got)
	}
	// Unnamed submissions are never capped.
	for i := 0; i < 5; i++ {
		if got := a.Decide(ClassInteractive, ""); got != Admit {
			t.Fatalf("unnamed %d = %v, want Admit", i, got)
		}
	}
	a.Release(ClassInteractive, "greedy")
	if got := a.Decide(ClassInteractive, "greedy"); got != Admit {
		t.Fatalf("after release = %v, want Admit", got)
	}
	if got := a.ClientDepth("greedy"); got != 2 {
		t.Fatalf("greedy depth = %d, want 2", got)
	}
}

// TestJobQueueClassPriorityAndRemove drives the queue directly: dequeue
// order is class priority then FIFO, and remove is idempotent and releases
// exactly one admission charge.
func TestJobQueueClassPriorityAndRemove(t *testing.T) {
	q := newJobQueue(AdmissionConfig{QueueDepth: 8})
	mk := func(id string, c Class) *Job { return &Job{id: id, class: c} }
	b1 := mk("b1", ClassBatch)
	s1 := mk("s1", ClassStandard)
	i1 := mk("i1", ClassInteractive)
	i2 := mk("i2", ClassInteractive)
	for _, j := range []*Job{b1, s1, i1, i2} {
		if d := q.tryEnqueue(j); d != Admit {
			t.Fatalf("enqueue %s = %v", j.id, d)
		}
	}
	if got := q.depth(); got != 4 {
		t.Fatalf("depth = %d, want 4", got)
	}

	if !q.remove(s1) {
		t.Fatal("remove(s1) = false, want true")
	}
	if q.remove(s1) {
		t.Fatal("second remove(s1) = true, want idempotent false")
	}
	if got := q.depth(); got != 3 {
		t.Fatalf("depth after remove = %d, want 3", got)
	}

	want := []string{"i1", "i2", "b1"} // priority order, FIFO within class
	for _, id := range want {
		j := q.dequeue()
		if j == nil || j.id != id {
			t.Fatalf("dequeue = %v, want %s", j, id)
		}
	}
	if q.remove(i1) {
		t.Fatal("remove after dequeue = true, want false")
	}
	q.close()
	if j := q.dequeue(); j != nil {
		t.Fatalf("dequeue after close = %v, want nil", j)
	}
}

// TestSubmitCancelSubmitAtCapacity is the regression test for the queue
// tombstone bug: with the queue exactly full, cancelling the queued job
// must return its capacity immediately, so the next submission is admitted
// instead of bouncing off a queue that holds only a corpse.
func TestSubmitCancelSubmitAtCapacity(t *testing.T) {
	srv := New(Options{Workers: 1, QueueDepth: 1})
	defer srv.Close()

	blocker := occupyWorker(t, srv, 1)
	defer blocker.Cancel()

	queued, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 2, Warmup: new(uint64), Inst: 1 << 40, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	// The queue is now exactly full: one more must bounce.
	if _, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 3, Warmup: new(uint64), Inst: 1 << 40, NoCache: true}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit against full queue = %v, want ErrQueueFull", err)
	}

	queued.Cancel()
	<-queued.Done()
	if got := srv.Metrics().QueueDepth; got != 0 {
		t.Fatalf("queue depth after cancelling the only queued job = %d, want 0", got)
	}

	// The bug: this submission used to fail with ErrQueueFull because the
	// cancelled job still occupied the queue slot until the worker drained
	// down to it.
	replacement, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 4, Warmup: new(uint64), Inst: 1 << 40, NoCache: true})
	if err != nil {
		t.Fatalf("submit after cancel at exact capacity = %v, want admitted", err)
	}
	replacement.Cancel()
	<-replacement.Done()
	if bst := blocker.Status().State; bst != StateRunning {
		t.Fatalf("blocker state = %q, want still running", bst)
	}
}

// TestShedStaircaseOverHTTP drives the server-level shed semantics: with a
// pinned worker and a depth-4 queue, batch sheds at occupancy 2 and the
// 429 carries a Retry-After hint, both for sheds and plain queue-full.
func TestShedStaircaseOverHTTP(t *testing.T) {
	srv := New(Options{Workers: 1, QueueDepth: 4, RetryAfter: 3 * time.Second})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	blocker := occupyWorker(t, srv, 1)
	defer blocker.Cancel()

	long := func(seed int64, slo string) JobSpec {
		return JobSpec{Bench: "gcc", Seed: seed, Warmup: new(uint64), Inst: 1 << 40, NoCache: true, SLO: slo}
	}
	submit := func(spec JobSpec) (*http.Response, Status) {
		t.Helper()
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp, st
	}

	// Two interactive jobs queue; occupancy 2 now sheds batch.
	for seed := int64(2); seed <= 3; seed++ {
		if resp, _ := submit(long(seed, "")); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("interactive seed %d status = %d, want 202", seed, resp.StatusCode)
		}
	}
	resp, _ := submit(long(4, "batch"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch at occupancy 2 status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("shed Retry-After = %q, want \"3\"", got)
	}

	// Standard still fits (limit 3), then sheds.
	if resp, _ := submit(long(5, "standard")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("standard at occupancy 2 status = %d, want 202", resp.StatusCode)
	}
	if resp, _ := submit(long(6, "standard")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("standard at occupancy 3 status = %d, want 429", resp.StatusCode)
	}

	// Interactive fills the queue, then the full queue rejects with the
	// same Retry-After hint.
	if resp, _ := submit(long(7, "interactive")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("interactive at occupancy 3 status = %d, want 202", resp.StatusCode)
	}
	resp, _ = submit(long(8, "interactive"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("interactive at full queue status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("queue-full Retry-After = %q, want \"3\"", got)
	}

	m := srv.Metrics()
	if m.Jobs.Shed != 2 || m.Jobs.Rejected != 1 {
		t.Fatalf("shed/rejected = %d/%d, want 2/1", m.Jobs.Shed, m.Jobs.Rejected)
	}
	byClass := map[string]int{}
	for _, c := range m.QueueByClass {
		byClass[c.Class] = c.Depth
	}
	if byClass["interactive"] != 3 || byClass["standard"] != 1 || byClass["batch"] != 0 {
		t.Fatalf("queue_by_class = %v, want interactive 3, standard 1, batch 0", byClass)
	}
}

// TestOverloadConservation hammers a tiny server with a sustained
// above-capacity stream across classes and clients, with a fraction of the
// admitted jobs cancelled while queued, and checks the conservation law:
// every validated submission is accounted for exactly once, and the
// observed queue depth never exceeds QueueDepth. Run under -race.
func TestOverloadConservation(t *testing.T) {
	const queueDepth = 4
	srv := New(Options{Workers: 2, QueueDepth: queueDepth, ClientCap: 3})
	defer srv.Close()

	var maxDepth atomic.Int64
	pollDone := make(chan struct{})
	pollStop := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollStop:
				return
			default:
			}
			if d := srv.Metrics().QueueDepth; d > maxDepth.Load() {
				maxDepth.Store(d)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	classes := []string{"", "interactive", "standard", "batch"}
	var attempted atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				spec := JobSpec{
					Bench:   "gcc",
					Seed:    int64(1 + g*1000 + i),
					Warmup:  new(uint64),
					Inst:    1,
					NoCache: true,
					Client:  fmt.Sprintf("client-%d", g%3),
					SLO:     classes[i%len(classes)],
				}
				attempted.Add(1)
				job, err := srv.Submit(spec)
				switch {
				case err == nil:
					if i%3 == 0 {
						job.Cancel()
					}
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShed):
					// Refused: still must appear in the accounting.
				default:
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(pollStop)
	<-pollDone

	m := srv.Metrics()
	sum := m.Jobs.Completed + m.Jobs.Failed + m.Jobs.Cancelled + m.Jobs.Rejected + m.Jobs.Shed
	if m.Jobs.Submitted != sum {
		t.Fatalf("conservation violated: submitted %d != completed %d + failed %d + cancelled %d + rejected %d + shed %d = %d",
			m.Jobs.Submitted, m.Jobs.Completed, m.Jobs.Failed, m.Jobs.Cancelled, m.Jobs.Rejected, m.Jobs.Shed, sum)
	}
	if m.Jobs.Submitted != attempted.Load() {
		t.Fatalf("submitted = %d, want every attempted submission (%d)", m.Jobs.Submitted, attempted.Load())
	}
	if m.Jobs.Failed != 0 {
		t.Fatalf("failed = %d, want 0", m.Jobs.Failed)
	}
	if got := maxDepth.Load(); got > queueDepth {
		t.Fatalf("observed queue depth %d exceeds QueueDepth %d", got, queueDepth)
	}
	if m.QueueDepth != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", m.QueueDepth)
	}

	// The per-client ledgers must conserve independently and sum to the
	// fleet totals (every submission in this test is named).
	var agg ClientMetric
	for _, c := range m.Clients {
		if c.Submitted != c.Completed+c.Failed+c.Cancelled+c.Rejected+c.Shed {
			t.Fatalf("client %s ledger does not conserve: %+v", c.Client, c)
		}
		if c.Queued != 0 {
			t.Fatalf("client %s still queued after drain: %+v", c.Client, c)
		}
		agg.Submitted += c.Submitted
		agg.Completed += c.Completed
		agg.Cancelled += c.Cancelled
		agg.Rejected += c.Rejected
		agg.Shed += c.Shed
	}
	if agg.Submitted != m.Jobs.Submitted || agg.Completed != m.Jobs.Completed ||
		agg.Cancelled != m.Jobs.Cancelled || agg.Rejected != m.Jobs.Rejected || agg.Shed != m.Jobs.Shed {
		t.Fatalf("per-client totals %+v disagree with fleet totals %+v", agg, m.Jobs)
	}
}
