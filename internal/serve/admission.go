package serve

import (
	"fmt"

	"loosesim/internal/stats"
)

// Class is a job's SLO class: the admission-control priority band a
// submission declares for itself. Interactive traffic is protected the
// longest under overload; batch traffic is shed first. The zero value is
// ClassInteractive, which keeps unlabelled submissions (every client that
// predates SLO classes) on the exact pre-admission-control behaviour:
// admitted until the queue is plain full.
type Class uint8

// The SLO classes, in dequeue-priority order: workers drain interactive
// jobs before standard, standard before batch.
const (
	ClassInteractive Class = iota
	ClassStandard
	ClassBatch

	// NumClasses bounds the enumeration.
	NumClasses
)

var classNames = [NumClasses]string{"interactive", "standard", "batch"}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass maps a wire name to its class. The empty string is
// ClassInteractive (back-compat: unlabelled traffic keeps its
// pre-admission-control behaviour).
func ParseClass(s string) (Class, error) {
	if s == "" {
		return ClassInteractive, nil
	}
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("serve: unknown SLO class %q (want interactive, standard, or batch)", s)
}

// Decision is the outcome of one admission check.
type Decision uint8

// Admission outcomes.
const (
	// Admit accepts the job into the queue; the admission state has been
	// charged and the caller must Release when the job leaves the queue.
	Admit Decision = iota
	// Shed refuses the job to protect higher classes: the queue still has
	// room, but this job's class is over its shed threshold (or its
	// client over the fairness cap). The load-shedding signal.
	Shed
	// Reject refuses the job because the queue is plain full, regardless
	// of class.
	Reject
)

// DefaultShedThresholds is the per-class occupancy fraction above which a
// class is shed: batch loses queue access at half occupancy, standard at
// three quarters, and interactive only when the queue is full (which is a
// Reject, not a Shed). The staircase is what turns "the queue is filling"
// into graceful degradation instead of a cliff: under sustained overload
// the queue's tail capacity is reserved for the traffic that paid for it.
var DefaultShedThresholds = [NumClasses]float64{1.0, 0.75, 0.5}

// AdmissionConfig shapes an Admission.
type AdmissionConfig struct {
	// QueueDepth is the hard bound on admitted-but-unstarted jobs.
	QueueDepth int
	// ClientCap bounds the queued jobs of any single client (by the
	// client name the submission carried); <= 0 disables the cap.
	// Unnamed submissions (empty client) are never capped. The fairness
	// backstop: one client replaying a huge sweep cannot occupy the whole
	// queue and starve everyone else's interactive traffic.
	ClientCap int
	// Thresholds overrides DefaultShedThresholds per class; entries <= 0
	// select the default. Values are clamped to [0, 1].
	Thresholds [NumClasses]float64
}

// Admission is the clock-free admission-control core: given a queue bound,
// per-class shed thresholds, and a per-client fairness cap, it decides
// Admit/Shed/Reject and keeps the per-class and per-client occupancy
// accounting that the decisions read. It is deliberately a pure state
// machine — no locks, no channels, no clock — so the live Server (under
// its queue mutex) and internal/load's deterministic fleet model share
// the exact same semantics: the load generator's replays exercise the
// code path production traffic hits.
//
// Callers serialize access themselves.
type Admission struct {
	depth     int
	clientCap int
	limits    [NumClasses]int // admit while total < limits[class]

	byClass   [NumClasses]int
	total     int
	perClient map[string]int
}

// NewAdmission builds the admission state for a queue of the configured
// depth. A non-positive QueueDepth selects DefaultQueueDepth.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	a := &Admission{
		depth:     cfg.QueueDepth,
		clientCap: cfg.ClientCap,
		perClient: make(map[string]int),
	}
	for c := range a.limits {
		f := cfg.Thresholds[c]
		if f <= 0 {
			f = DefaultShedThresholds[c]
		}
		if f > 1 {
			f = 1
		}
		// The limit is the occupancy at which the class stops being
		// admitted; ceil keeps threshold 1.0 exactly at the queue bound
		// and guarantees every class can queue at least one job on a
		// non-degenerate queue.
		limit := int(f * float64(cfg.QueueDepth))
		if float64(limit) < f*float64(cfg.QueueDepth) {
			limit++
		}
		if limit < 1 {
			limit = 1
		}
		a.limits[c] = limit
	}
	return a
}

// Decide runs one admission check. On Admit the job is charged against
// the class, client, and total occupancy, and the caller owes a Release
// when the job leaves the queue (picked up by a worker, or cancelled
// while queued). Shed and Reject charge nothing.
func (a *Admission) Decide(class Class, client string) Decision {
	if a.total >= a.depth {
		return Reject
	}
	if a.total >= a.limits[class] {
		return Shed
	}
	if a.clientCap > 0 && client != "" && a.perClient[client] >= a.clientCap {
		return Shed
	}
	a.byClass[class]++
	a.total++
	if client != "" {
		a.perClient[client]++
	}
	return Admit
}

// Release returns one admitted job's occupancy. Releasing more than was
// admitted is a caller bug; counts are clamped at zero to keep the
// accounting self-healing rather than wrapping.
func (a *Admission) Release(class Class, client string) {
	if a.byClass[class] > 0 {
		a.byClass[class]--
	}
	if a.total > 0 {
		a.total--
	}
	if client == "" {
		return
	}
	if n := a.perClient[client]; n > 1 {
		a.perClient[client] = n - 1
	} else if n == 1 {
		delete(a.perClient, client)
	}
}

// Depth returns the total admitted-but-unstarted occupancy.
func (a *Admission) Depth() int { return a.total }

// DepthByClass returns one class's occupancy.
func (a *Admission) DepthByClass(c Class) int {
	if c >= NumClasses {
		return 0
	}
	return a.byClass[c]
}

// ClientDepth returns one client's occupancy.
func (a *Admission) ClientDepth(client string) int { return a.perClient[client] }

// Clients returns the names of clients with queued jobs, sorted.
func (a *Admission) Clients() []string { return stats.SortedKeys(a.perClient) }
