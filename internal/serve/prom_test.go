package serve

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePromValidAndDeterministic renders a populated snapshot, checks
// it against the format validator, and pins byte-identical output across
// repeated encodings.
func TestWritePromValidAndDeterministic(t *testing.T) {
	var m Metrics
	m.Workers = 4
	m.QueueDepth = 2
	m.Running = 1
	m.Draining = true
	m.Jobs.Submitted = 10
	m.Jobs.Completed = 7
	m.Jobs.Failed = 1
	m.Jobs.Cancelled = 2
	m.Cache.Hits = 5
	m.Cache.Misses = 3
	m.Cache.HitRate = 0.625
	m.KIPS.Jobs = 7
	m.KIPS.Last = 123.5
	m.KIPS.Mean = 110.25
	m.KIPS.P50 = 100
	m.KIPS.P99 = 400
	m.Loops = []LoopMetric{
		{Loop: "issue-wakeup", Events: 42, MeanDelay: 3.5, P99Delay: 9, CyclesLost: 77},
		{Loop: "load-replay", Events: 6, MeanDelay: 12, P99Delay: 30, CyclesLost: 101},
	}

	var a, b bytes.Buffer
	if err := WriteProm(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteProm output differs across identical snapshots")
	}
	if err := CheckPromText(a.Bytes()); err != nil {
		t.Fatalf("encoder emitted invalid exposition text: %v", err)
	}
	out := a.String()
	for _, want := range []string{
		"loosim_workers 4\n",
		"loosim_draining 1\n",
		`loosim_jobs_total{state="submitted"} 10`,
		"loosim_cache_hit_rate 0.625\n",
		`loosim_loop_delay_cycles{loop="issue-wakeup",stat="mean"} 3.5`,
		`loosim_loop_cycles_lost_total{loop="load-replay"} 101`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	if strings.Contains(out, "loosim_loop_events_total{loop=\"issue-wakeup\"} 42\n# TYPE") {
		t.Error("series interleaved with comments out of family order")
	}
}

// TestWritePromEmptySnapshot: a fresh server's snapshot (no loops, zero
// counters) must still validate.
func TestWritePromEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, Metrics{}); err != nil {
		t.Fatal(err)
	}
	if err := CheckPromText(buf.Bytes()); err != nil {
		t.Fatalf("empty snapshot renders invalid text: %v", err)
	}
	if strings.Contains(buf.String(), "loosim_loop_") {
		t.Error("loop families emitted with no loop data")
	}
}

// TestCheckPromTextRejectsMalformed exercises the validator's failure
// modes so the selfcheck gate actually gates.
func TestCheckPromTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                                    // no samples at all
		"# BOGUS loosim_x y\nloosim_x 1\n",    // unknown comment keyword
		"# TYPE loosim_x widget\nloosim_x 1",  // unknown metric type
		"loosim_x\n",                          // no value
		"loosim_x one\n",                      // non-numeric value
		"0bad_name 1\n",                       // bad metric name
		"loosim_x{state=unquoted} 1\n",        // unquoted label value
		"loosim_x{state} 1\n",                 // label with no value
		"# TYPE loosim_x gauge extra-word\n1", // malformed TYPE arity
	}
	for _, text := range bad {
		if err := CheckPromText([]byte(text)); err == nil {
			t.Errorf("CheckPromText accepted %q", text)
		}
	}
	good := "# HELP loosim_x fine.\n# TYPE loosim_x gauge\nloosim_x{a=\"b\",c=\"d\"} 1.5e3\n"
	if err := CheckPromText([]byte(good)); err != nil {
		t.Errorf("CheckPromText rejected valid text: %v", err)
	}
}
