package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"loosesim"
	"loosesim/internal/pipeline"
)

func simCfg(t *testing.T, bench string, seed int64) pipeline.Config {
	t.Helper()
	cfg, err := loosesim.DefaultMachine(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = seed
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 5000
	return cfg
}

func TestConfigKeyCanonical(t *testing.T) {
	a := simCfg(t, "gcc", 1)
	b := simCfg(t, "gcc", 1)
	ka, err := ConfigKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := ConfigKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("equal configs must hash equal")
	}

	// Observability hooks and the budget guard rail cannot change a
	// completed result, so they must not change the key.
	b.Events = &jobEventSink{}
	b.Intervals = loosesim.IntervalFunc(func(loosesim.Interval) {})
	b.SampleInterval = 777
	b.CycleBudget = 123456
	if kb, _ = ConfigKey(b); ka != kb {
		t.Fatal("observability and budget fields must be excluded from the key")
	}

	// Anything that feeds the simulation must change it.
	b.Seed = 2
	if kb, _ = ConfigKey(b); ka == kb {
		t.Fatal("different seeds must hash differently")
	}
	c := simCfg(t, "swim", 1)
	if kc, _ := ConfigKey(c); ka == kc {
		t.Fatal("different workloads must hash differently")
	}
}

func runForStore(t *testing.T) *pipeline.Result {
	t.Helper()
	res, err := loosesim.Run(simCfg(t, "turb3d", 1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testStoreRoundTrip(t *testing.T, store Store) {
	t.Helper()
	want := runForStore(t)
	key, err := ConfigKey(simCfg(t, "turb3d", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Get(key); ok || err != nil {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}
	if err := store.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = %v, %v", ok, err)
	}
	if got.Counters != want.Counters || got.Benchmark != want.Benchmark ||
		got.TotalCycles != want.TotalCycles {
		t.Fatal("cached result lost counter state")
	}
	// The operand-gap histogram must survive the trip (Fig6 reads it
	// from cached results).
	if got.OperandGap.Count() != want.OperandGap.Count() ||
		got.OperandGap.Quantile(0.5) != want.OperandGap.Quantile(0.5) {
		t.Fatal("cached result lost histogram state")
	}
}

func TestMemStoreRoundTrip(t *testing.T) { testStoreRoundTrip(t, NewMemStore()) }

func TestDirStoreRoundTrip(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreRoundTrip(t, store)
}

func TestDirStoreRejectsBadKeys(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "ABCDEF", "0123/45"} {
		if err := store.Put(key, &pipeline.Result{}); err == nil {
			t.Errorf("Put(%q) must be rejected", key)
		}
		if _, _, err := store.Get(key); err == nil {
			t.Errorf("Get(%q) must be rejected", key)
		}
	}
}

func TestRunAllCached(t *testing.T) {
	store := NewMemStore()
	var cs CacheStats
	// Batch with an intra-batch duplicate: 3 entries, 2 distinct.
	cfgs := []pipeline.Config{simCfg(t, "gcc", 1), simCfg(t, "swim", 1), simCfg(t, "gcc", 1)}
	first, err := RunAllCached(context.Background(), store, &cs, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Misses() != 2 {
		t.Fatalf("first pass misses = %d, want 2 (duplicate coalesced)", cs.Misses())
	}
	if first[0].Counters != first[2].Counters {
		t.Fatal("coalesced duplicate must share its twin's result")
	}
	second, err := RunAllCached(context.Background(), store, &cs, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Misses() != 2 || cs.Hits() < 3 {
		t.Fatalf("second pass must be all hits: hits=%d misses=%d", cs.Hits(), cs.Misses())
	}
	for i := range first {
		if second[i].Counters != first[i].Counters {
			t.Fatalf("result %d differs between passes", i)
		}
	}
	if cs.HitRate() <= 0.5 {
		t.Fatalf("hit rate = %v, want > 0.5", cs.HitRate())
	}
}

// submitWait submits a spec over real HTTP with ?wait=1 and returns the
// decoded terminal status.
func submitWait(t *testing.T, url string, spec JobSpec) Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/api/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getMetrics(t *testing.T, url string) Metrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestServerSweepHitsCacheSecondPass is the acceptance case: the same
// sweep submitted twice must be served from the cache on the second pass,
// with the hit rate visible in /metrics.
func TestServerSweepHitsCacheSecondPass(t *testing.T) {
	srv := New(Options{Workers: 2, Now: time.Now})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sweep := []JobSpec{
		{Bench: "gcc", Warmup: new(uint64), Inst: 3000},
		{Bench: "gcc", Warmup: new(uint64), Inst: 3000, Seed: 2},
		{Bench: "swim", Warmup: new(uint64), Inst: 3000},
	}
	for pass := 0; pass < 2; pass++ {
		for i, spec := range sweep {
			st := submitWait(t, ts.URL, spec)
			if st.State != StateDone {
				t.Fatalf("pass %d job %d state = %q (%s)", pass, i, st.State, st.Error)
			}
			if wantCached := pass == 1; st.Cached != wantCached {
				t.Fatalf("pass %d job %d cached = %v, want %v", pass, i, st.Cached, wantCached)
			}
			if st.Result == nil || st.Result.Counters.Retired == 0 {
				t.Fatalf("pass %d job %d has no result", pass, i)
			}
		}
	}
	m := getMetrics(t, ts.URL)
	if m.Cache.Hits != 3 || m.Cache.Misses != 3 {
		t.Fatalf("cache hits=%d misses=%d, want 3/3", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Cache.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", m.Cache.HitRate)
	}
	if m.Jobs.Completed != 6 || m.Jobs.Submitted != 6 {
		t.Fatalf("jobs completed=%d submitted=%d, want 6/6", m.Jobs.Completed, m.Jobs.Submitted)
	}
	if m.KIPS.Jobs == 0 || m.KIPS.Last <= 0 {
		t.Fatalf("per-job KIPS missing from metrics: %+v", m.KIPS)
	}
}

// TestServerCycleBudgetAbort is the acceptance case for prompt abort: a
// job with a 1-cycle budget must fail quickly and must not leak its
// goroutine.
func TestServerCycleBudgetAbort(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := New(Options{Workers: 1})
	job, err := srv.Submit(JobSpec{
		Bench: "gcc", Warmup: new(uint64), Inst: 1 << 40, CycleBudget: 1, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("budget-limited job never reached a terminal state")
	}
	st := job.Status()
	if st.State != StateFailed {
		t.Fatalf("state = %q, want failed", st.State)
	}
	if st.Error == "" {
		t.Fatal("budget abort must carry an error")
	}
	srv.Close()
	// After Close the worker pool has exited; the aborted job must not
	// have left a goroutine behind.
	for i := 0; i < 500 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew from %d to %d after Close", before, after)
	}
}

func TestServerTimeoutCancelsJob(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()
	job, err := srv.Submit(JobSpec{
		Bench: "gcc", Warmup: new(uint64), Inst: 1 << 40, TimeoutMS: 30, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("timed-out job never reached a terminal state")
	}
	if st := job.Status(); st.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", st.State)
	}
}

func TestServerCancelEndpoint(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job, err := srv.Submit(JobSpec{Bench: "gcc", Warmup: new(uint64), Inst: 1 << 40, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+job.ID(), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Error(cerr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled job never reached a terminal state")
	}
	if st := job.Status(); st.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", st.State)
	}
}

func TestServerDrain(t *testing.T) {
	srv := New(Options{Workers: 1})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := srv.Submit(JobSpec{Bench: "gcc", Seed: int64(i + 1), Warmup: new(uint64), Inst: 2000})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if st := j.Status(); st.State != StateDone {
			t.Errorf("job %d state after drain = %q, want done", i, st.State)
		}
	}
	if _, err := srv.Submit(JobSpec{Bench: "gcc"}); err != ErrDraining {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	if !srv.Metrics().Draining {
		t.Error("metrics must report draining")
	}
}

func TestSubmitValidation(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()
	cases := []JobSpec{
		{},                              // neither bench nor figure
		{Bench: "gcc", Figure: "4"},     // both
		{Bench: "no-such-bench"},        // unknown workload
		{Bench: "gcc", Load: "wat"},     // unknown policy
		{Bench: "gcc", CycleBudget: -1}, // invalid config
		{Figure: "7"},                   // unknown figure
	}
	for i, spec := range cases {
		if _, err := srv.Submit(spec); err == nil {
			t.Errorf("case %d (%+v) must fail", i, spec)
		}
	}
}

func TestFigureJobThroughCache(t *testing.T) {
	srv := New(Options{Workers: 2})
	defer srv.Close()
	job, err := srv.Submit(JobSpec{Figure: "6", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	st := job.Status()
	if st.State != StateDone {
		t.Fatalf("figure job state = %q (%s)", st.State, st.Error)
	}
	if st.Table == nil || len(st.Table.Rows) == 0 {
		t.Fatal("figure job has no table")
	}
	misses := srv.Metrics().Cache.Misses
	if misses == 0 {
		t.Fatal("figure run must populate the cache")
	}
	// The same figure again is served entirely from the cache.
	job2, err := srv.Submit(JobSpec{Figure: "6", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	<-job2.Done()
	m := srv.Metrics()
	if m.Cache.Misses != misses {
		t.Fatalf("second figure run missed the cache: %d -> %d", misses, m.Cache.Misses)
	}
	if m.Cache.Hits == 0 {
		t.Fatal("second figure run must hit the cache")
	}
}

func TestQueueFull(t *testing.T) {
	srv := New(Options{Workers: 1, QueueDepth: 1})
	defer srv.Close()
	// One long job occupies the worker; one fills the queue; the next
	// must be rejected. NoCache keeps all three out of the fast path.
	first, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 1, Warmup: new(uint64), Inst: 1 << 40, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has dequeued the first job so the queue
	// slot is genuinely free for the second.
	for i := 0; i < 500 && first.Status().State == StateQueued; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if first.Status().State != StateRunning {
		t.Fatalf("first job state = %q, want running", first.Status().State)
	}
	if _, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 2, Warmup: new(uint64), Inst: 1 << 40, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 99, Warmup: new(uint64), Inst: 1 << 40, NoCache: true}); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}
