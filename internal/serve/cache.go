package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"loosesim"
	"loosesim/internal/pipeline"
)

// ConfigKey returns the content address of a simulation: a sha256 over the
// canonical JSON encoding of cfg with the observability hooks (Tracer,
// Events, Intervals, SampleInterval) and the CycleBudget guard rail
// zeroed. Those fields are excluded because they cannot change a completed
// run's Result — probes are passive by contract, and a budget only decides
// whether a run finishes, never what it computes. Everything else — the
// workload profiles, every width, latency and size, the policies, the
// seed, the run lengths — is part of the key. Canonicality comes from
// encoding/json itself: struct fields encode in declaration order with no
// map in the Config tree, so equal Configs produce byte-equal JSON, and
// two Configs hash equal exactly when Run would produce identical Results.
func ConfigKey(cfg pipeline.Config) (string, error) {
	cfg.Tracer = nil
	cfg.Events = nil
	cfg.Intervals = nil
	cfg.SampleInterval = 0
	cfg.CycleBudget = 0
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("serve: hashing config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Store is a content-addressed result cache. Implementations must be safe
// for concurrent use.
type Store interface {
	// Get returns the result stored under key, if any.
	Get(key string) (*pipeline.Result, bool, error)
	// Put stores res under key, overwriting any previous entry.
	Put(key string, res *pipeline.Result) error
}

// encodeResult and decodeResult fix the cache's wire format: plain JSON,
// with Result's histogram carrying its own marshaller (stats.Histogram).
func encodeResult(res *pipeline.Result) ([]byte, error) {
	return json.Marshal(res)
}

func decodeResult(b []byte) (*pipeline.Result, error) {
	res := &pipeline.Result{}
	if err := json.Unmarshal(b, res); err != nil {
		return nil, err
	}
	return res, nil
}

// MemStore is an in-process Store. It holds the encoded form, so a caller
// can never alias (and then mutate) a cached Result.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Get implements Store.
func (s *MemStore) Get(key string) (*pipeline.Result, bool, error) {
	s.mu.Lock()
	b, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	res, err := decodeResult(b)
	if err != nil {
		return nil, false, err
	}
	return res, true, nil
}

// Put implements Store.
func (s *MemStore) Put(key string, res *pipeline.Result) error {
	b, err := encodeResult(res)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.m[key] = b
	s.mu.Unlock()
	return nil
}

// Len returns the number of cached entries.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// DirStore persists results as one JSON file per key in a directory, so a
// cache survives restarts and is shared between loosimd and
// `experiments -cache` pointing at the same path.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// path maps a key to its file, refusing keys that are not lowercase hex —
// every ConfigKey is, and anything else could escape the directory.
func (s *DirStore) path(key string) (string, error) {
	if key == "" {
		return "", errors.New("serve: empty cache key")
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return "", fmt.Errorf("serve: malformed cache key %q", key)
		}
	}
	return filepath.Join(s.dir, key+".json"), nil
}

// Get implements Store.
func (s *DirStore) Get(key string) (*pipeline.Result, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	res, err := decodeResult(b)
	if err != nil {
		return nil, false, fmt.Errorf("serve: corrupt cache entry %s: %w", key, err)
	}
	return res, true, nil
}

// Put implements Store. The entry is written to a temporary file and
// renamed into place, so concurrent readers never observe a torn write.
func (s *DirStore) Put(key string, res *pipeline.Result) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	b, err := encodeResult(res)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(s.dir, key+".tmp-")
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		_ = os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), p); err != nil {
		_ = os.Remove(f.Name())
		return err
	}
	return nil
}

// CacheStats counts cache traffic; all methods are safe for concurrent
// use.
type CacheStats struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	putErrors atomic.Uint64
}

// Hits returns the number of lookups served from the store.
func (c *CacheStats) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of lookups that had to simulate.
func (c *CacheStats) Misses() uint64 { return c.misses.Load() }

// PutErrors returns the number of failed write-backs.
func (c *CacheStats) PutErrors() uint64 { return c.putErrors.Load() }

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (c *CacheStats) HitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// RunAllCached is loosesim.RunAllContext behind a content-addressed cache:
// hits are served from the store, misses run on the bounded worker pool
// and are written back, and results return in input order. Identical
// configs within one batch are coalesced into a single simulation. A store
// read error is treated as a miss; a write-back error is counted (cs, when
// non-nil, is updated throughout) but does not fail the batch — the
// results are still correct, merely uncached. A nil store degrades to
// loosesim.RunAllContext.
func RunAllCached(ctx context.Context, store Store, cs *CacheStats, cfgs []pipeline.Config) ([]*pipeline.Result, error) {
	if store == nil {
		return loosesim.RunAllContext(ctx, cfgs)
	}
	results := make([]*pipeline.Result, len(cfgs))
	keys := make([]string, len(cfgs))
	var missIdx []int
	firstMiss := make(map[string]int) // key -> index of the batch entry that will simulate it
	var dupIdx []int
	for i := range cfgs {
		key, err := ConfigKey(cfgs[i])
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		keys[i] = key
		if res, ok, _ := store.Get(key); ok {
			if cs != nil {
				cs.hits.Add(1)
			}
			results[i] = res
			continue
		}
		if _, ok := firstMiss[key]; ok {
			if cs != nil {
				cs.hits.Add(1) // coalesced: served without its own simulation
			}
			dupIdx = append(dupIdx, i)
			continue
		}
		if cs != nil {
			cs.misses.Add(1)
		}
		firstMiss[key] = i
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 && len(dupIdx) == 0 {
		return results, nil
	}
	miss := make([]pipeline.Config, len(missIdx))
	for j, i := range missIdx {
		miss[j] = cfgs[i]
	}
	ran, err := loosesim.RunAllContext(ctx, miss)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		results[i] = ran[j]
		if err := store.Put(keys[i], ran[j]); err != nil {
			if cs != nil {
				cs.putErrors.Add(1)
			}
		}
	}
	for _, i := range dupIdx {
		results[i] = results[firstMiss[keys[i]]]
	}
	return results, nil
}
