package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loosesim/internal/trace"
)

// tracedServer builds a one-worker server with a collecting tracer.
func tracedServer(workers int) (*Server, *trace.Collector, *trace.Tracer) {
	var sink trace.Collector
	tracer := trace.New(trace.Options{Seed: 1, Sink: &sink})
	return New(Options{Workers: workers, Tracer: tracer}), &sink, tracer
}

// spansByTrace groups collected spans per trace ID.
func spansByTrace(spans []trace.Span) map[string][]trace.Span {
	out := make(map[string][]trace.Span)
	for _, s := range spans {
		out[s.Trace] = append(out[s.Trace], s)
	}
	return out
}

// TestTraceSpansCloseOnTerminalPaths extends the PR 5 regressions to the
// span lifecycle: every terminal path — cancel while queued, normal
// completion, the cache fast path — must close the spans it opened, so a
// drained server holds zero open spans.
func TestTraceSpansCloseOnTerminalPaths(t *testing.T) {
	srv, sink, tracer := tracedServer(1)
	defer srv.Close()

	blocker := occupyWorker(t, srv, 1)
	queued, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 2, Warmup: new(uint64), Inst: 1 << 40, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	<-queued.Done()

	// closeSpans runs before Done closes: the cancelled job's spans are
	// already delivered and closed here, with only the blocker's in
	// flight.
	if n := tracer.Open(); n != 2 { // blocker's serve span + run span
		t.Fatalf("open spans with one running job = %d, want 2", n)
	}
	cancelledTrace := ""
	for id, spans := range spansByTrace(sink.Spans()) {
		for _, s := range spans {
			if s.Name == "serve" && s.Status == string(StateCancelled) {
				cancelledTrace = id
			}
		}
	}
	if cancelledTrace == "" {
		t.Fatal("cancelled-while-queued job left no cancelled serve span")
	}
	var sawQueue bool
	for _, s := range spansByTrace(sink.Spans())[cancelledTrace] {
		if s.Name == "queue" {
			sawQueue = true
			if s.Status != string(StateCancelled) {
				t.Fatalf("queue span status = %q, want cancelled", s.Status)
			}
		}
	}
	if !sawQueue {
		t.Fatal("cancelled trace has no queue span")
	}

	blocker.Cancel()
	<-blocker.Done()

	// Cache fast path: run a small job to completion, then resubmit; the
	// hit must open and close a cache span with no queue span at all.
	done, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 3, Warmup: new(uint64), Inst: 2000})
	if err != nil {
		t.Fatal(err)
	}
	<-done.Done()
	if st := done.Status(); st.State != StateDone {
		t.Fatalf("job state = %q (%s)", st.State, st.Error)
	}
	hit, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 3, Warmup: new(uint64), Inst: 2000})
	if err != nil {
		t.Fatal(err)
	}
	<-hit.Done()
	if st := hit.Status(); !st.Cached {
		t.Fatalf("repeat submission not served from cache: %+v", st)
	}

	if n := tracer.Open(); n != 0 {
		t.Fatalf("open spans after all jobs terminal = %d, want 0", n)
	}

	var hitTrace []trace.Span
	for _, spans := range spansByTrace(sink.Spans()) {
		for _, s := range spans {
			if s.Name == "cache" && s.Status == "hit" {
				hitTrace = spans
			}
		}
	}
	if hitTrace == nil {
		t.Fatal("cache fast path produced no hit span")
	}
	for _, s := range hitTrace {
		if s.Name == "queue" {
			t.Fatalf("cache fast path trace contains a queue span: %+v", s)
		}
	}
}

// TestTraceSpanClosedOnDisconnectWhileQueued drives the ?wait=1 disconnect
// regression with tracing on: the dropped client's job must close its spans
// under the trace the submission's Traceparent header named.
func TestTraceSpanClosedOnDisconnectWhileQueued(t *testing.T) {
	srv, sink, tracer := tracedServer(1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	blocker := occupyWorker(t, srv, 1)
	defer blocker.Cancel()

	parent := trace.SpanContext{Trace: strings.Repeat("ab", 16), Span: 0x101}
	spec, err := json.Marshal(JobSpec{Bench: "gcc", Seed: 2, Warmup: new(uint64), Inst: 1 << 40, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/api/v1/jobs?wait=1", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.TraceparentHeader, trace.Format(parent))
	errc := make(chan error, 1)
	go func() {
		resp, derr := http.DefaultClient.Do(req)
		if derr == nil {
			derr = resp.Body.Close()
		}
		errc <- derr
	}()

	var queued *Job
	for i := 0; i < 500 && queued == nil; i++ {
		for _, st := range srv.Jobs() {
			if st.ID != blocker.ID() {
				j, ok := srv.Job(st.ID)
				if !ok {
					t.Fatalf("job %s listed but not found", st.ID)
				}
				queued = j
			}
		}
		if queued == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if queued == nil {
		t.Fatal("queued job never appeared")
	}

	cancel()
	if derr := <-errc; derr == nil {
		t.Fatal("disconnected request reported success")
	}
	select {
	case <-queued.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("disconnected client's queued job was not cancelled promptly")
	}

	var serveSpan trace.Span
	for _, s := range spansByTrace(sink.Spans())[parent.Trace] {
		if s.Name == "serve" {
			serveSpan = s
		}
	}
	if serveSpan.Span == 0 {
		t.Fatalf("no serve span under the propagated trace %s", parent.Trace)
	}
	if serveSpan.Parent != parent.Span {
		t.Fatalf("serve span parent = %d, want the header's span %d", serveSpan.Parent, parent.Span)
	}
	if serveSpan.Status != string(StateCancelled) {
		t.Fatalf("serve span status = %q, want cancelled", serveSpan.Status)
	}
	// The blocker holds its serve and run spans open; anything above two
	// is a leak from the disconnected job.
	if n := tracer.Open(); n != 2 {
		t.Fatalf("open spans with one running blocker = %d, want 2", n)
	}
}
