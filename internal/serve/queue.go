package serve

import "sync"

// jobQueue is the server's admission-controlled job queue: one FIFO per
// SLO class, drained in class-priority order, with every enqueue passing
// through the shared Admission core. It replaces the old buffered-channel
// queue, whose slots a job cancelled while queued kept occupying until a
// worker drained down to the tombstone — overcounting QueueDepth and
// returning ErrQueueFull for capacity that was only holding corpses. Here
// admission is purely logical: remove returns a cancelled job's capacity
// the moment it is finalized, so submit-cancel-submit at exact capacity
// admits the third job.
type jobQueue struct {
	mu     sync.Mutex
	nonEmpty sync.Cond // signalled on enqueue and close
	adm    *Admission
	fifo   [NumClasses][]*Job
	closed bool
}

func newJobQueue(cfg AdmissionConfig) *jobQueue {
	q := &jobQueue{adm: NewAdmission(cfg)}
	q.nonEmpty.L = &q.mu
	return q
}

// tryEnqueue runs the admission check and, on Admit, appends the job to
// its class FIFO and wakes a worker. Never blocks.
func (q *jobQueue) tryEnqueue(j *Job) Decision {
	q.mu.Lock()
	defer q.mu.Unlock()
	d := q.adm.Decide(j.class, j.client)
	if d != Admit {
		return d
	}
	j.inQueue = true
	q.fifo[j.class] = append(q.fifo[j.class], j)
	q.nonEmpty.Signal()
	return Admit
}

// dequeue blocks until a job is available or the queue is closed and
// empty (nil). Jobs come out in class-priority order, FIFO within a
// class; the dequeued job's admission charge is released here, so the
// reported queue depth is exactly the jobs a worker has not reached.
func (q *jobQueue) dequeue() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for c := Class(0); c < NumClasses; c++ {
			if len(q.fifo[c]) == 0 {
				continue
			}
			j := q.fifo[c][0]
			q.fifo[c][0] = nil // free the slot for GC before reslicing
			q.fifo[c] = q.fifo[c][1:]
			j.inQueue = false
			q.adm.Release(j.class, j.client)
			return j
		}
		if q.closed {
			return nil
		}
		q.nonEmpty.Wait()
	}
}

// remove takes a still-queued job out of its FIFO and releases its
// admission charge immediately — the tombstone fix. It reports false when
// the job already left the queue (a worker dequeued it first, or remove
// already ran), in which case nothing is charged twice.
func (q *jobQueue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !j.inQueue {
		return false
	}
	fifo := q.fifo[j.class]
	for i, cand := range fifo {
		if cand != j {
			continue
		}
		copy(fifo[i:], fifo[i+1:])
		fifo[len(fifo)-1] = nil
		q.fifo[j.class] = fifo[:len(fifo)-1]
		j.inQueue = false
		q.adm.Release(j.class, j.client)
		return true
	}
	// inQueue set but not found would mean the flag and the FIFO
	// disagree; clear the flag so the job cannot be charged again.
	j.inQueue = false
	return false
}

// close wakes every worker; once the FIFOs drain, dequeue returns nil and
// the workers exit. Idempotent.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.nonEmpty.Broadcast()
	q.mu.Unlock()
}

// depth returns the total queued-job count.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.adm.Depth()
}

// depthByClass snapshots the per-class occupancy.
func (q *jobQueue) depthByClass() [NumClasses]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out [NumClasses]int
	for c := Class(0); c < NumClasses; c++ {
		out[c] = q.adm.DepthByClass(c)
	}
	return out
}

// clientDepths snapshots the per-client occupancy, keyed by client name.
func (q *jobQueue) clientDepths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int)
	for _, name := range q.adm.Clients() {
		out[name] = q.adm.ClientDepth(name)
	}
	return out
}
