// Package serve is the simulation service layer behind cmd/loosimd: an
// HTTP JSON API that accepts simulation and figure jobs, runs them on a
// bounded worker pool (machines constructed lazily, one live per worker),
// memoizes results in a content-addressed cache keyed by the canonical
// hash of a pipeline.Config, and exposes queue depth, cache hit rate,
// per-job throughput, and aggregate loop delays on /metrics.
//
// The package is host-side plumbing, not simulator code: everything it
// serves is computed by the same deterministic pipeline the CLI tools use,
// and it never reads the wall clock itself — the host clock is injected by
// the command via Options.Now, keeping the noclock contract intact for all
// of internal/.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"loosesim/internal/experiments"
	"loosesim/internal/obs"
	"loosesim/internal/pipeline"
	"loosesim/internal/snap"
	"loosesim/internal/stats"
	"loosesim/internal/trace"
	"loosesim/internal/workload"
)

// Options configure a Server.
type Options struct {
	// Workers bounds the number of simulations running concurrently;
	// <= 0 selects GOMAXPROCS. Each worker constructs its machine only
	// when it picks a job up, so peak live machines never exceeds
	// Workers regardless of queue length.
	Workers int
	// QueueDepth bounds accepted-but-unstarted jobs; submissions against
	// a full queue fail with ErrQueueFull. <= 0 selects
	// DefaultQueueDepth.
	QueueDepth int
	// ClientCap bounds the queued jobs of any single named client
	// (JobSpec.Client); <= 0 disables the fairness cap. Submissions over
	// the cap are shed (ErrShed), not rejected, so one client's sweep
	// cannot occupy the whole queue.
	ClientCap int
	// ShedThresholds overrides the per-class occupancy fractions above
	// which a class is shed under load; zero entries select
	// DefaultShedThresholds (interactive 1.0, standard 0.75, batch 0.5).
	ShedThresholds [NumClasses]float64
	// RetryAfter is the backoff hint carried on 429 responses (both
	// queue-full rejections and class sheds) in the Retry-After header;
	// <= 0 selects DefaultRetryAfter. Open-loop clients and the dispatch
	// coordinator honor it instead of their own schedules.
	RetryAfter time.Duration
	// Store is the result cache shared by all jobs; nil selects a fresh
	// in-memory store.
	Store Store
	// Now is the host clock used for per-job KIPS metrics. The command
	// injects time.Now; nil disables wall-time metrics (internal
	// packages never read the clock themselves).
	Now func() time.Time
	// Tracer, when non-nil, records one span tree per job — queue wait,
	// cache lookups, the run itself — continuing a coordinator's trace
	// when the submission carried a Traceparent header. Nil (the
	// default) disables tracing at the cost of one pointer compare per
	// stage.
	Tracer *trace.Tracer
}

// DefaultQueueDepth is the queue bound when Options.QueueDepth is not set.
const DefaultQueueDepth = 256

// DefaultRetryAfter is the 429 backoff hint when Options.RetryAfter is
// not set.
const DefaultRetryAfter = time.Second

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Submission and lifecycle errors.
var (
	ErrDraining  = errors.New("serve: draining, not accepting jobs")
	ErrQueueFull = errors.New("serve: queue full")
	// ErrShed is load shedding: the queue still has room, but the
	// submission's SLO class is over its shed threshold (or its client
	// over the fairness cap). Like ErrQueueFull it maps to 429 with a
	// Retry-After hint.
	ErrShed = errors.New("serve: shed to protect higher SLO classes")
)

// JobSpec is the JSON body of a submission: exactly one of Bench (a single
// simulation), Figure (a whole paper figure regenerated through the
// cache), or Config (a complete raw configuration) must be set.
type JobSpec struct {
	// Single-simulation jobs. Zero values select the paper's base
	// machine defaults, mirroring cmd/loosim's flags.
	Bench   string  `json:"bench,omitempty"`
	DRA     bool    `json:"dra,omitempty"`
	RegRead int     `json:"regread,omitempty"` // register file read latency; 0 = 3
	DecIQ   int     `json:"deciq,omitempty"`   // 0 = derive from machine kind
	IQEx    int     `json:"iqex,omitempty"`    // 0 = derive from machine kind
	Load    string  `json:"load,omitempty"`    // reissue|refetch|stall
	MemDep  string  `json:"memdep,omitempty"`  // storewait|blind|conservative
	Seed    int64   `json:"seed,omitempty"`    // 0 = 1
	Warmup  *uint64 `json:"warmup,omitempty"`  // nil = machine default
	Inst    uint64  `json:"inst,omitempty"`    // measured instructions; 0 = machine default

	// Figure jobs.
	Figure string `json:"figure,omitempty"` // 4|5|6|8|9
	Quick  bool   `json:"quick,omitempty"`  // short runs (experiments.QuickOptions)

	// Raw-config jobs: a complete pipeline.Config, the wire format the
	// sweep coordinator (internal/dispatch) uses to ship arbitrary sweep
	// points without squeezing them through the named-bench defaulting
	// above. The server zeroes the config's observability hooks — probes
	// are not expressible over the wire — and runs it as-is.
	Config *pipeline.Config `json:"config,omitempty"`

	// Checkpoint, when set, restores the machine from this sealed
	// pipeline snapshot (base64 over JSON) instead of constructing it
	// fresh — the wire format for one sampled-simulation window. It
	// requires a Config job: a named bench's defaulting could drift away
	// from the config the checkpoint was taken under, and Restore would
	// reject the digest mismatch only after the job was queued. The
	// job's cache key gains the checkpoint's content address as a
	// prefix, so a window result can never alias the full run (or
	// another window) of the same configuration.
	Checkpoint []byte `json:"checkpoint,omitempty"`

	// Job control.
	CycleBudget int64 `json:"cycle_budget,omitempty"` // abort after this many simulated cycles
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`   // abort after this much host time
	NoCache     bool  `json:"no_cache,omitempty"`     // bypass the result cache
	Events      bool  `json:"events,omitempty"`       // aggregate loop events into /metrics

	// Admission control. Client names the submitter for fairness
	// accounting and the per-client metrics; SLO is the admission class
	// ("interactive", "standard", or "batch"; empty = interactive).
	// Neither feeds the simulation, so neither is part of the content
	// address.
	Client string `json:"client,omitempty"`
	SLO    string `json:"slo,omitempty"`
}

// config builds the pipeline configuration for a single-simulation spec
// (a named bench or a raw config).
func (s JobSpec) config() (pipeline.Config, error) {
	if s.Config != nil {
		cfg := *s.Config
		// The sink interfaces decode to nil anyway, and a decoded Tracer
		// would have nowhere to write; drop every hook so a wire config
		// is always a pure simulation (and hashes like one).
		cfg.Tracer = nil
		cfg.Events = nil
		cfg.Intervals = nil
		if s.CycleBudget > 0 {
			cfg.CycleBudget = s.CycleBudget
		}
		return cfg, nil
	}
	wl, err := workload.ByName(s.Bench)
	if err != nil {
		return pipeline.Config{}, err
	}
	regRead := s.RegRead
	if regRead == 0 {
		regRead = 3
	}
	var cfg pipeline.Config
	if s.DRA {
		cfg = pipeline.DRAConfigRF(wl, regRead)
	} else {
		cfg = pipeline.BaseConfigRF(wl, regRead)
	}
	if s.DecIQ > 0 {
		cfg.DecIQLat = s.DecIQ
	}
	if s.IQEx > 0 {
		cfg.IQExLat = s.IQEx
	}
	switch s.Load {
	case "", "reissue":
		cfg.LoadPolicy = pipeline.LoadReissue
	case "refetch":
		cfg.LoadPolicy = pipeline.LoadRefetch
	case "stall":
		cfg.LoadPolicy = pipeline.LoadStall
	default:
		return pipeline.Config{}, fmt.Errorf("serve: unknown load policy %q", s.Load)
	}
	switch s.MemDep {
	case "", "storewait":
		cfg.MemDep = pipeline.MemDepStoreWait
	case "blind":
		cfg.MemDep = pipeline.MemDepBlind
	case "conservative":
		cfg.MemDep = pipeline.MemDepConservative
	default:
		return pipeline.Config{}, fmt.Errorf("serve: unknown memdep policy %q", s.MemDep)
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.Warmup != nil {
		cfg.WarmupInstructions = *s.Warmup
	}
	if s.Inst != 0 {
		cfg.MeasureInstructions = s.Inst
	}
	cfg.CycleBudget = s.CycleBudget
	return cfg, nil
}

// figure maps a spec's figure name to its experiment.
func figure(name string) func(experiments.Options) (*experiments.Table, error) {
	switch name {
	case "4":
		return experiments.Fig4
	case "5":
		return experiments.Fig5
	case "6":
		return experiments.Fig6
	case "8":
		return experiments.Fig8
	case "9":
		return experiments.Fig9
	}
	return nil
}

// Job is one accepted submission and its lifecycle. All exported methods
// are safe for concurrent use.
type Job struct {
	id     string
	spec   JobSpec
	key    string // content address; single-simulation jobs only
	srv    *Server
	class  Class
	client string

	// inQueue marks the job as charged against the admission state and
	// present in a class FIFO. Guarded by the jobQueue mutex, not j.mu.
	inQueue bool

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// span is the job's whole-lifecycle span; queueSpan covers
	// enqueue-to-pickup. Both are set before the job is shared and only
	// ever ended after that (End and the setters are idempotent and
	// internally locked), so no path — cancel while queued, client
	// disconnect, cache fast path, worker completion — can leak or race
	// an open span.
	span      *trace.ActiveSpan
	queueSpan *trace.ActiveSpan

	mu      sync.Mutex
	state   JobState
	cached  bool
	errMsg  string
	result  *pipeline.Result
	table   *experiments.Table
	hostSec float64
	kips    float64
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cooperative abort. A job that is still queued is
// finalized immediately — its state becomes cancelled and Done closes
// without waiting for a worker to reach it, so a client that drops while
// its job sits behind a long queue (the disconnect-while-queued case)
// observes the cancellation right away. A running job's machine stops
// within a few thousand simulated cycles. Cancelling a finished job is a
// no-op.
func (j *Job) Cancel() {
	j.cancel()
	j.finishQueued()
}

// finishQueued moves a still-queued job straight to cancelled; the worker
// that eventually dequeues it sees the terminal state and skips it.
func (j *Job) finishQueued() {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	j.state = StateCancelled
	j.errMsg = context.Canceled.Error()
	j.closeSpans(StateCancelled)
	// Closed under j.mu so the terminal transition and the close are one
	// atomic step: the state check above is what makes a second close
	// impossible, and holding the lock keeps that locally checkable.
	close(j.done)
	j.mu.Unlock()
	// The tombstone fix: return the job's queue capacity immediately
	// instead of leaving a corpse occupying an admission slot until a
	// worker drains down to it. remove is a no-op if a worker won the
	// race and already dequeued the job (setRunning then skips it), so
	// the charge is released exactly once either way. Called after j.mu
	// is dropped — the queue lock never nests inside a job lock.
	j.srv.q.remove(j)
	j.srv.countCancelled(j)
}

// closeSpans ends whatever lifecycle spans the job still holds open. Called
// under j.mu just before done closes, so a waiter that observes the
// terminal state is guaranteed every span has reached the sink; the span
// methods are idempotent, so a queue span already ended at worker pickup
// (or never opened, on the cache fast path) is untouched.
func (j *Job) closeSpans(state JobState) {
	j.queueSpan.SetStatus(string(state))
	j.queueSpan.End()
	j.span.SetStatus(string(state))
	j.span.End()
}

// Status is the JSON snapshot of a job.
type Status struct {
	ID          string             `json:"id"`
	State       JobState           `json:"state"`
	Key         string             `json:"key,omitempty"`
	Cached      bool               `json:"cached,omitempty"`
	Error       string             `json:"error,omitempty"`
	HostSeconds float64            `json:"host_seconds,omitempty"`
	KIPS        float64            `json:"kips,omitempty"`
	Result      *pipeline.Result   `json:"result,omitempty"`
	Table       *experiments.Table `json:"table,omitempty"`
}

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:          j.id,
		State:       j.state,
		Key:         j.key,
		Cached:      j.cached,
		Error:       j.errMsg,
		HostSeconds: j.hostSec,
		KIPS:        j.kips,
		Result:      j.result,
		Table:       j.table,
	}
}

// setRunning marks the job picked up by a worker; it reports false when
// the job already reached a terminal state (cancelled while queued), in
// which case the worker must skip it.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	// The queue wait ends at pickup; terminal paths that never reach a
	// worker close it via closeSpans instead.
	j.queueSpan.SetStatus("ok")
	j.queueSpan.End()
	return true
}

// finish moves the job to a terminal state and releases waiters. A job
// that is already terminal (finalized by Cancel while queued) is left
// untouched.
func (j *Job) finish(state JobState, err error) {
	j.mu.Lock()
	switch j.state {
	case StateDone, StateFailed, StateCancelled:
		j.mu.Unlock()
		return
	case StateQueued, StateRunning:
	}
	j.state = state
	if err != nil {
		j.errMsg = err.Error()
	}
	j.closeSpans(state)
	// Closed under j.mu, paired with finishQueued: whichever transition
	// wins the lock closes; the loser sees a terminal state and returns.
	close(j.done)
	j.mu.Unlock()
}

// Server owns the worker pool, the job registry, the result cache, and the
// aggregate metrics. Create with New; stop with Drain or Close.
type Server struct {
	opts  Options
	store Store

	ctx       context.Context // base context; cancelled to force-abort everything
	cancelAll context.CancelFunc

	q  *jobQueue
	wg sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in submission order (detmap: no map iteration)
	nextID   int
	draining bool

	running atomic.Int64

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64
	rejected  atomic.Uint64
	shed      atomic.Uint64

	// Per-client fairness accounting, keyed by JobSpec.Client; unnamed
	// submissions are not tracked.
	clientMu sync.Mutex
	clients  map[string]*clientStat

	cstats CacheStats

	// Aggregate observability, fed by finished jobs (KIPS) and by
	// events-enabled jobs' sinks (loop delays).
	obsMu    sync.Mutex
	kipsHist *stats.Histogram
	kipsSum  float64
	kipsN    uint64
	lastKIPS float64
	delays   *obs.LoopDelays
}

// kipsHistBound caps the per-job KIPS histogram (unit-width buckets); jobs
// faster than this land in the overflow bucket, which Quantile handles.
const kipsHistBound = 1 << 14

// New starts a server: the worker pool is live on return.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		store:     opts.Store,
		ctx:       ctx,
		cancelAll: cancel,
		q: newJobQueue(AdmissionConfig{
			QueueDepth: opts.QueueDepth,
			ClientCap:  opts.ClientCap,
			Thresholds: opts.ShedThresholds,
		}),
		jobs:     make(map[string]*Job),
		clients:  make(map[string]*clientStat),
		kipsHist: stats.NewHistogram(kipsHistBound),
		delays:   obs.NewLoopDelays(0),
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a job. Single-simulation jobs that hit the
// cache complete immediately without occupying a worker.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitTraced(spec, trace.SpanContext{})
}

// SubmitTraced is Submit continuing a caller-supplied trace: when parent is
// non-zero (decoded from a Traceparent header), the job's spans join the
// coordinator's trace instead of starting a fresh one. Validation failures
// happen before any span opens — rejected specs never become jobs, so they
// never appear in traces either.
func (s *Server) SubmitTraced(spec JobSpec, parent trace.SpanContext) (*Job, error) {
	kinds := 0
	if spec.Bench != "" {
		kinds++
	}
	if spec.Figure != "" {
		kinds++
	}
	if spec.Config != nil {
		kinds++
	}
	if kinds != 1 {
		return nil, errors.New("serve: a job needs exactly one of bench, figure, or config")
	}
	if spec.Checkpoint != nil && spec.Config == nil {
		return nil, errors.New("serve: a checkpoint job needs a raw config")
	}
	class, err := ParseClass(spec.SLO)
	if err != nil {
		return nil, err
	}
	var key string
	if spec.Figure != "" {
		if figure(spec.Figure) == nil {
			return nil, fmt.Errorf("serve: unknown figure %q", spec.Figure)
		}
	} else {
		cfg, err := spec.config()
		if err != nil {
			return nil, err
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		key, err = ConfigKey(cfg)
		if err != nil {
			return nil, err
		}
		if spec.Checkpoint != nil {
			// Prefix with the checkpoint's content address: same config,
			// different starting state, different result.
			key = snap.Digest(spec.Checkpoint)[:16] + key
		}
	}

	// The serve span continues the coordinator's trace when the submission
	// carried one; otherwise it roots a fresh trace keyed by the job's
	// content address (or figure name), so repeated runs of the same sweep
	// produce the same trace IDs.
	var jsp *trace.ActiveSpan
	if parent.Trace != "" {
		jsp = s.opts.Tracer.Continue(parent, "serve")
	} else if key != "" {
		jsp = s.opts.Tracer.Root(key, "serve")
	} else {
		jsp = s.opts.Tracer.Root("figure:"+spec.Figure, "serve")
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		jsp.SetStatus("rejected")
		jsp.SetDetail(ErrDraining.Error())
		jsp.End()
		return nil, ErrDraining
	}
	s.nextID++
	job := &Job{
		id:     "job-" + strconv.Itoa(s.nextID),
		spec:   spec,
		key:    key,
		srv:    s,
		class:  class,
		client: spec.Client,
		span:   jsp,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	if spec.TimeoutMS > 0 {
		job.ctx, job.cancel = context.WithTimeout(s.ctx, time.Duration(spec.TimeoutMS)*time.Millisecond)
	} else {
		job.ctx, job.cancel = context.WithCancel(s.ctx)
	}

	// Cache fast path: a hit needs no worker, no queue slot, and no
	// construction — the whole point of content addressing.
	if key != "" && !spec.NoCache {
		csp := jsp.Child("cache")
		if res, ok, err := s.store.Get(key); err == nil && ok {
			csp.SetStatus("hit")
			csp.End()
			s.jobs[job.id] = job
			s.order = append(s.order, job.id)
			s.mu.Unlock()
			s.cstats.hits.Add(1)
			s.submitted.Add(1)
			s.completed.Add(1)
			s.bumpClient(job.client, func(c *clientStat) { c.submitted++; c.completed++ })
			job.mu.Lock()
			job.cached = true
			job.result = res
			job.mu.Unlock()
			job.cancel()
			job.finish(StateDone, nil)
			return job, nil
		}
		csp.SetStatus("miss")
		csp.End()
	}

	job.queueSpan = jsp.Child("queue")
	switch s.q.tryEnqueue(job) {
	case Admit:
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
		s.mu.Unlock()
		s.submitted.Add(1)
		s.bumpClient(job.client, func(c *clientStat) { c.submitted++ })
		return job, nil
	case Shed:
		s.mu.Unlock()
		job.cancel()
		job.queueSpan.SetStatus("shed")
		job.queueSpan.End()
		jsp.SetStatus("shed")
		jsp.SetDetail(ErrShed.Error())
		jsp.End()
		// Refused submissions still count as offered load: the overload
		// conservation law is submitted == completed + failed +
		// cancelled + rejected + shed once the queue drains.
		s.submitted.Add(1)
		s.shed.Add(1)
		s.bumpClient(job.client, func(c *clientStat) { c.submitted++; c.shed++ })
		return nil, ErrShed
	default: // Reject
		s.mu.Unlock()
		job.cancel()
		job.queueSpan.SetStatus("rejected")
		job.queueSpan.End()
		jsp.SetStatus("rejected")
		jsp.SetDetail(ErrQueueFull.Error())
		jsp.End()
		s.submitted.Add(1)
		s.rejected.Add(1)
		s.bumpClient(job.client, func(c *clientStat) { c.submitted++; c.rejected++ })
		return nil, ErrQueueFull
	}
}

// clientStat is one named client's fairness accounting.
type clientStat struct {
	submitted, completed, failed, cancelled, rejected, shed uint64
}

// bumpClient applies one counter update to a named client's stats;
// unnamed submissions (client == "") are not tracked.
func (s *Server) bumpClient(name string, f func(*clientStat)) {
	if name == "" {
		return
	}
	s.clientMu.Lock()
	cs := s.clients[name]
	if cs == nil {
		cs = &clientStat{}
		s.clients[name] = cs
	}
	f(cs)
	s.clientMu.Unlock()
}

// countCompleted/countFailed/countCancelled bump the server-wide and
// per-client terminal counters for one job. Every worker-side terminal
// transition goes through exactly one of these, which is what keeps the
// overload conservation law (submitted == completed + failed + cancelled +
// rejected + shed) checkable.
func (s *Server) countCompleted(j *Job) {
	s.completed.Add(1)
	s.bumpClient(j.client, func(c *clientStat) { c.completed++ })
}

func (s *Server) countFailed(j *Job) {
	s.failed.Add(1)
	s.bumpClient(j.client, func(c *clientStat) { c.failed++ })
}

func (s *Server) countCancelled(j *Job) {
	s.cancelled.Add(1)
	s.bumpClient(j.client, func(c *clientStat) { c.cancelled++ })
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns status snapshots for every job, in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// worker drains the queue in class-priority order. One machine is live
// per worker at a time, so the pool's peak memory is Options.Workers
// machines regardless of how deep the queue gets.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job := s.q.dequeue()
		if job == nil {
			return // queue closed and drained
		}
		s.runJob(job)
	}
}

// runJob executes one dequeued job end to end, including metrics.
func (s *Server) runJob(job *Job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	defer job.cancel() // releases the timeout timer, if any

	if !job.setRunning() {
		return // cancelled while queued; already finalized
	}
	var start time.Time
	if s.opts.Now != nil {
		start = s.opts.Now()
	}
	var retired uint64
	if job.spec.Figure != "" {
		retired = s.runFigure(job)
	} else {
		retired = s.runSim(job)
	}
	if s.opts.Now == nil {
		return
	}
	sec := s.opts.Now().Sub(start).Seconds()
	kips := 0.0
	if sec > 0 && retired > 0 {
		kips = float64(retired) / sec / 1000
	}
	job.mu.Lock()
	job.hostSec = sec
	job.kips = kips
	job.mu.Unlock()
	if kips > 0 {
		s.obsMu.Lock()
		s.kipsHist.Add(int(kips))
		s.kipsSum += kips
		s.kipsN++
		s.lastKIPS = kips
		s.obsMu.Unlock()
	}
}

// runSim executes a single-simulation job and returns the retired
// instruction count (0 when the job did not complete).
func (s *Server) runSim(job *Job) uint64 {
	if err := job.ctx.Err(); err != nil {
		job.finish(StateCancelled, err)
		s.countCancelled(job)
		return 0
	}
	cfg, err := job.spec.config() // validated at submit; rebuilt here, it's cheap
	if err != nil {
		job.finish(StateFailed, err)
		s.countFailed(job)
		return 0
	}
	if !job.spec.NoCache {
		// Second cache lookup, spanned like the first: a sibling job may
		// have populated the key while this one sat in the queue.
		csp := job.span.Child("cache")
		if res, ok, err := s.store.Get(job.key); err == nil && ok {
			csp.SetStatus("hit")
			csp.End()
			s.cstats.hits.Add(1)
			job.mu.Lock()
			job.cached = true
			job.result = res
			job.mu.Unlock()
			job.finish(StateDone, nil)
			s.countCompleted(job)
			return 0 // no simulation ran; keep KIPS honest
		}
		csp.SetStatus("miss")
		csp.End()
		s.cstats.misses.Add(1)
	}
	if job.spec.Events {
		cfg.Events = &jobEventSink{server: s}
	}
	rsp := job.span.Child("run")
	var m *pipeline.Machine
	if job.spec.Checkpoint != nil {
		m, err = pipeline.Restore(cfg, job.spec.Checkpoint)
	} else {
		m, err = pipeline.New(cfg)
	}
	if err != nil {
		rsp.SetError(err)
		rsp.End()
		job.finish(StateFailed, err)
		s.countFailed(job)
		return 0
	}
	res, err := m.RunContext(job.ctx)
	switch {
	case err == nil:
		rsp.SetStatus("ok")
		rsp.End()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		rsp.SetStatus("cancelled")
		rsp.End()
		job.finish(StateCancelled, err)
		s.countCancelled(job)
		return 0
	default: // ErrCycleBudget and anything else the pipeline reports
		rsp.SetError(err)
		rsp.End()
		job.finish(StateFailed, err)
		s.countFailed(job)
		return 0
	}
	if !job.spec.NoCache {
		if err := s.store.Put(job.key, res); err != nil {
			s.cstats.putErrors.Add(1)
		}
	}
	job.mu.Lock()
	job.result = res
	job.mu.Unlock()
	job.finish(StateDone, nil)
	s.countCompleted(job)
	return res.TotalRetired
}

// runFigure regenerates one paper figure through the cache and returns the
// total retired instructions across its cache-missing simulations.
func (s *Server) runFigure(job *Job) uint64 {
	if err := job.ctx.Err(); err != nil {
		job.finish(StateCancelled, err)
		s.countCancelled(job)
		return 0
	}
	fig := figure(job.spec.Figure)
	opt := experiments.DefaultOptions()
	if job.spec.Quick {
		opt = experiments.QuickOptions()
	}
	var retired atomic.Uint64
	store := s.store
	if job.spec.NoCache {
		store = nil
	}
	opt.Runner = func(cfgs []pipeline.Config) ([]*pipeline.Result, error) {
		results, err := RunAllCached(job.ctx, store, &s.cstats, cfgs)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			retired.Add(r.TotalRetired)
		}
		return results, nil
	}
	rsp := job.span.Child("run")
	table, err := fig(opt)
	switch {
	case err == nil:
		rsp.SetStatus("ok")
		rsp.End()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		rsp.SetStatus("cancelled")
		rsp.End()
		job.finish(StateCancelled, err)
		s.countCancelled(job)
		return 0
	default:
		rsp.SetError(err)
		rsp.End()
		job.finish(StateFailed, err)
		s.countFailed(job)
		return 0
	}
	job.mu.Lock()
	job.table = table
	job.mu.Unlock()
	job.finish(StateDone, nil)
	s.countCompleted(job)
	return retired.Load()
}

// jobEventSink fans one running job's loop events into the server-wide
// aggregate. Event is the serve layer's only per-cycle-path code — it runs
// once per loose-loop traversal of every events-enabled job — so it stays
// allocation-free (it is a simlint hot-path root): one mutex and two
// histogram updates.
type jobEventSink struct {
	server *Server
}

// Event implements obs.EventSink.
func (k *jobEventSink) Event(e obs.Event) {
	s := k.server
	s.obsMu.Lock()
	s.delays.Event(e)
	s.obsMu.Unlock()
}

// Drain stops accepting submissions, lets the workers finish every queued
// job, and returns once the pool is idle. If ctx expires first, running
// simulations are cancelled cooperatively and Drain still waits for the
// workers to observe it before returning ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.beginDrain()
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-idle
		return ctx.Err()
	}
}

// Close is Drain with no grace: everything in flight is cancelled and
// Close returns once the workers exit. Queued jobs are marked cancelled.
func (s *Server) Close() {
	s.beginDrain()
	s.cancelAll()
	s.wg.Wait()
}

// beginDrain flips the server into draining mode exactly once.
func (s *Server) beginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.q.close()
	}
	s.mu.Unlock()
}

// Metrics is the /metrics payload.
type Metrics struct {
	Workers    int   `json:"workers"`
	QueueDepth int64 `json:"queue_depth"`
	Running    int64 `json:"running"`
	Draining   bool  `json:"draining"`

	// QueueByClass reports admitted-but-unstarted occupancy per SLO class,
	// always all classes in priority order so the layout is deterministic.
	QueueByClass []ClassDepth `json:"queue_by_class"`

	Jobs struct {
		Submitted uint64 `json:"submitted"`
		Completed uint64 `json:"completed"`
		Failed    uint64 `json:"failed"`
		Cancelled uint64 `json:"cancelled"`
		Rejected  uint64 `json:"rejected"`
		Shed      uint64 `json:"shed"`
	} `json:"jobs"`

	Cache struct {
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		PutErrors uint64  `json:"put_errors"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`

	// KIPS is per-job simulation throughput (thousands of simulated
	// instructions retired per host second); all zero when the server
	// has no clock (Options.Now nil).
	KIPS struct {
		Jobs uint64  `json:"jobs"`
		Last float64 `json:"last"`
		Mean float64 `json:"mean"`
		P50  int     `json:"p50"`
		P99  int     `json:"p99"`
	} `json:"kips"`

	// Loops aggregates loop-event delays across events-enabled jobs.
	Loops []LoopMetric `json:"loops,omitempty"`

	// Clients is the per-client fairness accounting, sorted by client
	// name; absent until a named client submits.
	Clients []ClientMetric `json:"clients,omitempty"`
}

// ClassDepth is one SLO class's queue occupancy.
type ClassDepth struct {
	Class string `json:"class"`
	Depth int    `json:"depth"`
}

// ClientMetric is one named client's lifecycle counters plus its current
// queue occupancy.
type ClientMetric struct {
	Client    string `json:"client"`
	Queued    int    `json:"queued"`
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Rejected  uint64 `json:"rejected"`
	Shed      uint64 `json:"shed"`
}

// LoopMetric is one loose loop's aggregate delay summary.
type LoopMetric struct {
	Loop       string  `json:"loop"`
	Events     uint64  `json:"events"`
	MeanDelay  float64 `json:"mean_delay"`
	P99Delay   int     `json:"p99_delay"`
	CyclesLost uint64  `json:"cycles_lost"`
}

// Metrics snapshots the server's aggregate state.
func (s *Server) Metrics() Metrics {
	var m Metrics
	m.Workers = s.opts.Workers
	m.QueueDepth = int64(s.q.depth())
	byClass := s.q.depthByClass()
	m.QueueByClass = make([]ClassDepth, NumClasses)
	for c := Class(0); c < NumClasses; c++ {
		m.QueueByClass[c] = ClassDepth{Class: c.String(), Depth: byClass[c]}
	}
	m.Running = s.running.Load()
	s.mu.Lock()
	m.Draining = s.draining
	s.mu.Unlock()
	m.Jobs.Submitted = s.submitted.Load()
	m.Jobs.Completed = s.completed.Load()
	m.Jobs.Failed = s.failed.Load()
	m.Jobs.Cancelled = s.cancelled.Load()
	m.Jobs.Rejected = s.rejected.Load()
	m.Jobs.Shed = s.shed.Load()
	m.Cache.Hits = s.cstats.Hits()
	m.Cache.Misses = s.cstats.Misses()
	m.Cache.PutErrors = s.cstats.PutErrors()
	m.Cache.HitRate = s.cstats.HitRate()
	s.obsMu.Lock()
	m.KIPS.Jobs = s.kipsN
	m.KIPS.Last = s.lastKIPS
	if s.kipsN > 0 {
		m.KIPS.Mean = s.kipsSum / float64(s.kipsN)
	}
	m.KIPS.P50 = s.kipsHist.Quantile(0.5)
	m.KIPS.P99 = s.kipsHist.Quantile(0.99)
	for k := obs.EventKind(0); k < obs.NumEventKinds; k++ {
		n := s.delays.Count(k)
		if n == 0 {
			continue
		}
		m.Loops = append(m.Loops, LoopMetric{
			Loop:       k.String(),
			Events:     n,
			MeanDelay:  s.delays.MeanDelay(k),
			P99Delay:   s.delays.P99(k),
			CyclesLost: s.delays.CyclesLost(k),
		})
	}
	s.obsMu.Unlock()
	queued := s.q.clientDepths()
	s.clientMu.Lock()
	for _, name := range stats.SortedKeys(s.clients) {
		cs := s.clients[name]
		m.Clients = append(m.Clients, ClientMetric{
			Client:    name,
			Queued:    queued[name],
			Submitted: cs.submitted,
			Completed: cs.completed,
			Failed:    cs.failed,
			Cancelled: cs.cancelled,
			Rejected:  cs.rejected,
			Shed:      cs.shed,
		})
	}
	s.clientMu.Unlock()
	return m
}
