package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteProm renders a Metrics snapshot in Prometheus text exposition format
// (version 0.0.4). The encoder is hand-rolled — the repo takes no external
// dependencies — and deterministic: families appear in a fixed order and
// labelled series (loops) in the order Metrics produced them, which is the
// loop enum order. The JSON form on /metrics is untouched; this is the same
// snapshot re-encoded for scrapers.
func WriteProm(w io.Writer, m Metrics) error {
	b := bufio.NewWriter(w)

	gauge := func(name, help string, v float64) {
		_, _ = fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, promFloat(v))
	}
	counter := func(name, help string, v float64) {
		_, _ = fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n",
			name, help, name, name, promFloat(v))
	}

	gauge("loosim_workers", "Size of the simulation worker pool.", float64(m.Workers))
	gauge("loosim_queue_depth", "Jobs accepted but not yet picked up by a worker.", float64(m.QueueDepth))
	if len(m.QueueByClass) > 0 {
		_, _ = fmt.Fprintf(b, "# HELP loosim_queue_depth_class Queued jobs by SLO class.\n# TYPE loosim_queue_depth_class gauge\n")
		for _, c := range m.QueueByClass {
			_, _ = fmt.Fprintf(b, "loosim_queue_depth_class{class=%q} %d\n", c.Class, c.Depth)
		}
	}
	gauge("loosim_running", "Jobs currently executing on a worker.", float64(m.Running))
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	gauge("loosim_draining", "1 while the server is draining and rejecting submissions.", draining)

	_, _ = fmt.Fprintf(b, "# HELP loosim_jobs_total Jobs by lifecycle outcome.\n# TYPE loosim_jobs_total counter\n")
	_, _ = fmt.Fprintf(b, "loosim_jobs_total{state=\"submitted\"} %d\n", m.Jobs.Submitted)
	_, _ = fmt.Fprintf(b, "loosim_jobs_total{state=\"completed\"} %d\n", m.Jobs.Completed)
	_, _ = fmt.Fprintf(b, "loosim_jobs_total{state=\"failed\"} %d\n", m.Jobs.Failed)
	_, _ = fmt.Fprintf(b, "loosim_jobs_total{state=\"cancelled\"} %d\n", m.Jobs.Cancelled)
	_, _ = fmt.Fprintf(b, "loosim_jobs_total{state=\"rejected\"} %d\n", m.Jobs.Rejected)
	_, _ = fmt.Fprintf(b, "loosim_jobs_total{state=\"shed\"} %d\n", m.Jobs.Shed)

	counter("loosim_cache_hits_total", "Result-cache hits.", float64(m.Cache.Hits))
	counter("loosim_cache_misses_total", "Result-cache misses.", float64(m.Cache.Misses))
	counter("loosim_cache_put_errors_total", "Failed result-cache writes.", float64(m.Cache.PutErrors))
	gauge("loosim_cache_hit_rate", "Cache hits over lookups.", m.Cache.HitRate)

	gauge("loosim_kips_jobs", "Jobs contributing to the KIPS statistics.", float64(m.KIPS.Jobs))
	gauge("loosim_kips_last", "Most recent job's throughput (thousand instructions per second).", m.KIPS.Last)
	gauge("loosim_kips_mean", "Mean per-job throughput.", m.KIPS.Mean)
	gauge("loosim_kips_p50", "Median per-job throughput.", float64(m.KIPS.P50))
	gauge("loosim_kips_p99", "99th-percentile per-job throughput.", float64(m.KIPS.P99))

	if len(m.Clients) > 0 {
		_, _ = fmt.Fprintf(b, "# HELP loosim_client_queued Queued jobs by client.\n# TYPE loosim_client_queued gauge\n")
		for _, c := range m.Clients {
			_, _ = fmt.Fprintf(b, "loosim_client_queued{client=%q} %d\n", c.Client, c.Queued)
		}
		_, _ = fmt.Fprintf(b, "# HELP loosim_client_jobs_total Jobs by client and lifecycle outcome.\n# TYPE loosim_client_jobs_total counter\n")
		for _, c := range m.Clients {
			_, _ = fmt.Fprintf(b, "loosim_client_jobs_total{client=%q,state=\"submitted\"} %d\n", c.Client, c.Submitted)
			_, _ = fmt.Fprintf(b, "loosim_client_jobs_total{client=%q,state=\"completed\"} %d\n", c.Client, c.Completed)
			_, _ = fmt.Fprintf(b, "loosim_client_jobs_total{client=%q,state=\"failed\"} %d\n", c.Client, c.Failed)
			_, _ = fmt.Fprintf(b, "loosim_client_jobs_total{client=%q,state=\"cancelled\"} %d\n", c.Client, c.Cancelled)
			_, _ = fmt.Fprintf(b, "loosim_client_jobs_total{client=%q,state=\"rejected\"} %d\n", c.Client, c.Rejected)
			_, _ = fmt.Fprintf(b, "loosim_client_jobs_total{client=%q,state=\"shed\"} %d\n", c.Client, c.Shed)
		}
	}

	if len(m.Loops) > 0 {
		_, _ = fmt.Fprintf(b, "# HELP loosim_loop_events_total Loop events by loose loop.\n# TYPE loosim_loop_events_total counter\n")
		for _, l := range m.Loops {
			_, _ = fmt.Fprintf(b, "loosim_loop_events_total{loop=%q} %d\n", l.Loop, l.Events)
		}
		_, _ = fmt.Fprintf(b, "# HELP loosim_loop_delay_cycles Loop feedback delay in cycles.\n# TYPE loosim_loop_delay_cycles gauge\n")
		for _, l := range m.Loops {
			_, _ = fmt.Fprintf(b, "loosim_loop_delay_cycles{loop=%q,stat=\"mean\"} %s\n", l.Loop, promFloat(l.MeanDelay))
			_, _ = fmt.Fprintf(b, "loosim_loop_delay_cycles{loop=%q,stat=\"p99\"} %d\n", l.Loop, l.P99Delay)
		}
		_, _ = fmt.Fprintf(b, "# HELP loosim_loop_cycles_lost_total Cycles lost to loop slack by loose loop.\n# TYPE loosim_loop_cycles_lost_total counter\n")
		for _, l := range m.Loops {
			_, _ = fmt.Fprintf(b, "loosim_loop_cycles_lost_total{loop=%q} %d\n", l.Loop, l.CyclesLost)
		}
	}
	return b.Flush()
}

// promFloat renders a sample value: integers without a decimal point,
// everything else in Go's shortest-round-trip form (both are valid
// Prometheus floats).
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// CheckPromText validates Prometheus text-format output line by line:
// comments must be well-formed HELP/TYPE lines, samples must be
// "name[{labels}] value" with a parseable float value and a metric name
// matching the exposition grammar. It is a format check, not a scraper —
// enough for tests and the selfcheck to catch a malformed encoder without
// an external parser dependency.
func CheckPromText(text []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(text))
	n := 0
	samples := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("serve: prom line %d: malformed comment %q", n, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("serve: prom line %d: malformed TYPE %q", n, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("serve: prom line %d: unknown type %q", n, fields[3])
				}
			}
			continue
		}
		name, rest, ok := splitSample(line)
		if !ok {
			return fmt.Errorf("serve: prom line %d: malformed sample %q", n, line)
		}
		if !validMetricName(name) {
			return fmt.Errorf("serve: prom line %d: bad metric name %q", n, name)
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			return fmt.Errorf("serve: prom line %d: bad value in %q: %w", n, line, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("serve: prom output has no samples")
	}
	return nil
}

// splitSample splits "name{labels} value" or "name value" into the metric
// name and the value text, validating label-block syntax along the way.
func splitSample(line string) (name, value string, ok bool) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", false
		}
		labels := line[i+1 : j]
		for _, pair := range strings.Split(labels, ",") {
			k, v, found := strings.Cut(pair, "=")
			if !found || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", false
			}
		}
		return line[:i], line[j+1:], true
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", "", false
	}
	return line[:i], line[i+1:], true
}

// validMetricName checks the exposition-format metric name grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
