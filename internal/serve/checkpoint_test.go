package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"loosesim/internal/sample"
	"loosesim/internal/snap"
)

// TestCheckpointJobThroughServer is the acceptance case for sampled jobs:
// a window job carrying a checkpoint must be keyed by the checkpoint's
// content address, produce bytes identical to a local restore-and-run,
// and hit the cache on resubmission — while staying distinct from both
// the plain (cold-start) config job and other windows of the same run.
func TestCheckpointJobThroughServer(t *testing.T) {
	cfg := simCfg(t, "gcc", 7)
	cfg.WarmupInstructions = 2_000
	cfg.MeasureInstructions = 4_000
	opt := sample.Options{Windows: 2, WindowInstructions: 1_000, DetailedWarmup: 500}
	ckpts, err := sample.Checkpoints(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := sample.WindowConfig(cfg, opt)

	srv := New(Options{Workers: 1, Now: time.Now})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st := submitWait(t, ts.URL, JobSpec{Config: &wcfg, Checkpoint: ckpts[0]})
	if st.State != StateDone {
		t.Fatalf("state = %q (%s)", st.State, st.Error)
	}
	ck, err := ConfigKey(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := snap.Digest(ckpts[0])[:16] + ck; st.Key != want {
		t.Fatalf("job key = %q, want %q", st.Key, want)
	}

	// The server's result must be byte-identical to restoring the same
	// checkpoint locally: the checkpoint fully determines the window.
	local, err := sample.RunWindow(context.Background(), wcfg, ckpts[0])
	if err != nil {
		t.Fatal(err)
	}
	g, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Fatalf("server window differs from local restore:\nserver: %s\nlocal:  %s", g, w)
	}

	// Same checkpoint again: cache hit. Different window: distinct key,
	// fresh run. No checkpoint at all: the plain config key.
	if again := submitWait(t, ts.URL, JobSpec{Config: &wcfg, Checkpoint: ckpts[0]}); !again.Cached {
		t.Fatalf("identical checkpoint job not served from cache: %+v", again)
	}
	other := submitWait(t, ts.URL, JobSpec{Config: &wcfg, Checkpoint: ckpts[1]})
	if other.Key == st.Key {
		t.Fatal("distinct checkpoints produced the same cache key")
	}
	if other.Cached {
		t.Fatal("second window must not alias the first window's cache entry")
	}
	plain := submitWait(t, ts.URL, JobSpec{Config: &wcfg})
	if plain.Key != ck {
		t.Fatalf("plain config job key = %q, want %q", plain.Key, ck)
	}
}

// TestCheckpointJobRequiresConfig: checkpoints carry opaque machine
// state, so they only make sense against the exact raw config they were
// taken under — bench and figure jobs must reject them.
func TestCheckpointJobRequiresConfig(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()
	for _, spec := range []JobSpec{
		{Bench: "gcc", Checkpoint: []byte{1, 2, 3}},
		{Figure: "4", Checkpoint: []byte{1, 2, 3}},
	} {
		if _, err := srv.Submit(spec); err == nil {
			t.Errorf("spec %+v must fail", spec)
		}
	}
}
