package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"loosesim"
	"loosesim/internal/obs"
	"loosesim/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite golden files")

// occupyWorker submits a job long enough to pin a worker for the duration
// of a test and waits until it is actually running.
func occupyWorker(t *testing.T, srv *Server, seed int64) *Job {
	t.Helper()
	job, err := srv.Submit(JobSpec{Bench: "gcc", Seed: seed, Warmup: new(uint64), Inst: 1 << 40, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500 && job.Status().State == StateQueued; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if st := job.Status().State; st != StateRunning {
		t.Fatalf("blocker state = %q, want running", st)
	}
	return job
}

// TestCancelWhileQueuedFinalizesImmediately is the regression test for
// the disconnect-while-queued bug: cancelling a job that no worker has
// picked up yet must finalize it right away — previously it stayed
// "queued" with Done open until a worker drained the queue down to it.
func TestCancelWhileQueuedFinalizesImmediately(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()

	blocker := occupyWorker(t, srv, 1)
	queued, err := srv.Submit(JobSpec{Bench: "gcc", Seed: 2, Warmup: new(uint64), Inst: 1 << 40, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := queued.Status().State; st != StateQueued {
		t.Fatalf("second job state = %q, want queued behind the busy worker", st)
	}

	queued.Cancel()
	select {
	case <-queued.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued job did not finalize until a worker reached it")
	}
	st := queued.Status()
	if st.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", st.State)
	}
	// The blocker must still be running: the cancellation cannot have
	// gone through the worker.
	if bst := blocker.Status().State; bst != StateRunning {
		t.Fatalf("blocker state = %q, want still running", bst)
	}
	if got := srv.Metrics().Jobs.Cancelled; got != 1 {
		t.Fatalf("cancelled counter = %d, want 1", got)
	}

	// Cancelling again (or racing the worker later) must not double-count
	// or re-open anything.
	queued.Cancel()
	if got := srv.Metrics().Jobs.Cancelled; got != 1 {
		t.Fatalf("cancelled counter after second Cancel = %d, want 1", got)
	}
	blocker.Cancel()
}

// TestDisconnectWhileQueuedCancelsJob drives the same bug end to end over
// HTTP: a ?wait=1 client that disconnects while its job is still queued
// must cancel the job immediately, not leave it for a worker.
func TestDisconnectWhileQueuedCancelsJob(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	blocker := occupyWorker(t, srv, 1)
	defer blocker.Cancel()

	spec, err := json.Marshal(JobSpec{Bench: "gcc", Seed: 2, Warmup: new(uint64), Inst: 1 << 40, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/api/v1/jobs?wait=1", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, derr := http.DefaultClient.Do(req)
		if derr == nil {
			derr = resp.Body.Close()
		}
		errc <- derr
	}()

	// Wait until the submission landed (two jobs registered), then drop
	// the client.
	var queued *Job
	for i := 0; i < 500 && queued == nil; i++ {
		for _, st := range srv.Jobs() {
			if st.ID != blocker.ID() {
				j, ok := srv.Job(st.ID)
				if !ok {
					t.Fatalf("job %s listed but not found", st.ID)
				}
				queued = j
			}
		}
		if queued == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if queued == nil {
		t.Fatal("queued job never appeared")
	}
	if st := queued.Status().State; st != StateQueued {
		t.Fatalf("job state before disconnect = %q, want queued", st)
	}

	cancel()
	if derr := <-errc; derr == nil {
		t.Fatal("disconnected request reported success")
	}
	select {
	case <-queued.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job of a disconnected queued client was not cancelled promptly")
	}
	if st := queued.Status(); st.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", st.State)
	}
	// The worker never touched it: the blocker is still going.
	if bst := blocker.Status().State; bst != StateRunning {
		t.Fatalf("blocker state = %q, want still running", bst)
	}
}

// TestRawConfigJob covers the coordinator's wire format: a complete
// pipeline.Config submitted as-is must produce a result byte-identical to
// a local run, land in the content-addressed cache, and enforce the
// exactly-one-kind rule.
func TestRawConfigJob(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()

	cfg := simCfg(t, "swim", 9)
	job, err := srv.Submit(JobSpec{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	st := job.Status()
	if st.State != StateDone {
		t.Fatalf("raw-config job state = %q (%s)", st.State, st.Error)
	}
	if st.Key == "" {
		t.Fatal("raw-config job has no content key")
	}

	want, err := loosesim.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("raw-config result differs from local run:\nserve: %s\nlocal: %s", gotJSON, wantJSON)
	}

	// The same config again is a cache fast-path hit.
	again, err := srv.Submit(JobSpec{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	<-again.Done()
	if ast := again.Status(); ast.State != StateDone || !ast.Cached {
		t.Fatalf("repeat raw-config job = %+v, want done and cached", ast)
	}

	// A bench job for the same point shares the address space: Key must
	// match what ConfigKey computes.
	key, err := ConfigKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Key != key {
		t.Fatalf("job key %q != ConfigKey %q", st.Key, key)
	}

	// Kind exclusivity and validation still hold.
	if _, err := srv.Submit(JobSpec{Bench: "gcc", Config: &cfg}); err == nil {
		t.Fatal("bench+config spec must fail")
	}
	bad := cfg
	bad.FwdDepth = -1
	if _, err := srv.Submit(JobSpec{Config: &bad}); err == nil {
		t.Fatal("invalid raw config must fail at submit")
	}

	// The server-side budget override applies to raw configs too.
	budget, err := srv.Submit(JobSpec{Config: &cfg, CycleBudget: 1, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	<-budget.Done()
	if bst := budget.Status(); bst.State != StateFailed {
		t.Fatalf("budgeted raw-config job state = %q, want failed", bst.State)
	}
}

// TestDirStoreCorruptEntryRecomputes: a torn or corrupted cache file must
// surface as a Get error, which RunAllCached treats as a miss — the entry
// is recomputed and rewritten, never served.
func TestDirStoreCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simCfg(t, "gcc", 4)
	key, err := ConfigKey(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var cs CacheStats
	first, err := RunAllCached(context.Background(), store, &cs, []pipeline.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Misses() != 1 {
		t.Fatalf("misses after first run = %d, want 1", cs.Misses())
	}

	// Tear the entry in half mid-file.
	path := filepath.Join(dir, key+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache entry not where expected: %v", err)
	}
	if err := os.WriteFile(path, []byte(`{"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, gerr := store.Get(key); gerr == nil {
		t.Fatalf("Get on corrupt entry = (ok=%v, err=nil), want error", ok)
	}

	second, err := RunAllCached(context.Background(), store, &cs, []pipeline.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Misses() != 2 {
		t.Fatalf("misses after corrupt entry = %d, want 2 (corrupt reads are misses)", cs.Misses())
	}
	a, err := json.Marshal(first[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("recomputed result differs from the original")
	}

	// The recompute rewrote the entry: it must round-trip again.
	res, ok, err := store.Get(key)
	if err != nil || !ok || res == nil {
		t.Fatalf("Get after recompute = (%v, %v, %v), want a healthy entry", res, ok, err)
	}
}

// TestMetricsGolden pins the /metrics JSON shape byte for byte. The
// response is part of the wire contract (loosweep, dashboards, loopstat
// all parse it); run `go test -run TestMetricsGolden -update` after a
// deliberate schema change.
func TestMetricsGolden(t *testing.T) {
	srv := New(Options{Workers: 3})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Feed the loop aggregator two events so the loops section renders.
	sink := &jobEventSink{server: srv}
	sink.Event(obs.Event{Kind: obs.EvBranchMispredict, Delay: 7, Cycle: 1})
	sink.Event(obs.Event{Kind: obs.EvBranchMispredict, Delay: 9, Cycle: 2})
	sink.Event(obs.Event{Kind: obs.EvLoadMisspec, Delay: 3, Cycle: 3})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics content-type = %q", ct)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("/metrics shape drifted from golden:\ngot:  %s\nwant: %s", body, want)
	}
}
