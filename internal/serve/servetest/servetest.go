// Package servetest provides an in-process test harness for the serving
// stack: a factory for loopback loosimd-equivalent backends (a real
// serve.Server behind a real httptest.Server, exercising the same HTTP
// JSON surface production traffic uses) and a scriptable fault-injecting
// http.RoundTripper for driving clients through 500s, dropped
// connections, hangs, truncated bodies, and latency spikes without a
// flaky network. The dispatch, serve, and loosweep tests all build on it.
package servetest

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"loosesim/internal/serve"
)

// Backend is one in-process serving node: a serve.Server exposed over a
// loopback HTTP listener.
type Backend struct {
	Server *serve.Server
	HTTP   *httptest.Server
	// URL is the backend's base URL, ready for a coordinator's backend
	// list.
	URL string
}

// StartBackend boots a backend with the given serve options. Callers own
// the result and must Close it.
func StartBackend(opts serve.Options) *Backend {
	srv := serve.New(opts)
	hs := httptest.NewServer(srv.Handler())
	return &Backend{Server: srv, HTTP: hs, URL: hs.URL}
}

// Close tears the backend down: the listener first (no new requests),
// then the server (cancels whatever is still running).
func (b *Backend) Close() {
	b.HTTP.Close()
	b.Server.Close()
}

// StartBackends boots n backends sharing nothing, and a closer that tears
// all of them down.
func StartBackends(n int, opts serve.Options) ([]*Backend, func()) {
	backends := make([]*Backend, n)
	for i := range backends {
		backends[i] = StartBackend(opts)
	}
	return backends, func() {
		for _, b := range backends {
			b.Close()
		}
	}
}

// URLs collects the base URLs of a backend set.
func URLs(backends []*Backend) []string {
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.URL
	}
	return urls
}

// Fault selects how the Tripper sabotages one matched request.
type Fault int

// The injectable faults.
const (
	// Pass forwards the request untouched.
	Pass Fault = iota
	// Status500 answers 500 without reaching the backend (a dying proxy).
	Status500
	// DropConn fails the exchange with a transport error (connection
	// reset), never reaching the backend.
	DropConn
	// Hang blocks until the request's context is cancelled, then reports
	// its error (a black-holed connection; pairs with client timeouts and
	// hedging).
	Hang
	// TruncateBody forwards the request but cuts the response body in
	// half, leaving the client an unparseable JSON fragment.
	TruncateBody
	// Latency delays the exchange by FaultSpec.Delay before forwarding.
	Latency
	// Status429 answers 429 with a Retry-After header without reaching
	// the backend (an overloaded node shedding load). FaultSpec.RetryAfter
	// sets the header, in whole seconds.
	Status429
)

// FaultSpec is one scripted fault.
type FaultSpec struct {
	Fault Fault
	// Delay is the added latency for Latency faults.
	Delay time.Duration
	// RetryAfter is the Retry-After header value for Status429 faults,
	// in whole seconds.
	RetryAfter int
}

// ErrDropped is the transport error DropConn injects.
var ErrDropped = errors.New("servetest: injected dropped connection")

// Tripper is a fault-injecting http.RoundTripper. Matched requests
// consume the script one entry per request, in order; once the script is
// exhausted (or for unmatched requests) it forwards untouched. Safe for
// concurrent use; concurrent matched requests consume distinct entries.
type Tripper struct {
	// Base performs real exchanges; nil selects
	// http.DefaultTransport.
	Base http.RoundTripper
	// Match limits fault injection to requests it accepts; nil matches
	// every request. Use it to aim faults at one backend of a fleet.
	Match func(*http.Request) bool
	// After is the timer source for Latency faults; nil selects
	// time.After.
	After func(time.Duration) <-chan time.Time

	mu     sync.Mutex
	script []FaultSpec
	next   int
}

// Script replaces the fault script and rewinds it.
func (t *Tripper) Script(faults ...FaultSpec) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.script = faults
	t.next = 0
}

// Remaining reports how many scripted faults have not been consumed.
func (t *Tripper) Remaining() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.script) - t.next
}

// take consumes the next scripted fault, or Pass when exhausted.
func (t *Tripper) take() FaultSpec {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next >= len(t.script) {
		return FaultSpec{Fault: Pass}
	}
	f := t.script[t.next]
	t.next++
	return f
}

func (t *Tripper) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Tripper) after(d time.Duration) <-chan time.Time {
	if t.After != nil {
		return t.After(d)
	}
	return time.After(d)
}

// RoundTrip implements http.RoundTripper.
func (t *Tripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Match != nil && !t.Match(req) {
		return t.base().RoundTrip(req)
	}
	spec := t.take()
	switch spec.Fault {
	case Pass:
		return t.base().RoundTrip(req)
	case Status500:
		return syntheticResponse(req, http.StatusInternalServerError,
			[]byte(`{"error":"servetest: injected 500"}`)), nil
	case Status429:
		resp := syntheticResponse(req, http.StatusTooManyRequests,
			[]byte(`{"error":"servetest: injected queue full"}`))
		resp.Header.Set("Retry-After", strconv.Itoa(spec.RetryAfter))
		return resp, nil
	case DropConn:
		return nil, ErrDropped
	case Hang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case TruncateBody:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return truncateBody(resp)
	case Latency:
		select {
		case <-t.after(spec.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base().RoundTrip(req)
	default:
		return nil, errors.New("servetest: unknown fault")
	}
}

// syntheticResponse fabricates a response that never touched a server.
func syntheticResponse(req *http.Request, code int, body []byte) *http.Response {
	return &http.Response{
		StatusCode:    code,
		Status:        http.StatusText(code),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody swaps resp's body for its first half, invalidating any
// JSON payload while keeping the 200 status — the torn-response case a
// client must treat as a failed exchange.
func truncateBody(resp *http.Response) (*http.Response, error) {
	full, err := io.ReadAll(resp.Body)
	cerr := resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	cut := full[:len(full)/2]
	resp.Body = io.NopCloser(bytes.NewReader(cut))
	resp.ContentLength = int64(len(cut))
	return resp, nil
}
