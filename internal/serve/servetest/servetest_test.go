package servetest

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"loosesim/internal/serve"
)

func get(t *testing.T, client *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	return client.Do(req)
}

func TestTripperFaults(t *testing.T) {
	b := StartBackend(serve.Options{Workers: 1})
	defer b.Close()

	tr := &Tripper{}
	client := &http.Client{Transport: tr}

	// Pass (empty script): a real exchange.
	resp, err := get(t, client, b.URL+"/healthz")
	if err != nil {
		t.Fatalf("pass-through: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pass-through status = %d, want 200", resp.StatusCode)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Status500: synthesized, never reaches the backend.
	tr.Script(FaultSpec{Fault: Status500})
	resp, err = get(t, client, b.URL+"/healthz")
	if err != nil {
		t.Fatalf("status500: %v", err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status500 status = %d, want 500", resp.StatusCode)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// DropConn: a transport-level failure.
	tr.Script(FaultSpec{Fault: DropConn})
	if _, err = get(t, client, b.URL+"/healthz"); !errors.Is(err, ErrDropped) {
		t.Fatalf("dropconn err = %v, want ErrDropped", err)
	}

	// TruncateBody: 200 with an unparseable JSON fragment.
	tr.Script(FaultSpec{Fault: TruncateBody})
	resp, err = get(t, client, b.URL+"/metrics")
	if err != nil {
		t.Fatalf("truncate: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("truncate read: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var m serve.Metrics
	if jerr := json.Unmarshal(body, &m); jerr == nil {
		t.Fatalf("truncated body still parsed: %q", body)
	}

	// Latency: delayed but successful.
	tr.Script(FaultSpec{Fault: Latency, Delay: time.Millisecond})
	resp, err = get(t, client, b.URL+"/healthz")
	if err != nil {
		t.Fatalf("latency: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("latency status = %d, want 200", resp.StatusCode)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Hang: blocks until the request context gives up.
	tr.Script(FaultSpec{Fault: Hang})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/healthz", nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if _, err = client.Do(req); err == nil {
		t.Fatal("hang: request succeeded, want context error")
	}

	if got := tr.Remaining(); got != 0 {
		t.Fatalf("Remaining = %d, want 0", got)
	}
}

func TestTripperMatchAimsFaults(t *testing.T) {
	a := StartBackend(serve.Options{Workers: 1})
	defer a.Close()
	b := StartBackend(serve.Options{Workers: 1})
	defer b.Close()

	tr := &Tripper{Match: func(r *http.Request) bool { return r.URL.Host == mustHost(t, b.URL) }}
	tr.Script(FaultSpec{Fault: DropConn})
	client := &http.Client{Transport: tr}

	// Backend a is unmatched: the script must not be consumed.
	resp, err := get(t, client, a.URL+"/healthz")
	if err != nil {
		t.Fatalf("unmatched request: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := tr.Remaining(); got != 1 {
		t.Fatalf("Remaining after unmatched = %d, want 1", got)
	}

	if _, err = get(t, client, b.URL+"/healthz"); !errors.Is(err, ErrDropped) {
		t.Fatalf("matched err = %v, want ErrDropped", err)
	}
}

func mustHost(t *testing.T, rawURL string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		t.Fatalf("parse %q: %v", rawURL, err)
	}
	return req.URL.Host
}
