package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"loosesim/internal/trace"
)

// retryAfterSeconds renders a Retry-After hint as whole seconds (the
// header's delay-seconds form), rounding up so a sub-second hint never
// becomes "retry immediately".
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Handler returns the service's HTTP API:
//
//	POST   /api/v1/jobs        submit a JobSpec; "?wait=1" blocks until the
//	                           job finishes (client disconnect cancels it)
//	GET    /api/v1/jobs        list all jobs in submission order
//	GET    /api/v1/jobs/{id}   one job's status (and result, when done)
//	DELETE /api/v1/jobs/{id}   request cooperative cancellation
//	GET    /metrics            queue, cache, throughput, and loop metrics
//	GET    /healthz            liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON encodes v as the response body. An encode error after the
// header is committed has no recovery; the client sees the truncation.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		_ = err
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// A coordinator-supplied Traceparent header links this job's spans
	// into the submitting attempt's trace. Malformed headers are ignored
	// (Parse rejects them), not errors: tracing is advisory.
	parent, _ := trace.Parse(r.Header.Get(trace.TraceparentHeader))
	job, err := s.SubmitTraced(spec, parent)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShed):
			// The backoff signal open-loop clients steer by: without it a
			// 429 tells them nothing about when capacity might return.
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
			writeError(w, http.StatusTooManyRequests, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-job.Done():
		case <-r.Context().Done():
			// The client went away while waiting: abort its job rather
			// than burning a worker on a result nobody will read.
			job.Cancel()
			return
		}
	}
	code := http.StatusAccepted
	st := job.Status()
	if st.State != StateQueued {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteProm(w, s.Metrics()); err != nil {
			_ = err // header committed; the client sees the truncation
		}
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

// wantsProm reports whether the request asked for Prometheus text
// exposition, either explicitly (?format=prom) or by content negotiation.
// Clients that send no Accept header (http.Get, the existing JSON golden
// tests) keep getting JSON.
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
