package uop

import (
	"testing"

	"loosesim/internal/isa"
	"loosesim/internal/regfile"
)

func TestNewDefaults(t *testing.T) {
	in := isa.Inst{Op: isa.Load, Dest: 3, Src: [2]isa.Reg{1, isa.RegInvalid}}
	u := New(in, 1, 42, 100)
	if u.State != StateDecode {
		t.Errorf("initial state = %v, want decode", u.State)
	}
	if u.Thread != 1 || u.Seq != 42 || u.FetchCycle != 100 {
		t.Error("identity fields wrong")
	}
	if u.Dest != regfile.PRegInvalid || u.OldPhy != regfile.PRegInvalid {
		t.Error("physical registers must start invalid")
	}
	for i := 0; i < 2; i++ {
		if u.Src[i] != regfile.PRegInvalid || u.SrcAvail[i] != NoCycle {
			t.Errorf("source %d not initialised", i)
		}
	}
	for _, c := range []int64{u.EnterIQCycle, u.IssueCycle, u.ExecCycle, u.CompleteCycle, u.IQFreeCycle, u.DataReady} {
		if c != NoCycle {
			t.Error("timestamps must start at NoCycle")
		}
	}
}

func TestPredicates(t *testing.T) {
	ld := New(isa.Inst{Op: isa.Load}, 0, 1, 0)
	br := New(isa.Inst{Op: isa.Branch}, 0, 2, 0)
	alu := New(isa.Inst{Op: isa.IntALU}, 0, 3, 0)
	if !ld.IsLoad() || ld.IsBranch() {
		t.Error("load predicates wrong")
	}
	if !br.IsBranch() || br.IsLoad() {
		t.Error("branch predicates wrong")
	}
	if alu.IsLoad() || alu.IsBranch() {
		t.Error("alu predicates wrong")
	}
	if !ld.Older(br) || br.Older(ld) {
		t.Error("age ordering wrong")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateDecode: "decode", StateWaiting: "waiting", StateIssued: "issued",
		StateDone: "done", StateRetired: "retired", StateSquashed: "squashed",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if State(200).String() == "" {
		t.Error("unknown state must render")
	}
}

func TestUOpString(t *testing.T) {
	u := New(isa.Inst{Op: isa.FPMul}, 0, 7, 0)
	if u.String() == "" {
		t.Error("empty uop string")
	}
}
