// Package uop defines the dynamic (in-flight) instruction record shared by
// the instruction queue, the DRA, and the pipeline driver. A UOp wraps a
// static isa.Inst with renamed registers, cluster assignment, dependence
// links, and the timestamps that the loop analysis reports are built from.
package uop

import (
	"fmt"

	"loosesim/internal/isa"
	"loosesim/internal/regfile"
)

// State tracks where an in-flight instruction is in its lifecycle.
type State uint8

// Lifecycle states. A mis-speculated instruction moves backwards from
// Issued (or Done) to Waiting when the IQ reissues it — that backwards edge
// is exactly a loose-loop recovery.
const (
	// StateDecode: traversing the DEC-IQ portion of the pipeline.
	StateDecode State = iota
	// StateWaiting: in the IQ, not (or no longer) issued.
	StateWaiting
	// StateIssued: selected for issue; traversing IQ-EX or executing.
	StateIssued
	// StateDone: result produced; awaiting in-order retire.
	StateDone
	// StateRetired: committed and removed from the window.
	StateRetired
	// StateSquashed: killed by a branch mis-speculation or trap.
	StateSquashed
)

var stateNames = [...]string{"decode", "waiting", "issued", "done", "retired", "squashed"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// NoCycle is the sentinel for an event that has not happened.
const NoCycle int64 = -1

// UOp is one dynamic instruction.
type UOp struct {
	// Inst is the static instruction.
	Inst isa.Inst
	// Thread is the hardware thread the instruction belongs to.
	Thread int
	// Seq is a globally monotonic fetch sequence number; it defines age
	// for squashing (larger = younger).
	Seq uint64
	// WrongPath marks instructions fetched past a mispredicted branch;
	// they execute (useless work) but never retire.
	WrongPath bool
	// Mispredicted marks a branch whose predicted direction was wrong.
	Mispredicted bool

	// Renamed registers.
	Dest   regfile.PReg
	OldPhy regfile.PReg // previous mapping of Inst.Dest, freed at retire
	Src    [2]regfile.PReg
	NumSrc int

	// Cluster is the functional-unit cluster assigned at decode. The DRA
	// routes this instruction's operands to this cluster's CRC.
	Cluster int

	// PreRead marks sources whose value was pre-read from the register
	// file into the IQ payload at rename (DRA completed operands), or
	// fetched into the payload by operand-miss recovery.
	PreRead [2]bool

	// State machine.
	State State
	// Issues counts issue attempts; Issues-1 is the reissue (useless
	// work) count for this instruction.
	Issues int

	// Timestamps (cycles), NoCycle until the event occurs.
	FetchCycle    int64
	EnterIQCycle  int64
	IssueCycle    int64
	ExecCycle     int64 // cycle execution began (operands read)
	CompleteCycle int64 // cycle the result is available to consumers
	IQFreeCycle   int64 // cycle the IQ entry may be reclaimed

	// SrcAvail records when each source value actually became available
	// at the functional units (producer completion, or 0 for committed
	// state). Feeds the Figure 6 operand-gap CDF.
	SrcAvail [2]int64

	// Renamed marks that the instruction passed the rename stage and so
	// holds physical-register state that a squash must unwind.
	Renamed bool

	// DataReady is the cycle a load's data is actually available; set
	// when the cache resolves the access.
	DataReady int64

	// MinIssueCycle gates re-selection after a mis-speculation: the IQ
	// cannot reissue the instruction before the recovery signal (and, for
	// operand misses, the register file read into the payload) arrives.
	MinIssueCycle int64

	// InIQ marks the instruction as holding an IQ entry.
	InIQ bool

	// MemTracked marks a load already recorded in the memory-ordering
	// tracking list (set on first successful execution).
	MemTracked bool
}

// New returns a UOp in decode state with timestamps cleared. The pipeline's
// fetch stage recycles records through a Pool instead; New remains for
// construction off the per-cycle path (tests, tools).
func New(in isa.Inst, thread int, seq uint64, fetchCycle int64) *UOp {
	u := &UOp{}
	u.Reset()
	u.Inst, u.Thread, u.Seq, u.FetchCycle = in, thread, seq, fetchCycle
	return u
}

// Reset returns the record to the pre-fetch state New establishes: decode
// state, invalid registers, every timestamp at NoCycle, all speculation and
// tracking flags cleared. A recycled record is indistinguishable from a
// fresh one.
func (u *UOp) Reset() {
	*u = UOp{
		State:         StateDecode,
		FetchCycle:    NoCycle,
		EnterIQCycle:  NoCycle,
		IssueCycle:    NoCycle,
		ExecCycle:     NoCycle,
		CompleteCycle: NoCycle,
		IQFreeCycle:   NoCycle,
		Dest:          regfile.PRegInvalid,
		OldPhy:        regfile.PRegInvalid,
		Src:           [2]regfile.PReg{regfile.PRegInvalid, regfile.PRegInvalid},
		SrcAvail:      [2]int64{NoCycle, NoCycle},
		DataReady:     NoCycle,
	}
}

// poolSlab is the number of records one refill allocates.
const poolSlab = 1024

// Pool hands out reset UOp records, recycling the ones returned to it. The
// caller owns the recycling discipline: a record must not be Put back while
// anything — a scheduled event, a queue, a tracking list — still holds a
// pointer to it. Not safe for concurrent use; the simulator is
// single-threaded by design.
type Pool struct {
	free []*UOp
}

// Get returns a record in decode state, exactly as New would build it.
func (p *Pool) Get(in isa.Inst, thread int, seq uint64, fetchCycle int64) *UOp {
	if len(p.free) == 0 {
		// simlint:ignore perf slab refill amortised over poolSlab records; inlined here by the compiler
		p.refill()
	}
	u := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	u.Reset()
	u.Inst, u.Thread, u.Seq, u.FetchCycle = in, thread, seq, fetchCycle
	return u
}

// Put returns a dead record for reuse. The caller must guarantee no live
// references remain.
func (p *Pool) Put(u *UOp) {
	// simlint:prealloc capacity provisioned by refill slabs; Put never exceeds what Get drained
	p.free = append(p.free, u)
}

// refill grows the free list by one slab. A single backing allocation
// serves poolSlab fetches; in steady state (window-bounded in-flight count
// plus the recycling delay) refill stops being called at all.
//
// simlint:coldpath slab refill amortised over poolSlab records
func (p *Pool) refill() {
	slab := make([]UOp, poolSlab)
	for i := range slab {
		p.free = append(p.free, &slab[i])
	}
}

// IsLoad reports whether the instruction is a load.
func (u *UOp) IsLoad() bool { return u.Inst.Op == isa.Load }

// IsBranch reports whether the instruction is a branch.
func (u *UOp) IsBranch() bool { return u.Inst.Op == isa.Branch }

// Older reports whether u is older than v in fetch order.
func (u *UOp) Older(v *UOp) bool { return u.Seq < v.Seq }

// String renders the uop for debugging.
func (u *UOp) String() string {
	return fmt.Sprintf("uop{#%d t%d %s %s cl%d}", u.Seq, u.Thread, u.Inst.Op, u.State, u.Cluster)
}
