package uop

import (
	"loosesim/internal/regfile"
	"loosesim/internal/snap"
)

// Snapshot encodes the dynamic instruction into w, field by field in
// declaration order. Pointers into the record (IQ entries, event-ring
// slots, tracking lists) are not the uop's to encode — the machine
// serializes those as indices into its live-uop table.
func (u *UOp) Snapshot(w *snap.Writer) {
	u.Inst.Snapshot(w)
	w.Int(u.Thread)
	w.U64(u.Seq)
	w.Bool(u.WrongPath)
	w.Bool(u.Mispredicted)
	w.I32(int32(u.Dest))
	w.I32(int32(u.OldPhy))
	w.I32(int32(u.Src[0]))
	w.I32(int32(u.Src[1]))
	w.Int(u.NumSrc)
	w.Int(u.Cluster)
	w.Bool(u.PreRead[0])
	w.Bool(u.PreRead[1])
	w.U8(uint8(u.State))
	w.Int(u.Issues)
	w.I64(u.FetchCycle)
	w.I64(u.EnterIQCycle)
	w.I64(u.IssueCycle)
	w.I64(u.ExecCycle)
	w.I64(u.CompleteCycle)
	w.I64(u.IQFreeCycle)
	w.I64(u.SrcAvail[0])
	w.I64(u.SrcAvail[1])
	w.Bool(u.Renamed)
	w.I64(u.DataReady)
	w.I64(u.MinIssueCycle)
	w.Bool(u.InIQ)
	w.Bool(u.MemTracked)
}

// preg reads a physical-register name, accepting PRegInvalid or a
// non-negative index. The machine re-checks the upper bound against its
// register file geometry; the uop cannot know it.
func preg(r *snap.Reader) regfile.PReg {
	v := regfile.PReg(r.I32())
	if v < 0 && v != regfile.PRegInvalid {
		r.Failf("preg %d negative", v)
		return regfile.PRegInvalid
	}
	return v
}

// Restore overwrites u with state encoded by Snapshot. Structural bounds
// the record can check alone (state enum, source count, non-negative
// indices) are enforced here; geometry-dependent bounds (thread count,
// cluster count, physical-register file size) are the caller's.
func (u *UOp) Restore(r *snap.Reader) {
	u.Inst.Restore(r)
	u.Thread = r.Int()
	u.Seq = r.U64()
	u.WrongPath = r.Bool()
	u.Mispredicted = r.Bool()
	u.Dest = preg(r)
	u.OldPhy = preg(r)
	u.Src[0] = preg(r)
	u.Src[1] = preg(r)
	u.NumSrc = r.Int()
	u.Cluster = r.Int()
	u.PreRead[0] = r.Bool()
	u.PreRead[1] = r.Bool()
	u.State = State(r.U8())
	u.Issues = r.Int()
	u.FetchCycle = r.I64()
	u.EnterIQCycle = r.I64()
	u.IssueCycle = r.I64()
	u.ExecCycle = r.I64()
	u.CompleteCycle = r.I64()
	u.IQFreeCycle = r.I64()
	u.SrcAvail[0] = r.I64()
	u.SrcAvail[1] = r.I64()
	u.Renamed = r.Bool()
	u.DataReady = r.I64()
	u.MinIssueCycle = r.I64()
	u.InIQ = r.Bool()
	u.MemTracked = r.Bool()
	if u.Thread < 0 {
		r.Failf("uop thread %d negative", u.Thread)
		u.Thread = 0
	}
	if u.NumSrc < 0 || u.NumSrc > len(u.Src) {
		r.Failf("uop source count %d out of range", u.NumSrc)
		u.NumSrc = 0
	}
	if u.Cluster < 0 {
		r.Failf("uop cluster %d negative", u.Cluster)
		u.Cluster = 0
	}
	if u.State > StateSquashed {
		r.Failf("uop state %d out of range", u.State)
		u.State = StateDecode
	}
	if u.Issues < 0 {
		r.Failf("uop issue count %d negative", u.Issues)
		u.Issues = 0
	}
}
