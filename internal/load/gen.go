package load

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"loosesim/internal/serve"
)

// Arrival is one scheduled submission: which client sends which mix entry
// at what offset from the start of the replay.
type Arrival struct {
	// At is the arrival's offset from replay start (virtual time).
	At time.Duration
	// Client indexes Spec.Clients.
	Client int
	// Mix indexes the client's Mix.
	Mix int
	// Class is the client's parsed SLO class.
	Class serve.Class
	// Seq is the arrival's position in the merged schedule (0-based).
	Seq int
}

// Generate expands a spec into its merged arrival schedule: per-client
// counts by largest-remainder allocation of Spec.Jobs over the rate
// fractions, per-client interarrival streams from a rand.Rand seeded by
// (Spec.Seed, client name), merged and sorted by time. A pure function of
// the spec: same spec, same schedule, element for element.
func Generate(spec Spec) ([]Arrival, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	counts := allocate(spec.Jobs, spec.Clients)
	arrivals := make([]Arrival, 0, spec.Jobs)
	for ci := range spec.Clients {
		c := &spec.Clients[ci]
		class, err := serve.ParseClass(c.SLO)
		if err != nil {
			return nil, err // unreachable after Validate; kept for safety
		}
		rng := rand.New(rand.NewSource(clientSeed(spec.Seed, c.Name)))
		sample := interarrival(c.Arrival)
		meanGap := 1 / (spec.Rate * c.RateFraction) // seconds between arrivals
		totalWeight := 0.0
		for _, m := range c.Mix {
			totalWeight += m.Weight
		}
		at := time.Duration(0)
		for i := 0; i < counts[ci]; i++ {
			at += durationFromSeconds(sample(rng) * meanGap)
			arrivals = append(arrivals, Arrival{
				At:     at,
				Client: ci,
				Mix:    pickMix(c.Mix, totalWeight, rng.Float64()),
				Class:  class,
			})
		}
	}
	// Merge the client streams into one schedule. The sort is stable with
	// an explicit total order (time, then client index) so equal
	// timestamps cannot reorder between runs.
	sort.SliceStable(arrivals, func(i, j int) bool {
		if arrivals[i].At != arrivals[j].At {
			return arrivals[i].At < arrivals[j].At
		}
		return arrivals[i].Client < arrivals[j].Client
	})
	for i := range arrivals {
		arrivals[i].Seq = i
	}
	return arrivals, nil
}

// allocate splits total jobs over the clients proportionally to their rate
// fractions using largest-remainder apportionment, so the counts always
// sum to total exactly and a 0.6/0.3/0.1 split of 10 jobs is 6/3/1, never
// 6/3/0 or 7/3/1.
func allocate(total int, clients []ClientSpec) []int {
	counts := make([]int, len(clients))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(clients))
	assigned := 0
	for i := range clients {
		exact := float64(total) * clients[i].RateFraction
		counts[i] = int(math.Floor(exact))
		assigned += counts[i]
		rems[i] = rem{idx: i, frac: exact - math.Floor(exact)}
	}
	// Hand the leftover jobs to the largest remainders; ties break toward
	// the earlier client for determinism.
	sort.SliceStable(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
	for k := 0; k < total-assigned; k++ {
		counts[rems[k%len(rems)].idx]++
	}
	return counts
}

// pickMix selects a mix entry by weight from a uniform draw in [0, 1).
func pickMix(mix []MixEntry, totalWeight, u float64) int {
	target := u * totalWeight
	cum := 0.0
	for i := range mix {
		cum += mix[i].Weight
		if target < cum {
			return i
		}
	}
	return len(mix) - 1 // rounding slack lands on the last entry
}

// interarrival returns a sampler producing gaps with mean 1 for the given
// process; callers scale by the client's mean gap.
func interarrival(a ArrivalSpec) func(*rand.Rand) float64 {
	switch a.Process {
	case ProcessGamma:
		cv := a.CV
		// A gamma with shape k = 1/cv² and scale θ = cv² has mean kθ = 1
		// and coefficient of variation cv: cv > 1 clumps arrivals into
		// bursts separated by long gaps, which is the traffic shape that
		// actually stresses an admission controller.
		k := 1 / (cv * cv)
		theta := cv * cv
		return func(rng *rand.Rand) float64 { return gammaSample(rng, k) * theta }
	default: // Poisson
		return func(rng *rand.Rand) float64 { return rng.ExpFloat64() }
	}
}

// gammaSample draws Gamma(shape k, scale 1) via Marsaglia–Tsang squeeze
// rejection; shapes below 1 use the boost Gamma(k) = Gamma(k+1)·U^(1/k).
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		for u == 0 { // Pow(0, ...) would collapse the sample to 0 exactly
			u = rng.Float64()
		}
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// clientSeed derives a client's RNG seed from the spec seed and the
// client's name via splitmix64 over an FNV-1a hash, so adding a client
// never perturbs the streams of the others.
func clientSeed(seed int64, name string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	return int64(splitmix64(uint64(seed) ^ h))
}

// splitmix64 is the canonical 64-bit mixer; good enough to decorrelate
// seed+hash combinations even when seeds are small consecutive integers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// durationFromSeconds converts a sampled gap to a Duration, clamping the
// pathological tails (a gamma burst CV of 10 can sample enormous gaps) so
// schedules stay finite.
func durationFromSeconds(sec float64) time.Duration {
	if sec < 0 || math.IsNaN(sec) {
		return 0
	}
	const maxGap = float64(time.Hour)
	d := sec * float64(time.Second)
	if d > maxGap {
		d = maxGap
	}
	return time.Duration(d)
}
