package load

import (
	"container/heap"
	"fmt"
	"time"

	"loosesim/internal/serve"
	"loosesim/internal/stats"
)

// FleetConfig shapes the modeled serving fleet: Nodes independent servers,
// each with its own worker pool and admission-controlled queue. The
// admission semantics are not a re-implementation — every node embeds the
// same serve.Admission state machine the live Server runs, so the model's
// shed/reject behaviour is the production code path, not a sketch of it.
type FleetConfig struct {
	Nodes      int
	Workers    int
	QueueDepth int
	// ClientCap and Thresholds pass through to serve.AdmissionConfig.
	ClientCap  int
	Thresholds [serve.NumClasses]float64
}

// DefaultFleetConfig is looload's default modeled fleet.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{Nodes: 4, Workers: 2, QueueDepth: 16}
}

// latencyBoundMS caps the per-client latency histograms (millisecond
// buckets); slower completions land in the overflow bucket, which
// Quantile resolves to the true maximum.
const latencyBoundMS = 60_000

// Tally counts one population's outcomes. Conservation is submitted ==
// completed + shed + rejected + failed; the model itself has no failure
// path (Failed stays 0 there), but live replay in cmd/looload shares this
// accounting and does.
type Tally struct {
	Submitted int
	Completed int
	Shed      int
	Rejected  int
	Failed    int
}

// check verifies the conservation law for one tally.
func (t Tally) check(who string) error {
	if t.Submitted != t.Completed+t.Shed+t.Rejected+t.Failed {
		return fmt.Errorf("load: %s: conservation violated: submitted %d != completed %d + shed %d + rejected %d + failed %d",
			who, t.Submitted, t.Completed, t.Shed, t.Rejected, t.Failed)
	}
	return nil
}

// ClientResult is one client population's replay outcome.
type ClientResult struct {
	Name string
	Tally
	// Latency holds completed jobs' arrival-to-completion times in
	// millisecond buckets.
	Latency *stats.Histogram
}

// Result is one model replay's outcome.
type Result struct {
	Config FleetConfig
	// Makespan is the virtual time of the last event (arrival or
	// completion).
	Makespan time.Duration
	// PerClient is parallel to the spec's Clients.
	PerClient []ClientResult
	Totals    Tally
}

// Check verifies the conservation law fleet-wide and per client.
func (r *Result) Check() error {
	if err := r.Totals.check("fleet"); err != nil {
		return err
	}
	var sum Tally
	for i := range r.PerClient {
		c := &r.PerClient[i]
		if err := c.Tally.check("client " + c.Name); err != nil {
			return err
		}
		if got := c.Latency.Count(); got != uint64(c.Completed) {
			return fmt.Errorf("load: client %s: %d latency samples for %d completions", c.Name, got, c.Completed)
		}
		sum.Submitted += c.Submitted
		sum.Completed += c.Completed
		sum.Shed += c.Shed
		sum.Rejected += c.Rejected
		sum.Failed += c.Failed
	}
	if sum != r.Totals {
		return fmt.Errorf("load: per-client tallies %+v disagree with fleet totals %+v", sum, r.Totals)
	}
	return nil
}

// Goodput returns completed jobs per second of makespan.
func (r *Result) Goodput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Totals.Completed) / r.Makespan.Seconds()
}

// completion is one in-flight job's scheduled finish.
type completion struct {
	at   time.Duration
	seq  int // arrival seq, for deterministic tie-breaks
	node int
	arr  Arrival
}

// completionHeap is a min-heap on (at, seq).
type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)         { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// queued is one admitted arrival waiting for a node worker.
type queued struct {
	arr Arrival
}

// node is one modeled server: the production admission state machine plus
// class-priority FIFOs and a busy-worker count.
type node struct {
	adm  *serve.Admission
	fifo [serve.NumClasses][]queued
	busy int
}

// RunModel replays an arrival schedule against the modeled fleet and
// returns the outcome. Service times come from each arrival's mix entry
// (CostMS, default DefaultCostMS); sharding is a deterministic hash of the
// arrival sequence number. Completions at time t process before arrivals
// at t, so capacity freed "now" is usable "now" — the same order a live
// server's scheduler converges to.
func RunModel(spec Spec, arrivals []Arrival, cfg FleetConfig) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes <= 0 || cfg.Workers <= 0 {
		return nil, fmt.Errorf("load: fleet needs positive nodes and workers, got %d/%d", cfg.Nodes, cfg.Workers)
	}
	nodes := make([]*node, cfg.Nodes)
	for i := range nodes {
		nodes[i] = &node{adm: serve.NewAdmission(serve.AdmissionConfig{
			QueueDepth: cfg.QueueDepth,
			ClientCap:  cfg.ClientCap,
			Thresholds: cfg.Thresholds,
		})}
	}
	res := &Result{Config: cfg, PerClient: make([]ClientResult, len(spec.Clients))}
	for i := range spec.Clients {
		res.PerClient[i] = ClientResult{
			Name:    spec.Clients[i].Name,
			Latency: stats.NewHistogram(latencyBoundMS),
		}
	}

	var comps completionHeap
	serviceTime := func(a Arrival) time.Duration {
		ms := spec.Clients[a.Client].Mix[a.Mix].CostMS
		if ms <= 0 {
			ms = DefaultCostMS
		}
		return durationFromSeconds(ms / 1000)
	}
	// dispatch hands freed capacity on node ni to the highest-priority
	// queued jobs.
	dispatch := func(ni int, now time.Duration) {
		n := nodes[ni]
		for n.busy < cfg.Workers {
			picked := false
			for c := serve.Class(0); c < serve.NumClasses; c++ {
				if len(n.fifo[c]) == 0 {
					continue
				}
				q := n.fifo[c][0]
				n.fifo[c] = n.fifo[c][1:]
				n.adm.Release(q.arr.Class, spec.Clients[q.arr.Client].Name)
				n.busy++
				heap.Push(&comps, completion{
					at:   now + serviceTime(q.arr),
					seq:  q.arr.Seq,
					node: ni,
					arr:  q.arr,
				})
				picked = true
				break
			}
			if !picked {
				return
			}
		}
	}
	complete := func(c completion) {
		nodes[c.node].busy--
		cr := &res.PerClient[c.arr.Client]
		cr.Completed++
		res.Totals.Completed++
		cr.Latency.Add(int((c.at - c.arr.At) / time.Millisecond))
		if c.at > res.Makespan {
			res.Makespan = c.at
		}
		dispatch(c.node, c.at)
	}

	next := 0
	for next < len(arrivals) || comps.Len() > 0 {
		// Completions win ties so a worker freed at t can pick up an
		// arrival at t.
		if comps.Len() > 0 && (next >= len(arrivals) || comps[0].at <= arrivals[next].At) {
			complete(heap.Pop(&comps).(completion))
			continue
		}
		a := arrivals[next]
		next++
		if a.At > res.Makespan {
			res.Makespan = a.At
		}
		name := spec.Clients[a.Client].Name
		ni := shard(a.Seq, cfg.Nodes)
		n := nodes[ni]
		cr := &res.PerClient[a.Client]
		cr.Submitted++
		res.Totals.Submitted++
		switch n.adm.Decide(a.Class, name) {
		case serve.Admit:
			n.fifo[a.Class] = append(n.fifo[a.Class], queued{arr: a})
			dispatch(ni, a.At)
		case serve.Shed:
			cr.Shed++
			res.Totals.Shed++
		default:
			cr.Rejected++
			res.Totals.Rejected++
		}
	}
	if err := res.Check(); err != nil {
		return nil, err
	}
	return res, nil
}

// shard maps an arrival to a node deterministically, mixed so consecutive
// sequence numbers spread across the fleet.
func shard(seq, nodes int) int {
	return int(splitmix64(uint64(seq)) % uint64(nodes))
}
