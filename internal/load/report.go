package load

import (
	"fmt"
	"io"

	"loosesim/internal/stats"
)

// WriteReport renders one replay's per-client table: outcomes, latency
// percentiles (milliseconds), and SLO attainment. Output is a pure
// function of (spec, res) — fixed column order, fixed float formats, no
// map iteration — so byte-comparing two renders is a determinism check.
func WriteReport(w io.Writer, spec Spec, res *Result) error {
	name := spec.Name
	if name == "" {
		name = "(unnamed)"
	}
	if _, err := fmt.Fprintf(w, "spec %s seed %d: %d jobs offered at %.1f jobs/s over %d nodes x %d workers (queue %d)\n",
		name, spec.Seed, res.Totals.Submitted, spec.Rate, res.Config.Nodes, res.Config.Workers, res.Config.QueueDepth); err != nil {
		return err
	}
	var tbl stats.Table
	tbl.AddRow("client", "slo", "submitted", "completed", "shed", "rejected", "failed", "p50ms", "p95ms", "p99ms", "meanms", "attain")
	for i := range res.PerClient {
		c := &res.PerClient[i]
		cs := &spec.Clients[i]
		slo := cs.SLO
		if slo == "" {
			slo = "interactive"
		}
		attain := "-"
		if cs.SLOMillis > 0 && c.Completed > 0 {
			attain = fmt.Sprintf("%.1f%%", 100*c.Latency.Fraction(int(cs.SLOMillis)))
		}
		tbl.AddRow(
			c.Name,
			slo,
			fmt.Sprintf("%d", c.Submitted),
			fmt.Sprintf("%d", c.Completed),
			fmt.Sprintf("%d", c.Shed),
			fmt.Sprintf("%d", c.Rejected),
			fmt.Sprintf("%d", c.Failed),
			fmt.Sprintf("%d", c.Latency.Quantile(0.50)),
			fmt.Sprintf("%d", c.Latency.Quantile(0.95)),
			fmt.Sprintf("%d", c.Latency.Quantile(0.99)),
			fmt.Sprintf("%.2f", c.Latency.Mean()),
			attain,
		)
	}
	if _, err := io.WriteString(w, tbl.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "totals: submitted %d completed %d shed %d rejected %d failed %d  goodput %.1f jobs/s  makespan %.3fs\n",
		res.Totals.Submitted, res.Totals.Completed, res.Totals.Shed, res.Totals.Rejected, res.Totals.Failed,
		res.Goodput(), res.Makespan.Seconds())
	return err
}

// SaturationPoint is one offered-load-vs-goodput sample.
type SaturationPoint struct {
	// Scale multiplies the spec's base rate.
	Scale float64
	// Offered is the scaled offered rate (jobs/s).
	Offered float64
	// Goodput is completed jobs per second of makespan.
	Goodput float64
	// ShedFrac and RejectFrac are refusals over submissions.
	ShedFrac   float64
	RejectFrac float64
}

// SaturationCurve replays the spec at each rate scale against a fresh
// fleet and collects the curve: where goodput stops tracking offered load
// is the knee, and past it the shed fraction shows admission control
// converting the overload into refusals instead of collapse.
func SaturationCurve(spec Spec, cfg FleetConfig, scales []float64) ([]SaturationPoint, error) {
	points := make([]SaturationPoint, 0, len(scales))
	for _, scale := range scales {
		if scale <= 0 {
			return nil, fmt.Errorf("load: saturation scale %v must be positive", scale)
		}
		scaled := spec
		scaled.Rate = spec.Rate * scale
		arrivals, err := Generate(scaled)
		if err != nil {
			return nil, err
		}
		res, err := RunModel(scaled, arrivals, cfg)
		if err != nil {
			return nil, err
		}
		p := SaturationPoint{Scale: scale, Offered: scaled.Rate, Goodput: res.Goodput()}
		if res.Totals.Submitted > 0 {
			p.ShedFrac = float64(res.Totals.Shed) / float64(res.Totals.Submitted)
			p.RejectFrac = float64(res.Totals.Rejected) / float64(res.Totals.Submitted)
		}
		points = append(points, p)
	}
	return points, nil
}

// WriteSaturation renders a saturation curve as an aligned table, with the
// same byte-determinism contract as WriteReport.
func WriteSaturation(w io.Writer, points []SaturationPoint) error {
	var tbl stats.Table
	tbl.AddRow("scale", "offered/s", "goodput/s", "shed%", "reject%")
	for _, p := range points {
		tbl.AddRow(
			fmt.Sprintf("%.2f", p.Scale),
			fmt.Sprintf("%.1f", p.Offered),
			fmt.Sprintf("%.1f", p.Goodput),
			fmt.Sprintf("%.1f", 100*p.ShedFrac),
			fmt.Sprintf("%.1f", 100*p.RejectFrac),
		)
	}
	_, err := io.WriteString(w, tbl.String())
	return err
}
