package load

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"loosesim/internal/serve"
)

func TestSpecValidate(t *testing.T) {
	good := DefaultSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	breakers := []struct {
		name  string
		mut   func(*Spec)
		wants string
	}{
		{"zero rate", func(s *Spec) { s.Rate = 0 }, "rate"},
		{"zero jobs", func(s *Spec) { s.Jobs = 0 }, "jobs"},
		{"no clients", func(s *Spec) { s.Clients = nil }, "no clients"},
		{"unnamed client", func(s *Spec) { s.Clients[0].Name = "" }, "no name"},
		{"dup client", func(s *Spec) { s.Clients[1].Name = s.Clients[0].Name }, "duplicate"},
		{"bad fraction", func(s *Spec) { s.Clients[0].RateFraction = 0 }, "rate_fraction"},
		{"fractions off", func(s *Spec) { s.Clients[0].RateFraction = 0.5 }, "sum"},
		{"bad slo", func(s *Spec) { s.Clients[0].SLO = "premium" }, "SLO class"},
		{"bad process", func(s *Spec) { s.Clients[0].Arrival.Process = "pareto" }, "arrival process"},
		{"gamma no cv", func(s *Spec) { s.Clients[0].Arrival = ArrivalSpec{Process: ProcessGamma} }, "cv"},
		{"empty mix", func(s *Spec) { s.Clients[0].Mix = nil }, "mix"},
		{"bad weight", func(s *Spec) { s.Clients[0].Mix[0].Weight = -1 }, "weight"},
	}
	for _, b := range breakers {
		s := DefaultSpec()
		b.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), b.wants) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", b.name, err, b.wants)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	data, err := json.Marshal(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec(data); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	bad := bytes.Replace(data, []byte(`"rate"`), []byte(`"rte"`), 1)
	if _, err := ParseSpec(bad); err == nil {
		t.Fatal("typoed field parsed silently")
	}
}

func TestAllocateLargestRemainder(t *testing.T) {
	clients := []ClientSpec{
		{RateFraction: 0.6},
		{RateFraction: 0.3},
		{RateFraction: 0.1},
	}
	got := allocate(10, clients)
	if got[0] != 6 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("allocate(10, 0.6/0.3/0.1) = %v, want [6 3 1]", got)
	}
	// The counts must sum exactly for any total, including ones where
	// floors leave multiple leftovers.
	for total := 1; total <= 100; total++ {
		counts := allocate(total, clients)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != total {
			t.Fatalf("allocate(%d) = %v sums to %d", total, counts, sum)
		}
	}
}

// TestGenerateDeterministic: same spec, same schedule, element for
// element; different seed, different schedule.
func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultSpec()
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != spec.Jobs || len(b) != spec.Jobs {
		t.Fatalf("schedule lengths %d/%d, want %d", len(a), len(b), spec.Jobs)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	spec.Seed = 2
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].At == c[i].At {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("changing the seed left every arrival time unchanged")
	}
	// The schedule is time-sorted with seq assigned in order.
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("arrivals out of order at %d: %v after %v", i, a[i].At, a[i-1].At)
		}
		if a[i].Seq != i {
			t.Fatalf("seq %d at position %d", a[i].Seq, i)
		}
	}
}

// TestGammaSampler pins the first two moments: mean 1 (after scaling) and
// the requested coefficient of variation, within sampling tolerance.
func TestGammaSampler(t *testing.T) {
	for _, cv := range []float64{0.5, 1.0, 2.5, 4.0} {
		rng := rand.New(rand.NewSource(7))
		sample := interarrival(ArrivalSpec{Process: ProcessGamma, CV: cv})
		const n = 200_000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := sample(rng)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("cv %v: bad sample %v", cv, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		sd := math.Sqrt(sumSq/n - mean*mean)
		if math.Abs(mean-1) > 0.05 {
			t.Errorf("cv %v: mean = %v, want 1 +/- 0.05", cv, mean)
		}
		if gotCV := sd / mean; math.Abs(gotCV-cv) > 0.1*cv {
			t.Errorf("cv %v: measured cv = %v", cv, gotCV)
		}
	}
}

// TestModelConservationAndDeterminism replays the default spec twice and
// checks the conservation law, byte-identical reports, and that an
// overloaded replay actually sheds (otherwise the test exercises nothing).
func TestModelConservationAndDeterminism(t *testing.T) {
	spec := DefaultSpec()
	cfg := FleetConfig{Nodes: 2, Workers: 1, QueueDepth: 4, ClientCap: 3}

	render := func() string {
		arrivals, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunModel(spec, arrivals, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Check(); err != nil {
			t.Fatal(err)
		}
		if res.Totals.Shed == 0 && res.Totals.Rejected == 0 {
			t.Fatal("overloaded replay refused nothing; the model is not under load")
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, spec, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("reports differ between identical replays:\n--- first\n%s--- second\n%s", first, second)
	}
	if !strings.Contains(first, "dashboard") || !strings.Contains(first, "goodput") {
		t.Fatalf("report missing expected content:\n%s", first)
	}
}

// TestModelUnderloadedCompletesEverything: with ample capacity nothing is
// shed and queue waits stay near zero, so latency is dominated by service
// time.
func TestModelUnderloadedCompletesEverything(t *testing.T) {
	spec := DefaultSpec()
	spec.Rate = 10 // far under fleet capacity
	spec.Jobs = 200
	arrivals, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunModel(spec, arrivals, FleetConfig{Nodes: 8, Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Completed != spec.Jobs || res.Totals.Shed != 0 || res.Totals.Rejected != 0 {
		t.Fatalf("underloaded fleet refused work: %+v", res.Totals)
	}
}

// TestSaturationCurve: goodput is monotone-ish up to the knee and the
// overloaded tail refuses a growing fraction rather than collapsing.
func TestSaturationCurve(t *testing.T) {
	spec := DefaultSpec()
	cfg := FleetConfig{Nodes: 2, Workers: 1, QueueDepth: 8}
	scales := []float64{0.25, 0.5, 1, 2, 4}
	points, err := SaturationCurve(spec, cfg, scales)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(scales) {
		t.Fatalf("%d points for %d scales", len(points), len(scales))
	}
	// The default spec's bursty clients shed a little even at low average
	// load (that is what bursts do to a finite queue); what the curve must
	// show is the knee: refusals growing sharply with overload while
	// goodput holds instead of collapsing.
	first, last := points[0], points[len(points)-1]
	if last.ShedFrac+last.RejectFrac < 0.2 {
		t.Fatalf("4x overload refused only %.1f%%: %+v", 100*(last.ShedFrac+last.RejectFrac), last)
	}
	if first.ShedFrac+first.RejectFrac > 0.1 {
		t.Fatalf("quarter load refused %.1f%% of work: %+v", 100*(first.ShedFrac+first.RejectFrac), first)
	}
	if last.Goodput < first.Goodput {
		t.Fatalf("goodput collapsed under overload: %+v vs %+v", last, first)
	}
	var buf bytes.Buffer
	if err := WriteSaturation(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "offered/s") {
		t.Fatalf("curve table missing header:\n%s", buf.String())
	}

	// The curve itself is deterministic.
	again, err := SaturationCurve(spec, cfg, scales)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i] != again[i] {
			t.Fatalf("curve point %d differs between runs: %+v vs %+v", i, points[i], again[i])
		}
	}
}

// TestModelClassProtection: under heavy overload the interactive
// population must keep a higher completion rate than batch — the whole
// point of the shed staircase.
func TestModelClassProtection(t *testing.T) {
	spec := Spec{
		Seed: 3,
		Rate: 2000,
		Jobs: 3000,
		Clients: []ClientSpec{
			{Name: "fg", RateFraction: 0.5, SLO: "interactive",
				Arrival: ArrivalSpec{Process: ProcessPoisson},
				Mix:     []MixEntry{{Weight: 1, CostMS: 10}}},
			{Name: "bg", RateFraction: 0.5, SLO: "batch",
				Arrival: ArrivalSpec{Process: ProcessPoisson},
				Mix:     []MixEntry{{Weight: 1, CostMS: 10}}},
		},
	}
	arrivals, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunModel(spec, arrivals, FleetConfig{Nodes: 2, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	frac := func(c ClientResult) float64 { return float64(c.Completed) / float64(c.Submitted) }
	fg, bg := res.PerClient[0], res.PerClient[1]
	if frac(fg) <= frac(bg) {
		t.Fatalf("interactive completion %.3f (of %d) not protected over batch %.3f (of %d)",
			frac(fg), fg.Submitted, frac(bg), bg.Submitted)
	}
	if bg.Shed == 0 {
		t.Fatal("batch population was never shed under 2000 jobs/s on 4 workers")
	}
}

// TestShardSpread: the deterministic shard function must actually spread
// consecutive sequence numbers over the fleet.
func TestShardSpread(t *testing.T) {
	counts := make([]int, 4)
	for seq := 0; seq < 4000; seq++ {
		n := shard(seq, 4)
		if n < 0 || n >= 4 {
			t.Fatalf("shard(%d, 4) = %d out of range", seq, n)
		}
		counts[n]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("node %d got %d of 4000 arrivals; shard is not spreading (counts %v)", i, c, counts)
		}
	}
}

// TestDurationFromSeconds pins the clamps.
func TestDurationFromSeconds(t *testing.T) {
	if d := durationFromSeconds(-1); d != 0 {
		t.Fatalf("negative gap = %v, want 0", d)
	}
	if d := durationFromSeconds(math.NaN()); d != 0 {
		t.Fatalf("NaN gap = %v, want 0", d)
	}
	if d := durationFromSeconds(1e9); d != time.Hour {
		t.Fatalf("huge gap = %v, want clamped to %v", d, time.Hour)
	}
	if d := durationFromSeconds(0.5); d != 500*time.Millisecond {
		t.Fatalf("0.5s = %v", d)
	}
}

// TestMixClassesMatchServe: every class the generator can emit must parse
// back through serve, keeping the two packages' vocabularies aligned.
func TestMixClassesMatchServe(t *testing.T) {
	spec := DefaultSpec()
	arrivals, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		want, err := serve.ParseClass(spec.Clients[a.Client].SLO)
		if err != nil {
			t.Fatal(err)
		}
		if a.Class != want {
			t.Fatalf("arrival %d class %v, want %v", a.Seq, a.Class, want)
		}
	}
}
