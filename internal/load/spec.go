// Package load is the deterministic open-loop load generator behind
// cmd/looload: it turns a multi-client traffic spec — per-client rate
// fractions, Poisson or gamma (bursty) interarrivals, job mixes, and SLO
// classes, the ServeGen client-decomposition shape — into a seeded arrival
// schedule, replays that schedule against a discrete-event model of a
// serving fleet built on the same serve.Admission core production nodes
// run, and reports per-client latency percentiles, SLO attainment, and
// offered-load-vs-goodput saturation curves.
//
// Everything here is a pure function of the spec: no wall clock (the
// model's time is virtual; live replay lives in cmd/looload, where wall
// time is allowed), no global randomness (every sample comes from a
// rand.Rand seeded by the spec seed and the client name), no map
// iteration in any output path. Two runs of the same spec are
// byte-identical, which is what lets check.sh diff the selfcheck.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"loosesim/internal/serve"
)

// Spec is a traffic spec: an aggregate offered rate decomposed over
// heterogeneous clients.
type Spec struct {
	// Name labels reports.
	Name string `json:"name,omitempty"` // simlint:novalidate free-form label, any string valid
	// Seed drives every sample in the schedule; same seed, same schedule.
	Seed int64 `json:"seed"` // simlint:novalidate every seed value is a valid draw
	// Rate is the aggregate offered load in jobs per second, split across
	// clients by their rate fractions.
	Rate float64 `json:"rate"`
	// Jobs is the total number of arrivals to generate across all clients.
	Jobs int `json:"jobs"`
	// Clients decompose the aggregate rate. Fractions must sum to 1
	// (within 1e-6).
	Clients []ClientSpec `json:"clients"`
}

// ClientSpec is one client population's traffic shape.
type ClientSpec struct {
	// Name identifies the client in reports and in JobSpec.Client for
	// fairness accounting server-side. Must be unique and non-empty.
	Name string `json:"name"`
	// RateFraction is this client's share of Spec.Rate, in (0, 1].
	RateFraction float64 `json:"rate_fraction"`
	// SLO is the admission class every job from this client declares:
	// "interactive", "standard", or "batch" (empty = interactive).
	SLO string `json:"slo,omitempty"`
	// SLOMillis is the client's latency target; attainment is the
	// fraction of completed jobs at or under it. <= 0 disables the
	// attainment column for this client.
	SLOMillis float64 `json:"slo_ms,omitempty"`
	// Arrival shapes the interarrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Mix is the client's job mix; entries are picked by weight.
	Mix []MixEntry `json:"mix"`
}

// Arrival process names.
const (
	// ProcessPoisson draws exponential interarrivals (CV = 1).
	ProcessPoisson = "poisson"
	// ProcessGamma draws gamma interarrivals with a configurable
	// coefficient of variation: CV > 1 is burstier than Poisson, CV < 1
	// smoother.
	ProcessGamma = "gamma"
)

// ArrivalSpec shapes one client's interarrival process.
type ArrivalSpec struct {
	// Process is ProcessPoisson or ProcessGamma; empty selects Poisson.
	Process string `json:"process,omitempty"`
	// CV is the gamma process's coefficient of variation (std dev over
	// mean); ignored for Poisson. Must be positive for gamma.
	CV float64 `json:"cv,omitempty"`
}

// MixEntry is one weighted job template in a client's mix.
type MixEntry struct {
	// Weight is the entry's relative pick probability; must be positive.
	Weight float64 `json:"weight"`
	// CostMS is the job's modeled service time in milliseconds, used by
	// the fleet model; <= 0 selects DefaultCostMS. Live replay ignores it
	// (real jobs cost what they cost).
	CostMS float64 `json:"cost_ms,omitempty"`
	// Job is the template submitted in live replay mode. The generator
	// fills Client and SLO from the owning ClientSpec.
	Job serve.JobSpec `json:"job"`
}

// DefaultCostMS is the modeled service time when a mix entry does not set
// one.
const DefaultCostMS = 10.0

// fractionTolerance bounds how far client rate fractions may sum from 1.
const fractionTolerance = 1e-6

// Validate checks the spec is runnable.
func (s *Spec) Validate() error {
	if s.Rate <= 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("load: rate %v must be a positive finite jobs/sec", s.Rate)
	}
	if s.Jobs <= 0 {
		return fmt.Errorf("load: jobs %d must be positive", s.Jobs)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("load: spec has no clients")
	}
	seen := make(map[string]bool, len(s.Clients))
	sum := 0.0
	for i := range s.Clients {
		c := &s.Clients[i]
		if c.Name == "" {
			return fmt.Errorf("load: client %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("load: duplicate client name %q", c.Name)
		}
		seen[c.Name] = true
		if c.RateFraction <= 0 || c.RateFraction > 1 || math.IsNaN(c.RateFraction) {
			return fmt.Errorf("load: client %q rate_fraction %v must be in (0, 1]", c.Name, c.RateFraction)
		}
		sum += c.RateFraction
		if _, err := serve.ParseClass(c.SLO); err != nil {
			return fmt.Errorf("load: client %q: %w", c.Name, err)
		}
		switch c.Arrival.Process {
		case "", ProcessPoisson:
		case ProcessGamma:
			if c.Arrival.CV <= 0 || math.IsNaN(c.Arrival.CV) || math.IsInf(c.Arrival.CV, 0) {
				return fmt.Errorf("load: client %q: gamma arrivals need a positive finite cv, got %v", c.Name, c.Arrival.CV)
			}
		default:
			return fmt.Errorf("load: client %q: unknown arrival process %q (want %s or %s)",
				c.Name, c.Arrival.Process, ProcessPoisson, ProcessGamma)
		}
		if len(c.Mix) == 0 {
			return fmt.Errorf("load: client %q has an empty job mix", c.Name)
		}
		for j := range c.Mix {
			if w := c.Mix[j].Weight; w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("load: client %q mix %d: weight %v must be positive and finite", c.Name, j, w)
			}
		}
	}
	if math.Abs(sum-1) > fractionTolerance {
		return fmt.Errorf("load: client rate fractions sum to %v, want 1", sum)
	}
	return nil
}

// ParseSpec decodes and validates a JSON spec, rejecting unknown fields so
// a typoed key fails loudly instead of silently shaping no traffic.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("load: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// DefaultSpec is the built-in spec looload runs without -spec and the one
// -selfcheck replays: three client populations with skewed rate shares
// (the ServeGen observation that a few clients dominate), one of them
// bursty, spanning all three SLO classes and both single-sim and figure
// job kinds.
func DefaultSpec() Spec {
	return Spec{
		Name: "default",
		Seed: 1,
		Rate: 200,
		Jobs: 2000,
		Clients: []ClientSpec{
			{
				Name:         "dashboard",
				RateFraction: 0.6,
				SLO:          "interactive",
				SLOMillis:    50,
				Arrival:      ArrivalSpec{Process: ProcessPoisson},
				Mix: []MixEntry{
					{Weight: 1, CostMS: 5, Job: serve.JobSpec{Bench: "gcc", Inst: 20000}},
				},
			},
			{
				Name:         "sweeper",
				RateFraction: 0.3,
				SLO:          "standard",
				SLOMillis:    250,
				Arrival:      ArrivalSpec{Process: ProcessGamma, CV: 2.5},
				Mix: []MixEntry{
					{Weight: 3, CostMS: 20, Job: serve.JobSpec{Bench: "swim", Inst: 50000}},
					{Weight: 1, CostMS: 40, Job: serve.JobSpec{Bench: "mgrid", Inst: 100000}},
				},
			},
			{
				Name:         "nightly",
				RateFraction: 0.1,
				SLO:          "batch",
				Arrival:      ArrivalSpec{Process: ProcessGamma, CV: 4},
				Mix: []MixEntry{
					{Weight: 1, CostMS: 80, Job: serve.JobSpec{Figure: "4", Quick: true}},
				},
			},
		},
	}
}
