// Package obs is the simulator's observability layer: a structured stream
// of micro-architectural loop events, a deterministic per-interval time
// series snapshotted from the machine's counters, and per-loop delay
// aggregation built on stats.Histogram.
//
// The layer is strictly passive. Sinks observe the machine and never steer
// it: enabling any probe must not change a single counter of the
// simulation (pipeline enforces this with a determinism test). A nil sink
// costs one pointer compare per instrumentation site, so the whole layer
// is free when disabled.
//
// Simulated time only: everything in this package is keyed to the cycle
// counter. Host-side throughput (wall-clock KIPS) is measured in the
// commands, never here, keeping internal/ clean under simlint's noclock
// analyzer.
package obs

import (
	"fmt"
	"strconv"
)

// EventKind identifies which micro-architectural loop a traversal belongs
// to.
type EventKind uint8

// The loop traversals the machine reports. Each event corresponds to one
// recovery of a loose loop (or, for EvFrontStall, the front-end side
// effect of one).
const (
	// EvBranchMispredict is one branch resolution loop recovery; Delay is
	// the measured fetch→resolve latency of the mispredicted branch.
	EvBranchMispredict EventKind = iota
	// EvLoadMisspec is a failed load-hit speculation; Delay is the
	// remaining cycles until the data actually returns.
	EvLoadMisspec
	// EvDataReissue is an instruction reverting to waiting after consuming
	// data inside a producer's mis-speculation shadow; Delay is the
	// feedback delay before it may reissue.
	EvDataReissue
	// EvLoadRefetch is a refetch-policy load recovery (flush at fetch).
	EvLoadRefetch
	// EvMemOrderTrap is a load/store reorder trap (memory dependence loop).
	EvMemOrderTrap
	// EvTLBTrap is a data-TLB miss trap (memory trap loop).
	EvTLBTrap
	// EvOperandMiss is one DRA operand-delivery miss (per source operand).
	EvOperandMiss
	// EvOperandReissue is an instruction reissued because at least one of
	// its operands missed all DRA delivery paths; Delay is the recovery
	// latency (feedback delay plus the register file read).
	EvOperandReissue
	// EvFrontStall is a front-end stall installed while a DRA operand-miss
	// recovery occupies the register file; Delay is the stall length.
	EvFrontStall

	// NumEventKinds bounds the enumeration.
	NumEventKinds
)

var eventKindNames = [NumEventKinds]string{
	"branch-mispredict",
	"load-misspec",
	"data-reissue",
	"load-refetch",
	"mem-order-trap",
	"tlb-trap",
	"operand-miss",
	"operand-reissue",
	"front-stall",
}

// String names the kind as it appears on the wire.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// ParseEventKind inverts EventKind.String.
func ParseEventKind(s string) (EventKind, error) {
	for i, n := range eventKindNames {
		if n == s {
			return EventKind(i), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// MarshalJSON encodes the kind by name, keeping the on-disk stream
// self-describing and stable against reorderings of the constants.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, k.String()), nil
}

// UnmarshalJSON decodes a kind name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("obs: bad event kind %s: %w", b, err)
	}
	parsed, err := ParseEventKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Event is one structured record of a loop traversal: which loop, when,
// which instruction, and what the traversal cost. Events are emitted in
// cycle order for the whole run (warmup included — warmup transients are
// part of what the stream exists to show).
type Event struct {
	Cycle  int64     `json:"cycle"`
	Kind   EventKind `json:"kind"`
	Thread int       `json:"thread"`
	Seq    uint64    `json:"seq"`
	PC     uint64    `json:"pc"`
	// Delay is the loop's measured cost in cycles; its exact meaning is
	// per-kind (see the EventKind constants). Zero for kinds with no
	// associated latency (EvOperandMiss).
	Delay int64 `json:"delay"`
}

// EventSink receives the loop-event stream. Implementations must not
// influence the simulation; they are observers only.
type EventSink interface {
	Event(e Event)
}

// EventFunc adapts a function to the EventSink interface.
type EventFunc func(Event)

// Event calls f.
func (f EventFunc) Event(e Event) {
	// simlint:ignore ifacedispatch adapter type: the indirection IS the sanctioned EventSink seam
	f(e)
}

// multiSink fans one event out to several sinks in order.
type multiSink []EventSink

// Event forwards e to every sink.
func (m multiSink) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Tee combines sinks into one; nil entries are dropped. It returns nil when
// nothing remains, preserving the machine's nil fast path.
func Tee(sinks ...EventSink) EventSink {
	var kept multiSink
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}
