package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// RingWriter is the event stream's JSONL writer. Events accumulate in a
// fixed-capacity ring that is encoded and flushed in batches, keeping the
// hot path to an append. Errors latch, mirroring pipeline.Tracer's
// contract: the first write error stops further output, later events are
// dropped, and the caller must check Flush/Err after the run — the writer
// never aborts the simulation itself.
type RingWriter struct {
	enc *json.Encoder
	buf []Event
	max int
	err error
}

// DefaultRingCapacity is the batch size used when NewRingWriter is given a
// non-positive capacity.
const DefaultRingCapacity = 4096

// NewRingWriter writes events to w as JSON Lines, flushing every capacity
// events (capacity <= 0 selects DefaultRingCapacity).
func NewRingWriter(w io.Writer, capacity int) *RingWriter {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &RingWriter{
		enc: json.NewEncoder(w),
		buf: make([]Event, 0, capacity),
		max: capacity,
	}
}

// Event buffers one record, flushing the ring when it fills.
func (r *RingWriter) Event(e Event) {
	if r.err != nil {
		return
	}
	// simlint:prealloc ring sized to max at construction; flush precedes overflow
	r.buf = append(r.buf, e)
	if len(r.buf) >= r.max {
		r.flush()
	}
}

// flush drains the ring to the encoder, latching the first error. Encoding
// boxes and formats, but only once per ring capacity, not per event.
//
// simlint:coldpath batch drain amortised over the ring capacity
func (r *RingWriter) flush() {
	for _, e := range r.buf {
		if err := r.enc.Encode(e); err != nil {
			r.err = err
			break
		}
	}
	r.buf = r.buf[:0]
}

// Flush drains any buffered events and returns the first latched error.
// Call it once the run completes; a RingWriter holds no OS resources, so
// there is no separate Close.
func (r *RingWriter) Flush() error {
	if r.err == nil {
		r.flush()
	}
	return r.err
}

// Err returns the first write error, if any.
func (r *RingWriter) Err() error { return r.err }

// intervalCSVHeader fixes the CSV schema. Column order matches the Fprintf
// in (*IntervalCSV).Interval; TestIntervalCSVRoundTrip locks the two
// together.
const intervalCSVHeader = "index,start_cycle,end_cycle,retired,ipc," +
	"branches,mispredicts,mispredict_rate," +
	"loads,l1_misses,l2_misses,l1_miss_rate,l2_miss_rate," +
	"iq_occupancy," +
	"operands_read,op_preread,op_forwarded,op_crc,op_misses," +
	"op_preread_share,op_forward_share,op_crc_share,op_miss_share," +
	"operand_reissues,data_reissues,squashed_issued,useless_work"

// IntervalCSV writes the interval time series as CSV with a fixed header.
// Errors latch; check Err after the run.
type IntervalCSV struct {
	w   io.Writer
	err error
}

// NewIntervalCSV writes the header immediately; a header-write error
// latches and suppresses all rows.
func NewIntervalCSV(w io.Writer) *IntervalCSV {
	c := &IntervalCSV{w: w}
	_, c.err = fmt.Fprintln(w, intervalCSVHeader)
	return c
}

// Interval writes one row. Formatting here is once per sample period
// (default 100k cycles), not per cycle.
//
// simlint:coldpath interval reporting amortised over the sample period
func (c *IntervalCSV) Interval(iv Interval) {
	if c.err != nil {
		return
	}
	_, c.err = fmt.Fprintf(c.w,
		"%d,%d,%d,%d,%.6g,%d,%d,%.6g,%d,%d,%d,%.6g,%.6g,%.6g,%d,%d,%d,%d,%d,%.6g,%.6g,%.6g,%.6g,%d,%d,%d,%d\n",
		iv.Index, iv.StartCycle, iv.EndCycle, iv.Retired, iv.IPC,
		iv.Branches, iv.Mispredicts, iv.MispredictRate,
		iv.Loads, iv.L1Misses, iv.L2Misses, iv.L1MissRate, iv.L2MissRate,
		iv.IQOccupancy,
		iv.OperandsRead, iv.OperandPreRead, iv.OperandForwarded, iv.OperandCRC, iv.OperandMisses,
		iv.PreReadShare, iv.ForwardShare, iv.CRCShare, iv.MissShare,
		iv.OperandReissues, iv.DataReissues, iv.SquashedIssued, iv.UselessWork)
}

// Err returns the first write error, if any.
func (c *IntervalCSV) Err() error { return c.err }

// IntervalJSONL writes the interval time series as JSON Lines (one
// Interval object per line). Errors latch; check Err after the run.
type IntervalJSONL struct {
	enc *json.Encoder
	err error
}

// NewIntervalJSONL returns a JSONL interval writer over w.
func NewIntervalJSONL(w io.Writer) *IntervalJSONL {
	return &IntervalJSONL{enc: json.NewEncoder(w)}
}

// Interval writes one record, once per sample period.
//
// simlint:coldpath interval reporting amortised over the sample period
func (j *IntervalJSONL) Interval(iv Interval) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(iv)
}

// Err returns the first write error, if any.
func (j *IntervalJSONL) Err() error { return j.err }
