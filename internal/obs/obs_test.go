package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestEventKindNamesAndParse(t *testing.T) {
	for k := EventKind(0); k < NumEventKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Fatalf("kind %d has no name", k)
		}
		got, err := ParseEventKind(name)
		if err != nil || got != k {
			t.Errorf("ParseEventKind(%q) = %v, %v; want %v", name, got, err, k)
		}
	}
	if _, err := ParseEventKind("bogus"); err == nil {
		t.Error("ParseEventKind must reject unknown names")
	}
	if s := EventKind(200).String(); !strings.Contains(s, "200") {
		t.Errorf("out-of-range kind string = %q", s)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{Cycle: 12345, Kind: EvOperandReissue, Thread: 1, Seq: 99, PC: 0xdeadbeef, Delay: 6}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"operand-reissue"`) {
		t.Fatalf("kind must marshal by name: %s", b)
	}
	var out Event
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
	if err := json.Unmarshal([]byte(`{"kind":"no-such-loop"}`), &out); err == nil {
		t.Error("unknown kind must fail to unmarshal")
	}
}

func TestTee(t *testing.T) {
	var a, b []Event
	sink := Tee(nil, EventFunc(func(e Event) { a = append(a, e) }), nil,
		EventFunc(func(e Event) { b = append(b, e) }))
	sink.Event(Event{Cycle: 1})
	sink.Event(Event{Cycle: 2})
	if len(a) != 2 || len(b) != 2 {
		t.Errorf("tee delivered %d/%d events, want 2/2", len(a), len(b))
	}
	if Tee(nil, nil) != nil {
		t.Error("tee of nothing must be nil (preserving the nil fast path)")
	}
	one := EventFunc(func(Event) {})
	if got := Tee(nil, one); got == nil {
		t.Error("tee of one sink must not be nil")
	}
}

func TestRingWriterFlushesAllEvents(t *testing.T) {
	var buf bytes.Buffer
	w := NewRingWriter(&buf, 3) // force multiple batch flushes
	for i := 0; i < 10; i++ {
		w.Event(Event{Cycle: int64(i), Kind: EvBranchMispredict, Delay: int64(i)})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("wrote %d lines, want 10", len(lines))
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d unparseable: %v", i, err)
		}
		if e.Cycle != int64(i) {
			t.Fatalf("line %d out of order: cycle %d", i, e.Cycle)
		}
	}
}

// failAfter fails every write after the first n.
type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestRingWriterLatchesError(t *testing.T) {
	w := NewRingWriter(&failAfter{n: 2}, 1) // flush per event
	w.Event(Event{Cycle: 1})
	w.Event(Event{Cycle: 2})
	w.Event(Event{Cycle: 3}) // fails
	if w.Err() == nil {
		t.Fatal("third write must latch an error")
	}
	w.Event(Event{Cycle: 4}) // dropped silently
	if err := w.Flush(); err == nil {
		t.Fatal("Flush must report the latched error")
	}
}

// TestRingWriterFinalFlushLatchesError covers the end-of-run audit case:
// when the ring never fills mid-run, the first write happens inside the
// final Flush, and a failure there must both be returned and latch — this
// is the error cmd/loosim's verifyStreams turns into a nonzero exit.
func TestRingWriterFinalFlushLatchesError(t *testing.T) {
	w := NewRingWriter(&failAfter{n: 0}, 100) // capacity > events: no mid-run flush
	for i := 0; i < 5; i++ {
		w.Event(Event{Cycle: int64(i)})
	}
	if w.Err() != nil {
		t.Fatal("no write may happen before the final flush")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("final-flush failure must be returned")
	}
	if w.Err() == nil {
		t.Fatal("final-flush failure must latch")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("repeated Flush must keep reporting the latched error")
	}
}

// TestIntervalCSVLatchesRowError covers the non-header case: the header
// succeeds, a later row fails, and the error must latch without being
// overwritten by subsequent (dropped) rows.
func TestIntervalCSVLatchesRowError(t *testing.T) {
	w := NewIntervalCSV(&failAfter{n: 1}) // header ok, first row fails
	if w.Err() != nil {
		t.Fatal("header must succeed")
	}
	w.Interval(Interval{Index: 0})
	err := w.Err()
	if err == nil {
		t.Fatal("row write error must latch")
	}
	w.Interval(Interval{Index: 1}) // dropped silently
	if w.Err() != err {
		t.Fatal("latched error must not change once set")
	}
}

func TestIntervalJSONLLatchesError(t *testing.T) {
	w := NewIntervalJSONL(&failAfter{n: 1})
	w.Interval(Interval{Index: 0})
	if w.Err() != nil {
		t.Fatal("first record must succeed")
	}
	w.Interval(Interval{Index: 1})
	if w.Err() == nil {
		t.Fatal("record write error must latch")
	}
	w.Interval(Interval{Index: 2}) // dropped, must not panic
}

func TestLoopDelaysAggregation(t *testing.T) {
	l := NewLoopDelays(0)
	for i := 0; i < 100; i++ {
		l.Event(Event{Kind: EvBranchMispredict, Delay: int64(10 + i%5)})
	}
	l.Event(Event{Kind: EvOperandMiss, Delay: 0})
	l.Event(Event{Kind: EventKind(250), Delay: 7}) // unknown: dropped

	if got := l.Count(EvBranchMispredict); got != 100 {
		t.Errorf("count = %d, want 100", got)
	}
	if got := l.MeanDelay(EvBranchMispredict); got != 12 {
		t.Errorf("mean delay = %v, want 12", got)
	}
	if got := l.P99(EvBranchMispredict); got != 14 {
		t.Errorf("p99 = %d, want 14", got)
	}
	if got := l.CyclesLost(EvBranchMispredict); got != 1200 {
		t.Errorf("cycles lost = %d, want 1200", got)
	}
	if got := l.CyclesLost(EvOperandMiss); got != 0 {
		t.Errorf("zero-delay events must not lose cycles, got %d", got)
	}
	if got := l.Total(); got != 101 {
		t.Errorf("total = %d, want 101", got)
	}

	table := l.Table().String()
	if !strings.Contains(table, "branch-mispredict") || !strings.Contains(table, "operand-miss") {
		t.Errorf("table missing rows:\n%s", table)
	}
	if strings.Contains(table, "tlb-trap") {
		t.Errorf("table must skip loops that never fired:\n%s", table)
	}
}

func TestIntervalCSVRoundTrip(t *testing.T) {
	iv := Interval{
		Index: 2, StartCycle: 20000, EndCycle: 30000,
		Retired: 24000, IPC: 2.4,
		Branches: 3000, Mispredicts: 150, MispredictRate: 0.05,
		Loads: 8000, L1Misses: 400, L2Misses: 40, L1MissRate: 0.05, L2MissRate: 0.005,
		IQOccupancy:  64.25,
		OperandsRead: 40000, OperandPreRead: 24000, OperandForwarded: 12000,
		OperandCRC: 3960, OperandMisses: 40,
		PreReadShare: 0.6, ForwardShare: 0.3, CRCShare: 0.099, MissShare: 0.001,
		OperandReissues: 35, DataReissues: 120, SquashedIssued: 800, UselessWork: 955,
	}
	var buf bytes.Buffer
	w := NewIntervalCSV(&buf)
	w.Interval(iv)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row", len(lines))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d — schema drift", len(header), len(row))
	}
	cols := make(map[string]string)
	for i, h := range header {
		cols[h] = row[i]
	}
	for col, want := range map[string]string{
		"index": "2", "start_cycle": "20000", "end_cycle": "30000",
		"retired": "24000", "ipc": "2.4", "mispredicts": "150",
		"op_preread": "24000", "op_miss_share": "0.001",
		"operand_reissues": "35", "useless_work": "955",
	} {
		if cols[col] != want {
			t.Errorf("column %s = %q, want %q", col, cols[col], want)
		}
	}
}

func TestIntervalCSVLatchesHeaderError(t *testing.T) {
	w := NewIntervalCSV(&failAfter{n: 0})
	if w.Err() == nil {
		t.Fatal("header write error must latch")
	}
	w.Interval(Interval{Index: 1}) // must not panic, must stay dropped
}

func TestIntervalJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewIntervalJSONL(&buf)
	for i := 0; i < 3; i++ {
		w.Interval(Interval{Index: i, StartCycle: int64(i) * 1000, EndCycle: int64(i+1) * 1000, Retired: 42})
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	for i := 0; i < 3; i++ {
		var iv Interval
		if err := dec.Decode(&iv); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if iv.Index != i || iv.Cycles() != 1000 || iv.Retired != 42 {
			t.Errorf("record %d corrupted: %+v", i, iv)
		}
	}
	var extra Interval
	if err := dec.Decode(&extra); err != io.EOF {
		t.Errorf("expected EOF after 3 records, got %v", err)
	}
}
