package obs

// Interval is one sample of the per-interval time series: the machine's
// counter deltas over SampleInterval simulated cycles, with the derived
// rates precomputed. The series covers the whole run — warmup included —
// so predictor warmup cliffs and mis-speculation bursts that the end-of-run
// aggregate hides are visible.
//
// Raw counts and derived rates are both present: rates for plotting, raw
// counts so downstream tools (cmd/loopstat) can re-aggregate exactly.
type Interval struct {
	Index      int   `json:"index"`
	StartCycle int64 `json:"start_cycle"`
	EndCycle   int64 `json:"end_cycle"`

	Retired uint64  `json:"retired"`
	IPC     float64 `json:"ipc"`

	Branches       uint64  `json:"branches"`
	Mispredicts    uint64  `json:"mispredicts"`
	MispredictRate float64 `json:"mispredict_rate"`

	Loads      uint64  `json:"loads"`
	L1Misses   uint64  `json:"l1_misses"`
	L2Misses   uint64  `json:"l2_misses"`
	L1MissRate float64 `json:"l1_miss_rate"`
	L2MissRate float64 `json:"l2_miss_rate"`

	// IQOccupancy is the mean instruction-queue population over the
	// interval's cycles.
	IQOccupancy float64 `json:"iq_occupancy"`

	// Operand delivery (DRA): raw per-path counts and the Figure 9 shares.
	OperandsRead     uint64  `json:"operands_read"`
	OperandPreRead   uint64  `json:"op_preread"`
	OperandForwarded uint64  `json:"op_forwarded"`
	OperandCRC       uint64  `json:"op_crc"`
	OperandMisses    uint64  `json:"op_misses"`
	PreReadShare     float64 `json:"op_preread_share"`
	ForwardShare     float64 `json:"op_forward_share"`
	CRCShare         float64 `json:"op_crc_share"`
	MissShare        float64 `json:"op_miss_share"`

	OperandReissues uint64 `json:"operand_reissues"`
	DataReissues    uint64 `json:"data_reissues"`
	SquashedIssued  uint64 `json:"squashed_issued"`
	UselessWork     uint64 `json:"useless_work"`
}

// Cycles returns the interval's length in simulated cycles.
func (iv Interval) Cycles() int64 { return iv.EndCycle - iv.StartCycle }

// IntervalSink receives the interval time series in index order.
type IntervalSink interface {
	Interval(iv Interval)
}

// IntervalFunc adapts a function to the IntervalSink interface.
type IntervalFunc func(Interval)

// Interval calls f.
func (f IntervalFunc) Interval(iv Interval) {
	// simlint:ignore ifacedispatch adapter type: the indirection IS the sanctioned IntervalSink seam
	f(iv)
}
