package obs

import (
	"fmt"

	"loosesim/internal/stats"
)

// LoopDelays aggregates the event stream into per-loop delay histograms:
// for each loop it tracks the traversal count, the delay distribution
// (mean, quantiles), and the total cycles lost. It implements EventSink,
// so it can hang directly off the machine or be fed from a decoded JSONL
// file (cmd/loopstat does both ends).
type LoopDelays struct {
	hists [NumEventKinds]*stats.Histogram
	lost  [NumEventKinds]uint64
}

// DefaultDelayBound is the histogram bound used when NewLoopDelays is
// given a non-positive bound. It covers the machine's longest single
// recovery (main-memory latency plus TLB refill plus slack); rarer, longer
// delays land in the overflow bucket, which Quantile handles.
const DefaultDelayBound = 512

// NewLoopDelays returns an empty aggregator with unit-cycle buckets up to
// bound (bound <= 0 selects DefaultDelayBound).
func NewLoopDelays(bound int) *LoopDelays {
	if bound <= 0 {
		bound = DefaultDelayBound
	}
	l := &LoopDelays{}
	for i := range l.hists {
		l.hists[i] = stats.NewHistogram(bound)
	}
	return l
}

// Event records one traversal. Unknown kinds (from a newer stream) are
// dropped rather than misfiled.
func (l *LoopDelays) Event(e Event) {
	if int(e.Kind) >= len(l.hists) {
		return
	}
	l.hists[e.Kind].Add(int(e.Delay))
	if e.Delay > 0 {
		l.lost[e.Kind] += uint64(e.Delay)
	}
}

// Count returns the number of traversals recorded for the loop.
func (l *LoopDelays) Count(k EventKind) uint64 { return l.hists[k].Count() }

// MeanDelay returns the mean traversal delay for the loop.
func (l *LoopDelays) MeanDelay(k EventKind) float64 { return l.hists[k].Mean() }

// P99 returns the 99th-percentile traversal delay for the loop.
func (l *LoopDelays) P99(k EventKind) int { return l.hists[k].Quantile(0.99) }

// CyclesLost returns the summed delays of the loop's traversals — the
// paper's first-order cost of a loose loop.
func (l *LoopDelays) CyclesLost(k EventKind) uint64 { return l.lost[k] }

// Histogram exposes the loop's full delay distribution.
func (l *LoopDelays) Histogram(k EventKind) *stats.Histogram { return l.hists[k] }

// Total returns the number of traversals recorded across all loops.
func (l *LoopDelays) Total() uint64 {
	var n uint64
	for k := EventKind(0); k < NumEventKinds; k++ {
		n += l.Count(k)
	}
	return n
}

// Table renders the per-loop summary — count, mean and p99 delay, cycles
// lost — skipping loops that never fired.
func (l *LoopDelays) Table() *stats.Table {
	t := &stats.Table{}
	t.AddRow("loop", "events", "mean-delay", "p99-delay", "cycles-lost")
	for k := EventKind(0); k < NumEventKinds; k++ {
		n := l.Count(k)
		if n == 0 {
			continue
		}
		t.AddRow(k.String(),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", l.MeanDelay(k)),
			fmt.Sprintf("%d", l.P99(k)),
			fmt.Sprintf("%d", l.CyclesLost(k)))
	}
	return t
}
