// Package isa defines the architectural instruction representation consumed
// by the pipeline model: operation classes, architectural registers, and the
// static instruction record produced by the workload generators.
//
// The model is deliberately ISA-neutral. The paper evaluates Alpha binaries,
// but every result in it depends only on instruction *classes* (integer ALU,
// floating point, load, store, branch), their execution latencies, and the
// register dependences between instructions — all of which this package
// captures without committing to Alpha encodings.
package isa

import "fmt"

// OpClass identifies the functional class of an instruction. The class
// determines the execution latency and which micro-architectural loops the
// instruction can generate (branches generate the branch resolution loop,
// loads the load resolution loop).
type OpClass uint8

// Operation classes. Latencies follow the base machine of the paper's
// Section 2: single-cycle integer operations, multi-cycle floating point,
// and loads whose latency is determined by the cache hierarchy.
const (
	// Nop performs no work and writes no register. It exists so the
	// generator can pad streams and so tests can build trivial programs.
	Nop OpClass = iota
	// IntALU is a single-cycle integer operation (add, logical, shift).
	IntALU
	// IntMul is a multi-cycle integer multiply.
	IntMul
	// FPAdd is a pipelined floating-point add/subtract/compare.
	FPAdd
	// FPMul is a pipelined floating-point multiply.
	FPMul
	// FPDiv is a long-latency floating-point divide.
	FPDiv
	// Load reads memory into a register. Its latency is non-deterministic:
	// the cache hierarchy decides it at execute time, which is exactly what
	// creates the load resolution loop.
	Load
	// Store writes a register to memory. It computes its address in one
	// cycle and produces no register result.
	Store
	// Branch is a conditional branch resolved at execute.
	Branch

	numOpClasses
)

// NumOpClasses is the count of distinct operation classes.
const NumOpClasses = int(numOpClasses)

var opNames = [...]string{
	Nop:    "nop",
	IntALU: "ialu",
	IntMul: "imul",
	FPAdd:  "fadd",
	FPMul:  "fmul",
	FPDiv:  "fdiv",
	Load:   "load",
	Store:  "store",
	Branch: "branch",
}

// String returns the conventional mnemonic for the class.
func (c OpClass) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("opclass(%d)", uint8(c))
}

// Execution latencies in cycles for deterministic-latency classes. Load
// latency is decided by the memory hierarchy and is therefore not listed
// here; Latency returns the address-generation cycle for memory operations.
var opLatency = [...]int{
	Nop:    1,
	IntALU: 1,
	IntMul: 7,
	FPAdd:  4,
	FPMul:  4,
	FPDiv:  16,
	Load:   1, // address generation; data latency comes from the caches
	Store:  1,
	Branch: 1,
}

// Latency returns the fixed execution latency of the class in cycles.
// For Load this is only the address-generation component; the data latency
// is supplied by the memory hierarchy at execute time.
func (c OpClass) Latency() int {
	if int(c) < len(opLatency) {
		return opLatency[c]
	}
	return 1
}

// WritesReg reports whether instructions of this class produce a register
// result that later instructions may consume.
func (c OpClass) WritesReg() bool {
	switch c {
	case Nop, Store, Branch:
		return false
	default:
		// IntALU, IntMul, FPAdd, FPMul, FPDiv, Load all produce a value.
		return true
	}
}

// IsMem reports whether the class accesses data memory.
func (c OpClass) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class executes on the floating-point side.
func (c OpClass) IsFP() bool { return c == FPAdd || c == FPMul || c == FPDiv }

// Reg names an architectural register. The model uses a flat namespace of
// NumArchRegs registers per thread; the generator reserves a few low
// registers as long-lived "global" registers (stack pointer, global pointer)
// which tend to become the paper's completed operands.
type Reg uint16

// RegInvalid marks an absent operand (an instruction with fewer than two
// sources, or no destination).
const RegInvalid Reg = 0xFFFF

// NumArchRegs is the size of the architectural register file per thread
// (32 integer + 32 floating point, as on Alpha).
const NumArchRegs = 64

// NumGlobalRegs is the number of low-numbered registers the workload
// generator treats as long-lived globals. Reads of these usually find the
// value already in the register file — the paper's completed operands.
const NumGlobalRegs = 4

// Valid reports whether r names a real architectural register.
func (r Reg) Valid() bool { return r != RegInvalid && r < NumArchRegs }

// Inst is a static instruction as produced by a workload generator. It is
// the unit the fetch stage consumes; the pipeline wraps it in a dynamic
// instruction (uop.UOp) carrying renamed registers and timing state.
type Inst struct {
	// PC is the instruction's address, used by the branch predictor.
	PC uint64
	// Op is the operation class.
	Op OpClass
	// Dest is the destination architectural register, or RegInvalid.
	Dest Reg
	// Src holds up to two source architectural registers; unused slots
	// are RegInvalid.
	Src [2]Reg
	// Addr is the effective address for Load/Store instructions.
	Addr uint64
	// Taken is the actual outcome for Branch instructions.
	Taken bool
}

// NumSources returns how many valid source operands the instruction has.
func (in *Inst) NumSources() int {
	n := 0
	for _, s := range in.Src {
		if s.Valid() {
			n++
		}
	}
	return n
}

// String renders the instruction for debugging.
func (in *Inst) String() string {
	return fmt.Sprintf("%s pc=%#x d=%d s=[%d %d]", in.Op, in.PC, in.Dest, in.Src[0], in.Src[1])
}
