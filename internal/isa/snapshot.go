package isa

import "loosesim/internal/snap"

// Snapshot encodes the static instruction into w (byte-stable; part of
// the machine checkpoint format).
func (in *Inst) Snapshot(w *snap.Writer) {
	w.U64(in.PC)
	w.U8(uint8(in.Op))
	w.U16(uint16(in.Dest))
	w.U16(uint16(in.Src[0]))
	w.U16(uint16(in.Src[1]))
	w.U64(in.Addr)
	w.Bool(in.Taken)
}

// validReg accepts a register that is either a real architectural
// register or the explicit RegInvalid sentinel; anything in between is
// corrupt (the generator never emits it, and the rename table would
// index out of range on it).
func validReg(r Reg) bool { return r.Valid() || r == RegInvalid }

// Restore overwrites in with state encoded by Snapshot, rejecting
// out-of-range operation classes and register names.
func (in *Inst) Restore(r *snap.Reader) {
	in.PC = r.U64()
	in.Op = OpClass(r.U8())
	in.Dest = Reg(r.U16())
	in.Src[0] = Reg(r.U16())
	in.Src[1] = Reg(r.U16())
	in.Addr = r.U64()
	in.Taken = r.Bool()
	if int(in.Op) >= NumOpClasses {
		r.Failf("inst op class %d out of range", in.Op)
	}
	if !validReg(in.Dest) || !validReg(in.Src[0]) || !validReg(in.Src[1]) {
		r.Failf("inst register out of range: d=%d s=[%d %d]", in.Dest, in.Src[0], in.Src[1])
	}
}
