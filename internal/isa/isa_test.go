package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassString(t *testing.T) {
	cases := map[OpClass]string{
		Nop:    "nop",
		IntALU: "ialu",
		IntMul: "imul",
		FPAdd:  "fadd",
		FPMul:  "fmul",
		FPDiv:  "fdiv",
		Load:   "load",
		Store:  "store",
		Branch: "branch",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("OpClass(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := OpClass(200).String(); got != "opclass(200)" {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestLatencyPositive(t *testing.T) {
	for c := OpClass(0); int(c) < NumOpClasses; c++ {
		if c.Latency() < 1 {
			t.Errorf("%s latency = %d, want >= 1", c, c.Latency())
		}
	}
	if OpClass(99).Latency() != 1 {
		t.Errorf("unknown class latency should default to 1")
	}
}

func TestSingleCycleInteger(t *testing.T) {
	// The base machine supports back-to-back dependent integer ops, which
	// requires single-cycle IntALU latency.
	if IntALU.Latency() != 1 {
		t.Fatalf("IntALU latency = %d, want 1", IntALU.Latency())
	}
}

func TestFPLongerThanInt(t *testing.T) {
	for _, c := range []OpClass{FPAdd, FPMul, FPDiv, IntMul} {
		if c.Latency() <= IntALU.Latency() {
			t.Errorf("%s latency %d should exceed IntALU latency", c, c.Latency())
		}
	}
	if FPDiv.Latency() <= FPMul.Latency() {
		t.Errorf("FPDiv should be the longest FP operation")
	}
}

func TestWritesReg(t *testing.T) {
	writes := map[OpClass]bool{
		Nop: false, IntALU: true, IntMul: true, FPAdd: true, FPMul: true,
		FPDiv: true, Load: true, Store: false, Branch: false,
	}
	for c, want := range writes {
		if got := c.WritesReg(); got != want {
			t.Errorf("%s.WritesReg() = %v, want %v", c, got, want)
		}
	}
}

func TestIsMemIsFP(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("Load/Store must be memory classes")
	}
	if IntALU.IsMem() || Branch.IsMem() {
		t.Error("IntALU/Branch must not be memory classes")
	}
	if !FPAdd.IsFP() || !FPMul.IsFP() || !FPDiv.IsFP() {
		t.Error("FP classes must report IsFP")
	}
	if IntALU.IsFP() || Load.IsFP() {
		t.Error("integer classes must not report IsFP")
	}
}

func TestRegValid(t *testing.T) {
	if RegInvalid.Valid() {
		t.Error("RegInvalid must not be valid")
	}
	if !Reg(0).Valid() || !Reg(NumArchRegs-1).Valid() {
		t.Error("in-range registers must be valid")
	}
	if Reg(NumArchRegs).Valid() {
		t.Error("out-of-range register must be invalid")
	}
}

func TestNumSources(t *testing.T) {
	cases := []struct {
		src  [2]Reg
		want int
	}{
		{[2]Reg{RegInvalid, RegInvalid}, 0},
		{[2]Reg{3, RegInvalid}, 1},
		{[2]Reg{RegInvalid, 7}, 1},
		{[2]Reg{3, 7}, 2},
	}
	for _, c := range cases {
		in := Inst{Op: IntALU, Src: c.src}
		if got := in.NumSources(); got != c.want {
			t.Errorf("NumSources(%v) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestInstString(t *testing.T) {
	in := Inst{PC: 0x1000, Op: Load, Dest: 5, Src: [2]Reg{1, RegInvalid}}
	if s := in.String(); s == "" {
		t.Error("String must not be empty")
	}
}

// Property: NumSources is always between 0 and 2 regardless of register
// contents.
func TestNumSourcesRangeProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		in := Inst{Src: [2]Reg{Reg(a), Reg(b)}}
		n := in.NumSources()
		return n >= 0 && n <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a register is valid iff it is in [0, NumArchRegs).
func TestRegValidProperty(t *testing.T) {
	f := func(r uint16) bool {
		return Reg(r).Valid() == (r < NumArchRegs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
