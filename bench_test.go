// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation. Each benchmark regenerates the figure's rows (printed
// via b.Log) and reports its headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Quick-length runs are used so the suite
// completes in minutes; cmd/experiments runs the full-length versions.
package loosesim_test

import (
	"testing"

	"loosesim/internal/experiments"
	"loosesim/internal/stats"
)

func benchOptions() experiments.Options {
	opt := experiments.QuickOptions()
	return opt
}

// BenchmarkFig4PipelineLength regenerates Figure 4: relative performance as
// the decode→execute region grows from 6 to 18 cycles.
func BenchmarkFig4PipelineLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			var rel18 []float64
			for _, r := range tab.Rows {
				rel18 = append(rel18, r.Value(3))
			}
			b.ReportMetric(stats.GeoMean(rel18), "rel18cyc")
			b.ReportMetric(tab.Find("gcc").Value(3), "gcc18cyc")
		}
	}
}

// BenchmarkFig5FixedTotal regenerates Figure 5: fixed 12-cycle total,
// shifting cycles between DEC-IQ and IQ-EX.
func BenchmarkFig5FixedTotal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("swim").Value(3), "swim9_3")
			b.ReportMetric(tab.Find("turb3d").Value(3), "turb3d9_3")
		}
	}
}

// BenchmarkFig6OperandGapCDF regenerates Figure 6: the distribution of
// cycles between first- and second-operand availability on turb3d.
func BenchmarkFig6OperandGapCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("<=9 cycles").Value(0), "cov9cyc")
			b.ReportMetric(tab.Find("<=25 cycles").Value(0), "cov25cyc")
		}
	}
}

// BenchmarkFig8DRASpeedup regenerates Figure 8: DRA vs base machine for
// 3/5/7-cycle register files.
func BenchmarkFig8DRASpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("swim").Value(2), "swimRF7")
			b.ReportMetric(tab.Find("apsi").Value(1), "apsiRF5")
		}
	}
}

// BenchmarkFig9OperandLocation regenerates Figure 9: operand delivery path
// shares under the 7_3 DRA.
func BenchmarkFig9OperandLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("apsi").Value(3), "apsiMiss%")
			var fw []float64
			for _, r := range tab.Rows {
				fw = append(fw, r.Value(1))
			}
			b.ReportMetric(stats.GeoMean(fw), "fwdShare")
		}
	}
}

// BenchmarkAblationLoadRecovery compares reissue / refetch / stall handling
// of the load resolution loop (Section 2.2.2).
func BenchmarkAblationLoadRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationLoadRecovery(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("swim").Value(1), "swimRefetch")
			b.ReportMetric(tab.Find("swim").Value(2), "swimStall")
		}
	}
}

// BenchmarkAblationCRC sweeps CRC capacity and insertion-counter width
// (Sections 4–5 design choices).
func BenchmarkAblationCRC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationCRC(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("apsi").Value(0), "apsi4entry")
		}
	}
}

// BenchmarkAblationForwardDepth sweeps the forwarding buffer depth
// (Section 2.2.1 / Figure 6).
func BenchmarkAblationForwardDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationForwardDepth(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("turb3d").Value(0), "turb3dDepth3")
		}
	}
}

// BenchmarkAblationCRCPolicy compares FIFO, LRU, and timeout-based CRC
// management (Sections 5.1 and 5.5).
func BenchmarkAblationCRCPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationCRCPolicy(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("apsi").Value(1), "apsiLRU")
		}
	}
}

// BenchmarkAblationMonolithic compares the clustered CRCs against the
// Section 4 single-cache strawman.
func BenchmarkAblationMonolithic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationMonolithic(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("swim").Value(1), "swimMono16")
		}
	}
}

// BenchmarkAblationMemDep compares memory dependence loop managements
// (Figure 2's load/store reorder trap loop).
func BenchmarkAblationMemDep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationMemDep(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("m88").Value(2), "m88Conserv")
		}
	}
}

// BenchmarkAblationPredictor sweeps branch predictor quality (the branch
// resolution loop's mis-speculation-rate lever).
func BenchmarkAblationPredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationPredictor(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("gcc").Value(4), "gccStatic")
		}
	}
}

// BenchmarkAblationIQPressure quantifies IQ occupancy pressure versus IQ-EX
// latency (Section 2.2.2).
func BenchmarkAblationIQPressure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationIQPressure(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			b.ReportMetric(tab.Find("swim").Value(7), "swimRetained9")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// instructions per wall-clock second on the base machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg, err := newThroughputConfig()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		res, err := runConfig(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += float64(res.Counters.Retired)
	}
	b.ReportMetric(total/b.Elapsed().Seconds(), "sim-inst/s")
}
