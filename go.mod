module loosesim

go 1.22
