// Command loosweep runs the paper's sweeps through a fleet of loosimd
// backends via the dispatch coordinator: shard-by-content-key assignment,
// bounded per-backend windows, retries with jittered backoff, hedged
// requests, health-based ejection, and graceful degradation to local
// simulation when the fleet is gone. The results are byte-identical to a
// local serial run — the fleet changes where a sweep executes, never what
// it computes.
//
// Usage:
//
//	loosweep -backends http://a:8087,http://b:8087 -fig 4
//	loosweep -backends http://a:8087 -fig all -json > report.json
//	loosweep -selfcheck       # coordinator + 2 loopback backends, CI smoke
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"loosesim"
	"loosesim/internal/dispatch"
	"loosesim/internal/experiments"
	"loosesim/internal/pipeline"
	"loosesim/internal/serve"
	"loosesim/internal/serve/servetest"
	"loosesim/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loosweep: ")

	var (
		backends  = flag.String("backends", "", "comma-separated loosimd base URLs (empty: run everything locally)")
		fig       = flag.String("fig", "", "figure to regenerate through the fleet: 4, 5, 6, 8, 9, or all")
		quick     = flag.Bool("quick", false, "short runs (smoke-test quality)")
		measure   = flag.Uint64("inst", 0, "override measured instructions per run")
		seed      = flag.Int64("seed", 1, "simulation seed")
		inflight  = flag.Int("inflight", 0, "max in-flight requests per backend (0 = default)")
		attempts  = flag.Int("attempts", 0, "max submission attempts per job before local fallback (0 = default)")
		backoff   = flag.Duration("backoff", 0, "base retry backoff (0 = default)")
		hedge     = flag.Duration("hedge", 0, "duplicate a request on a second backend after this delay (0 = off)")
		probe     = flag.Duration("probe", 0, "health-probe interval (0 = default)")
		eject     = flag.Int("eject", 0, "consecutive failures that eject a backend (0 = default)")
		noCache   = flag.Bool("nocache", false, "ask backends to bypass their result caches")
		asJSON    = flag.Bool("json", false, "emit tables as JSON")
		asCSV     = flag.Bool("csv", false, "emit tables as CSV")
		selfcheck = flag.Bool("selfcheck", false, "verify the coordinator against 2 loopback backends and exit")
		traceFile = flag.String("trace", "", "append coordinator spans (JSONL) to this file; loostrace renders them")
		traceSeed = flag.Int64("trace-seed", 1, "seed for deterministic trace IDs")
	)
	flag.Parse()

	if *selfcheck {
		if err := runSelfcheck(*traceFile); err != nil {
			log.Fatalf("selfcheck: %v", err)
		}
		fmt.Println("loosweep selfcheck ok")
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON && *asCSV {
		log.Fatal("-json and -csv are mutually exclusive")
	}

	var tracer *trace.Tracer
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		spanOut := trace.NewWriter(f)
		tracer = trace.New(trace.Options{Seed: *traceSeed, Now: time.Now, Sink: spanOut})
		defer func() {
			if err := spanOut.Flush(); err != nil {
				log.Printf("trace flush: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("trace close: %v", err)
			}
		}()
	}

	coord, err := dispatch.New(dispatch.Options{
		Backends:      splitBackends(*backends),
		InFlight:      *inflight,
		Attempts:      *attempts,
		BackoffBase:   *backoff,
		HedgeDelay:    *hedge,
		ProbeInterval: *probe,
		EjectAfter:    *eject,
		NoCache:       *noCache,
		Tracer:        tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *measure > 0 {
		opt.Measure = *measure
	}
	opt.Seed = *seed
	opt.Runner = coord.Runner(context.Background())

	type job struct {
		name string
		run  func(experiments.Options) (*experiments.Table, error)
	}
	var jobs []job
	addFig := func(name string, f func(experiments.Options) (*experiments.Table, error)) {
		jobs = append(jobs, job{name, f})
	}
	switch *fig {
	case "4":
		addFig("fig4", experiments.Fig4)
	case "5":
		addFig("fig5", experiments.Fig5)
	case "6":
		addFig("fig6", experiments.Fig6)
	case "8":
		addFig("fig8", experiments.Fig8)
	case "9":
		addFig("fig9", experiments.Fig9)
	case "all":
		addFig("fig4", experiments.Fig4)
		addFig("fig5", experiments.Fig5)
		addFig("fig6", experiments.Fig6)
		addFig("fig8", experiments.Fig8)
		addFig("fig9", experiments.Fig9)
	default:
		log.Fatalf("unknown figure %q", *fig)
	}

	for _, j := range jobs {
		start := time.Now()
		t, err := j.run(opt)
		if err != nil {
			log.Fatalf("%s: %v", j.name, err)
		}
		wall := time.Since(start).Seconds()
		switch {
		case *asJSON:
			report := struct {
				Name        string
				HostSeconds float64
				Table       *experiments.Table
				Fleet       dispatch.Metrics
			}{j.name, wall, t, coord.Metrics()}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				log.Fatal(err)
			}
		case *asCSV:
			if err := writeCSV(os.Stdout, t); err != nil {
				log.Fatal(err)
			}
		default:
			fmt.Println(t)
			fmt.Printf("[%s took %.1fs]\n\n", j.name, wall)
		}
	}
	if !*asJSON {
		printFleetSummary(coord.Metrics())
	}
}

// splitBackends parses the -backends flag; an empty flag means an empty
// fleet (the coordinator then runs everything locally).
func splitBackends(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// writeCSV renders one table as CSV: a label column followed by the
// figure's series.
func writeCSV(f *os.File, t *experiments.Table) error {
	w := csv.NewWriter(f)
	if err := w.Write(append([]string{"benchmark"}, t.Header...)); err != nil {
		return err
	}
	row := make([]string, 0, len(t.Header)+1)
	for _, r := range t.Rows {
		row = append(row[:0], r.Label)
		for _, v := range r.Values {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// printFleetSummary reports the coordinator's counters to stderr so they
// never pollute table output.
func printFleetSummary(m dispatch.Metrics) {
	if m.Requests == 0 && m.LocalFallbacks == 0 {
		return
	}
	log.Printf("fleet: %d requests, %d cache hits (%.0f%%), %d retries, %d/%d hedges won, %d ejections, %d local fallbacks",
		m.Requests, m.CacheHits, 100*m.CacheHitRate, m.Retries, m.HedgesWon, m.Hedges, m.Ejections, m.LocalFallbacks)
	for _, b := range m.Backends {
		state := "up"
		if b.Down {
			state = "down"
		}
		log.Printf("fleet: backend %s: %d requests, %d failures, %s", b.URL, b.Requests, b.Failures, state)
	}
}

// runSelfcheck is the CI smoke test: a coordinator over two loopback
// backends (one of them briefly faulty) must reproduce a local serial
// sweep byte for byte, convert a repeated sweep into backend cache hits,
// and — against a dead fleet — degrade to local simulation with identical
// output. A final traced phase re-runs the sweep with tracing on and
// demands a byte-identical span stream across runs that reconstructs every
// job's full submit-to-run path; a non-empty traceFile receives the stream.
func runSelfcheck(traceFile string) error {
	ctx := context.Background()

	// A small grid: 4 workloads x 4 seeds, short runs.
	benches := []string{"gcc", "comp", "swim", "m88-comp"}
	var cfgs []pipeline.Config
	for seed := int64(1); seed <= 4; seed++ {
		for _, bench := range benches {
			cfg, err := loosesim.DefaultMachine(bench)
			if err != nil {
				return err
			}
			cfg.Seed = seed
			cfg.WarmupInstructions = 0
			cfg.MeasureInstructions = 2000
			cfgs = append(cfgs, cfg)
		}
	}

	want, err := loosesim.RunAllContext(ctx, cfgs)
	if err != nil {
		return fmt.Errorf("local baseline: %w", err)
	}

	backends, closeAll := servetest.StartBackends(2, serve.Options{Workers: 2})
	defer closeAll()

	// A short fault script chews on the first requests; attempts
	// comfortably outnumber the faults so nothing ends up local.
	tr := &servetest.Tripper{}
	tr.Script(
		servetest.FaultSpec{Fault: servetest.DropConn},
		servetest.FaultSpec{Fault: servetest.Status500},
	)
	coord, err := dispatch.New(dispatch.Options{
		Backends:    servetest.URLs(backends),
		Client:      &http.Client{Transport: tr},
		Attempts:    6,
		BackoffBase: time.Millisecond,
		BackoffCap:  10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	for pass := 1; pass <= 2; pass++ {
		got, err := coord.RunAll(ctx, cfgs)
		if err != nil {
			return fmt.Errorf("fleet pass %d: %w", pass, err)
		}
		if err := compareResults(got, want); err != nil {
			return fmt.Errorf("fleet pass %d: %w", pass, err)
		}
	}
	m := coord.Metrics()
	if m.LocalFallbacks != 0 {
		return fmt.Errorf("fleet passes used %d local fallbacks, want 0", m.LocalFallbacks)
	}
	if m.CacheHits == 0 {
		return fmt.Errorf("repeated sweep produced no backend cache hits: %+v", m)
	}
	fmt.Printf("fleet: %d requests over %d backends, %d cache hits, %d retries\n",
		m.Requests, len(m.Backends), m.CacheHits, m.Retries)

	// Dead fleet: everything must come back local and still match.
	dead, err := dispatch.New(dispatch.Options{
		Backends:    []string{"http://127.0.0.1:9", "http://127.0.0.1:10"},
		Attempts:    1,
		BackoffBase: time.Microsecond,
	})
	if err != nil {
		return err
	}
	defer dead.Close()
	got, err := dead.RunAll(ctx, cfgs)
	if err != nil {
		return fmt.Errorf("dead-fleet pass: %w", err)
	}
	if err := compareResults(got, want); err != nil {
		return fmt.Errorf("dead-fleet pass: %w", err)
	}
	if dm := dead.Metrics(); dm.LocalFallbacks == 0 {
		return fmt.Errorf("dead fleet reported no local fallbacks: %+v", dm)
	}
	fmt.Println("fleet: dead-fleet sweep degraded to local and matched")

	// Traced determinism: the same grid through a fresh traced fleet,
	// twice, must produce byte-identical span streams whose trees
	// reconstruct every job's path.
	stream, err := tracedSweep(ctx, cfgs, want)
	if err != nil {
		return fmt.Errorf("traced pass: %w", err)
	}
	again, err := tracedSweep(ctx, cfgs, want)
	if err != nil {
		return fmt.Errorf("traced pass 2: %w", err)
	}
	if !bytes.Equal(stream, again) {
		return fmt.Errorf("traced sweeps differ: %d vs %d span bytes", len(stream), len(again))
	}
	if err := checkSpans(stream, len(cfgs)); err != nil {
		return fmt.Errorf("traced pass: %w", err)
	}
	if traceFile != "" {
		if err := os.WriteFile(traceFile, stream, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("fleet: traced sweep reconstructed %d job paths, byte-identical across runs\n", 2*len(cfgs))
	return nil
}

// tracedSweep runs the grid through a fresh two-backend fleet with tracing
// on and returns the canonical span stream. One tracer serves both sides:
// the coordinator roots job traces (every key in the grid is distinct, so
// occurrence order cannot race) and the backends only continue coordinator
// parents. No clock is injected — structural spans with zero timestamps are
// exactly what byte-identity requires.
func tracedSweep(ctx context.Context, cfgs []pipeline.Config, want []*pipeline.Result) ([]byte, error) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	tracer := trace.New(trace.Options{Seed: 1, Sink: w})
	backends, closeAll := servetest.StartBackends(2, serve.Options{Workers: 2, Tracer: tracer})
	defer closeAll()
	// The consistent-hash ring shards by backend URL, and loopback test
	// servers sit on ephemeral ports — so hand the coordinator stable
	// names and rewrite them to the real addresses in the transport.
	// Identical fleet identity across runs is what makes shard
	// assignment, and therefore the span stream, byte-identical.
	stable := []string{"http://fleet-0.invalid", "http://fleet-1.invalid"}
	rewrite := make(map[string]string, len(stable))
	for i, u := range servetest.URLs(backends) {
		rewrite[strings.TrimPrefix(stable[i], "http://")] = strings.TrimPrefix(u, "http://")
	}
	coord, err := dispatch.New(dispatch.Options{
		Backends:      stable,
		Client:        &http.Client{Transport: &rewriteTransport{targets: rewrite}},
		ProbeInterval: time.Hour, // parked: probe spans would land nondeterministically mid-sweep
		Tracer:        tracer,
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	// Two passes: the first misses every backend cache and runs, the
	// second hits — two distinct trace shapes per config.
	for pass := 1; pass <= 2; pass++ {
		got, err := coord.RunAll(ctx, cfgs)
		if err != nil {
			return nil, fmt.Errorf("pass %d: %w", pass, err)
		}
		if err := compareResults(got, want); err != nil {
			return nil, fmt.Errorf("pass %d: %w", pass, err)
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// rewriteTransport maps the coordinator's stable backend names to the
// loopback servers' real ephemeral addresses.
type rewriteTransport struct {
	targets map[string]string
}

func (t *rewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if real, ok := t.targets[req.URL.Host]; ok {
		clone := req.Clone(req.Context())
		clone.URL.Host = real
		req = clone
	}
	return http.DefaultTransport.RoundTrip(req)
}

// checkSpans verifies the reconstruction promise on a span stream: one
// trace per job submission, each with a single coordinator root, a post
// attempt, and a backend serve span continuing the post span; across the
// two passes every config contributes one ran-on-a-worker trace and one
// backend-cache-hit trace.
func checkSpans(stream []byte, jobs int) error {
	byTrace := make(map[string][]trace.Span)
	var order []string
	for i, line := range bytes.Split(stream, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var s trace.Span
		if err := json.Unmarshal(line, &s); err != nil {
			return fmt.Errorf("span line %d: %w", i+1, err)
		}
		if _, seen := byTrace[s.Trace]; !seen {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	jobTraces, ran, hits := 0, 0, 0
	for _, id := range order {
		spans := byTrace[id]
		ids := make(map[uint64]bool, len(spans))
		roots := 0
		for _, s := range spans {
			ids[s.Span] = true
			if s.Parent == 0 {
				roots++
				if s.Name != "job" {
					return fmt.Errorf("trace %s rooted by %q, want job", id, s.Name)
				}
			}
		}
		if roots != 1 {
			return fmt.Errorf("trace %s has %d roots, want 1", id, roots)
		}
		jobTraces++
		var hasPost, hasServe, hasRun, hasHit bool
		for _, s := range spans {
			switch s.Name {
			case "post":
				hasPost = true
				if !s.Winner {
					return fmt.Errorf("trace %s: unhedged post not marked winner", id)
				}
			case "serve":
				hasServe = true
				if !ids[s.Parent] {
					return fmt.Errorf("trace %s: serve span parent %d not in trace", id, s.Parent)
				}
			case "run":
				hasRun = true
			case "cache":
				if s.Status == "hit" {
					hasHit = true
				}
			}
		}
		if !hasPost || !hasServe {
			return fmt.Errorf("trace %s misses post/serve spans (post=%v serve=%v)", id, hasPost, hasServe)
		}
		if hasRun {
			ran++
		} else if hasHit {
			hits++
		} else {
			return fmt.Errorf("trace %s neither ran nor hit the cache", id)
		}
	}
	if jobTraces != 2*jobs {
		return fmt.Errorf("%d job traces, want %d", jobTraces, 2*jobs)
	}
	if ran != jobs || hits != jobs {
		return fmt.Errorf("%d ran / %d cache-hit traces, want %d each", ran, hits, jobs)
	}
	return nil
}

// compareResults demands byte-identity between a fleet sweep and the
// local baseline, result by result.
func compareResults(got, want []*pipeline.Result) error {
	if len(got) != len(want) {
		return fmt.Errorf("result count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, err := json.Marshal(got[i])
		if err != nil {
			return err
		}
		w, err := json.Marshal(want[i])
		if err != nil {
			return err
		}
		if !bytes.Equal(g, w) {
			return fmt.Errorf("result %d differs from local baseline\nfleet: %s\nlocal: %s", i, g, w)
		}
	}
	return nil
}
