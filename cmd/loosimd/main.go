// Command loosimd serves simulation and figure jobs over HTTP: a bounded
// worker pool runs them on the deterministic pipeline, a content-addressed
// cache (in-memory, or on disk with -cache, shared with `experiments
// -cache`) makes repeated sweep points instant, and /metrics exposes queue
// depth, cache hit rate, per-job KIPS, and aggregate loop delays.
//
//	loosimd -addr :8087 -cache /var/tmp/loosesim-cache
//	curl -s localhost:8087/api/v1/jobs?wait=1 -d '{"bench":"gcc","dra":true}'
//	curl -s localhost:8087/metrics
//
// SIGINT/SIGTERM drain gracefully: submissions stop, queued and running
// jobs finish (up to -drain), then the process exits. -selfcheck starts
// the server on a loopback port, drives one job through the full HTTP API,
// verifies /metrics, drains, and exits — the CI smoke test.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loosesim/internal/serve"
	"loosesim/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8087", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queue depth (0 = default)")
	clientCap := flag.Int("clientcap", 0, "max queued jobs per named client (0 = no fairness cap)")
	retryAfter := flag.Duration("retryafter", 0, "Retry-After hint on 429 responses (0 = default 1s)")
	cacheDir := flag.String("cache", "", "persist the result cache in this directory (default: in-memory)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	selfcheck := flag.Bool("selfcheck", false, "run one job through the HTTP API on a loopback port and exit")
	traceFile := flag.String("trace", "", "append job lifecycle spans (JSONL) to this file; loostrace renders them")
	traceSeed := flag.Int64("trace-seed", 1, "seed for deterministic trace IDs")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	var store serve.Store
	if *cacheDir != "" {
		var err error
		store, err = serve.NewDirStore(*cacheDir)
		if err != nil {
			log.Fatalf("loosimd: %v", err)
		}
	}
	var tracer *trace.Tracer
	var spanOut *trace.Writer
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("loosimd: %v", err)
		}
		spanOut = trace.NewWriter(f)
		tracer = trace.New(trace.Options{Seed: *traceSeed, Now: time.Now, Sink: spanOut})
		defer func() {
			if err := spanOut.Flush(); err != nil {
				log.Printf("loosimd: trace flush: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("loosimd: trace close: %v", err)
			}
		}()
	}

	srv := serve.New(serve.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		ClientCap:  *clientCap,
		RetryAfter: *retryAfter,
		Store:      store,
		Now:        time.Now,
		Tracer:     tracer,
	})

	if *selfcheck {
		if err := runSelfcheck(srv, *drain); err != nil {
			log.Fatalf("loosimd: selfcheck: %v", err)
		}
		fmt.Println("loosimd selfcheck ok")
		return
	}

	handler := srv.Handler()
	if *pprofOn {
		// pprof is opt-in: the profiling surface stays off the wire unless
		// the operator asked for it.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{Addr: *addr, Handler: handler}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	// main must not exit when ListenAndServe unblocks on Shutdown — the
	// pool may still be finishing jobs; drained gates the final return.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-sig
		log.Printf("loosimd: draining (budget %s)", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("loosimd: http shutdown: %v", err)
		}
		if err := srv.Drain(ctx); err != nil {
			log.Printf("loosimd: drain: %v", err)
		}
	}()
	log.Printf("loosimd: listening on %s (workers=%d)", *addr, srv.Metrics().Workers)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("loosimd: %v", err)
	}
	<-drained
}

// runSelfcheck exercises the full service over real HTTP: submit a small
// job twice (the second must hit the cache), check /metrics, and drain.
func runSelfcheck(srv *serve.Server, drain time.Duration) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("loosimd: selfcheck server: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()

	spec := []byte(`{"bench":"apsi","warmup":20000,"inst":60000,"events":true}`)
	var first, second struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	if err := postJSON(base+"/api/v1/jobs?wait=1", spec, &first); err != nil {
		return fmt.Errorf("first submit: %w", err)
	}
	if first.State != "done" {
		return fmt.Errorf("first job state = %q, want done", first.State)
	}
	if err := postJSON(base+"/api/v1/jobs?wait=1", spec, &second); err != nil {
		return fmt.Errorf("second submit: %w", err)
	}
	if second.State != "done" || !second.Cached {
		return fmt.Errorf("second job state = %q cached = %v, want a cache hit", second.State, second.Cached)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var m serve.Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if m.Cache.Hits < 1 || m.Cache.HitRate <= 0 {
		return fmt.Errorf("metrics cache hits = %d rate = %v, want a hit", m.Cache.Hits, m.Cache.HitRate)
	}
	if m.Jobs.Completed < 2 {
		return fmt.Errorf("metrics completed = %d, want >= 2", m.Jobs.Completed)
	}
	if len(m.Loops) == 0 {
		return errors.New("metrics has no loop aggregates despite an events-enabled job")
	}

	// The Prometheus view of the same snapshot must parse as exposition
	// text, and the JSON default above must be unaffected by its presence.
	resp, err = http.Get(base + "/metrics?format=prom")
	if err != nil {
		return err
	}
	promText, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("prom metrics: %w", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		return fmt.Errorf("prom metrics content type = %q", ct)
	}
	if err := serve.CheckPromText(promText); err != nil {
		return fmt.Errorf("prom metrics: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	return srv.Drain(ctx)
}

// postJSON posts body and decodes the JSON response into out, treating
// non-2xx statuses as errors.
func postJSON(url string, body []byte, out any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			log.Printf("loosimd: response close: %v", cerr)
		}
	}()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
